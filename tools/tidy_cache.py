#!/usr/bin/env python3
"""ccache-style result cache for clang-tidy invocations.

CMake (GTL_CLANG_TIDY=ON) prefixes every per-TU clang-tidy run with this
wrapper:

    tidy_cache.py --cache-dir DIR --root REPO -- clang-tidy <args...> \
        <source> -- <full compile command...>

The cache key is a SHA-256 over everything that can change a finding:

  * the full clang-tidy argv (which embeds the TU's compile command,
    i.e. exactly what compile_commands.json records for the file),
  * the clang-tidy binary identity (path + mtime + size),
  * the .clang-tidy configuration,
  * the source file contents,
  * every *.hpp / *.h under <root>/{src,include,tools} — one global
    header hash, so a header edit invalidates the whole cache instead of
    under-invalidating dependent TUs.

On a hit the recorded stdout/stderr/exit status replay verbatim; on a
miss clang-tidy runs and the result is stored (atomic rename, so
concurrent build jobs never observe torn entries).  Corrupt or
unreadable cache entries are treated as misses.  Set
GTL_TIDY_CACHE_DISABLE=1 to bypass the cache entirely.

Exit codes are clang-tidy's own; wrapper-usage errors exit 3.
"""

import hashlib
import json
import os
import subprocess
import sys
import tempfile


def _usage(msg):
    print(f"tidy_cache.py: {msg}", file=sys.stderr)
    print(
        "usage: tidy_cache.py --cache-dir DIR --root DIR -- "
        "<clang-tidy> <args...>",
        file=sys.stderr,
    )
    return 3


def _hash_file(hasher, path):
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 16), b""):
            hasher.update(chunk)


def _global_header_hash(root):
    """One hash over every repo header: coarse but never stale."""
    hasher = hashlib.sha256()
    for top in ("src", "include", "tools"):
        top_dir = os.path.join(root, top)
        if not os.path.isdir(top_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(top_dir):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith((".hpp", ".h")):
                    continue
                path = os.path.join(dirpath, name)
                hasher.update(os.path.relpath(path, root).encode())
                _hash_file(hasher, path)
    return hasher.hexdigest()


def main(argv):
    cache_dir = None
    root = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--cache-dir" and i + 1 < len(argv):
            cache_dir = argv[i + 1]
            i += 2
        elif arg == "--root" and i + 1 < len(argv):
            root = argv[i + 1]
            i += 2
        elif arg == "--":
            i += 1
            break
        else:
            return _usage(f"unknown argument {arg!r}")
    command = argv[i:]
    if not command:
        return _usage("no clang-tidy command after --")
    if cache_dir is None or root is None:
        return _usage("--cache-dir and --root are required")

    if os.environ.get("GTL_TIDY_CACHE_DISABLE") == "1":
        return subprocess.call(command)

    hasher = hashlib.sha256()
    hasher.update(json.dumps(command).encode())
    tidy_bin = command[0]
    try:
        st = os.stat(tidy_bin)
        hasher.update(f"{tidy_bin}:{st.st_mtime_ns}:{st.st_size}".encode())
    except OSError:
        pass  # resolved via PATH by subprocess; argv already in the key
    config = os.path.join(root, ".clang-tidy")
    if os.path.isfile(config):
        _hash_file(hasher, config)
    # Source files appear verbatim in the argv; hash their contents too.
    for arg in command[1:]:
        if arg.endswith((".cpp", ".cc", ".hpp", ".h")) and os.path.isfile(arg):
            _hash_file(hasher, arg)
    hasher.update(_global_header_hash(root).encode())
    key = hasher.hexdigest()

    entry = os.path.join(cache_dir, key[:2], key + ".json")
    try:
        with open(entry, "r", encoding="utf-8") as f:
            record = json.load(f)
        sys.stdout.write(record["stdout"])
        sys.stderr.write(record["stderr"])
        return int(record["exit"])
    except (OSError, ValueError, KeyError):
        pass  # miss

    proc = subprocess.run(command, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)

    record = {"exit": proc.returncode, "stdout": proc.stdout,
              "stderr": proc.stderr}
    try:
        os.makedirs(os.path.dirname(entry), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(entry))
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(record, f)
        os.replace(tmp, entry)
    except OSError:
        pass  # a failed store is a future miss, never an error
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
