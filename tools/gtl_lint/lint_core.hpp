#pragma once
// gtl_lint — repo-specific static contracts that clang-tidy cannot express.
//
// Rule families, applied by repo-relative path (see README "Code
// quality" for the rule table and rationale):
//
//   determinism  (src/finder, src/order, src/metrics, src/graphgen)
//     det-unordered-iter   iteration over std::unordered_{map,set,...}
//     det-random           rand()/srand()/std::random_device/...
//     det-wall-clock       std::chrono / time() / Timer reads
//     det-pointer-key      std::map/set keyed or ordered by pointers
//
//   layering  (all of src/)
//     layer-dep            #include that violates the target DAG
//     layer-public-include src/ including the public <gtl/...> wrappers
//
//   error handling
//     err-serve-throw      `throw` in src/serve request paths
//     err-system-abort     naked system()/abort()/exit() in src/
//
//   SIMD containment  (all of src/ except src/util/simd*)
//     simd-intrinsics-contained  intrinsic headers / _mm* tokens outside
//                                the gtl::simd kernel layer
//
//   synchronization  (all of src/ except src/util/sync.hpp)
//     sync-raw-mutex          bare std::mutex/lock_guard/unique_lock/
//                             scoped_lock/condition_variable outside the
//                             capability layer (use gtl::Mutex & co. so
//                             Clang Thread Safety Analysis sees locks)
//     sync-unjustified-escape GTL_NO_THREAD_SAFETY_ANALYSIS without an
//                             allow(sync-unjustified-escape) justification
//
// Escape hatch: `// gtl-lint: allow(<rule>[, <rule>...]): <justification>`
// suppresses a rule on its own line, or — when the comment stands alone —
// on the next line of code.  The justification is mandatory; a malformed
// directive is itself a finding (rule "lint-allow") and cannot be
// suppressed.
//
// The checker is deliberately standalone (no gtl library or libclang
// dependency): it lints the tree that builds the libraries, so it must
// never be part of the layering it polices.

#include <string>
#include <string_view>
#include <vector>

namespace gtl::lint {

struct Finding {
  std::string file;  ///< repo-relative path as passed to lint_file()
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// Every rule name the allow() escape hatch accepts.
const std::vector<std::string>& rule_names();

/// Lint `text` as the file at repo-relative `rel_path` (e.g.
/// "src/finder/finder.cpp").  Paths outside src/ produce no findings.
std::vector<Finding> lint_file(std::string_view rel_path,
                               std::string_view text);

}  // namespace gtl::lint
