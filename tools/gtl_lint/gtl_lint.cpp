// gtl_lint — command-line driver.  See lint_core.hpp for the rule set.
//
//   gtl_lint [--root=<repo-root>] [--list-rules] [--quiet] <path>...
//
// Each <path> is a file or a directory (recursed for *.hpp/*.cpp).
// Findings print as "file:line: [rule] message".  Exit codes: 0 clean,
// 1 findings, 2 usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

namespace fs = std::filesystem;

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Repo-relative form of `path` under `root`; empty when outside it.
std::string relative_to(const fs::path& root, const fs::path& path) {
  std::error_code ec;
  const fs::path rel = fs::relative(fs::absolute(path), root, ec);
  if (ec) return {};
  const std::string s = rel.generic_string();
  if (s.rfind("..", 0) == 0) return {};
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool quiet = false;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : gtl::lint::rule_names()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "gtl_lint: unknown option " << arg << "\n"
                << "usage: gtl_lint [--root=<repo-root>] [--list-rules] "
                   "[--quiet] <path>...\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "gtl_lint: no inputs (try: gtl_lint --root=. src)\n";
    return 2;
  }
  std::error_code ec;
  root = fs::absolute(root, ec);
  if (ec || !fs::is_directory(root)) {
    std::cerr << "gtl_lint: --root is not a directory: " << root << "\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& input : inputs) {
    if (fs::is_directory(input)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(input)) {
      files.push_back(input);
    } else {
      std::cerr << "gtl_lint: no such file or directory: " << input << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  std::size_t checked = 0;
  for (const fs::path& file : files) {
    const std::string rel = relative_to(root, file);
    if (rel.empty()) {
      std::cerr << "gtl_lint: " << file << " is outside --root " << root
                << "\n";
      return 2;
    }
    std::string text;
    if (!read_file(file, &text)) {
      std::cerr << "gtl_lint: cannot read " << file << "\n";
      return 2;
    }
    ++checked;
    for (const gtl::lint::Finding& f : gtl::lint::lint_file(rel, text)) {
      ++findings;
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }
  if (!quiet) {
    std::cerr << "gtl_lint: " << checked << " files, " << findings
              << " finding" << (findings == 1 ? "" : "s") << "\n";
  }
  return findings == 0 ? 0 : 1;
}
