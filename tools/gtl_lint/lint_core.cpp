#include "lint_core.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <regex>
#include <set>

namespace gtl::lint {
namespace {

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

constexpr std::array<std::string_view, 9> kModules = {
    "util",  "netlist", "order",  "metrics", "graphgen",
    "place", "viz",     "finder", "serve"};

// Result-affecting modules: anything here feeds the byte-identical
// finder-result contract.
constexpr std::array<std::string_view, 4> kDetModules = {"finder", "order",
                                                         "metrics", "graphgen"};

// The documented target DAG, as "module -> modules it may include".
// Self-includes are always allowed and omitted.
const std::map<std::string_view, std::set<std::string_view>>& layer_deps() {
  static const std::map<std::string_view, std::set<std::string_view>> deps = {
      {"util", {}},
      {"netlist", {"util"}},
      {"order", {"util", "netlist"}},
      {"metrics", {"util", "netlist", "order"}},
      {"graphgen", {"util", "netlist"}},
      {"place", {"util", "netlist"}},
      {"viz", {"util", "netlist", "place"}},
      {"finder", {"util", "netlist", "order", "metrics", "graphgen", "place"}},
      {"serve",
       {"util", "netlist", "order", "metrics", "graphgen", "place", "finder"}},
  };
  return deps;
}

std::string normalize(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  while (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

/// "src/finder/finder.cpp" -> "finder"; "" when not a known src/ module.
std::string_view module_of(std::string_view rel_path) {
  constexpr std::string_view kSrc = "src/";
  if (rel_path.substr(0, kSrc.size()) != kSrc) return {};
  std::string_view rest = rel_path.substr(kSrc.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  std::string_view mod = rest.substr(0, slash);
  for (std::string_view known : kModules) {
    if (mod == known) return mod;
  }
  return {};
}

bool is_det_module(std::string_view mod) {
  return std::find(kDetModules.begin(), kDetModules.end(), mod) !=
         kDetModules.end();
}

// ---------------------------------------------------------------------------
// Lexical scan: split each line into code / code-with-strings / comment
// ---------------------------------------------------------------------------

struct LineView {
  std::string code;          ///< comments and literal contents blanked
  std::string code_strings;  ///< comments blanked, string contents kept
  std::string comment;       ///< concatenated comment text
};

/// Comment- and literal-aware line splitter.  String/char literal
/// contents are blanked in `code` (quotes kept) so token rules cannot
/// fire inside them; include paths survive in `code_strings`.
std::vector<LineView> scan_lines(std::string_view text) {
  enum class State { kNormal, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  std::vector<LineView> lines;
  lines.emplace_back();
  State state = State::kNormal;
  std::string raw_delim;       // ")delim" terminator for raw strings
  char prev_code_char = '\0';  // last non-blanked char, for R" / digit '

  const auto code_push = [&](char c) {
    lines.back().code.push_back(c);
    lines.back().code_strings.push_back(c);
    if (!std::isspace(static_cast<unsigned char>(c))) prev_code_char = c;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kNormal;
      // Unterminated string/char literals cannot span lines.
      if (state == State::kString || state == State::kChar) {
        state = State::kNormal;
      }
      lines.emplace_back();
      prev_code_char = '\0';
      continue;
    }
    switch (state) {
      case State::kNormal:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          if (prev_code_char == 'R') {
            // R"delim( ... )delim"
            std::string delim = ")";
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') delim += text[j++];
            delim += '"';
            raw_delim = delim;
            state = State::kRawString;
            code_push('"');
            i = j;  // skip past '('
          } else {
            state = State::kString;
            code_push('"');
          }
        } else if (c == '\'') {
          const bool digit_separator =
              std::isalnum(static_cast<unsigned char>(prev_code_char)) != 0 ||
              prev_code_char == '_';
          if (digit_separator) {
            code_push(c);  // 1'000'000
          } else {
            state = State::kChar;
            code_push('\'');
          }
        } else {
          code_push(c);
        }
        break;
      case State::kLineComment:
        lines.back().comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kNormal;
          ++i;
        } else {
          lines.back().comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          lines.back().code.push_back(' ');
          lines.back().code_strings.push_back(c);
          if (next != '\0' && next != '\n') {
            lines.back().code.push_back(' ');
            lines.back().code_strings.push_back(next);
            ++i;
          }
        } else if (c == '"') {
          state = State::kNormal;
          code_push('"');
          prev_code_char = '\0';  // a closing quote never prefixes R"
        } else {
          lines.back().code.push_back(' ');
          lines.back().code_strings.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\') {
          lines.back().code.push_back(' ');
          lines.back().code_strings.push_back(' ');
          if (next != '\0' && next != '\n') {
            lines.back().code.push_back(' ');
            lines.back().code_strings.push_back(' ');
            ++i;
          }
        } else if (c == '\'') {
          state = State::kNormal;
          code_push('\'');
          prev_code_char = '\0';
        } else {
          lines.back().code.push_back(' ');
          lines.back().code_strings.push_back(' ');
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kNormal;
          code_push('"');
          prev_code_char = '\0';
        } else {
          lines.back().code.push_back(' ');
          lines.back().code_strings.push_back(' ');
          if (c == '\n') {  // unreachable: newline handled above
            lines.emplace_back();
          }
        }
        break;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// allow() escape hatch
// ---------------------------------------------------------------------------

struct AllowDirective {
  std::set<std::string> rules;
  bool malformed = false;
  std::string error;
};

bool known_rule(const std::string& rule) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), rule) != names.end();
}

/// Parse "gtl-lint: allow(rule-a, rule-b): justification" out of a
/// comment.  Returns true if the directive marker is present at all.
bool parse_allow(const std::string& comment, AllowDirective* out) {
  static const std::regex kDirective(
      R"(gtl-lint:\s*allow\s*\(([^)]*)\)\s*(?::|--)?\s*(.*))");
  std::smatch m;
  if (!std::regex_search(comment, m, kDirective)) {
    if (comment.find("gtl-lint") != std::string::npos) {
      out->malformed = true;
      out->error = "unrecognized gtl-lint directive (expected "
                   "\"gtl-lint: allow(<rule>): <justification>\")";
      return true;
    }
    return false;
  }
  // Split the rule list on commas / whitespace.
  const std::string list = m[1].str();
  std::string cur;
  std::vector<std::string> rules;
  for (const char c : list + ",") {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!cur.empty()) rules.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (rules.empty()) {
    out->malformed = true;
    out->error = "allow() names no rule";
    return true;
  }
  for (const std::string& rule : rules) {
    if (!known_rule(rule)) {
      out->malformed = true;
      out->error = "allow() names unknown rule \"" + rule + "\"";
      return true;
    }
    out->rules.insert(rule);
  }
  const std::string justification = m[2].str();
  const bool has_word = std::any_of(
      justification.begin(), justification.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) != 0;
      });
  if (!has_word) {
    out->malformed = true;
    out->error = "allow(" + list + ") carries no justification";
    return true;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct PatternRule {
  const char* rule;
  std::regex pattern;
  const char* message;
};

const std::vector<PatternRule>& det_patterns() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    const auto add = [&r](const char* rule, const char* re, const char* msg) {
      r.push_back({rule, std::regex(re, std::regex::optimize), msg});
    };
    add("det-random", R"(\b(?:std::)?s?rand\s*\()",
        "rand()/srand() is nondeterministic across platforms; use the "
        "seeded gtl::Rng streams");
    add("det-random", R"(\bstd::random_device\b)",
        "std::random_device draws entropy at runtime; results would differ "
        "per run");
    add("det-random", R"(\bstd::default_random_engine\b)",
        "std::default_random_engine is implementation-defined; use the "
        "seeded gtl::Rng streams");
    add("det-random", R"(\bstd::random_shuffle\b)",
        "std::random_shuffle is implementation-defined; use a seeded "
        "std::shuffle");
    add("det-wall-clock", R"(\bstd::chrono\b)",
        "wall-clock reads make results depend on machine speed");
    add("det-wall-clock", R"(\b(?:std::)?(?:time|clock)\s*\()",
        "time()/clock() reads make results depend on machine speed");
    add("det-wall-clock", R"(\b(?:clock_gettime|gettimeofday)\s*\()",
        "wall-clock reads make results depend on machine speed");
    add("det-wall-clock", R"(\bTimer\s+[A-Za-z_]\w*)",
        "gtl::Timer reads the wall clock; timing must never feed a result "
        "value");
    add("det-pointer-key", R"(\bstd::(?:multi)?(?:map|set)\s*<[^<>,]*\*)",
        "pointer-keyed ordered containers iterate in allocation order, "
        "which differs across runs");
    add("det-pointer-key", R"(\bstd::less<[^<>]*\*\s*>)",
        "ordering by raw pointer value differs across runs");
    return r;
  }();
  return rules;
}

const std::vector<PatternRule>& abort_patterns() {
  static const std::vector<PatternRule> rules = [] {
    std::vector<PatternRule> r;
    const auto add = [&r](const char* rule, const char* re, const char* msg) {
      r.push_back({rule, std::regex(re, std::regex::optimize), msg});
    };
    add("err-system-abort", R"(\b(?:std::)?system\s*\()",
        "no shelling out from library code");
    add("err-system-abort", R"(\b(?:std::)?(?:abort|_Exit|quick_exit)\s*\()",
        "library code must surface errors as gtl::Status or GTL_REQUIRE, "
        "never kill the process");
    add("err-system-abort", R"(\b(?:std::)?exit\s*\()",
        "std::exit() skips destructors; library code must return errors "
        "instead");
    return r;
  }();
  return rules;
}

/// Skip a balanced <...> starting at text[pos] == '<'; returns the index
/// one past the closing '>', or npos when unbalanced on this line.
std::size_t skip_angles(const std::string& text, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Names of variables/members declared with an unordered container type
/// anywhere in the file (declaration and use may be many lines apart, so
/// this runs over the whole code text first).
std::set<std::string> collect_unordered_names(
    const std::vector<LineView>& lines) {
  static const std::regex kDecl(
      R"(\bstd::unordered_(?:map|set|multimap|multiset)\b)",
      std::regex::optimize);
  std::set<std::string> names;
  for (const LineView& lv : lines) {
    const std::string& code = lv.code;
    for (std::sregex_iterator it(code.begin(), code.end(), kDecl), end;
         it != end; ++it) {
      std::size_t pos = static_cast<std::size_t>(it->position()) +
                        static_cast<std::size_t>(it->length());
      while (pos < code.size() &&
             std::isspace(static_cast<unsigned char>(code[pos])) != 0) {
        ++pos;
      }
      if (pos >= code.size() || code[pos] != '<') continue;
      pos = skip_angles(code, pos);
      if (pos == std::string::npos) continue;
      while (pos < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[pos])) != 0 ||
              code[pos] == '&')) {
        ++pos;
      }
      std::string name;
      while (pos < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[pos])) != 0 ||
              code[pos] == '_')) {
        name.push_back(code[pos++]);
      }
      if (!name.empty()) names.insert(name);
    }
  }
  return names;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "det-unordered-iter", "det-random",           "det-wall-clock",
      "det-pointer-key",    "layer-dep",            "layer-public-include",
      "err-serve-throw",    "err-system-abort",     "simd-intrinsics-contained",
      "sync-raw-mutex",     "sync-unjustified-escape",
  };
  return names;
}

std::vector<Finding> lint_file(std::string_view rel_path,
                               std::string_view text) {
  const std::string path = normalize(rel_path);
  const std::string_view mod = module_of(path);
  std::vector<Finding> findings;
  if (mod.empty()) return findings;  // only src/<module>/ files carry rules

  const std::vector<LineView> lines = scan_lines(text);
  const bool det = is_det_module(mod);
  const std::set<std::string> unordered_names =
      det ? collect_unordered_names(lines) : std::set<std::string>{};

  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re",
                                   std::regex::optimize);
  static const std::regex kRangeFor(
      R"(\bfor\s*\([^()]*:\s*([A-Za-z_]\w*)\s*\))", std::regex::optimize);
  // Only begin() starts an iteration; `it != seen.end()` is the find()
  // sentinel idiom and perfectly deterministic.
  static const std::regex kBeginEnd(R"(\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()",
                                    std::regex::optimize);
  static const std::regex kThrow(R"(\bthrow\b)", std::regex::optimize);
  static const std::regex kClockInclude(
      R"(^\s*#\s*include\s*<(?:chrono|ctime)>)", std::regex::optimize);
  // SIMD containment: intrinsic headers and raw _mm*/__m256 tokens stay
  // inside src/util/simd* — everywhere else goes through gtl::simd's
  // kernel API, so the scalar/AVX2 backend switch covers the whole tree.
  static const std::regex kIntrinInclude(
      R"(^\s*#\s*include\s*<(?:\w*intrin\.h|arm_neon\.h|arm_sve\.h)>)",
      std::regex::optimize);
  static const std::regex kIntrinToken(
      R"(\b(?:_mm\d*_\w+|__m(?:128|256|512)[di]?)\b)", std::regex::optimize);
  const bool simd_layer = path.rfind("src/util/simd", 0) == 0;
  // Sync containment: the raw std primitives live only in the capability
  // layer (src/util/sync.hpp); the rest of src/ uses the annotated
  // gtl::Mutex/MutexLock/CondVar wrappers so Clang Thread Safety
  // Analysis sees every acquisition.  std::once_flag/call_once and the
  // <mutex> include itself stay legal — they carry no lock discipline.
  static const std::regex kRawSync(
      R"(\bstd::(?:(?:recursive|timed|recursive_timed|shared|shared_timed)_)?mutex\b)"
      R"(|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b)"
      R"(|\bstd::condition_variable(?:_any)?\b)",
      std::regex::optimize);
  static const std::regex kTsaEscape(R"(\bGTL_NO_THREAD_SAFETY_ANALYSIS\b)",
                                     std::regex::optimize);
  const bool sync_layer = path == "src/util/sync.hpp";

  // Allow directives from comment-only lines carry to the next code line.
  std::set<std::string> carried_allows;

  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const LineView& lv = lines[idx];
    const int line_no = static_cast<int>(idx) + 1;
    const bool has_code =
        std::any_of(lv.code.begin(), lv.code.end(), [](char c) {
          return std::isspace(static_cast<unsigned char>(c)) == 0;
        });

    std::set<std::string> allows = carried_allows;
    AllowDirective directive;
    if (!lv.comment.empty() && parse_allow(lv.comment, &directive)) {
      if (directive.malformed) {
        findings.push_back({path, line_no, "lint-allow", directive.error});
      } else if (has_code) {
        allows.insert(directive.rules.begin(), directive.rules.end());
      } else {
        carried_allows.insert(directive.rules.begin(), directive.rules.end());
      }
    }
    if (has_code) carried_allows.clear();

    const auto report = [&](const char* rule, std::string message) {
      if (allows.count(rule) != 0) return;
      findings.push_back({path, line_no, rule, std::move(message)});
    };

    // --- layering -------------------------------------------------------
    std::smatch m;
    if (std::regex_search(lv.code_strings, m, kInclude)) {
      const std::string inc = m[1].str();
      const std::size_t slash = inc.find('/');
      const std::string inc_top =
          slash == std::string::npos ? std::string() : inc.substr(0, slash);
      if (inc_top == "gtl") {
        report("layer-public-include",
               "src/ must include internal headers, not the public "
               "<gtl/...> wrappers (include \"" + inc + "\")");
      } else if (!inc_top.empty()) {
        for (std::string_view known : kModules) {
          if (inc_top != known || inc_top == mod) continue;
          const auto& allowed = layer_deps().at(mod);
          if (allowed.count(inc_top) == 0) {
            report("layer-dep",
                   "src/" + std::string(mod) + " may not include \"" + inc +
                       "\": " + inc_top + " is not below " + std::string(mod) +
                       " in the target DAG");
          }
        }
      }
    }

    // --- determinism ----------------------------------------------------
    if (det) {
      for (const PatternRule& pr : det_patterns()) {
        if (std::regex_search(lv.code, pr.pattern)) {
          report(pr.rule, pr.message);
        }
      }
      if (lv.code_strings.find("util/timer.hpp") != std::string::npos &&
          std::regex_search(lv.code_strings, kInclude)) {
        report("det-wall-clock",
               "util/timer.hpp wraps the wall clock; timing must never feed "
               "a result value");
      }
      if (std::regex_search(lv.code_strings, kClockInclude)) {
        report("det-wall-clock",
               "<chrono>/<ctime> must not be included from result-affecting "
               "modules");
      }
      if (!unordered_names.empty()) {
        std::smatch um;
        std::string rest = lv.code;
        if (std::regex_search(rest, um, kRangeFor) &&
            unordered_names.count(um[1].str()) != 0) {
          report("det-unordered-iter",
                 "range-for over unordered container \"" + um[1].str() +
                     "\": bucket order is not deterministic");
        }
        for (std::sregex_iterator it(rest.begin(), rest.end(), kBeginEnd), end;
             it != end; ++it) {
          if (unordered_names.count((*it)[1].str()) != 0) {
            report("det-unordered-iter",
                   "begin() on unordered container \"" + (*it)[1].str() +
                       "\": bucket order is not deterministic");
            break;
          }
        }
      }
    }

    // --- SIMD containment -------------------------------------------------
    if (!simd_layer) {
      if (std::regex_search(lv.code_strings, kIntrinInclude)) {
        report("simd-intrinsics-contained",
               "intrinsic headers are confined to src/util/simd*; call the "
               "gtl::simd kernel API so the scalar backend stays equivalent");
      }
      if (std::regex_search(lv.code, kIntrinToken)) {
        report("simd-intrinsics-contained",
               "raw vector intrinsics are confined to src/util/simd*; add a "
               "kernel to gtl::simd (with a scalar_ref twin) instead");
      }
    }

    // --- synchronization --------------------------------------------------
    if (!sync_layer) {
      if (std::regex_search(lv.code, kRawSync)) {
        report("sync-raw-mutex",
               "bare std sync primitives are confined to src/util/sync.hpp; "
               "use gtl::Mutex/MutexLock/CondVar so the lock contract is "
               "visible to Clang Thread Safety Analysis");
      }
      if (std::regex_search(lv.code, kTsaEscape)) {
        report("sync-unjustified-escape",
               "GTL_NO_THREAD_SAFETY_ANALYSIS needs a justification: "
               "\"// gtl-lint: allow(sync-unjustified-escape): <why>\" on "
               "the same or the preceding line");
      }
    }

    // --- error handling -------------------------------------------------
    if (mod == "serve" && std::regex_search(lv.code, kThrow)) {
      report("err-serve-throw",
             "src/serve request paths must report gtl::Status, never throw "
             "(GTL_REQUIRE for programmer errors is fine)");
    }
    for (const PatternRule& pr : abort_patterns()) {
      if (std::regex_search(lv.code, pr.pattern)) {
        report(pr.rule, pr.message);
      }
    }
  }
  return findings;
}

}  // namespace gtl::lint
