// gtl_serve — the Finder-as-a-service daemon.
//
//   $ gtl_serve --socket=/tmp/gtl.sock --workers=2
//       --preload-name=ibm01 --preload-aux=bench/data/ibm01.aux
//
// Serves the JSON-lines protocol of src/serve/protocol.hpp on a Unix
// socket until SIGINT/SIGTERM.  Designs can be preloaded here (so the
// first query never pays a parse) or loaded at runtime via the
// load_design op; `--demo-design` plants a synthetic ISPD-like design
// in-process, which is how CI and bench/serve_load.py get a workload
// without fixture files.
//
// Prints exactly one "gtl_serve listening on <path>" line to stdout once
// accepting — scripts wait for it before connecting.

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "gtl/netlist.hpp"
#include "graphgen/presets.hpp"
#include "graphgen/synthetic_circuit.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int /*signum*/) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  gtl::CliArgs args(argc, argv);
  args.usage("Serve tangled-logic queries over a Unix-socket JSON-lines API.")
      .describe("socket=PATH", "socket path to listen on (required)")
      .describe("workers=N", "worker threads for queued ops (default 2)")
      .describe("queue-cap=N",
                "admission queue bound; beyond it requests get "
                "\"overloaded\" (default 16)")
      .describe("max-resident-mb=N",
                "design registry residency cap, LRU-evicted (default 512)")
      .describe("hard-resident-mb=N",
                "hard watermark: a single design above this is shed with "
                "\"overloaded\" instead of evicting everything "
                "(default 0 = off)")
      .describe("retry-after-ms=N",
                "backoff hint stamped on overloaded rejections "
                "(default 1000)")
      .describe("manifest=PATH",
                "crash-safe design manifest: loads are recorded here and "
                "replayed on restart (default none)")
      .describe("default-deadline-ms=N",
                "deadline for run_finder requests that give none "
                "(default 0 = unlimited)")
      .describe("max-threads-per-query=N",
                "cap on a query's num_threads (default 0 = as requested)")
      .describe("max-idle-sessions=N",
                "warm Finder sessions kept per design (default 4)")
      .describe("preload-name=NAME", "register a design at startup as NAME")
      .describe("preload-aux=PATH", "Bookshelf .aux for --preload-name")
      .describe("preload-snapshot=PATH",
                "binary snapshot cache for --preload-name (read if "
                "present, else filled after the .aux parse)")
      .describe("demo-design=NAME",
                "plant a synthetic ISPD-like design (bigblue1, adaptec1, "
                "...) and register it as NAME")
      .describe("demo-factor=X",
                "scale of the demo design in (0, 1] (default 0.05)");
  if (gtl::cli_help_exit(args)) return 0;

  gtl::serve::ServerConfig cfg;
  cfg.socket_path = args.get_string("socket");
  cfg.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  cfg.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 16));
  cfg.max_resident_bytes =
      static_cast<std::size_t>(args.get_int("max-resident-mb", 512)) << 20;
  cfg.hard_resident_bytes =
      static_cast<std::size_t>(args.get_int("hard-resident-mb", 0)) << 20;
  cfg.retry_after_ms =
      static_cast<std::uint64_t>(args.get_int("retry-after-ms", 1000));
  cfg.manifest_path = args.get_string("manifest");
  cfg.default_deadline_ms =
      static_cast<std::uint64_t>(args.get_int("default-deadline-ms", 0));
  cfg.max_threads_per_query =
      static_cast<std::size_t>(args.get_int("max-threads-per-query", 0));
  cfg.max_idle_sessions =
      static_cast<std::size_t>(args.get_int("max-idle-sessions", 4));

  const std::string preload_name = args.get_string("preload-name");
  const std::string preload_aux = args.get_string("preload-aux");
  const std::string preload_snapshot = args.get_string("preload-snapshot");
  const std::string demo_design = args.get_string("demo-design");
  const double demo_factor = args.get_double("demo-factor", 0.05);

  if (cfg.socket_path.empty()) {
    args.record_error(gtl::Status::invalid_argument("--socket is required"));
  }
  if (!preload_name.empty() && preload_aux.empty() &&
      preload_snapshot.empty()) {
    args.record_error(gtl::Status::invalid_argument(
        "--preload-name needs --preload-aux and/or --preload-snapshot"));
  }
  if (gtl::cli_error_exit(args)) return 2;

  // Fault-injection schedules (GTL_FAILPOINTS / GTL_FAILPOINTS_FILE env)
  // are applied before anything touches a failpoint site.  A schedule
  // that does not parse is fatal — silently testing nothing is worse —
  // and a schedule given to a binary without compiled-in sites gets a
  // loud warning for the same reason.
  if (const gtl::Status st = gtl::failpoint::configure_from_env();
      !st.is_ok()) {
    std::cerr << "gtl_serve: failpoint config: " << st.to_string() << "\n";
    return 2;
  }
  if (!gtl::failpoint::compiled_in() &&
      (std::getenv("GTL_FAILPOINTS") != nullptr ||
       std::getenv("GTL_FAILPOINTS_FILE") != nullptr)) {
    std::cerr << "gtl_serve: warning: failpoint schedule given but this "
                 "binary was built without GTL_FAILPOINTS=ON; no faults "
                 "will fire\n";
  }

  gtl::serve::Server server(cfg);

  if (!cfg.manifest_path.empty()) {
    gtl::serve::Server::RecoveryReport report;
    if (const gtl::Status st = server.recover_from_manifest(&report);
        !st.is_ok()) {
      // A corrupt manifest is degraded durability, not an outage.
      std::cerr << "gtl_serve: manifest recovery failed: " << st.to_string()
                << " (continuing with an empty design set)\n";
    } else if (report.attempted != 0) {
      std::cout << "gtl_serve: recovered " << report.recovered << "/"
                << report.attempted << " designs from "
                << cfg.manifest_path.string() << "\n";
    }
    for (const std::string& note : report.notes) {
      std::cerr << "gtl_serve: manifest: " << note << "\n";
    }
  }

  if (!demo_design.empty()) {
    gtl::SyntheticCircuitConfig demo_cfg;
    try {
      demo_cfg = gtl::ispd_like_config(demo_design, demo_factor);
    } catch (const std::invalid_argument& e) {
      std::cerr << "gtl_serve: --demo-design: " << e.what() << "\n";
      return 2;
    }
    gtl::Rng rng;
    gtl::SyntheticCircuit circuit =
        gtl::generate_synthetic_circuit(demo_cfg, rng);
    gtl::BookshelfDesign design;
    design.netlist = std::move(circuit.netlist);
    design.x = std::move(circuit.hint_x);
    design.y = std::move(circuit.hint_y);
    if (const gtl::Status st =
            server.preload(demo_design, std::move(design));
        !st.is_ok()) {
      std::cerr << "gtl_serve: demo preload failed: " << st.to_string()
                << "\n";
      return 1;
    }
    std::cout << "gtl_serve: demo design \"" << demo_design << "\" ready\n";
  }

  if (!preload_name.empty()) {
    gtl::serve::DesignRegistry::LoadInfo info;
    if (const gtl::Status st = server.registry().load(
            preload_name, preload_aux, preload_snapshot, &info);
        !st.is_ok()) {
      std::cerr << "gtl_serve: preload of \"" << preload_name
                << "\" failed: " << st.to_string() << "\n";
      return 1;
    }
    std::cout << "gtl_serve: preloaded \"" << preload_name << "\" ("
              << info.entry->design.netlist.num_cells() << " cells"
              << (info.snapshot_hit ? ", snapshot hit" : "") << ")\n";
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // A peer vanishing mid-write must be a Status, not a process death.
  std::signal(SIGPIPE, SIG_IGN);

  std::cout << "gtl_serve listening on " << cfg.socket_path.string()
            << std::endl;

  const gtl::Status st = server.serve(g_stop);
  server.stop();
  if (!st.is_ok()) {
    std::cerr << "gtl_serve: " << st.to_string() << "\n";
    return 1;
  }
  std::cout << "gtl_serve: shut down cleanly\n";
  return 0;
}
