// Quickstart: build a netlist, run the tangled-logic finder, read results.
//
//   $ ./examples/quickstart
//
// The netlist here is a small random graph with one planted dense
// structure, so you can see the finder rediscover known ground truth.
// With your own data, build the Netlist through NetlistBuilder (or load a
// Bookshelf design via read_bookshelf) and the rest is identical.

#include <iostream>

#include "finder/tangled_logic_finder.hpp"
#include "graphgen/planted_graph.hpp"

int main() {
  using namespace gtl;

  // 1. Get a netlist.  10K cells, one 500-cell tangled structure.
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 10'000;
  gcfg.gtls.push_back({500, 1});
  Rng rng(7);
  const PlantedGraph graph = generate_planted_graph(gcfg, rng);
  const Netlist& netlist = graph.netlist;
  std::cout << "netlist: " << netlist.num_cells() << " cells, "
            << netlist.num_nets() << " nets, " << netlist.num_pins()
            << " pins (A_G = " << netlist.average_pins_per_cell() << ")\n";

  // 2. Configure the finder.  The two knobs that matter most:
  //    - num_seeds: more seeds -> better coverage of small GTLs
  //      (the paper uses 100);
  //    - max_ordering_length (Z): must exceed the largest GTL you expect
  //      (the paper uses 100K on million-cell designs).
  FinderConfig fcfg;
  fcfg.num_seeds = 100;
  fcfg.max_ordering_length = 2'000;
  fcfg.score = ScoreKind::kGtlSd;  // the paper's final metric

  // 3. Run.  Phases I-III execute per-seed in parallel.
  const FinderResult result = find_tangled_logic(netlist, fcfg);
  std::cout << "ran " << result.orderings_grown << " orderings in "
            << result.total_seconds << "s; Rent exponent estimate p = "
            << result.context.rent_exponent << "\n\n";

  // 4. Read the results: disjoint GTLs, best (lowest) score first.
  //    Scores are normalized: ~1 is average logic, < 0.1 is a strong GTL.
  for (std::size_t i = 0; i < result.gtls.size(); ++i) {
    const Candidate& g = result.gtls[i];
    std::cout << "GTL " << i + 1 << ": " << g.size() << " cells, cut "
              << g.cut << ", nGTL-S " << g.ngtl_s << ", GTL-SD " << g.gtl_sd
              << (g.score < 0.1 ? "  <- strong GTL" : "") << "\n";

    // Compare with the planted ground truth.
    const RecoveryStats rec = recovery_stats(graph.gtl_members[0], g.cells);
    if (rec.overlap > 0) {
      std::cout << "         matches the planted structure: missed "
                << rec.miss_fraction * 100 << "% of its cells, included "
                << rec.over_fraction * 100 << "% extra\n";
    }
  }
  if (result.gtls.empty()) {
    std::cout << "no tangled structures found (try more seeds)\n";
  }
  return 0;
}
