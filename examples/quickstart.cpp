// Quickstart: build a netlist, run the tangled-logic finder through the
// gtl::Finder session API, read results.
//
//   $ ./examples/quickstart [--seeds=N] [--quiet]
//
// The netlist here is a small random graph with one planted dense
// structure, so you can see the finder rediscover known ground truth.
// With your own data, build the Netlist through NetlistBuilder (or load a
// Bookshelf design via read_bookshelf) and the rest is identical.
//
// This example doubles as living documentation of the session API:
// phase-by-phase execution with inspectable intermediates, a progress
// observer, and validated configs.  The one-shot find_tangled_logic()
// wrapper still exists for throwaway calls and produces byte-identical
// results.

#include <iostream>
#include <memory>

#include "gtl/finder.hpp"
#include "graphgen/planted_graph.hpp"
#include "util/cli.hpp"

namespace {

// A ProgressObserver receives pipeline events (serialized, possibly from
// worker threads) — here we log them; a service would update a request
// status page or decide to trip a CancelToken.
class ConsoleProgress : public gtl::ProgressObserver {
 public:
  void on_phase_start(gtl::FinderPhase phase, std::size_t items) override {
    std::cout << "[progress] " << gtl::finder_phase_name(phase) << ": "
              << items << " work items\n";
  }
  void on_ordering_grown(std::size_t done, std::size_t total) override {
    if (done % 25 == 0 || done == total) {
      std::cout << "[progress]   ordering " << done << "/" << total << "\n";
    }
  }
  void on_candidates_extracted(std::size_t extracted,
                               std::size_t deduped) override {
    std::cout << "[progress]   " << extracted << " candidates ("
              << deduped << " unique)\n";
  }
  void on_pruned(std::size_t kept, std::size_t refined) override {
    std::cout << "[progress]   " << kept << " of " << refined
              << " refined candidates survive pruning\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Find the planted tangled structure in a small random graph "
             "(session-API tour).")
      .describe("seeds=N", "random starting seeds (default 100)")
      .describe("quiet", "suppress the progress observer");
  if (cli_help_exit(args)) return 0;
  const auto num_seeds = args.get_int("seeds", 100);
  if (cli_error_exit(args)) return 2;

  // 1. Get a netlist.  10K cells, one 500-cell tangled structure.
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 10'000;
  gcfg.gtls.push_back({500, 1});
  Rng rng(7);
  const PlantedGraph graph = generate_planted_graph(gcfg, rng);
  const Netlist& netlist = graph.netlist;
  std::cout << "netlist: " << netlist.num_cells() << " cells, "
            << netlist.num_nets() << " nets, " << netlist.num_pins()
            << " pins (A_G = " << netlist.average_pins_per_cell() << ")\n";

  // 2. Configure the finder.  The two knobs that matter most:
  //    - num_seeds: more seeds -> better coverage of small GTLs
  //      (the paper uses 100);
  //    - max_ordering_length (Z): must exceed the largest GTL you expect
  //      (the paper uses 100K on million-cell designs).
  //    validate() range-checks every field and returns a Status instead
  //    of throwing — the rejection path for service/CLI inputs.
  FinderConfig fcfg;
  fcfg.num_seeds = static_cast<std::size_t>(num_seeds);
  fcfg.max_ordering_length = 2'000;
  fcfg.score = ScoreKind::kGtlSd;  // the paper's final metric

  // 3. Open a session and run the phases individually.  A session owns
  //    its thread pool and per-worker scratch, so repeated runs on the
  //    same netlist skip every cold-start allocation; run() composes the
  //    three phases when the intermediates are not needed.
  //    Finder::create is the non-throwing spelling of the constructor:
  //    it validates the config and returns a Status — the rejection path
  //    for service/CLI inputs.
  std::unique_ptr<Finder> session;
  if (const Status st = Finder::create(netlist, fcfg, &session);
      !st.is_ok()) {
    std::cerr << "error: " << st.to_string() << "\n";
    return 2;
  }
  Finder& finder = *session;
  ConsoleProgress progress;
  if (!args.has("quiet")) finder.set_observer(&progress);

  const OrderingSet& orderings = finder.grow_orderings();  // Phase I
  std::cout << "phase I:   grew " << orderings.num_completed()
            << " orderings in " << orderings.seconds << "s\n";

  const CandidateSet& cands = finder.extract_candidates();  // Phase II
  std::cout << "phase II:  " << cands.extracted << " candidates ("
            << cands.candidates.size()
            << " unique) in " << cands.seconds
            << "s; Rent exponent estimate p = "
            << cands.context.rent_exponent << "\n";

  const FinderResult& result = finder.refine_and_prune();  // Phase III
  std::cout << "phase III: " << result.gtls.size() << " disjoint GTLs in "
            << result.phase3_seconds << "s\n\n";

  // 4. Read the results: disjoint GTLs, best (lowest) score first.
  //    Scores are normalized: ~1 is average logic, < 0.1 is a strong GTL.
  for (std::size_t i = 0; i < result.gtls.size(); ++i) {
    const Candidate& g = result.gtls[i];
    std::cout << "GTL " << i + 1 << ": " << g.size() << " cells, cut "
              << g.cut << ", nGTL-S " << g.ngtl_s << ", GTL-SD " << g.gtl_sd
              << (g.score < 0.1 ? "  <- strong GTL" : "") << "\n";

    // Compare with the planted ground truth.
    const RecoveryStats rec = recovery_stats(graph.gtl_members[0], g.cells);
    if (rec.overlap > 0) {
      std::cout << "         matches the planted structure: missed "
                << rec.miss_fraction * 100 << "% of its cells, included "
                << rec.over_fraction * 100 << "% extra\n";
    }
  }
  if (result.gtls.empty()) {
    std::cout << "no tangled structures found (try more seeds)\n";
  }
  return 0;
}
