// The paper's end-to-end application (§5.1.3): detect tangled logic, then
// relieve the routing hotspots it causes by inflating GTL cells 4x and
// re-placing.
//
//   $ ./examples/congestion_relief [--cells=N] [--factor=4] [--out=DIR]
//
// Writes before/after congestion heatmaps (PPM) and prints the paper's
// three congestion metrics for both placements.

#include <algorithm>
#include <iostream>

#include "finder/finder.hpp"
#include "graphgen/synthetic_circuit.hpp"
#include "place/congestion.hpp"
#include "place/inflation.hpp"
#include "place/quadratic_placer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "viz/plots.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Detect tangled logic, inflate GTL cells, re-place, and "
             "compare congestion before/after (paper §5.1.3).")
      .describe("cells=N", "design size in cells (default 12000)")
      .describe("factor=F", "cell inflation factor (default 4.0)")
      .describe("out=DIR", "output directory (default relief_out)");
  if (cli_help_exit(args)) return 0;
  const auto num_cells = args.get_int("cells", 12'000);
  const double factor = args.get_double("factor", 4.0);
  if (num_cells < 1'000 || num_cells > 10'000'000) {
    args.record_error(Status::invalid_argument(
        "--cells must be in [1000, 10000000]"));
  }
  if (!(factor >= 1.0 && factor <= 64.0)) {
    args.record_error(
        Status::invalid_argument("--factor must be in [1, 64]"));
  }
  if (cli_error_exit(args)) return 2;
  const auto out = std::filesystem::path(args.get("out", "relief_out"));
  std::filesystem::create_directories(out);

  // A mid-size design with two dissolved-ROM structures in the upper die.
  SyntheticCircuitConfig cfg;
  cfg.num_cells = static_cast<std::uint32_t>(num_cells);
  cfg.num_pads = 48;
  for (const double cx : {0.3, 0.7}) {
    StructureSpec rom;
    rom.size = cfg.num_cells / 10;
    rom.ports = 28;
    rom.center_x = cx;
    rom.center_y = 0.8;
    cfg.structures.push_back(rom);
  }
  Rng rng(99);
  const SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);
  std::cout << "design: " << circuit.netlist.num_cells() << " cells, "
            << circuit.netlist.num_nets() << " nets\n";

  // Place and measure the baseline congestion.
  PlacerConfig pcfg;
  pcfg.die = {circuit.die_width, circuit.die_height, 1.0};
  pcfg.spreading_iterations = 10;
  const Placement before =
      place_quadratic(circuit.netlist, circuit.hint_x, circuit.hint_y, pcfg);

  CongestionConfig ccfg;
  const CongestionMap probe = estimate_congestion(
      circuit.netlist, before.x, before.y, pcfg.die, ccfg);
  double peak = 0.0;
  for (const double d : probe.demand) peak = std::max(peak, d);
  ccfg.capacity_per_area = peak /
                           ((pcfg.die.width / ccfg.tiles_x) *
                            (pcfg.die.height / ccfg.tiles_y)) /
                           1.6;
  const CongestionMap map0 = estimate_congestion(
      circuit.netlist, before.x, before.y, pcfg.die, ccfg);
  const CongestionReport rep0 =
      analyze_congestion(map0, circuit.netlist, before.x, before.y, ccfg);
  render_congestion(map0).write_ppm(out / "congestion_before.ppm");
  std::cout << "\nbaseline congestion (hotspots = GTLs):\n"
            << ascii_congestion(map0, 64, 16);

  // Detect GTLs and inflate the strong ones.
  FinderConfig fcfg;
  fcfg.num_seeds = 120;
  fcfg.max_ordering_length = cfg.num_cells / 2;
  if (const Status st = fcfg.validate(); !st.is_ok()) {
    std::cerr << "error: " << st.to_string() << "\n";
    return 2;
  }
  Finder finder(circuit.netlist, fcfg);
  const FinderResult& found = finder.run();
  std::vector<CellId> strong;
  for (const auto& g : found.gtls) {
    if (g.score < 0.3) {
      strong.insert(strong.end(), g.cells.begin(), g.cells.end());
    }
  }
  std::cout << "\n" << found.gtls.size() << " GTLs found; inflating "
            << strong.size() << " cells of the strong ones\n";

  const Netlist inflated = inflate_cells(circuit.netlist, strong, factor);
  const Placement after =
      place_quadratic(inflated, circuit.hint_x, circuit.hint_y, pcfg);
  const CongestionMap map1 =
      estimate_congestion(inflated, after.x, after.y, pcfg.die, ccfg);
  const CongestionReport rep1 =
      analyze_congestion(map1, inflated, after.x, after.y, ccfg);
  render_congestion(map1).write_ppm(out / "congestion_after.ppm");
  std::cout << "\nafter " << factor << "x inflation + re-place:\n"
            << ascii_congestion(map1, 64, 16);

  Table t("congestion relief");
  t.set_header({"metric", "before", "after"});
  t.add_row({"nets through >=100% tiles",
             fmt_int(static_cast<long long>(rep0.nets_through_full)),
             fmt_int(static_cast<long long>(rep1.nets_through_full))});
  t.add_row({"nets through >=90% tiles",
             fmt_int(static_cast<long long>(rep0.nets_through_90)),
             fmt_int(static_cast<long long>(rep1.nets_through_90))});
  t.add_row({"avg congestion of worst-20% nets",
             fmt_percent(rep0.avg_congestion_worst20),
             fmt_percent(rep1.avg_congestion_worst20)});
  t.add_row({"peak tile utilization", fmt_percent(rep0.max_tile_utilization),
             fmt_percent(rep1.max_tile_utilization)});
  t.add_row({"HPWL", fmt_double(before.hpwl, 0), fmt_double(after.hpwl, 0)});
  t.print(std::cout);
  std::cout << "\nheatmaps: " << (out / "congestion_before.ppm") << ", "
            << (out / "congestion_after.ppm") << "\n";
  return 0;
}
