// Compare the paper's GTL metrics against the classical clustering
// metrics of Ch. II on clusters of very different sizes — a hands-on
// demonstration of why a new metric was needed.
//
//   $ ./examples/metric_explorer
//
// Three clusters are scored:
//   small      — a connected 40-cell sub-cluster of a planted structure
//   full       — the whole 400-cell tangled structure
//   background — a connected 400-cell cluster of ordinary logic
//
// A size-fair metric must rank  full < small << background  (lower = more
// tangled) and give `background` a score near 1.  Watch ratio cut and the
// Ng-Rent metric mis-rank them, exactly as Ch. II argues.

#include <algorithm>
#include <iostream>
#include <vector>

#include "graphgen/planted_graph.hpp"
#include "metrics/baselines.hpp"
#include "metrics/group_connectivity.hpp"
#include "finder/score_curve.hpp"
#include "metrics/scores.hpp"
#include "order/linear_ordering.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Score three clusters (sub-GTL, full GTL, background) under "
             "the paper's metrics and the classical baselines (Ch. II).")
      .describe("cells=N", "design size in cells (default 8000)");
  if (cli_help_exit(args)) return 0;
  const auto num_cells = args.get_int("cells", 8'000);
  // The demo needs room for a 400-cell GTL plus a 400-cell background
  // cluster of ordinary logic.
  if (num_cells < 2'000 || num_cells > 10'000'000) {
    args.record_error(Status::invalid_argument(
        "--cells must be in [2000, 10000000]"));
  }
  if (cli_error_exit(args)) return 2;

  PlantedGraphConfig cfg;
  cfg.num_cells = static_cast<std::uint32_t>(num_cells);
  cfg.gtls.push_back({400, 1});
  Rng rng(3);
  const PlantedGraph graph = generate_planted_graph(cfg, rng);
  const Netlist& nl = graph.netlist;

  // The three clusters: connected groups grown by Phase I orderings, so
  // each is a coherent cluster a placer might see (a scattered random
  // sample would trivially score badly on every metric).
  const std::vector<CellId> full = graph.gtl_members[0];
  OrderingEngine engine(nl, {.max_length = 400, .large_net_threshold = 20});
  const LinearOrdering inside = engine.grow(full[13]);
  const std::vector<CellId> small(inside.cells.begin(),
                                  inside.cells.begin() + 40);
  CellId bg_seed = 0;
  while (std::binary_search(full.begin(), full.end(), bg_seed)) ++bg_seed;
  const LinearOrdering bg = engine.grow(bg_seed);
  const std::vector<CellId> background(bg.cells.begin(),
                                       bg.cells.begin() + 400);

  // The Rent exponent is estimated from the design itself (the paper
  // averages per-prefix estimates over a linear ordering, §3.2.2).
  const ScoreContext ctx = compute_score_curve(nl, bg).context;
  std::cout << "estimated Rent exponent p = " << ctx.rent_exponent
            << ", A(G) = " << ctx.avg_pins_per_cell << "\n\n";
  GroupConnectivity group(nl);
  Rng ds_rng(23);

  Table t("cluster metrics (lower = more tangled, except DS/K2)");
  t.set_header({"metric", "small GTL sub-cluster (40)",
                "full GTL (400)", "background cluster (400)", "verdict"});

  struct Row {
    std::string name;
    double small_v, full_v, random_v;
    std::string verdict;
  };
  std::vector<Row> rows;

  auto eval = [&](std::span<const CellId> cluster) {
    group.assign(cluster);
    return std::tuple{static_cast<double>(group.cut()),
                      static_cast<double>(group.size()),
                      group.avg_pins_per_cell(), group.absorption()};
  };
  const auto [s_cut, s_n, s_ac, s_abs] = eval(small);
  const auto [f_cut, f_n, f_ac, f_abs] = eval(full);
  const auto [r_cut, r_n, r_ac, r_abs] = eval(background);

  rows.push_back({"net cut T(C)", s_cut, f_cut, r_cut,
                  "size-dependent (Ch. II #1)"});
  rows.push_back({"absorption", s_abs, f_abs, r_abs,
                  "grows with size (Ch. II #2)"});
  rows.push_back({"ratio cut T/|C|", ratio_cut(s_cut, s_n),
                  ratio_cut(f_cut, f_n), ratio_cut(r_cut, r_n),
                  "favors large C (Ch. II #3)"});
  rows.push_back({"Ng Rent lnT/ln|C|", ng_rent_metric(s_cut, s_n),
                  ng_rent_metric(f_cut, f_n), ng_rent_metric(r_cut, r_n),
                  "decreases with size (Ch. II #4)"});
  rows.push_back({"nGTL-S", ngtl_score(s_cut, s_n, ctx),
                  ngtl_score(f_cut, f_n, ctx), ngtl_score(r_cut, r_n, ctx),
                  "size-fair; background ~= 1 (paper)"});
  rows.push_back({"GTL-SD", gtl_sd_score(s_cut, s_n, s_ac, ctx),
                  gtl_sd_score(f_cut, f_n, f_ac, ctx),
                  gtl_sd_score(r_cut, r_n, r_ac, ctx),
                  "density-aware (paper)"});
  const auto ds_small = degree_separation(nl, small, ds_rng);
  const auto ds_full = degree_separation(nl, full, ds_rng);
  const auto ds_random = degree_separation(nl, background, ds_rng);
  rows.push_back({"Hagen-Kahng DS (higher=denser)", ds_small.ds, ds_full.ds,
                  ds_random.ds, "ignores external cut (Ch. II #5)"});

  for (const auto& r : rows) {
    t.add_row({r.name, fmt_double(r.small_v, 3), fmt_double(r.full_v, 3),
               fmt_double(r.random_v, 3), r.verdict});
  }
  t.print(std::cout);

  // Expensive connectivity baselines on tiny slices only (Ch. II #6-#8:
  // "hardly practical for designs with millions of cells").
  const std::vector<CellId> tiny(full.begin(), full.begin() + 8);
  const auto adh = adhesion(nl, tiny, /*node_limit=*/16'384);
  const auto sep =
      edge_separability(nl, full[0], full[1], /*node_limit=*/16'384);
  Rng k2rng(5);
  std::cout << "\nconnectivity baselines (8-cell slice only — quadratic+):\n"
            << "  adhesion(slice) = "
            << (adh ? std::to_string(*adh) : std::string("n/a"))
            << "\n  edge separability(m0, m1) = "
            << (sep ? std::to_string(*sep) : std::string("n/a"))
            << "\n  (K=3,L=2)-connected slice? "
            << (is_k2_connected_cluster(nl, tiny, 3, k2rng) ? "yes" : "no")
            << "\n";

  // The punchline.
  const double ng_small = ngtl_score(s_cut, s_n, ctx);
  const double ng_full = ngtl_score(f_cut, f_n, ctx);
  const double ng_random = ngtl_score(r_cut, r_n, ctx);
  std::cout << "\nnGTL-S ranking: full(" << fmt_double(ng_full, 3)
            << ") < sub-cluster(" << fmt_double(ng_small, 3)
            << ") << background("
            << fmt_double(ng_random, 3)
            << ") — the whole structure wins, ordinary logic scores ~1.\n"
            << "ratio cut ranking would pick "
            << (ratio_cut(r_cut, r_n) < ratio_cut(s_cut, s_n)
                    ? "the background cluster over the small GTL sub-cluster!"
                    : "...")
            << "\n";
  return 0;
}
