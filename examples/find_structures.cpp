// Find tangled structures in a Bookshelf design (the ISPD 2005/2006
// placement benchmark format) and write a GTL report.
//
//   $ ./examples/find_structures --aux=path/to/bigblue1.aux
//   $ ./examples/find_structures                  # demo: synthetic bigblue1
//   $ ./examples/find_structures --help           # full option list
//
// The report lists every GTL (one per line: score, size, cut, members),
// ready to feed placement constraints or cell-inflation scripts.  With
// --json=FILE the full FinderResult is also written as JSON — the same
// schema a service front-end would return.

#include <fstream>
#include <iostream>
#include <memory>

#include "gtl/finder.hpp"
#include "gtl/netlist.hpp"
#include "graphgen/presets.hpp"
#include "netlist/netlist_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// One-line heartbeat per phase plus a coarse per-seed ticker — the
/// pattern a long-running CLI wants (quiet but alive).
class PhaseLogger : public gtl::ProgressObserver {
 public:
  void on_phase_start(gtl::FinderPhase phase, std::size_t items) override {
    std::cout << "  [" << gtl::finder_phase_name(phase) << "] " << items
              << " items...\n";
  }
  void on_phase_end(gtl::FinderPhase phase, double seconds) override {
    std::cout << "  [" << gtl::finder_phase_name(phase) << "] done in "
              << seconds << "s\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Find tangled logic structures in a Bookshelf design (or a "
             "synthetic bigblue1 stand-in) and write a GTL report.")
      .describe("aux=FILE", "Bookshelf .aux file; omit for the synthetic demo")
      .describe("snapshot=FILE", "binary snapshot cache: load FILE if it "
                                 "exists, else write it after loading")
      .describe("save-bookshelf=DIR", "also write the loaded design as "
                                      "Bookshelf corpus.{aux,nodes,nets,pl}")
      .describe("factor=F", "synthetic stand-in size factor (default 0.05)")
      .describe("seeds=N", "random starting seeds (default 100)")
      .describe("max-order=Z", "max ordering length (default: cells/8 + 1000)")
      .describe("threads=N", "worker threads (0 = all hardware threads)")
      .describe("score=ngtl|gtlsd", "selection metric (default gtlsd)")
      .describe("report=FILE", "report path (default gtl_report.txt)")
      .describe("json=FILE", "also write the FinderResult as JSON")
      .describe("progress", "log per-phase progress");
  if (cli_help_exit(args)) return 0;

  // get_string (vs get) makes a bare `--aux` a recorded error instead of
  // silently meaning "no aux file".
  const std::string aux = args.get_string("aux");
  const std::string snapshot = args.get_string("snapshot");
  const std::string save_bookshelf = args.get_string("save-bookshelf");
  const double factor = args.get_double("factor", 0.05);
  const auto seeds = args.get_int("seeds", 100);
  const auto threads = args.get_int("threads", 0);
  // -1 = absent: the default depends on the netlist size, known later.
  const auto max_order = args.get_int("max-order", -1);
  const std::string score = args.get_string("score", "gtlsd");
  if (score != "gtlsd" && score != "ngtl") {
    args.record_error(Status::parse_error("--score=" + score +
                                          ": expected ngtl or gtlsd"));
  }
  const std::string report_path = args.get_string("report", "gtl_report.txt");
  const std::string json_path = args.get_string("json");
  if (cli_error_exit(args)) return 2;

  // --- load or synthesize the design ---
  // Snapshot cache protocol (load_with_snapshot_cache): an existing
  // --snapshot is the cache hit (O(read) load); otherwise load --aux
  // text or generate the synthetic stand-in, then fill the cache so the
  // next run takes the fast path.
  BookshelfDesign design;
  SnapshotCacheResult cache;
  Timer load_timer;
  const Status load_st = load_with_snapshot_cache(
      snapshot,
      [&](BookshelfDesign* out) -> Status {
        if (!aux.empty()) {
          std::cout << "loading " << aux << "...\n";
          GTL_RETURN_IF_ERROR(try_read_bookshelf(aux, out));
          for (const std::string& w : out->warnings) {
            std::cerr << "warning: " << w << "\n";
          }
          std::cout << "parsed in " << fmt_double(load_timer.seconds(), 2)
                    << "s\n";
          return Status::ok();
        }
        std::cout << "no --aux given: generating a bigblue1-scale synthetic "
                     "stand-in (see DESIGN.md)\n";
        auto cfg = ispd_like_config("bigblue1", factor);
        cfg.with_names = true;
        Rng rng(1);
        SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);
        out->netlist = std::move(circuit.netlist);
        out->x = std::move(circuit.hint_x);
        out->y = std::move(circuit.hint_y);
        return Status::ok();
      },
      &design, &cache);
  if (!load_st.is_ok()) {
    std::cerr << "error: " << load_st.to_string() << "\n";
    return 2;
  }
  if (cache.hit) {
    std::cout << "snapshot " << snapshot << " loaded in "
              << fmt_double(load_timer.seconds(), 2) << "s ("
              << design.netlist.num_cells() << " cells"
              << (!aux.empty() ? "; cache overrides --aux" : "") << ")\n";
  }
  for (const std::string& note : cache.notes) std::cout << note << "\n";
  if (!save_bookshelf.empty()) {
    try {
      write_bookshelf(design, save_bookshelf, "corpus");
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
    std::cout << "Bookshelf corpus written to " << save_bookshelf
              << "/corpus.aux\n";
  }
  const Netlist& netlist = design.netlist;

  const NetlistSummary summary = summarize(netlist);
  std::cout << "design: " << fmt_int(static_cast<long long>(summary.num_cells))
            << " cells, " << fmt_int(static_cast<long long>(summary.num_nets))
            << " nets, A(G) = " << fmt_double(summary.avg_pins_per_cell, 2)
            << ", max net " << summary.max_net_size << " pins\n";

  // --- configure, validate, run ---
  FinderConfig fcfg;
  fcfg.num_seeds = static_cast<std::size_t>(seeds);
  fcfg.max_ordering_length = max_order >= 0
      ? static_cast<std::size_t>(max_order)
      : netlist.num_cells() / 8 + 1000;
  fcfg.num_threads = static_cast<std::size_t>(threads);
  fcfg.score = score == "ngtl" ? ScoreKind::kNgtlS : ScoreKind::kGtlSd;

  // Finder::create validates the config and reports a Status instead of
  // throwing — the rejection path for values arriving from a CLI.
  std::unique_ptr<Finder> session;
  if (const Status st = Finder::create(netlist, fcfg, &session);
      !st.is_ok()) {
    std::cerr << "error: " << st.to_string() << "\n";
    return 2;
  }
  Finder& finder = *session;
  PhaseLogger logger;
  if (args.has("progress")) finder.set_observer(&logger);

  const OrderingSet& orderings = finder.grow_orderings();
  const CandidateSet& cands = finder.extract_candidates();
  const FinderResult& result = finder.refine_and_prune();
  std::cout << "phase I grew " << orderings.num_completed()
            << " orderings in " << fmt_double(orderings.seconds, 1)
            << "s; phase II kept " << cands.candidates.size() << " of "
            << cands.extracted << " candidates in "
            << fmt_double(cands.seconds, 1) << "s\n"
            << "found " << result.gtls.size() << " disjoint GTLs in "
            << fmt_double(result.total_seconds, 1) << "s total (p = "
            << fmt_double(result.context.rent_exponent, 3) << ")\n\n";

  // --- console summary ---
  Table t("tangled structures (best first)");
  t.set_header({"#", "cells", "cut", "nGTL-S", "GTL-SD", "strength"});
  for (std::size_t i = 0; i < result.gtls.size() && i < 20; ++i) {
    const auto& g = result.gtls[i];
    t.add_row({std::to_string(i + 1),
               fmt_int(static_cast<long long>(g.size())), fmt_int(g.cut),
               fmt_double(g.ngtl_s, 3), fmt_double(g.gtl_sd, 3),
               g.score < 0.1 ? "strong" : (g.score < 0.4 ? "medium" : "weak")});
  }
  t.print(std::cout);

  // --- machine-readable reports ---
  std::ofstream report(report_path);
  report << "# gtl_report: score size cut members...\n";
  for (const auto& g : result.gtls) {
    report << g.score << ' ' << g.size() << ' ' << g.cut;
    for (const CellId c : g.cells) {
      report << ' ';
      if (netlist.has_names() && !netlist.cell_name(c).empty()) {
        report << netlist.cell_name(c);
      } else {
        report << c;
      }
    }
    report << '\n';
  }
  std::cout << "\nfull report written to " << report_path << "\n";

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << to_json(result).dump(2) << "\n";
    std::cout << "JSON result written to " << json_path << "\n";
  }
  return 0;
}
