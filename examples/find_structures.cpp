// Find tangled structures in a Bookshelf design (the ISPD 2005/2006
// placement benchmark format) and write a GTL report.
//
//   $ ./examples/find_structures --aux=path/to/bigblue1.aux
//   $ ./examples/find_structures                  # demo: synthetic bigblue1
//
// Options: --seeds=N (default 100), --max-order=Z, --score=ngtl|gtlsd,
//          --report=FILE (default gtl_report.txt), --threads=N
//
// The report lists every GTL (one per line: score, size, cut, members),
// ready to feed placement constraints or cell-inflation scripts.

#include <fstream>
#include <iostream>

#include "finder/tangled_logic_finder.hpp"
#include "graphgen/presets.hpp"
#include "netlist/bookshelf.hpp"
#include "netlist/netlist_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  const CliArgs args(argc, argv);

  // --- load or synthesize the design ---
  Netlist netlist;
  const std::string aux = args.get("aux");
  if (!aux.empty()) {
    std::cout << "loading " << aux << "...\n";
    netlist = read_bookshelf(aux).netlist;
  } else {
    std::cout << "no --aux given: generating a bigblue1-scale synthetic "
                 "stand-in (see DESIGN.md)\n";
    const auto cfg = ispd_like_config("bigblue1", 0.05);
    Rng rng(1);
    netlist = generate_synthetic_circuit(cfg, rng).netlist;
  }

  const NetlistSummary summary = summarize(netlist);
  std::cout << "design: " << fmt_int(static_cast<long long>(summary.num_cells))
            << " cells, " << fmt_int(static_cast<long long>(summary.num_nets))
            << " nets, A(G) = " << fmt_double(summary.avg_pins_per_cell, 2)
            << ", max net " << summary.max_net_size << " pins\n";

  // --- run the finder ---
  FinderConfig fcfg;
  fcfg.num_seeds = static_cast<std::size_t>(args.get_int("seeds", 100));
  fcfg.max_ordering_length = static_cast<std::size_t>(args.get_int(
      "max-order", static_cast<std::int64_t>(netlist.num_cells() / 8 + 1000)));
  fcfg.num_threads = static_cast<std::size_t>(args.get_int("threads", 0));
  fcfg.score =
      args.get("score", "gtlsd") == "ngtl" ? ScoreKind::kNgtlS
                                           : ScoreKind::kGtlSd;
  const FinderResult result = find_tangled_logic(netlist, fcfg);
  std::cout << "found " << result.gtls.size() << " disjoint GTLs in "
            << fmt_double(result.total_seconds, 1) << "s (p = "
            << fmt_double(result.context.rent_exponent, 3) << ")\n\n";

  // --- console summary ---
  Table t("tangled structures (best first)");
  t.set_header({"#", "cells", "cut", "nGTL-S", "GTL-SD", "strength"});
  for (std::size_t i = 0; i < result.gtls.size() && i < 20; ++i) {
    const auto& g = result.gtls[i];
    t.add_row({std::to_string(i + 1),
               fmt_int(static_cast<long long>(g.size())), fmt_int(g.cut),
               fmt_double(g.ngtl_s, 3), fmt_double(g.gtl_sd, 3),
               g.score < 0.1 ? "strong" : (g.score < 0.4 ? "medium" : "weak")});
  }
  t.print(std::cout);

  // --- machine-readable report ---
  const std::string report_path = args.get("report", "gtl_report.txt");
  std::ofstream report(report_path);
  report << "# gtl_report: score size cut members...\n";
  for (const auto& g : result.gtls) {
    report << g.score << ' ' << g.size() << ' ' << g.cut;
    for (const CellId c : g.cells) {
      report << ' ';
      if (netlist.has_names() && !netlist.cell_name(c).empty()) {
        report << netlist.cell_name(c);
      } else {
        report << c;
      }
    }
    report << '\n';
  }
  std::cout << "\nfull report written to " << report_path << "\n";
  return 0;
}
