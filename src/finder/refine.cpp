#include "finder/refine.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace gtl {

Candidate refine_candidate(const Netlist& nl, const Candidate& initial,
                           OrderingEngine& engine, const ScoreContext& ctx,
                           ScoreKind kind, const RefineConfig& cfg,
                           const MinimumConfig& min_cfg,
                           const CurveConfig& curve_cfg, Rng& rng) {
  GTL_REQUIRE(!initial.cells.empty(), "cannot refine an empty candidate");
  GroupConnectivity group(nl);

  // T in the paper's pseudocode: the base family of grown candidates.
  std::vector<std::vector<CellId>> base;
  base.push_back(initial.cells);
  for (std::size_t i = 0; i < cfg.extra_seeds; ++i) {
    const CellId inner_seed =
        initial.cells[rng.next_below(initial.cells.size())];
    const LinearOrdering ordering = engine.grow(inner_seed);
    auto cand = extract_candidate(nl, ordering, kind, curve_cfg, min_cfg);
    if (cand) base.push_back(std::move(cand->cells));
  }

  // F: base members plus pairwise union / intersection / differences.
  std::vector<std::vector<CellId>> family = base;
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t j = i + 1; j < base.size(); ++j) {
      auto inter = set_intersection(base[i], base[j]);
      family.push_back(set_union(base[i], base[j]));
      family.push_back(set_difference(base[i], base[j]));  // Z_i − Z_i∩Z_j
      family.push_back(set_difference(base[j], base[i]));  // Z_j − Z_i∩Z_j
      family.push_back(std::move(inter));
    }
  }

  // Pick the family member with minimum Φ (respecting the size floor).
  Candidate best = score_members(initial.cells, group, ctx, kind);
  best.seed = initial.seed;
  for (const auto& members : family) {
    if (members.size() < cfg.min_size) continue;
    Candidate cand = score_members(members, group, ctx, kind);
    if (cand.score < best.score) {
      cand.seed = initial.seed;
      best = std::move(cand);
    }
  }
  return best;
}

std::vector<Candidate> prune_overlapping(std::vector<Candidate> candidates,
                                         std::size_t num_cells) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.cells < b.cells;  // deterministic tie-break
            });
  std::vector<bool> claimed(num_cells, false);
  std::vector<Candidate> kept;
  for (auto& cand : candidates) {
    bool overlaps = false;
    for (const CellId c : cand.cells) {
      if (claimed[c]) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    for (const CellId c : cand.cells) claimed[c] = true;
    kept.push_back(std::move(cand));
  }
  return kept;
}

}  // namespace gtl
