#include "finder/refine.hpp"

#include <algorithm>
#include <cassert>
#include <span>

#include "util/require.hpp"

namespace gtl {

Candidate refine_candidate(const Netlist& nl, const Candidate& initial,
                           OrderingEngine& engine, GroupConnectivity& group,
                           RefineArena& arena, const ScoreContext& ctx,
                           ScoreKind kind, const RefineConfig& cfg,
                           const MinimumConfig& min_cfg,
                           const CurveConfig& curve_cfg, Rng& rng) {
  GTL_REQUIRE(!initial.cells.empty(), "cannot refine an empty candidate");
  assert(std::is_sorted(initial.cells.begin(), initial.cells.end()) &&
         "refine_candidate requires initial.cells sorted by cell id");

  // T in the paper's pseudocode: the base family of grown candidates,
  // held in arena.lists[0 .. n_base).  Every list is sorted by cell id:
  // the initial candidate by the precondition, inner extractions because
  // extract_candidate sorts, and the set algebra below because it
  // preserves sortedness — so all scoring can skip defensive sorts.
  std::size_t n_lists = 0;
  auto list_at = [&arena](std::size_t i) -> std::vector<CellId>& {
    if (i >= arena.lists.size()) arena.lists.resize(i + 1);
    return arena.lists[i];
  };
  list_at(n_lists++).assign(initial.cells.begin(), initial.cells.end());
  for (std::size_t i = 0; i < cfg.extra_seeds; ++i) {
    const CellId inner_seed =
        initial.cells[rng.next_below(initial.cells.size())];
    const LinearOrdering ordering = engine.grow(inner_seed);
    auto cand =
        extract_candidate(nl, ordering, kind, curve_cfg, min_cfg, arena.curve);
    if (cand) list_at(n_lists++) = std::move(cand->cells);
  }
  const std::size_t n_base = n_lists;

  // F: base members plus pairwise union / intersection / differences,
  // merged into reused buffers (family order per pair is unchanged:
  // union, Z_i − Z_j, Z_j − Z_i, Z_i ∩ Z_j).  Size the arena up front so
  // references into it stay stable through the loop.
  const std::size_t total_lists = n_base + 2 * n_base * (n_base - 1);
  if (arena.lists.size() < total_lists) arena.lists.resize(total_lists);
  for (std::size_t i = 0; i < n_base; ++i) {
    for (std::size_t j = i + 1; j < n_base; ++j) {
      const std::vector<CellId>& a = arena.lists[i];
      const std::vector<CellId>& b = arena.lists[j];
      set_union_into(a, b, arena.lists[n_lists++]);
      set_difference_into(a, b, arena.lists[n_lists++]);
      set_difference_into(b, a, arena.lists[n_lists++]);
      set_intersection_into(a, b, arena.lists[n_lists++]);
    }
  }

  // Φ of a member list, evaluated in place on the caller's tracker: the
  // same assign + scoring calls score_members makes, minus the Candidate
  // (copy of the cells) it would materialize for every loser.
  const auto phi = [&group, &ctx, kind](std::span<const CellId> members) {
    group.assign(members);
    const auto cut = static_cast<double>(group.cut());
    const auto size = static_cast<double>(members.size());
    return kind == ScoreKind::kNgtlS
               ? ngtl_score(cut, size, ctx)
               : gtl_sd_score(cut, size, group.avg_pins_per_cell(), ctx);
  };

  // Pick the family member with minimum Φ (respecting the size floor).
  // The initial candidate is the floor-exempt fallback; strict < keeps
  // the earliest of equal-scoring members, as the allocating
  // implementation did.
  constexpr std::size_t kInitial = static_cast<std::size_t>(-1);
  std::size_t best_idx = kInitial;
  double best_score = phi(initial.cells);
  for (std::size_t idx = 0; idx < n_lists; ++idx) {
    const std::vector<CellId>& members = arena.lists[idx];
    if (members.size() < cfg.min_size) continue;
    const double s = phi(members);
    if (s < best_score) {
      best_idx = idx;
      best_score = s;
    }
  }

  // Materialize only the winner.
  const std::span<const CellId> winner =
      best_idx == kInitial ? std::span<const CellId>(initial.cells)
                           : std::span<const CellId>(arena.lists[best_idx]);
  Candidate best = score_sorted_members(winner, group, ctx, kind);
  best.seed = initial.seed;
  return best;
}

std::vector<Candidate> prune_overlapping(std::vector<Candidate> candidates,
                                         std::size_t num_cells) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.cells < b.cells;  // deterministic tie-break
            });
  std::vector<bool> claimed(num_cells, false);
  std::vector<Candidate> kept;
  for (auto& cand : candidates) {
    bool overlaps = false;
    for (const CellId c : cand.cells) {
      if (claimed[c]) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    for (const CellId c : cand.cells) claimed[c] = true;
    kept.push_back(std::move(cand));
  }
  return kept;
}

}  // namespace gtl
