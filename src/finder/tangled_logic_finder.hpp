#pragma once
// TangledLogicFinder — the paper's top-level procedure (Ch. IV):
//
//   TangledLogicFinder(G, m, Z):
//     Phase I   grow m seeded linear orderings (parallel, one per seed)
//     Phase II  extract a candidate GTL from each ordering's score curve
//     Phase III refine each candidate via the genetic family, then prune
//               overlapping candidates best-score-first
//
// All per-seed work is embarrassingly parallel (the paper uses 8
// pthreads); only the final pruning is serial.  Results are deterministic
// for a given `rng_seed`, independent of thread count: every seed index
// gets its own derived RNG stream.

#include <cstdint>
#include <vector>

#include "finder/candidate.hpp"
#include "finder/refine.hpp"
#include "netlist/netlist.hpp"

namespace gtl {

struct FinderConfig {
  /// m: number of random starting seeds.
  std::size_t num_seeds = 100;
  /// Z: maximum linear ordering length.
  std::size_t max_ordering_length = 100'000;
  /// Paper's large-net update skip (0 = exact).
  std::uint32_t large_net_threshold = 20;
  /// Ablation: rank frontier cells by min-cut first (see OrderingConfig).
  bool min_cut_first = false;
  /// Φ used for selection and pruning (paper's final choice: GTL-SD).
  ScoreKind score = ScoreKind::kGtlSd;
  MinimumConfig minimum;
  CurveConfig curve;
  /// l: inner re-growths per candidate in Phase III; 0 skips refinement
  /// (ablation knob).
  std::size_t refine_seeds = 3;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  std::uint64_t rng_seed = 1;
  /// Deduplicate identical Phase II candidates before refinement (pure
  /// speed optimization: duplicates refine to overlapping results that
  /// pruning would discard anyway).
  bool dedup_candidates = true;
};

struct FinderResult {
  /// Final disjoint GTLs, best (lowest) Φ first.
  std::vector<Candidate> gtls;
  /// The shared scoring context (global Rent exponent = mean over all m
  /// ordering estimates; A_G from the netlist).
  ScoreContext context;
  std::size_t orderings_grown = 0;
  std::size_t candidates_before_refine = 0;
  std::size_t candidates_after_dedup = 0;
  double phase1_2_seconds = 0.0;
  double phase3_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Run the full three-phase finder.
[[nodiscard]] FinderResult find_tangled_logic(const Netlist& nl,
                                              const FinderConfig& cfg = {});

}  // namespace gtl
