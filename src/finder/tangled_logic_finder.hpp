#pragma once
// Compatibility wrapper around the gtl::Finder session API (finder.hpp).
//
// find_tangled_logic() predates the session API: it runs the paper's
// three-phase pipeline as an opaque one-shot, re-paying thread spawn and
// scratch allocation on every call.  It now simply constructs a Finder
// and calls run(); results are byte-identical by construction and pinned
// by tests/finder/finder_equivalence_test.cpp.
//
// Status: kept indefinitely as the convenience entry point for one-off
// calls (scripts, tests, single-query tools).  New code that runs
// repeated queries, needs progress/cancellation, or wants the Phase I/II
// artifacts should use gtl::Finder directly — see README "API".
//
// Behavioral change vs the pre-session API: configs now pass through
// FinderConfig::validate(), so out-of-range fields that the old
// monolith silently tolerated (e.g. max_ordering_length < 2) throw
// std::logic_error here.  Callers with untrusted configs should call
// cfg.validate() first and branch on the returned Status.

#include "finder/finder.hpp"

namespace gtl {

/// Run the full three-phase finder (one-shot; see header comment).
[[nodiscard]] FinderResult find_tangled_logic(const Netlist& nl,
                                              const FinderConfig& cfg = {});

}  // namespace gtl
