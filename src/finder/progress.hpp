#pragma once
// Observability & control for the Finder session (service embedding):
//
//   ProgressObserver — callback interface reporting pipeline progress at
//     the granularity the paper's algorithm naturally exposes: phases
//     entered/finished, seeds (orderings) completed, candidates
//     extracted/refined, and how many survive the final pruning.
//
//   CancelToken — cooperative cancellation flag, checked by the Finder at
//     seed granularity (before growing each ordering, before refining
//     each candidate).  Cancellation never corrupts a session: work
//     completed before the check produces exactly the bytes a full run
//     would have produced for those seeds, and the partial result is
//     returned (see finder.hpp).
//
// Threading contract: observer callbacks may fire on Finder worker
// threads but are serialized (never concurrent with each other), so an
// observer needs no internal locking.  The serialization is a
// gtl::Mutex in the Finder (observer_mu_, see finder.hpp) under the
// capability layer of util/sync.hpp.  Callbacks must not re-enter the
// Finder.  CancelToken is all-atomic (release/acquire) and safe to trip
// from any thread, including from inside an observer callback.

#include <atomic>
#include <cstddef>

namespace gtl {

/// The three phases of the paper's detector (Ch. IV).
enum class FinderPhase {
  kGrowOrderings,      ///< Phase I: seeded linear orderings
  kExtractCandidates,  ///< Phase II: score curves -> clear minima
  kRefineAndPrune,     ///< Phase III: genetic refinement + pruning
};

[[nodiscard]] constexpr const char* finder_phase_name(FinderPhase phase) {
  switch (phase) {
    case FinderPhase::kGrowOrderings: return "grow_orderings";
    case FinderPhase::kExtractCandidates: return "extract_candidates";
    case FinderPhase::kRefineAndPrune: return "refine_and_prune";
  }
  return "unknown";
}

/// Override any subset; the defaults ignore every event.
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;

  /// A phase begins; `work_items` is its item count (seeds for Phase I/II,
  /// deduplicated candidates for Phase III).
  virtual void on_phase_start(FinderPhase /*phase*/,
                              std::size_t /*work_items*/) {}

  /// A phase finished (or was cut short by cancellation).
  virtual void on_phase_end(FinderPhase /*phase*/, double /*seconds*/) {}

  /// An ordering finished growing; fires once per completed seed.
  virtual void on_ordering_grown(std::size_t /*completed*/,
                                 std::size_t /*total*/) {}

  /// Phase II summary: candidates found, and how many remain after
  /// deduplication (what Phase III will actually refine).
  virtual void on_candidates_extracted(std::size_t /*extracted*/,
                                       std::size_t /*after_dedup*/) {}

  /// A candidate finished refinement; fires once per completed candidate.
  virtual void on_candidate_refined(std::size_t /*completed*/,
                                    std::size_t /*total*/) {}

  /// Final pruning done: `kept` disjoint GTLs survive out of `refined`.
  virtual void on_pruned(std::size_t /*kept*/, std::size_t /*refined*/) {}
};

/// Cooperative cancellation flag (thread-safe, reusable via reset()).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// Re-arm the token for another run.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace gtl
