#pragma once
// Phase II support (paper §3.2.2): turn a linear ordering into score
// curves  Φ(C_k)  over its prefixes C_k, estimate the Rent exponent from
// the ordering itself, and detect a "clear minimum" — the signature of a
// discovered GTL (paper Figs. 2, 3, 5).
//
// The paper's criterion is informal ("if there is a clear minimum in this
// function, the corresponding cell group is selected").  We make it
// precise with three checks, each motivated by the curve shapes in Figs.
// 2-3: the minimum must (a) be deep in absolute terms (score below
// `accept_threshold`; average logic ≈ 1, strong GTLs « 1), (b) come after
// a pronounced drop (max-before-min / min >= `drop_factor` — the outside-
// GTL curve of Fig. 2 rises monotonically and never drops), and (c) not
// sit at the right edge of the curve (a still-falling curve means the
// ordering ran out of length before leaving the structure).

#include <cstddef>
#include <optional>
#include <vector>

#include "metrics/scores.hpp"
#include "order/linear_ordering.hpp"

namespace gtl {

/// Which Φ drives candidate selection and pruning.
enum class ScoreKind {
  kNgtlS,   ///< normalized GTL-Score
  kGtlSd,   ///< density-aware GTL-Score (paper's final metric)
};

/// Score curves over every prefix of one linear ordering.
struct ScoreCurve {
  /// Per-prefix values, index k-1 for prefix size k.
  std::vector<double> ngtl_s;
  std::vector<double> gtl_sd;
  std::vector<double> ratio_cut;  ///< baseline, for Fig. 5
  /// Rent exponent estimated from this ordering: the mean over prefixes of
  /// (ln T(C_k) − ln A_Ck)/ln k  (paper §3.2.2), k >= rent_min_k.
  double rent_exponent = 0.6;
  /// The context the curves were computed with (A_G plus the above p).
  ScoreContext context;

  [[nodiscard]] const std::vector<double>& values(ScoreKind kind) const {
    return kind == ScoreKind::kNgtlS ? ngtl_s : gtl_sd;
  }
};

struct CurveConfig {
  /// Smallest prefix used for Rent-exponent estimation.
  std::size_t rent_min_k = 10;
};

/// Compute the score curves of an ordering.  A_G is taken from the
/// netlist; the Rent exponent is estimated from the ordering itself.
[[nodiscard]] ScoreCurve compute_score_curve(const Netlist& nl,
                                             const LinearOrdering& ordering,
                                             const CurveConfig& cfg = {});

/// Parameters of the clear-minimum test.
struct MinimumConfig {
  std::size_t min_size = 30;       ///< ignore tiny prefixes (paper §3.1)
  double accept_threshold = 0.75;  ///< minimum must score below this
  double drop_factor = 1.6;        ///< max-before-min / min must exceed this
  double rise_factor = 1.3;        ///< max-after-min / min must exceed this
  double edge_fraction = 0.02;     ///< reject minima in the last 2% of curve
};

/// A detected clear minimum.
struct ClearMinimum {
  std::size_t prefix_size = 0;  ///< k*: candidate GTL = first k* cells
  double value = 0.0;           ///< Φ(C_{k*})
};

/// Find the clear minimum of `curve` (one of ScoreCurve's value vectors),
/// or nullopt if no prefix passes the three checks.
[[nodiscard]] std::optional<ClearMinimum> find_clear_minimum(
    const std::vector<double>& curve, const MinimumConfig& cfg = {});

}  // namespace gtl
