#pragma once
// Phase II support (paper §3.2.2): turn a linear ordering into score
// curves  Φ(C_k)  over its prefixes C_k, estimate the Rent exponent from
// the ordering itself, and detect a "clear minimum" — the signature of a
// discovered GTL (paper Figs. 2, 3, 5).
//
// The paper's criterion is informal ("if there is a clear minimum in this
// function, the corresponding cell group is selected").  We make it
// precise with three checks, each motivated by the curve shapes in Figs.
// 2-3: the minimum must (a) be deep in absolute terms (score below
// `accept_threshold`; average logic ≈ 1, strong GTLs « 1), (b) come after
// a pronounced drop (max-before-min / min >= `drop_factor` — the outside-
// GTL curve of Fig. 2 rises monotonically and never drops), and (c) not
// sit at the right edge of the curve (a still-falling curve means the
// ordering ran out of length before leaving the structure).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "metrics/scores.hpp"
#include "order/linear_ordering.hpp"

namespace gtl {

/// Which Φ drives candidate selection and pruning.
enum class ScoreKind {
  kNgtlS,   ///< normalized GTL-Score
  kGtlSd,   ///< density-aware GTL-Score (paper's final metric)
};

/// Score curves over every prefix of one linear ordering.
struct ScoreCurve {
  /// Per-prefix values, index k-1 for prefix size k.
  std::vector<double> ngtl_s;
  std::vector<double> gtl_sd;
  std::vector<double> ratio_cut;  ///< baseline, for Fig. 5
  /// Rent exponent estimated from this ordering: the mean over prefixes of
  /// (ln T(C_k) − ln A_Ck)/ln k  (paper §3.2.2), k >= rent_min_k.
  double rent_exponent = 0.6;
  /// The context the curves were computed with (A_G plus the above p).
  ScoreContext context;

  [[nodiscard]] const std::vector<double>& values(ScoreKind kind) const {
    return kind == ScoreKind::kNgtlS ? ngtl_s : gtl_sd;
  }
};

struct CurveConfig {
  /// Smallest prefix used for Rent-exponent estimation.
  std::size_t rent_min_k = 10;
};

/// Compute the score curves of an ordering.  A_G is taken from the
/// netlist; the Rent exponent is estimated from the ordering itself.
[[nodiscard]] ScoreCurve compute_score_curve(const Netlist& nl,
                                             const LinearOrdering& ordering,
                                             const CurveConfig& cfg = {});

/// Reusable scratch backing compute_selected_curve.  One instance per
/// worker thread; every buffer keeps its capacity across seeds, so the
/// steady-state fast path allocates nothing.  The ln tables are shared
/// across seeds — k and the (small, heavily repeating) integer cuts are
/// the same arguments to the same std::log call no matter which ordering
/// is being scored, so memoizing them cannot change a single bit.
struct CurveScratch {
  /// Selected Φ per prefix; compute_selected_curve's return value points
  /// here, valid until the next call with this scratch.
  std::vector<double> values;
  /// log_k[k] = std::log(double(k)); index 0 unused, extended lazily.
  std::vector<double> log_k;
  /// log_cut[c] = std::log(double(c)) for c >= 1; log_cut[0] =
  /// std::log(1e-9), the T = 0 guard value.  Capped (large cuts fall back
  /// to a live std::log).
  std::vector<double> log_cut;
  /// Batch buffers for the SIMD kernels (util/simd.hpp): per-prefix
  /// average pins a_c(k), double(cut), pow exponents, pow/denominator
  /// values, and the fused fast path's score enclosures.
  std::vector<double> a_c;
  std::vector<double> cutd;
  std::vector<double> expo;
  std::vector<double> pow_denom;
  std::vector<double> lo;
  std::vector<double> hi;
  /// Rent-pass batch buffers over prefixes k >= max(rent_min_k, 2).
  std::vector<double> rent_log_cut;
  std::vector<double> rent_log_ac;
  std::vector<double> rent_p;
  /// Ambiguous-lane indices of the fused fast path.
  std::vector<std::uint32_t> idx;
};

/// One score curve instead of three: the Φ the finder actually selects
/// minima on.  Everything is bitwise-identical to the corresponding
/// ScoreCurve fields (pinned by tests/finder/score_curve_equivalence_
/// test.cpp, which embeds the full three-curve implementation as a
/// reference): the rent estimate runs the same k-order accumulation, and
/// values(kind)[k-1] comes from the same ngtl_score/gtl_sd_score call.
/// The other Φ at a chosen k is one extra call with `context` — see
/// extract_candidate.  Costs ~1 transcendental per prefix (vs 5) and no
/// allocation in steady state; full fusion into one pass is impossible
/// because every score depends on the final rent exponent, which is the
/// mean over all prefixes.
struct SelectedScoreCurve {
  /// Φ_kind(C_k) at index k-1, backed by the scratch passed in.
  std::span<const double> values;
  double rent_exponent = 0.6;
  /// A_G plus the rent estimate above — the context every curve value
  /// was computed with.
  ScoreContext context;
};

[[nodiscard]] SelectedScoreCurve compute_selected_curve(
    const Netlist& nl, const LinearOrdering& ordering, const CurveConfig& cfg,
    ScoreKind kind, CurveScratch& scratch);

/// Parameters of the clear-minimum test.
struct MinimumConfig {
  std::size_t min_size = 30;       ///< ignore tiny prefixes (paper §3.1)
  double accept_threshold = 0.75;  ///< minimum must score below this
  double drop_factor = 1.6;        ///< max-before-min / min must exceed this
  double rise_factor = 1.3;        ///< max-after-min / min must exceed this
  double edge_fraction = 0.02;     ///< reject minima in the last 2% of curve
};

/// A detected clear minimum.
struct ClearMinimum {
  std::size_t prefix_size = 0;  ///< k*: candidate GTL = first k* cells
  double value = 0.0;           ///< Φ(C_{k*})
};

/// Find the clear minimum of `curve` (one of ScoreCurve's value vectors
/// or a SelectedScoreCurve's values), or nullopt if no prefix passes the
/// three checks.  The curve must be NaN-free (every Φ is).
[[nodiscard]] std::optional<ClearMinimum> find_clear_minimum(
    std::span<const double> curve, const MinimumConfig& cfg = {});

/// Result of the fused curve + clear-minimum extraction fast path.
struct CurveExtremum {
  /// Identical bits to SelectedScoreCurve::rent_exponent.
  double rent_exponent = 0.6;
  /// A_G plus the rent estimate — what every score was computed with.
  ScoreContext context;
  /// Bitwise identical to
  /// find_clear_minimum(compute_selected_curve(...).values, min_cfg).
  std::optional<ClearMinimum> minimum;
};

/// Fused fast path for the finder's hot loop: equivalent to
/// compute_selected_curve followed by find_clear_minimum, without fully
/// materializing the exact curve.  A vectorized exp2 approximation
/// (simd::bounded_scores) encloses every Φ(C_k) in a guaranteed
/// [lo, hi] interval; the min scan and the drop/rise tests run on the
/// enclosures and re-evaluate only the few ambiguous prefixes with the
/// exact libm-backed score functions.  Every comparison that decides the
/// result is therefore made on exact values, so the outcome — k*, its
/// score bits, and the rent estimate — is identical to the slow path by
/// construction (pinned by tests/finder/score_curve_equivalence_test).
[[nodiscard]] CurveExtremum extract_curve_minimum(
    const Netlist& nl, const LinearOrdering& ordering, const CurveConfig& cfg,
    ScoreKind kind, const MinimumConfig& min_cfg, CurveScratch& scratch);

}  // namespace gtl
