#include "finder/finder_json.hpp"

#include <cstdint>
#include <limits>

namespace gtl {
namespace {

const char* score_kind_name(ScoreKind kind) {
  return kind == ScoreKind::kNgtlS ? "ngtl_s" : "gtl_sd";
}

Status score_kind_from_name(const std::string& name, ScoreKind* out) {
  if (name == "ngtl_s") {
    *out = ScoreKind::kNgtlS;
    return Status::ok();
  }
  if (name == "gtl_sd") {
    *out = ScoreKind::kGtlSd;
    return Status::ok();
  }
  return Status::invalid_argument("unknown score kind \"" + name +
                                  "\" (expected \"ngtl_s\" or \"gtl_sd\")");
}

/// Field-by-field reader over one JSON object that tracks which keys it
/// consumed, so leftovers can be reported as unknown.
class ObjectReader {
 public:
  explicit ObjectReader(const JsonValue& json, const char* what)
      : json_(&json), what_(what) {}

  [[nodiscard]] Status require_object() const {
    if (!json_->is_object()) {
      return Status::invalid_argument(std::string(what_) +
                                      " must be a JSON object");
    }
    return Status::ok();
  }

  [[nodiscard]] Status read_size(const char* key, std::size_t* out) {
    return read_with(key, [&](const JsonValue& v) -> Status {
      std::uint64_t u = 0;
      GTL_RETURN_IF_ERROR(v.get_uint64(&u));
      if (u > std::numeric_limits<std::size_t>::max()) {
        return Status::out_of_range("value exceeds size_t");
      }
      *out = static_cast<std::size_t>(u);
      return Status::ok();
    });
  }

  [[nodiscard]] Status read_u32(const char* key, std::uint32_t* out) {
    return read_with(key, [&](const JsonValue& v) -> Status {
      std::uint64_t u = 0;
      GTL_RETURN_IF_ERROR(v.get_uint64(&u));
      if (u > std::numeric_limits<std::uint32_t>::max()) {
        return Status::out_of_range("value exceeds uint32");
      }
      *out = static_cast<std::uint32_t>(u);
      return Status::ok();
    });
  }

  [[nodiscard]] Status read_u64(const char* key, std::uint64_t* out) {
    return read_with(key,
                     [&](const JsonValue& v) { return v.get_uint64(out); });
  }

  [[nodiscard]] Status read_i64(const char* key, std::int64_t* out) {
    return read_with(key,
                     [&](const JsonValue& v) { return v.get_int64(out); });
  }

  [[nodiscard]] Status read_double(const char* key, double* out) {
    return read_with(key,
                     [&](const JsonValue& v) { return v.get_double(out); });
  }

  [[nodiscard]] Status read_bool(const char* key, bool* out) {
    return read_with(key, [&](const JsonValue& v) { return v.get_bool(out); });
  }

  [[nodiscard]] Status read_string(const char* key, std::string* out) {
    return read_with(key,
                     [&](const JsonValue& v) { return v.get_string(out); });
  }

  /// Run `fn` on the member if present (absent keys keep defaults).
  template <typename Fn>
  [[nodiscard]] Status read_with(const char* key, Fn fn) {
    const JsonValue* v = json_->find(key);
    consumed_.push_back(key);
    if (v == nullptr) return Status::ok();
    if (Status st = fn(*v); !st.is_ok()) {
      return Status::invalid_argument(std::string(what_) + "." + key + ": " +
                                      st.to_string());
    }
    return Status::ok();
  }

  /// Error out on any key this reader never consumed.
  [[nodiscard]] Status check_no_unknown_keys() const {
    for (const auto& [key, value] : json_->object()) {
      bool known = false;
      for (const char* k : consumed_) {
        if (key == k) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::invalid_argument(std::string(what_) +
                                        ": unknown key \"" + key + "\"");
      }
    }
    return Status::ok();
  }

 private:
  const JsonValue* json_;
  const char* what_;
  std::vector<const char*> consumed_;
};

JsonValue cells_to_json(const std::vector<CellId>& cells) {
  JsonValue::Array arr;
  arr.reserve(cells.size());
  for (const CellId c : cells) arr.emplace_back(static_cast<std::uint64_t>(c));
  return JsonValue(std::move(arr));
}

Status cells_from_json(const JsonValue& v, std::vector<CellId>* out) {
  if (!v.is_array()) {
    return Status::invalid_argument("cells must be an array");
  }
  out->clear();
  out->reserve(v.array().size());
  for (const JsonValue& e : v.array()) {
    std::uint64_t u = 0;
    GTL_RETURN_IF_ERROR(e.get_uint64(&u));
    if (u > std::numeric_limits<CellId>::max()) {
      return Status::out_of_range("cell id exceeds CellId range");
    }
    out->push_back(static_cast<CellId>(u));
  }
  return Status::ok();
}

JsonValue candidate_to_json(const Candidate& c) {
  JsonValue::Object obj;
  obj.emplace("cells", cells_to_json(c.cells));
  obj.emplace("cut", JsonValue(c.cut));
  obj.emplace("avg_pins", JsonValue(c.avg_pins));
  obj.emplace("ngtl_s", JsonValue(c.ngtl_s));
  obj.emplace("gtl_sd", JsonValue(c.gtl_sd));
  obj.emplace("score", JsonValue(c.score));
  obj.emplace("seed", JsonValue(static_cast<std::uint64_t>(c.seed)));
  obj.emplace("rent_exponent_used", JsonValue(c.rent_exponent_used));
  return JsonValue(std::move(obj));
}

Status candidate_from_json(const JsonValue& json, Candidate* out) {
  ObjectReader r(json, "gtl");
  GTL_RETURN_IF_ERROR(r.require_object());
  GTL_RETURN_IF_ERROR(r.read_with("cells", [&](const JsonValue& v) {
    return cells_from_json(v, &out->cells);
  }));
  GTL_RETURN_IF_ERROR(r.read_i64("cut", &out->cut));
  GTL_RETURN_IF_ERROR(r.read_double("avg_pins", &out->avg_pins));
  GTL_RETURN_IF_ERROR(r.read_double("ngtl_s", &out->ngtl_s));
  GTL_RETURN_IF_ERROR(r.read_double("gtl_sd", &out->gtl_sd));
  GTL_RETURN_IF_ERROR(r.read_double("score", &out->score));
  std::uint64_t seed = kInvalidCell;
  GTL_RETURN_IF_ERROR(r.read_u64("seed", &seed));
  if (seed > std::numeric_limits<CellId>::max()) {
    return Status::out_of_range("gtl.seed exceeds CellId range");
  }
  out->seed = static_cast<CellId>(seed);
  GTL_RETURN_IF_ERROR(
      r.read_double("rent_exponent_used", &out->rent_exponent_used));
  return r.check_no_unknown_keys();
}

}  // namespace

JsonValue to_json(const FinderConfig& cfg) {
  JsonValue::Object minimum;
  minimum.emplace("min_size",
                  JsonValue(static_cast<std::uint64_t>(cfg.minimum.min_size)));
  minimum.emplace("accept_threshold", JsonValue(cfg.minimum.accept_threshold));
  minimum.emplace("drop_factor", JsonValue(cfg.minimum.drop_factor));
  minimum.emplace("rise_factor", JsonValue(cfg.minimum.rise_factor));
  minimum.emplace("edge_fraction", JsonValue(cfg.minimum.edge_fraction));

  JsonValue::Object curve;
  curve.emplace("rent_min_k",
                JsonValue(static_cast<std::uint64_t>(cfg.curve.rent_min_k)));

  JsonValue::Object obj;
  obj.emplace("num_seeds",
              JsonValue(static_cast<std::uint64_t>(cfg.num_seeds)));
  obj.emplace("max_ordering_length",
              JsonValue(static_cast<std::uint64_t>(cfg.max_ordering_length)));
  obj.emplace("large_net_threshold", JsonValue(cfg.large_net_threshold));
  obj.emplace("min_cut_first", JsonValue(cfg.min_cut_first));
  obj.emplace("score", JsonValue(score_kind_name(cfg.score)));
  obj.emplace("minimum", JsonValue(std::move(minimum)));
  obj.emplace("curve", JsonValue(std::move(curve)));
  obj.emplace("refine_seeds",
              JsonValue(static_cast<std::uint64_t>(cfg.refine_seeds)));
  obj.emplace("num_threads",
              JsonValue(static_cast<std::uint64_t>(cfg.num_threads)));
  obj.emplace("rng_seed", JsonValue(cfg.rng_seed));
  obj.emplace("dedup_candidates", JsonValue(cfg.dedup_candidates));
  obj.emplace("dynamic_scheduling", JsonValue(cfg.dynamic_scheduling));
  return JsonValue(std::move(obj));
}

Status finder_config_from_json(const JsonValue& json, FinderConfig* out) {
  FinderConfig cfg;  // assemble into defaults, commit only on success
  ObjectReader r(json, "FinderConfig");
  GTL_RETURN_IF_ERROR(r.require_object());
  GTL_RETURN_IF_ERROR(r.read_size("num_seeds", &cfg.num_seeds));
  GTL_RETURN_IF_ERROR(
      r.read_size("max_ordering_length", &cfg.max_ordering_length));
  GTL_RETURN_IF_ERROR(
      r.read_u32("large_net_threshold", &cfg.large_net_threshold));
  GTL_RETURN_IF_ERROR(r.read_bool("min_cut_first", &cfg.min_cut_first));
  GTL_RETURN_IF_ERROR(r.read_with("score", [&](const JsonValue& v) -> Status {
    std::string name;
    GTL_RETURN_IF_ERROR(v.get_string(&name));
    return score_kind_from_name(name, &cfg.score);
  }));
  GTL_RETURN_IF_ERROR(
      r.read_with("minimum", [&](const JsonValue& v) -> Status {
        ObjectReader mr(v, "FinderConfig.minimum");
        GTL_RETURN_IF_ERROR(mr.require_object());
        GTL_RETURN_IF_ERROR(mr.read_size("min_size", &cfg.minimum.min_size));
        GTL_RETURN_IF_ERROR(
            mr.read_double("accept_threshold", &cfg.minimum.accept_threshold));
        GTL_RETURN_IF_ERROR(
            mr.read_double("drop_factor", &cfg.minimum.drop_factor));
        GTL_RETURN_IF_ERROR(
            mr.read_double("rise_factor", &cfg.minimum.rise_factor));
        GTL_RETURN_IF_ERROR(
            mr.read_double("edge_fraction", &cfg.minimum.edge_fraction));
        return mr.check_no_unknown_keys();
      }));
  GTL_RETURN_IF_ERROR(r.read_with("curve", [&](const JsonValue& v) -> Status {
    ObjectReader cr(v, "FinderConfig.curve");
    GTL_RETURN_IF_ERROR(cr.require_object());
    GTL_RETURN_IF_ERROR(cr.read_size("rent_min_k", &cfg.curve.rent_min_k));
    return cr.check_no_unknown_keys();
  }));
  GTL_RETURN_IF_ERROR(r.read_size("refine_seeds", &cfg.refine_seeds));
  GTL_RETURN_IF_ERROR(r.read_size("num_threads", &cfg.num_threads));
  GTL_RETURN_IF_ERROR(r.read_u64("rng_seed", &cfg.rng_seed));
  GTL_RETURN_IF_ERROR(r.read_bool("dedup_candidates", &cfg.dedup_candidates));
  GTL_RETURN_IF_ERROR(
      r.read_bool("dynamic_scheduling", &cfg.dynamic_scheduling));
  GTL_RETURN_IF_ERROR(r.check_no_unknown_keys());
  *out = cfg;
  return Status::ok();
}

Status parse_finder_config(std::string_view text, FinderConfig* out) {
  JsonValue json;
  GTL_RETURN_IF_ERROR(JsonValue::parse(text, &json));
  return finder_config_from_json(json, out);
}

JsonValue to_json(const FinderResult& result) {
  JsonValue::Array gtls;
  gtls.reserve(result.gtls.size());
  for (const Candidate& c : result.gtls) gtls.push_back(candidate_to_json(c));

  JsonValue::Object context;
  context.emplace("rent_exponent", JsonValue(result.context.rent_exponent));
  context.emplace("avg_pins_per_cell",
                  JsonValue(result.context.avg_pins_per_cell));

  JsonValue::Object obj;
  obj.emplace("gtls", JsonValue(std::move(gtls)));
  obj.emplace("context", JsonValue(std::move(context)));
  obj.emplace("orderings_grown",
              JsonValue(static_cast<std::uint64_t>(result.orderings_grown)));
  obj.emplace("candidates_before_refine",
              JsonValue(static_cast<std::uint64_t>(
                  result.candidates_before_refine)));
  obj.emplace("candidates_after_dedup",
              JsonValue(static_cast<std::uint64_t>(
                  result.candidates_after_dedup)));
  obj.emplace("phase1_2_seconds", JsonValue(result.phase1_2_seconds));
  obj.emplace("phase3_seconds", JsonValue(result.phase3_seconds));
  obj.emplace("total_seconds", JsonValue(result.total_seconds));
  obj.emplace("cancelled", JsonValue(result.cancelled));
  return JsonValue(std::move(obj));
}

Status finder_result_from_json(const JsonValue& json, FinderResult* out) {
  FinderResult result;
  ObjectReader r(json, "FinderResult");
  GTL_RETURN_IF_ERROR(r.require_object());
  GTL_RETURN_IF_ERROR(r.read_with("gtls", [&](const JsonValue& v) -> Status {
    if (!v.is_array()) {
      return Status::invalid_argument("FinderResult.gtls must be an array");
    }
    result.gtls.resize(v.array().size());
    for (std::size_t i = 0; i < v.array().size(); ++i) {
      GTL_RETURN_IF_ERROR(candidate_from_json(v.array()[i], &result.gtls[i]));
    }
    return Status::ok();
  }));
  GTL_RETURN_IF_ERROR(
      r.read_with("context", [&](const JsonValue& v) -> Status {
        ObjectReader cr(v, "FinderResult.context");
        GTL_RETURN_IF_ERROR(cr.require_object());
        GTL_RETURN_IF_ERROR(
            cr.read_double("rent_exponent", &result.context.rent_exponent));
        GTL_RETURN_IF_ERROR(cr.read_double("avg_pins_per_cell",
                                           &result.context.avg_pins_per_cell));
        return cr.check_no_unknown_keys();
      }));
  GTL_RETURN_IF_ERROR(
      r.read_size("orderings_grown", &result.orderings_grown));
  GTL_RETURN_IF_ERROR(r.read_size("candidates_before_refine",
                                  &result.candidates_before_refine));
  GTL_RETURN_IF_ERROR(r.read_size("candidates_after_dedup",
                                  &result.candidates_after_dedup));
  GTL_RETURN_IF_ERROR(
      r.read_double("phase1_2_seconds", &result.phase1_2_seconds));
  GTL_RETURN_IF_ERROR(r.read_double("phase3_seconds", &result.phase3_seconds));
  GTL_RETURN_IF_ERROR(r.read_double("total_seconds", &result.total_seconds));
  GTL_RETURN_IF_ERROR(r.read_bool("cancelled", &result.cancelled));
  GTL_RETURN_IF_ERROR(r.check_no_unknown_keys());
  *out = std::move(result);
  return Status::ok();
}

Status parse_finder_result(std::string_view text, FinderResult* out) {
  JsonValue json;
  GTL_RETURN_IF_ERROR(JsonValue::parse(text, &json));
  return finder_result_from_json(json, out);
}

}  // namespace gtl
