#include "finder/score_curve.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gtl {

ScoreCurve compute_score_curve(const Netlist& nl,
                               const LinearOrdering& ordering,
                               const CurveConfig& cfg) {
  GTL_REQUIRE(!ordering.cells.empty(), "ordering is empty");
  const std::size_t n = ordering.cells.size();
  GTL_REQUIRE(ordering.prefix_cut.size() == n &&
                  ordering.prefix_pins.size() == n,
              "ordering prefix arrays inconsistent");

  ScoreCurve out;
  out.context.avg_pins_per_cell = nl.average_pins_per_cell();

  // Rent exponent: mean over prefixes of the paper's per-group estimate.
  double p_sum = 0.0;
  std::size_t p_count = 0;
  for (std::size_t k = std::max<std::size_t>(cfg.rent_min_k, 2); k <= n; ++k) {
    const auto cut = static_cast<double>(ordering.prefix_cut[k - 1]);
    const double a_c = static_cast<double>(ordering.prefix_pins[k - 1]) /
                       static_cast<double>(k);
    p_sum += group_rent_exponent(cut, static_cast<double>(k), a_c);
    ++p_count;
  }
  out.rent_exponent = p_count > 0 ? p_sum / static_cast<double>(p_count) : 0.6;
  out.rent_exponent = std::clamp(out.rent_exponent, 0.1, 1.0);
  out.context.rent_exponent = out.rent_exponent;

  out.ngtl_s.resize(n);
  out.gtl_sd.resize(n);
  out.ratio_cut.resize(n);
  for (std::size_t k = 1; k <= n; ++k) {
    const auto cut = static_cast<double>(ordering.prefix_cut[k - 1]);
    const auto size = static_cast<double>(k);
    const double a_c =
        static_cast<double>(ordering.prefix_pins[k - 1]) / size;
    out.ngtl_s[k - 1] = ngtl_score(cut, size, out.context);
    out.gtl_sd[k - 1] = gtl_sd_score(cut, size, a_c, out.context);
    out.ratio_cut[k - 1] = ratio_cut(cut, size);
  }
  return out;
}

std::optional<ClearMinimum> find_clear_minimum(const std::vector<double>& curve,
                                               const MinimumConfig& cfg) {
  const std::size_t n = curve.size();
  if (n < cfg.min_size || cfg.min_size == 0) return std::nullopt;

  // Right-edge guard: a minimum in the final stretch means the curve was
  // still falling when the ordering ended.
  const auto last_valid = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * (1.0 - cfg.edge_fraction)));
  if (last_valid < cfg.min_size) return std::nullopt;

  std::size_t best_k = 0;
  double best_v = 0.0;
  for (std::size_t k = cfg.min_size; k <= last_valid; ++k) {
    const double v = curve[k - 1];
    if (best_k == 0 || v < best_v) {
      best_k = k;
      best_v = v;
    }
  }
  if (best_k == 0) return std::nullopt;
  if (best_v >= cfg.accept_threshold) return std::nullopt;

  // Drop test: the curve must have risen well above the minimum earlier
  // (a monotone-rising background curve, Fig. 2, has no such drop).
  double max_before = 0.0;
  for (std::size_t k = cfg.min_size; k <= best_k; ++k) {
    max_before = std::max(max_before, curve[k - 1]);
  }
  if (max_before < cfg.drop_factor * std::max(best_v, 1e-12)) {
    return std::nullopt;
  }
  // Rise test: after absorbing the whole GTL, adding outside cells must
  // push the score back up (paper §3.1).  A curve still falling at its
  // end means the ordering ended inside a structure — no boundary found.
  double max_after = 0.0;
  for (std::size_t k = best_k; k <= n; ++k) {
    max_after = std::max(max_after, curve[k - 1]);
  }
  if (max_after < cfg.rise_factor * std::max(best_v, 1e-12)) {
    return std::nullopt;
  }
  return ClearMinimum{best_k, best_v};
}

}  // namespace gtl
