#include "finder/score_curve.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gtl {

ScoreCurve compute_score_curve(const Netlist& nl,
                               const LinearOrdering& ordering,
                               const CurveConfig& cfg) {
  GTL_REQUIRE(!ordering.cells.empty(), "ordering is empty");
  const std::size_t n = ordering.cells.size();
  GTL_REQUIRE(ordering.prefix_cut.size() == n &&
                  ordering.prefix_pins.size() == n,
              "ordering prefix arrays inconsistent");

  ScoreCurve out;
  out.context.avg_pins_per_cell = nl.average_pins_per_cell();

  // Rent exponent: mean over prefixes of the paper's per-group estimate.
  double p_sum = 0.0;
  std::size_t p_count = 0;
  for (std::size_t k = std::max<std::size_t>(cfg.rent_min_k, 2); k <= n; ++k) {
    const auto cut = static_cast<double>(ordering.prefix_cut[k - 1]);
    const double a_c = static_cast<double>(ordering.prefix_pins[k - 1]) /
                       static_cast<double>(k);
    p_sum += group_rent_exponent(cut, static_cast<double>(k), a_c);
    ++p_count;
  }
  out.rent_exponent = p_count > 0 ? p_sum / static_cast<double>(p_count) : 0.6;
  out.rent_exponent = std::clamp(out.rent_exponent, 0.1, 1.0);
  out.context.rent_exponent = out.rent_exponent;

  out.ngtl_s.resize(n);
  out.gtl_sd.resize(n);
  out.ratio_cut.resize(n);
  for (std::size_t k = 1; k <= n; ++k) {
    const auto cut = static_cast<double>(ordering.prefix_cut[k - 1]);
    const auto size = static_cast<double>(k);
    const double a_c =
        static_cast<double>(ordering.prefix_pins[k - 1]) / size;
    out.ngtl_s[k - 1] = ngtl_score(cut, size, out.context);
    out.gtl_sd[k - 1] = gtl_sd_score(cut, size, a_c, out.context);
    out.ratio_cut[k - 1] = ratio_cut(cut, size);
  }
  return out;
}

namespace {

/// Cap on the ln T memo (128 KiB per scratch): covers every realistic
/// prefix cut; larger cuts pay one live std::log.
constexpr std::size_t kLogCutCap = 16'384;

double memoized_log_cut(CurveScratch& scratch, std::int64_t cut) {
  if (cut >= 0 && static_cast<std::size_t>(cut) < kLogCutCap) {
    const auto c = static_cast<std::size_t>(cut);
    if (c >= scratch.log_cut.size()) {
      const std::size_t c0 = scratch.log_cut.size();
      const std::size_t grown =
          std::min(kLogCutCap, std::max<std::size_t>(2 * (c + 1), 256));
      scratch.log_cut.resize(grown);
      for (std::size_t x = c0; x < grown; ++x) {
        scratch.log_cut[x] =
            std::log(x == 0 ? 1e-9 : static_cast<double>(x));
      }
    }
    return scratch.log_cut[c];
  }
  return std::log(std::max(static_cast<double>(cut), 1e-9));
}

}  // namespace

SelectedScoreCurve compute_selected_curve(const Netlist& nl,
                                          const LinearOrdering& ordering,
                                          const CurveConfig& cfg,
                                          ScoreKind kind,
                                          CurveScratch& scratch) {
  GTL_REQUIRE(!ordering.cells.empty(), "ordering is empty");
  const std::size_t n = ordering.cells.size();
  GTL_REQUIRE(ordering.prefix_cut.size() == n &&
                  ordering.prefix_pins.size() == n,
              "ordering prefix arrays inconsistent");

  SelectedScoreCurve out;
  out.context.avg_pins_per_cell = nl.average_pins_per_cell();

  if (scratch.log_k.size() < n + 1) {
    const std::size_t k0 = std::max<std::size_t>(scratch.log_k.size(), 1);
    scratch.log_k.resize(n + 1);
    for (std::size_t k = k0; k <= n; ++k) {
      scratch.log_k[k] = std::log(static_cast<double>(k));
    }
  }

  // Rent pass: the same k-order accumulation as compute_score_curve, with
  // ln k and ln T read from the memo tables (same std::log call, same
  // argument => same bits).
  double p_sum = 0.0;
  std::size_t p_count = 0;
  for (std::size_t k = std::max<std::size_t>(cfg.rent_min_k, 2); k <= n; ++k) {
    const std::int64_t cut = ordering.prefix_cut[k - 1];
    const double a_c = static_cast<double>(ordering.prefix_pins[k - 1]) /
                       static_cast<double>(k);
    p_sum += group_rent_exponent_prelogged(memoized_log_cut(scratch, cut),
                                           static_cast<double>(k), a_c,
                                           scratch.log_k[k]);
    ++p_count;
  }
  out.rent_exponent = p_count > 0 ? p_sum / static_cast<double>(p_count) : 0.6;
  out.rent_exponent = std::clamp(out.rent_exponent, 0.1, 1.0);
  out.context.rent_exponent = out.rent_exponent;

  // Score pass: only the curve the caller selects minima on (the other Φ
  // is needed at one k only — callers evaluate it point-wise).  This pass
  // cannot fuse with the rent pass above: it needs the final clamped mean.
  scratch.values.resize(n);
  if (kind == ScoreKind::kNgtlS) {
    for (std::size_t k = 1; k <= n; ++k) {
      scratch.values[k - 1] =
          ngtl_score(static_cast<double>(ordering.prefix_cut[k - 1]),
                     static_cast<double>(k), out.context);
    }
  } else {
    for (std::size_t k = 1; k <= n; ++k) {
      const auto size = static_cast<double>(k);
      const double a_c =
          static_cast<double>(ordering.prefix_pins[k - 1]) / size;
      scratch.values[k - 1] =
          gtl_sd_score(static_cast<double>(ordering.prefix_cut[k - 1]), size,
                       a_c, out.context);
    }
  }
  out.values = std::span<const double>(scratch.values.data(), n);
  return out;
}

std::optional<ClearMinimum> find_clear_minimum(std::span<const double> curve,
                                               const MinimumConfig& cfg) {
  const std::size_t n = curve.size();
  if (n < cfg.min_size || cfg.min_size == 0) return std::nullopt;

  // Right-edge guard: a minimum in the final stretch means the curve was
  // still falling when the ordering ended.
  const auto last_valid = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * (1.0 - cfg.edge_fraction)));
  if (last_valid < cfg.min_size) return std::nullopt;

  std::size_t best_k = 0;
  double best_v = 0.0;
  for (std::size_t k = cfg.min_size; k <= last_valid; ++k) {
    const double v = curve[k - 1];
    if (best_k == 0 || v < best_v) {
      best_k = k;
      best_v = v;
    }
  }
  if (best_k == 0) return std::nullopt;
  if (best_v >= cfg.accept_threshold) return std::nullopt;

  // Drop test: the curve must have risen well above the minimum earlier
  // (a monotone-rising background curve, Fig. 2, has no such drop).
  double max_before = 0.0;
  for (std::size_t k = cfg.min_size; k <= best_k; ++k) {
    max_before = std::max(max_before, curve[k - 1]);
  }
  if (max_before < cfg.drop_factor * std::max(best_v, 1e-12)) {
    return std::nullopt;
  }
  // Rise test: after absorbing the whole GTL, adding outside cells must
  // push the score back up (paper §3.1).  A curve still falling at its
  // end means the ordering ended inside a structure — no boundary found.
  double max_after = 0.0;
  for (std::size_t k = best_k; k <= n; ++k) {
    max_after = std::max(max_after, curve[k - 1]);
  }
  if (max_after < cfg.rise_factor * std::max(best_v, 1e-12)) {
    return std::nullopt;
  }
  return ClearMinimum{best_k, best_v};
}

}  // namespace gtl
