#include "finder/score_curve.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/simd.hpp"

namespace gtl {

ScoreCurve compute_score_curve(const Netlist& nl,
                               const LinearOrdering& ordering,
                               const CurveConfig& cfg) {
  GTL_REQUIRE(!ordering.cells.empty(), "ordering is empty");
  const std::size_t n = ordering.cells.size();
  GTL_REQUIRE(ordering.prefix_cut.size() == n &&
                  ordering.prefix_pins.size() == n,
              "ordering prefix arrays inconsistent");

  ScoreCurve out;
  out.context.avg_pins_per_cell = nl.average_pins_per_cell();

  // Rent exponent: mean over prefixes of the paper's per-group estimate.
  double p_sum = 0.0;
  std::size_t p_count = 0;
  for (std::size_t k = std::max<std::size_t>(cfg.rent_min_k, 2); k <= n; ++k) {
    const auto cut = static_cast<double>(ordering.prefix_cut[k - 1]);
    const double a_c = static_cast<double>(ordering.prefix_pins[k - 1]) /
                       static_cast<double>(k);
    p_sum += group_rent_exponent(cut, static_cast<double>(k), a_c);
    ++p_count;
  }
  out.rent_exponent = p_count > 0 ? p_sum / static_cast<double>(p_count) : 0.6;
  out.rent_exponent = std::clamp(out.rent_exponent, 0.1, 1.0);
  out.context.rent_exponent = out.rent_exponent;

  out.ngtl_s.resize(n);
  out.gtl_sd.resize(n);
  out.ratio_cut.resize(n);
  for (std::size_t k = 1; k <= n; ++k) {
    const auto cut = static_cast<double>(ordering.prefix_cut[k - 1]);
    const auto size = static_cast<double>(k);
    const double a_c =
        static_cast<double>(ordering.prefix_pins[k - 1]) / size;
    out.ngtl_s[k - 1] = ngtl_score(cut, size, out.context);
    out.gtl_sd[k - 1] = gtl_sd_score(cut, size, a_c, out.context);
    out.ratio_cut[k - 1] = ratio_cut(cut, size);
  }
  return out;
}

namespace {

/// Cap on the ln T memo (128 KiB per scratch): covers every realistic
/// prefix cut; larger cuts pay one live std::log.
constexpr std::size_t kLogCutCap = 16'384;

/// How many ambiguous prefixes the fused fast path re-evaluates exactly
/// before falling back to a dense exact scan of the whole range.
constexpr std::size_t kAmbiguousCap = 64;

double memoized_log_cut(CurveScratch& scratch, std::int64_t cut) {
  if (cut >= 0 && static_cast<std::size_t>(cut) < kLogCutCap) {
    const auto c = static_cast<std::size_t>(cut);
    if (c >= scratch.log_cut.size()) {
      const std::size_t c0 = scratch.log_cut.size();
      const std::size_t grown =
          std::min(kLogCutCap, std::max<std::size_t>(2 * (c + 1), 256));
      scratch.log_cut.resize(grown);
      for (std::size_t x = c0; x < grown; ++x) {
        scratch.log_cut[x] =
            std::log(x == 0 ? 1e-9 : static_cast<double>(x));
      }
    }
    return scratch.log_cut[c];
  }
  return std::log(std::max(static_cast<double>(cut), 1e-9));
}

void ensure_log_k(CurveScratch& scratch, std::size_t n) {
  if (scratch.log_k.size() < n + 1) {
    const std::size_t k0 = std::max<std::size_t>(scratch.log_k.size(), 1);
    scratch.log_k.resize(n + 1);
    for (std::size_t k = k0; k <= n; ++k) {
      scratch.log_k[k] = std::log(static_cast<double>(k));
    }
  }
}

/// Rent pass shared by compute_selected_curve and extract_curve_minimum:
/// the same k-order accumulation as compute_score_curve with ln k / ln T
/// read from the memo tables and the per-prefix clamp evaluated by the
/// rent_clamp kernel (same ops per element => same bits).  Requires
/// scratch.a_c and scratch.log_k filled for [1, n].  Returns the clamped
/// mean.
double batched_rent_exponent(const LinearOrdering& ordering,
                             const CurveConfig& cfg, CurveScratch& scratch,
                             std::size_t n) {
  const std::size_t start = std::max<std::size_t>(cfg.rent_min_k, 2);
  if (start > n) return std::clamp(0.6, 0.1, 1.0);
  const std::size_t m = n - start + 1;
  scratch.rent_log_cut.resize(m);
  scratch.rent_log_ac.resize(m);
  scratch.rent_p.resize(m);
  const double* a_c = scratch.a_c.data() + (start - 1);
  for (std::size_t i = 0; i < m; ++i) {
    scratch.rent_log_cut[i] =
        memoized_log_cut(scratch, ordering.prefix_cut[start - 1 + i]);
    // Guard lanes (a_c <= 0) never read log_ac; 0.0 keeps them defined.
    scratch.rent_log_ac[i] = a_c[i] > 0.0 ? std::log(a_c[i]) : 0.0;
  }
  simd::rent_clamp(scratch.rent_log_cut.data(), scratch.rent_log_ac.data(),
                   scratch.log_k.data() + start, a_c, m,
                   scratch.rent_p.data());
  double p_sum = 0.0;
  for (std::size_t i = 0; i < m; ++i) p_sum += scratch.rent_p[i];
  const double mean = p_sum / static_cast<double>(m);
  return std::clamp(mean, 0.1, 1.0);
}

/// Fills scratch.expo and scratch.pow_denom so that the selected score is
/// cutd[i] / pow_denom[i], replicating ngtl_score / gtl_sd_score
/// operation-for-operation.  Requires scratch.a_c filled.
void batched_denominators(ScoreKind kind, const ScoreContext& ctx,
                          CurveScratch& scratch, std::size_t n) {
  scratch.expo.resize(n);
  scratch.pow_denom.resize(n);
  const double a_g = ctx.avg_pins_per_cell;
  const double p = ctx.rent_exponent;
  if (kind == ScoreKind::kNgtlS) {
    std::fill(scratch.expo.begin(), scratch.expo.end(), p);
    for (std::size_t k = 1; k <= n; ++k) {
      scratch.pow_denom[k - 1] = std::pow(static_cast<double>(k), p);
    }
    // ngtl_score divides by pow then by A_G; fold the second division
    // into the denominator is NOT bit-safe, so callers divide twice.
  } else {
    // gtl_sd_score: exponent = p * (a_c / A_G); denom = A_G * pow.
    simd::div_by_scalar(scratch.a_c.data(), n, a_g, scratch.expo.data());
    simd::mul_by_scalar(scratch.expo.data(), n, p, scratch.expo.data());
    for (std::size_t k = 1; k <= n; ++k) {
      scratch.pow_denom[k - 1] =
          std::pow(static_cast<double>(k), scratch.expo[k - 1]);
    }
    simd::mul_by_scalar(scratch.pow_denom.data(), n, a_g,
                        scratch.pow_denom.data());
  }
}

}  // namespace

SelectedScoreCurve compute_selected_curve(const Netlist& nl,
                                          const LinearOrdering& ordering,
                                          const CurveConfig& cfg,
                                          ScoreKind kind,
                                          CurveScratch& scratch) {
  GTL_REQUIRE(!ordering.cells.empty(), "ordering is empty");
  const std::size_t n = ordering.cells.size();
  GTL_REQUIRE(ordering.prefix_cut.size() == n &&
                  ordering.prefix_pins.size() == n,
              "ordering prefix arrays inconsistent");

  SelectedScoreCurve out;
  out.context.avg_pins_per_cell = nl.average_pins_per_cell();

  ensure_log_k(scratch, n);
  scratch.a_c.resize(n);
  simd::pins_over_index(ordering.prefix_pins.data(), n, 1,
                        scratch.a_c.data());
  out.rent_exponent = batched_rent_exponent(ordering, cfg, scratch, n);
  out.context.rent_exponent = out.rent_exponent;

  // Score pass: only the curve the caller selects minima on (the other Φ
  // is needed at one k only — callers evaluate it point-wise).  This pass
  // cannot fuse with the rent pass above: it needs the final clamped mean.
  scratch.values.resize(n);
  scratch.cutd.resize(n);
  simd::cut_to_double(ordering.prefix_cut.data(), n, scratch.cutd.data());
  batched_denominators(kind, out.context, scratch, n);
  if (kind == ScoreKind::kNgtlS) {
    // gtl = cut / pow(size, p); value = gtl / A_G — two divisions, same
    // order as ngtl_score.
    simd::div_elem(scratch.cutd.data(), scratch.pow_denom.data(), n,
                   scratch.values.data());
    simd::div_by_scalar(scratch.values.data(), n,
                        out.context.avg_pins_per_cell,
                        scratch.values.data());
  } else {
    simd::div_elem(scratch.cutd.data(), scratch.pow_denom.data(), n,
                   scratch.values.data());
  }
  out.values = std::span<const double>(scratch.values.data(), n);
  return out;
}

std::optional<ClearMinimum> find_clear_minimum(std::span<const double> curve,
                                               const MinimumConfig& cfg) {
  const std::size_t n = curve.size();
  if (n < cfg.min_size || cfg.min_size == 0) return std::nullopt;

  // Right-edge guard: a minimum in the final stretch means the curve was
  // still falling when the ordering ended.
  const auto last_valid = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * (1.0 - cfg.edge_fraction)));
  if (last_valid < cfg.min_size) return std::nullopt;

  // First-wins argmin over [min_size, last_valid]: the blocked min scan
  // finds the value, the forward scan finds its first position (ties kept
  // exactly as the sequential strict-< loop would).
  const double* base = curve.data() + (cfg.min_size - 1);
  const std::size_t count = last_valid - cfg.min_size + 1;
  const double m = simd::min_value(base, count);
  std::size_t best_k = 0;
  double best_v = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (base[i] == m) {
      best_k = cfg.min_size + i;
      best_v = base[i];
      break;
    }
  }
  if (best_k == 0) return std::nullopt;
  if (best_v >= cfg.accept_threshold) return std::nullopt;

  // Drop test: the curve must have risen well above the minimum earlier
  // (a monotone-rising background curve, Fig. 2, has no such drop).
  const double max_before =
      std::max(0.0, simd::max_value(base, best_k - cfg.min_size + 1));
  if (max_before < cfg.drop_factor * std::max(best_v, 1e-12)) {
    return std::nullopt;
  }
  // Rise test: after absorbing the whole GTL, adding outside cells must
  // push the score back up (paper §3.1).  A curve still falling at its
  // end means the ordering ended inside a structure — no boundary found.
  const double max_after = std::max(
      0.0, simd::max_value(curve.data() + (best_k - 1), n - best_k + 1));
  if (max_after < cfg.rise_factor * std::max(best_v, 1e-12)) {
    return std::nullopt;
  }
  return ClearMinimum{best_k, best_v};
}

CurveExtremum extract_curve_minimum(const Netlist& nl,
                                    const LinearOrdering& ordering,
                                    const CurveConfig& cfg, ScoreKind kind,
                                    const MinimumConfig& min_cfg,
                                    CurveScratch& scratch) {
  GTL_REQUIRE(!ordering.cells.empty(), "ordering is empty");
  const std::size_t n = ordering.cells.size();
  GTL_REQUIRE(ordering.prefix_cut.size() == n &&
                  ordering.prefix_pins.size() == n,
              "ordering prefix arrays inconsistent");

  CurveExtremum out;
  out.context.avg_pins_per_cell = nl.average_pins_per_cell();
  if (!(out.context.avg_pins_per_cell > 0.0)) {
    // Degenerate netlist (no pins): scores are not finite and the
    // enclosure argument below does not apply.  Take the exact path.
    const SelectedScoreCurve sel =
        compute_selected_curve(nl, ordering, cfg, kind, scratch);
    out.rent_exponent = sel.rent_exponent;
    out.context = sel.context;
    out.minimum = find_clear_minimum(sel.values, min_cfg);
    return out;
  }

  ensure_log_k(scratch, n);
  scratch.a_c.resize(n);
  simd::pins_over_index(ordering.prefix_pins.data(), n, 1,
                        scratch.a_c.data());
  out.rent_exponent = batched_rent_exponent(ordering, cfg, scratch, n);
  out.context.rent_exponent = out.rent_exponent;

  // Same domain guards as find_clear_minimum, decided before any score.
  if (n < min_cfg.min_size || min_cfg.min_size == 0) return out;
  const auto last_valid = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * (1.0 - min_cfg.edge_fraction)));
  if (last_valid < min_cfg.min_size) return out;

  // Enclose every Φ(C_k) in [lo, hi] with the vectorized exp2 bound; the
  // exact libm path below is only consulted where intervals overlap a
  // decision.  kNgtlS uses a constant exponent p; kGtlSd uses
  // p * (a_c / A_G) computed with the exact kernel ops (the bound needs
  // only the value, not its rounding, but reusing the exact expo array
  // costs nothing).
  scratch.cutd.resize(n);
  simd::cut_to_double(ordering.prefix_cut.data(), n, scratch.cutd.data());
  scratch.expo.resize(n);
  const double a_g = out.context.avg_pins_per_cell;
  const double p = out.context.rent_exponent;
  if (kind == ScoreKind::kNgtlS) {
    std::fill(scratch.expo.begin(), scratch.expo.end(), p);
  } else {
    simd::div_by_scalar(scratch.a_c.data(), n, a_g, scratch.expo.data());
    simd::mul_by_scalar(scratch.expo.data(), n, p, scratch.expo.data());
  }
  scratch.lo.resize(n);
  scratch.hi.resize(n);
  simd::bounded_scores(scratch.cutd.data(), scratch.expo.data(),
                       scratch.log_k.data() + 1, n, a_g, scratch.lo.data(),
                       scratch.hi.data());

  // Exact Φ(C_k), bit-for-bit the compute_selected_curve value: same
  // function, same operand bits (a_c and expo come from the same kernel
  // ops).  cut == 0 shortcuts to +0.0 — the exponent is >= 0 so the
  // denominator is >= A_G > 0 (possibly +inf), and 0/positive == +0.
  const auto exact_at = [&](std::size_t k) {
    const std::int64_t cut_i = ordering.prefix_cut[k - 1];
    if (cut_i == 0) return 0.0;
    const auto cut = static_cast<double>(cut_i);
    const auto size = static_cast<double>(k);
    return kind == ScoreKind::kNgtlS
               ? ngtl_score(cut, size, out.context)
               : gtl_sd_score(cut, size, scratch.a_c[k - 1], out.context);
  };

  // --- Minimum scan on [min_size, last_valid] -------------------------
  // m = min(hi) bounds the true minimum from above; every k with
  // lo[k] <= m could be (or tie) the first argmin, nothing else can.
  // Evaluating those candidates exactly in ascending k reproduces the
  // sequential strict-< scan: all minimum achievers are candidates, so
  // the first exact achiever wins, and non-candidates are strictly
  // greater than the minimum.
  const double* lo = scratch.lo.data() + (min_cfg.min_size - 1);
  const double* hi = scratch.hi.data() + (min_cfg.min_size - 1);
  const std::size_t count = last_valid - min_cfg.min_size + 1;
  const double m = simd::min_value(hi, count);
  scratch.idx.resize(kAmbiguousCap);
  std::size_t best_k = 0;
  double best_v = 0.0;
  const std::size_t got =
      simd::collect_not_above(lo, count, m, scratch.idx.data(),
                              kAmbiguousCap);
  if (got > kAmbiguousCap) {
    // Overly flat curve: bounds cannot separate candidates, run the
    // reference scan densely.
    for (std::size_t k = min_cfg.min_size; k <= last_valid; ++k) {
      const double v = exact_at(k);
      if (best_k == 0 || v < best_v) {
        best_k = k;
        best_v = v;
      }
    }
  } else {
    for (std::size_t i = 0; i < got; ++i) {
      const std::size_t k = min_cfg.min_size + scratch.idx[i];
      const double v = exact_at(k);
      if (best_k == 0 || v < best_v) {
        best_k = k;
        best_v = v;
      }
    }
  }
  if (best_k == 0) return out;
  if (best_v >= min_cfg.accept_threshold) return out;

  // --- Drop / rise tests ---------------------------------------------
  // Each is an existence test "does some Φ in the range reach t?"
  // (scores are >= 0, so the reference's max-against-0 seed cannot
  // change the outcome).  Bounds decide all lanes with hi < t (no) or
  // lo >= t (yes); ambiguous lanes re-evaluate exactly.
  const auto range_reaches = [&](std::size_t ka, std::size_t kb, double t) {
    const double* l = scratch.lo.data() + (ka - 1);
    const double* h = scratch.hi.data() + (ka - 1);
    const std::size_t c = kb - ka + 1;
    if (!simd::any_not_below(h, c, t)) return false;
    if (simd::any_not_below(l, c, t)) return true;
    const std::size_t amb =
        simd::collect_not_below(h, c, t, scratch.idx.data(), kAmbiguousCap);
    if (amb > kAmbiguousCap) {
      for (std::size_t k = ka; k <= kb; ++k) {
        if (exact_at(k) >= t) return true;
      }
      return false;
    }
    for (std::size_t i = 0; i < amb; ++i) {
      if (exact_at(ka + scratch.idx[i]) >= t) return true;
    }
    return false;
  };

  const double drop_at = min_cfg.drop_factor * std::max(best_v, 1e-12);
  if (!range_reaches(min_cfg.min_size, best_k, drop_at)) return out;
  const double rise_at = min_cfg.rise_factor * std::max(best_v, 1e-12);
  if (!range_reaches(best_k, n, rise_at)) return out;

  out.minimum = ClearMinimum{best_k, best_v};
  return out;
}

}  // namespace gtl
