#pragma once
// JSON (de)serialization of FinderConfig and FinderResult, for the
// service/CLI boundary: a request config arrives as JSON, is parsed and
// validate()d without exceptions, and the result ships back as JSON.
//
// Conventions:
//   * parsing is strict — an unknown key is an error (catches typos in
//     request configs instead of silently running with defaults);
//   * absent keys keep their C++ defaults, so partial configs work;
//   * doubles round-trip bit-exactly (shortest to_chars form), so
//     serialize -> parse -> serialize is a fixed point.

#include <string_view>

#include "finder/finder.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace gtl {

/// FinderConfig -> JSON object (every field, including defaults).
[[nodiscard]] JsonValue to_json(const FinderConfig& cfg);

/// JSON object -> FinderConfig.  Strict keys; does NOT validate() —
/// callers decide when to range-check the assembled config.
[[nodiscard]] Status finder_config_from_json(const JsonValue& json,
                                             FinderConfig* out);

/// Parse JSON text straight into a config (parse + from_json).
[[nodiscard]] Status parse_finder_config(std::string_view text,
                                         FinderConfig* out);

/// FinderResult -> JSON object (GTL member lists included).
[[nodiscard]] JsonValue to_json(const FinderResult& result);

/// JSON object -> FinderResult (strict keys, as above).
[[nodiscard]] Status finder_result_from_json(const JsonValue& json,
                                             FinderResult* out);

/// Parse JSON text straight into a result (parse + from_json).
[[nodiscard]] Status parse_finder_result(std::string_view text,
                                         FinderResult* out);

}  // namespace gtl
