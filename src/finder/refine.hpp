#pragma once
// Phase III (paper §3.2.3, Algorithm steps III.1-III.21):
//
// Refinement — a candidate grown from a random seed can be slightly off
// (e.g. a boundary seed drags outside cells in).  Re-grow from
// `extra_seeds` cells inside the candidate, then form the genetic family
// {B, B1..Bl} plus all pairwise unions, intersections and differences,
// and keep the member with the best Φ.
//
// Pruning — refined candidates from different initial seeds often describe
// the same structure.  The paper keeps a candidate iff it overlaps no
// better-scoring candidate (sort by non-increasing Φ; keep P_i if it is
// disjoint from everything after it).  We implement the equivalent
// best-first greedy: sort by Φ ascending and keep candidates disjoint
// from everything already kept.

#include <vector>

#include "finder/candidate.hpp"
#include "order/linear_ordering.hpp"
#include "util/rng.hpp"

namespace gtl {

struct RefineConfig {
  /// l: number of inner re-growths per candidate (paper uses 3).
  std::size_t extra_seeds = 3;
  /// Candidates below this size are dropped after refinement.
  std::size_t min_size = 30;
};

/// Per-worker reusable scratch for refine_candidate: the genetic family's
/// member-list buffers (up to (l+1) + 4·C(l+1,2) sorted lists, cleared
/// but keeping capacity between candidates) and the curve scratch that
/// backs the inner re-growth extractions.  One arena per worker thread;
/// contents never leak between candidates, so reuse cannot affect
/// results.
struct RefineArena {
  std::vector<std::vector<CellId>> lists;
  CurveScratch curve;
};

/// Refine one candidate. `engine` supplies Phase I re-growths; `group`
/// and `arena` are caller-owned scratch (reused across candidates — the
/// zero-alloc steady state); `ctx` is the shared scoring context so
/// family members are comparable.  Precondition: `initial.cells` is
/// sorted by cell id (every Candidate producer sorts).  Only the winning
/// family member is materialized into a Candidate; losers are scored in
/// place on `group` with no copies, sorts, or allocation.
[[nodiscard]] Candidate refine_candidate(const Netlist& nl,
                                         const Candidate& initial,
                                         OrderingEngine& engine,
                                         GroupConnectivity& group,
                                         RefineArena& arena,
                                         const ScoreContext& ctx,
                                         ScoreKind kind,
                                         const RefineConfig& cfg,
                                         const MinimumConfig& min_cfg,
                                         const CurveConfig& curve_cfg,
                                         Rng& rng);

/// Prune overlapping candidates: returns the best-score-first maximal
/// disjoint set (see header comment for the equivalence to the paper's
/// ordering-based rule).
[[nodiscard]] std::vector<Candidate> prune_overlapping(
    std::vector<Candidate> candidates, std::size_t num_cells);

}  // namespace gtl
