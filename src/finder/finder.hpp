#pragma once
// gtl::Finder — the session API over the paper's three-phase detector
// (DAC 2010, Ch. IV).  Where find_tangled_logic() runs the whole
// pipeline as an opaque one-shot, a Finder session
//
//   * decomposes the pipeline into individually callable phases with
//     inspectable intermediate artifacts:
//
//       grow_orderings()      -> OrderingSet   (Phase I)
//       extract_candidates()  -> CandidateSet  (Phase II)
//       refine_and_prune()    -> FinderResult  (Phase III)
//       run()                 -> FinderResult  (all three, byte-identical
//                                               to find_tangled_logic)
//
//   * reports progress through a ProgressObserver and honors a
//     cooperative CancelToken at seed granularity, returning partial
//     results whose completed seeds are byte-identical to a full run;
//
//   * owns reusable per-worker scratch (ThreadPool, OrderingEngines,
//     GroupConnectivity trackers), so repeated run() calls on the same
//     netlist skip thread spawn and O(|V|) allocations — the win for
//     repeated-query serving is measured in perf_microbench's
//     BM_FinderReuse vs BM_FinderColdStart.
//
// Lifetimes: the session borrows the Netlist (and, if set, the observer
// and cancel token); all must outlive the Finder.  A session is bound to
// one netlist and one validated config; sessions are cheap, make a new
// one to change either.  Finder is not thread-safe — one session per
// serving thread — but different sessions never share state.
//
// Determinism: identical to the one-shot API.  Results depend only on
// FinderConfig (notably rng_seed), never on num_threads or on how many
// times the session has been reused.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "finder/candidate.hpp"
#include "finder/progress.hpp"
#include "finder/refine.hpp"
#include "netlist/netlist.hpp"
#include "order/linear_ordering.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace gtl {

struct FinderConfig {
  /// m: number of random starting seeds.
  std::size_t num_seeds = 100;
  /// Z: maximum linear ordering length.
  std::size_t max_ordering_length = 100'000;
  /// Paper's large-net update skip (0 = exact).
  std::uint32_t large_net_threshold = 20;
  /// Ablation: rank frontier cells by min-cut first (see OrderingConfig).
  bool min_cut_first = false;
  /// Φ used for selection and pruning (paper's final choice: GTL-SD).
  ScoreKind score = ScoreKind::kGtlSd;
  MinimumConfig minimum;
  CurveConfig curve;
  /// l: inner re-growths per candidate in Phase III; 0 skips refinement
  /// (ablation knob).
  std::size_t refine_seeds = 3;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  std::uint64_t rng_seed = 1;
  /// Deduplicate identical Phase II candidates before refinement (pure
  /// speed optimization: duplicates refine to overlapping results that
  /// pruning would discard anyway).
  bool dedup_candidates = true;
  /// Pull work items from a shared ticket counter instead of pre-carving
  /// static per-worker chunks.  Per-seed cost varies wildly (dense
  /// regions grow slowly), so static chunking leaves workers idle behind
  /// the unluckiest chunk; dynamic scheduling fills them.  Results are
  /// byte-identical either way — every work item writes only its own
  /// slot and derives its RNG from its index, never from its worker
  /// (pinned by tests/finder/finder_scheduling_test.cpp).  The knob
  /// exists for ablation and scheduler-equivalence testing.
  bool dynamic_scheduling = true;

  /// Check every field against its documented domain.  Returns OK or an
  /// invalid-argument Status naming the offending field — never throws,
  /// so services can reject bad request configs gracefully.  See
  /// finder_json.hpp for JSON (de)serialization.
  [[nodiscard]] Status validate() const;
};

struct FinderResult {
  /// Final disjoint GTLs, best (lowest) Φ first.
  std::vector<Candidate> gtls;
  /// The shared scoring context (global Rent exponent = mean over all m
  /// ordering estimates; A_G from the netlist).
  ScoreContext context;
  std::size_t orderings_grown = 0;
  std::size_t candidates_before_refine = 0;
  std::size_t candidates_after_dedup = 0;
  double phase1_2_seconds = 0.0;
  double phase3_seconds = 0.0;
  double total_seconds = 0.0;
  /// True when a CancelToken cut the run short; `gtls` then covers only
  /// the seeds/candidates completed before the cancellation point (each
  /// byte-identical to its full-run counterpart).
  bool cancelled = false;
};

/// Phase I artifact: one grown ordering per selected seed.  When the
/// phases are stepped individually, the orderings stay resident so
/// Phase II is re-runnable and inspectable — budget ~20 bytes x
/// num_seeds x max_ordering_length in the worst case.  run() releases
/// the `orderings` storage right after Phase II (seeds/completed
/// survive), keeping the composed path's peak memory at the streaming
/// one-shot level.
struct OrderingSet {
  /// The m seed cells drawn from the movable set (I.1).
  std::vector<CellId> seeds;
  /// orderings[i] grew from seeds[i]; untouched (empty) when the seed was
  /// skipped by cancellation.
  std::vector<LinearOrdering> orderings;
  /// completed[i] != 0 iff orderings[i] was actually grown.
  std::vector<std::uint8_t> completed;
  double seconds = 0.0;

  [[nodiscard]] std::size_t num_completed() const {
    std::size_t n = 0;
    for (const std::uint8_t c : completed) n += c != 0;
    return n;
  }
};

/// Phase II artifact: candidates extracted from the score curves.
struct CandidateSet {
  /// Candidates in seed order, deduplicated when the config asks for it;
  /// exactly what Phase III will refine.
  std::vector<Candidate> candidates;
  /// Candidates extracted before deduplication.
  std::size_t extracted = 0;
  /// Shared scoring context: global Rent exponent (mean of per-ordering
  /// estimates, paper §3.2.2) plus A_G.
  ScoreContext context;
  double seconds = 0.0;
};

class Finder {
 public:
  /// Binds the session to `nl` with a validated config.  Precondition:
  /// cfg.validate().is_ok() — call it first for a throw-free rejection
  /// path; the constructor itself GTL_REQUIREs validity.  Services should
  /// prefer the Status-returning create() factory below.
  explicit Finder(const Netlist& nl, FinderConfig cfg = {});

  /// Throw-free session construction: validates `cfg` and, on success,
  /// binds a new session to `nl` in *out.  On failure *out is untouched
  /// and the Status names the offending config field — the rejection
  /// path a server needs for untrusted request configs (the throwing
  /// constructor is now a thin wrapper over the same validation).
  [[nodiscard]] static Status create(const Netlist& nl, FinderConfig cfg,
                                     std::unique_ptr<Finder>* out);

  Finder(const Finder&) = delete;
  Finder& operator=(const Finder&) = delete;

  [[nodiscard]] const Netlist& netlist() const { return *nl_; }
  [[nodiscard]] const FinderConfig& config() const { return cfg_; }

  /// Observe progress (nullptr disables).  Sticky across runs.
  void set_observer(ProgressObserver* observer) { observer_ = observer; }
  /// Cooperate with cancellation (nullptr disables).  Sticky across runs.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  // --- the phase-decomposed pipeline ---

  /// Phase I: select seeds and grow one linear ordering per seed.
  /// Starts a fresh run (drops prior phase artifacts and result).
  const OrderingSet& grow_orderings();

  /// Phase II: score curves + clear-minimum extraction over the grown
  /// orderings.  Precondition: grow_orderings() ran this session run.
  const CandidateSet& extract_candidates();

  /// Phase III: genetic refinement then best-first pruning.
  /// Precondition: extract_candidates() ran this session run.
  const FinderResult& refine_and_prune();

  /// All three phases; byte-identical gtls to find_tangled_logic(nl, cfg)
  /// (pinned by tests/finder/finder_equivalence_test.cpp).  Releases the
  /// Phase I orderings once Phase II has consumed them (see OrderingSet);
  /// step the phases individually to keep them.
  const FinderResult& run();

  // --- artifact access (valid once the producing phase has run) ---

  [[nodiscard]] bool has_orderings() const { return stage_ >= Stage::kGrown; }
  [[nodiscard]] bool has_candidates() const {
    return stage_ >= Stage::kExtracted;
  }
  [[nodiscard]] bool has_result() const { return stage_ >= Stage::kDone; }

  [[nodiscard]] const OrderingSet& orderings() const;
  [[nodiscard]] const CandidateSet& candidates() const;
  [[nodiscard]] const FinderResult& result() const;

  /// True when the current run's artifacts were truncated by the token.
  [[nodiscard]] bool cancelled() const { return cancelled_; }

 private:
  enum class Stage { kIdle, kGrown, kExtracted, kDone };

  /// Per-worker reusable scratch; allocated lazily, kept across runs.
  /// Ownership rule: scratch_[w] is touched only by the task holding
  /// worker slot w of the current dispatch, and no phase reads scratch
  /// contents written for another work item — which is why reuse across
  /// items, runs, and scheduling modes cannot change results.
  struct WorkerScratch {
    std::unique_ptr<OrderingEngine> engine;
    std::unique_ptr<GroupConnectivity> group;
    /// Phase II curve buffers (selected-Φ values + shared ln tables).
    CurveScratch curve;
    /// Phase III genetic-family merge buffers + inner-regrowth curves.
    RefineArena arena;
  };

  [[nodiscard]] bool cancel_requested() const {
    return cancel_ != nullptr && cancel_->cancel_requested();
  }
  [[nodiscard]] OrderingEngine& engine_for(std::size_t worker);
  [[nodiscard]] GroupConnectivity& group_for(std::size_t worker);

  /// Run fn(item, worker_slot) for item in [0, n) on the pool, using the
  /// configured scheduler (dynamic ticket counter vs static chunks).
  void dispatch_items(std::size_t n,
                      const std::function<void(std::size_t, std::size_t)>& fn);

  void notify_phase_start(FinderPhase phase, std::size_t work_items)
      GTL_EXCLUDES(observer_mu_);
  void notify_phase_end(FinderPhase phase, double seconds)
      GTL_EXCLUDES(observer_mu_);
  void notify_ordering_grown(std::size_t total) GTL_EXCLUDES(observer_mu_);
  void notify_candidate_refined(std::size_t total) GTL_EXCLUDES(observer_mu_);

  const Netlist* nl_;
  FinderConfig cfg_;
  OrderingConfig ocfg_;
  ProgressObserver* observer_ = nullptr;
  const CancelToken* cancel_ = nullptr;

  // Session-owned, reused across runs.
  ThreadPool pool_;
  std::vector<WorkerScratch> scratch_;
  std::vector<CellId> movable_;

  // Current run's artifacts.
  Stage stage_ = Stage::kIdle;
  bool cancelled_ = false;
  OrderingSet orderings_;
  CandidateSet candidates_;
  FinderResult result_;

  // Observer serialization (callbacks fire from worker threads).  The
  // progress counter is atomic so the no-observer fast path never takes
  // the mutex; with an observer attached, count-and-callback happen
  // under the lock, keeping the delivered counts strictly increasing.
  // observer_mu_ is a serialization capability, not a data guard:
  // observer_ itself is only written between runs (set_observer contract)
  // and so carries no GTL_GUARDED_BY.
  Mutex observer_mu_;
  std::atomic<std::size_t> progress_counter_{0};
};

}  // namespace gtl
