#include "finder/finder.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
// gtl-lint: allow(det-wall-clock): timing metadata; zeroed in results
#include "util/timer.hpp"

namespace gtl {
namespace {

/// Stable 64-bit mix for deriving per-index RNG streams.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t x =
      base ^ (0x9E3779B97F4A7C15ULL + index * 0xBF58476D1CE4E5B9ULL);
  x ^= x >> 30;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 27;
  return x;
}

/// FNV-style hash of a member list, for candidate deduplication.
std::uint64_t hash_members(const std::vector<CellId>& cells) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const CellId c : cells) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status invalid_field(const char* field, const std::string& why) {
  return Status::invalid_argument(std::string("FinderConfig::") + field +
                                  " " + why);
}

bool finite(double x) { return std::isfinite(x); }

}  // namespace

Status FinderConfig::validate() const {
  // Caps are generous sanity bounds: they catch corrupted or hostile
  // request configs (a service must not allocate per-seed state for
  // "num_seeds": 1e18) while admitting far more than the paper ever uses.
  constexpr std::size_t kMaxSeeds = 1u << 24;          // paper: 100
  constexpr std::size_t kMaxRefineSeeds = 64;          // paper: 3
  constexpr std::size_t kMaxThreads = 4096;
  if (num_seeds > kMaxSeeds) {
    return invalid_field("num_seeds", "exceeds the 2^24 sanity cap");
  }
  if (max_ordering_length < 2) {
    return invalid_field("max_ordering_length",
                         "must be >= 2 (a one-cell ordering has no curve)");
  }
  if (score != ScoreKind::kNgtlS && score != ScoreKind::kGtlSd) {
    return invalid_field("score", "is not a known ScoreKind");
  }
  if (minimum.min_size < 2) {
    return invalid_field("minimum.min_size", "must be >= 2");
  }
  if (!finite(minimum.accept_threshold) || minimum.accept_threshold <= 0.0) {
    return invalid_field("minimum.accept_threshold",
                         "must be finite and > 0");
  }
  if (!finite(minimum.drop_factor) || minimum.drop_factor < 1.0) {
    return invalid_field("minimum.drop_factor", "must be finite and >= 1");
  }
  if (!finite(minimum.rise_factor) || minimum.rise_factor < 1.0) {
    return invalid_field("minimum.rise_factor", "must be finite and >= 1");
  }
  if (!finite(minimum.edge_fraction) || minimum.edge_fraction < 0.0 ||
      minimum.edge_fraction > 0.5) {
    return invalid_field("minimum.edge_fraction", "must be in [0, 0.5]");
  }
  if (curve.rent_min_k < 2) {
    return invalid_field("curve.rent_min_k", "must be >= 2");
  }
  if (refine_seeds > kMaxRefineSeeds) {
    return invalid_field("refine_seeds",
                         "exceeds the sanity cap of 64 (genetic family "
                         "size is quadratic in l)");
  }
  if (num_threads > kMaxThreads) {
    return invalid_field("num_threads", "exceeds the 4096 sanity cap");
  }
  return Status::ok();
}

namespace {

/// Reject an invalid config before any member that depends on it (the
/// thread pool spawns cfg.num_threads workers) is constructed.
const FinderConfig& validated(const FinderConfig& cfg) {
  const Status st = cfg.validate();
  GTL_REQUIRE(st.is_ok(), st.to_string());
  return cfg;
}

}  // namespace

Finder::Finder(const Netlist& nl, FinderConfig cfg)
    : nl_(&nl), cfg_(std::move(cfg)), pool_(validated(cfg_).num_threads) {
  ocfg_.max_length = cfg_.max_ordering_length;
  ocfg_.large_net_threshold = cfg_.large_net_threshold;
  ocfg_.min_cut_first = cfg_.min_cut_first;
  scratch_.resize(pool_.size());
  // Movable cells (fixed pads never seed or join a GTL) — the netlist is
  // bound for the session's lifetime, so collect them once.
  movable_.reserve(nl_->num_movable());
  for (CellId c = 0; c < nl_->num_cells(); ++c) {
    if (!nl_->is_fixed(c)) movable_.push_back(c);
  }
}

Status Finder::create(const Netlist& nl, FinderConfig cfg,
                      std::unique_ptr<Finder>* out) {
  GTL_RETURN_IF_ERROR(cfg.validate());
  // The constructor re-validates (its contract for direct users); that
  // second pass is a handful of comparisons and can no longer fail.
  out->reset(new Finder(nl, std::move(cfg)));
  return Status::ok();
}

OrderingEngine& Finder::engine_for(std::size_t worker) {
  WorkerScratch& ws = scratch_[worker];
  if (!ws.engine) ws.engine = std::make_unique<OrderingEngine>(*nl_, ocfg_);
  return *ws.engine;
}

GroupConnectivity& Finder::group_for(std::size_t worker) {
  WorkerScratch& ws = scratch_[worker];
  if (!ws.group) ws.group = std::make_unique<GroupConnectivity>(*nl_);
  return *ws.group;
}

void Finder::notify_phase_start(FinderPhase phase, std::size_t work_items) {
  // Called between dispatches (no workers running), so the relaxed reset
  // cannot race with the per-item increments below.
  progress_counter_.store(0, std::memory_order_relaxed);
  if (observer_ == nullptr) return;
  MutexLock lk(observer_mu_);
  observer_->on_phase_start(phase, work_items);
}

void Finder::notify_phase_end(FinderPhase phase, double seconds) {
  if (observer_ == nullptr) return;
  MutexLock lk(observer_mu_);
  observer_->on_phase_end(phase, seconds);
}

// The two per-item notifications are the hottest synchronization points
// in the pipeline (every seed, every candidate, every worker).  With no
// observer attached they must not serialize the workers through
// observer_mu_ — one relaxed atomic increment and out.  With an observer
// the increment moves under the lock, so delivered (done, total) pairs
// stay strictly increasing exactly as before.

void Finder::notify_ordering_grown(std::size_t total) {
  if (observer_ == nullptr) {
    progress_counter_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  MutexLock lk(observer_mu_);
  const std::size_t done =
      progress_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  observer_->on_ordering_grown(done, total);
}

void Finder::notify_candidate_refined(std::size_t total) {
  if (observer_ == nullptr) {
    progress_counter_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  MutexLock lk(observer_mu_);
  const std::size_t done =
      progress_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  observer_->on_candidate_refined(done, total);
}

void Finder::dispatch_items(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (cfg_.dynamic_scheduling) {
    pool_.parallel_for_dynamic(n, fn);
    return;
  }
  // Static ablation path: the pre-PR chunking, one contiguous block per
  // worker.
  const std::size_t n_workers = pool_.size();
  const std::size_t chunk = (n + n_workers - 1) / n_workers;
  pool_.parallel_for(n_workers, [&](std::size_t w) {
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) fn(i, w);
  });
}

const OrderingSet& Finder::grow_orderings() {
  // gtl-lint: allow(det-wall-clock): timing metadata; zeroed in results
  Timer timer;
  // Fresh run: drop prior artifacts.
  stage_ = Stage::kIdle;
  cancelled_ = false;
  orderings_ = OrderingSet{};
  candidates_ = CandidateSet{};
  result_ = FinderResult{};

  // I.1: random seeds (distinct when the design is large enough).  Drawn
  // from cfg_.rng_seed exactly as the one-shot pipeline draws them, so a
  // reused session replays identical runs.
  if (!movable_.empty() && cfg_.num_seeds > 0) {
    Rng master(cfg_.rng_seed);
    orderings_.seeds.reserve(cfg_.num_seeds);
    if (cfg_.num_seeds <= movable_.size()) {
      for (const std::uint32_t idx : master.sample_distinct(
               static_cast<std::uint32_t>(movable_.size()),
               static_cast<std::uint32_t>(cfg_.num_seeds))) {
        orderings_.seeds.push_back(movable_[idx]);
      }
    } else {
      for (std::size_t i = 0; i < cfg_.num_seeds; ++i) {
        orderings_.seeds.push_back(
            movable_[master.next_below(movable_.size())]);
      }
    }
  }

  const std::size_t m = orderings_.seeds.size();
  orderings_.orderings.resize(m);
  orderings_.completed.assign(m, 0);
  notify_phase_start(FinderPhase::kGrowOrderings, m);

  // Seed i writes only slot i, so results are independent of which
  // worker pulls which ticket.
  dispatch_items(m, [&](std::size_t i, std::size_t w) {
    if (cancel_requested()) return;
    orderings_.orderings[i] = engine_for(w).grow(orderings_.seeds[i]);
    orderings_.completed[i] = 1;
    notify_ordering_grown(m);
  });
  if (cancel_requested()) cancelled_ = true;

  orderings_.seconds = timer.seconds();
  stage_ = Stage::kGrown;
  notify_phase_end(FinderPhase::kGrowOrderings, orderings_.seconds);
  return orderings_;
}

const CandidateSet& Finder::extract_candidates() {
  GTL_REQUIRE(stage_ >= Stage::kGrown,
              "extract_candidates before grow_orderings");
  // gtl-lint: allow(det-wall-clock): timing metadata; zeroed in results
  Timer timer;
  candidates_ = CandidateSet{};
  result_ = FinderResult{};
  candidates_.context.avg_pins_per_cell = nl_->average_pins_per_cell();

  const std::size_t m = orderings_.seeds.size();
  notify_phase_start(FinderPhase::kExtractCandidates, m);
  // Partial-result semantics: a trip already accounted for by an earlier
  // phase truncated our *input*; this phase must still process the
  // completed prefix in full, and only stops on a fresh trip.
  const bool honor_token = !cancelled_;

  // Per-seed slots so parallel extraction stays deterministic: the curve
  // of seed i depends only on ordering i, and all cross-seed reductions
  // below run serially in seed order.
  std::vector<Candidate> raw(m);
  std::vector<std::uint8_t> has_candidate(m, 0);
  std::vector<double> rent_estimates(m, -1.0);
  dispatch_items(m, [&](std::size_t i, std::size_t w) {
    if (honor_token && cancel_requested()) return;
    if (!orderings_.completed[i]) return;
    const LinearOrdering& ordering = orderings_.orderings[i];
    if (ordering.cells.size() < 2) return;
    // Fused fast path into this worker's reusable scratch: rent estimate
    // plus clear minimum, bitwise identical to compute_selected_curve +
    // find_clear_minimum but touching libm only on ambiguous prefixes.
    const CurveExtremum curve = extract_curve_minimum(
        *nl_, ordering, cfg_.curve, cfg_.score, cfg_.minimum,
        scratch_[w].curve);
    rent_estimates[i] = curve.rent_exponent;
    const auto& minimum = curve.minimum;
    if (!minimum) return;
    const std::size_t k = minimum->prefix_size;
    Candidate c;
    c.cells.assign(ordering.cells.begin(),
                   ordering.cells.begin() + static_cast<std::ptrdiff_t>(k));
    std::sort(c.cells.begin(), c.cells.end());
    c.cut = ordering.prefix_cut[k - 1];
    c.avg_pins = static_cast<double>(ordering.prefix_pins[k - 1]) /
                 static_cast<double>(k);
    // The non-selected Φ at k is the one scoring call the dropped curve
    // would have made there (same args => same bits).
    const auto cut = static_cast<double>(c.cut);
    const auto size = static_cast<double>(k);
    if (cfg_.score == ScoreKind::kNgtlS) {
      c.ngtl_s = minimum->value;
      c.gtl_sd = gtl_sd_score(cut, size, c.avg_pins, curve.context);
    } else {
      c.ngtl_s = ngtl_score(cut, size, curve.context);
      c.gtl_sd = minimum->value;
    }
    c.score = minimum->value;
    c.seed = orderings_.seeds[i];
    c.rent_exponent_used = curve.rent_exponent;
    raw[i] = std::move(c);
    has_candidate[i] = 1;
  });
  if (honor_token && cancel_requested()) cancelled_ = true;

  // Global Rent exponent: mean of the per-ordering estimates (paper
  // §3.2.2), collected in seed order; all Phase III scoring uses this
  // shared context.
  std::vector<double> valid_rents;
  for (const double p : rent_estimates) {
    if (p >= 0.0) valid_rents.push_back(p);
  }
  candidates_.context.rent_exponent =
      valid_rents.empty() ? 0.6 : std::clamp(mean(valid_rents), 0.1, 1.0);

  // Deduplicate identical candidates in seed order (same member list =>
  // same refined outcome; pruning would discard the duplicates anyway).
  // Seed order makes a cancelled run's candidate list a prefix of the
  // full run's: membership here depends only on earlier entries.
  std::vector<Candidate> initial;
  for (std::size_t i = 0; i < m; ++i) {
    if (has_candidate[i]) {
      ++candidates_.extracted;
      initial.push_back(std::move(raw[i]));
    }
  }
  if (cfg_.dedup_candidates) {
    std::unordered_map<std::uint64_t, std::size_t> seen;
    std::vector<Candidate> unique;
    for (auto& c : initial) {
      const std::uint64_t h = hash_members(c.cells);
      const auto it = seen.find(h);
      if (it != seen.end() && unique[it->second].cells == c.cells) continue;
      seen.emplace(h, unique.size());
      unique.push_back(std::move(c));
    }
    initial = std::move(unique);
  }
  candidates_.candidates = std::move(initial);

  candidates_.seconds = timer.seconds();
  stage_ = Stage::kExtracted;
  if (observer_ != nullptr) {
    MutexLock lk(observer_mu_);
    observer_->on_candidates_extracted(candidates_.extracted,
                                       candidates_.candidates.size());
  }
  notify_phase_end(FinderPhase::kExtractCandidates, candidates_.seconds);
  return candidates_;
}

const FinderResult& Finder::refine_and_prune() {
  GTL_REQUIRE(stage_ >= Stage::kExtracted,
              "refine_and_prune before extract_candidates");
  // gtl-lint: allow(det-wall-clock): timing metadata; zeroed in results
  Timer timer;
  result_ = FinderResult{};
  result_.context = candidates_.context;
  result_.orderings_grown = orderings_.num_completed();
  result_.candidates_before_refine = candidates_.extracted;
  result_.candidates_after_dedup = candidates_.candidates.size();

  const std::vector<Candidate>& initial = candidates_.candidates;
  const std::size_t n = initial.size();
  notify_phase_start(FinderPhase::kRefineAndPrune, n);
  // See extract_candidates: only a fresh trip stops this phase.
  const bool honor_token = !cancelled_;

  std::vector<Candidate> refined(n);
  std::vector<std::uint8_t> refine_done(n, 0);
  {
    RefineConfig rcfg;
    rcfg.extra_seeds = cfg_.refine_seeds;
    rcfg.min_size = cfg_.minimum.min_size;
    dispatch_items(n, [&](std::size_t i, std::size_t w) {
      if (honor_token && cancel_requested()) return;
      if (cfg_.refine_seeds == 0) {
        // Candidate member lists are sorted by construction (Phase II
        // sorts every extraction), so the defensive re-sort is skipped.
        Candidate c = score_sorted_members(initial[i].cells, group_for(w),
                                           result_.context, cfg_.score);
        c.seed = initial[i].seed;
        refined[i] = std::move(c);
      } else {
        // The refine path runs entirely on this worker's reused scratch:
        // the session tracker (no O(nets+cells) GroupConnectivity build
        // per candidate) and the family arena.  The RNG still derives
        // from the item index, so results are schedule-independent.
        Rng rng(mix_seed(cfg_.rng_seed, 0x5EEDBEEF + i));
        refined[i] = refine_candidate(*nl_, initial[i], engine_for(w),
                                      group_for(w), scratch_[w].arena,
                                      result_.context, cfg_.score, rcfg,
                                      cfg_.minimum, cfg_.curve, rng);
      }
      refine_done[i] = 1;
      notify_candidate_refined(n);
    });
  }
  if (honor_token && cancel_requested()) cancelled_ = true;

  // Keep only candidates whose refinement completed (all of them unless
  // cancelled), in seed order, then prune best-first.
  std::vector<Candidate> survivors;
  survivors.reserve(n);
  std::size_t refined_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (refine_done[i]) {
      ++refined_count;
      survivors.push_back(std::move(refined[i]));
    }
  }
  result_.gtls = prune_overlapping(std::move(survivors), nl_->num_cells());
  result_.cancelled = cancelled_;
  result_.phase3_seconds = timer.seconds();
  result_.phase1_2_seconds = orderings_.seconds + candidates_.seconds;
  result_.total_seconds = result_.phase1_2_seconds + result_.phase3_seconds;
  stage_ = Stage::kDone;
  if (observer_ != nullptr) {
    MutexLock lk(observer_mu_);
    observer_->on_pruned(result_.gtls.size(), refined_count);
  }
  notify_phase_end(FinderPhase::kRefineAndPrune, result_.phase3_seconds);
  return result_;
}

const FinderResult& Finder::run() {
  // gtl-lint: allow(det-wall-clock): timing metadata; zeroed in results
  Timer total;
  grow_orderings();
  extract_candidates();
  // The composed path never exposes the orderings between phases, so
  // release them as soon as Phase II has consumed them: otherwise a
  // paper-scale run() holds ~20 B x num_seeds x Z (hundreds of MB) until
  // it returns, where the old streaming one-shot peaked at O(workers x Z).
  // Seeds and completion flags survive; callers who want the orderings
  // step the phases themselves.
  orderings_.orderings.clear();
  orderings_.orderings.shrink_to_fit();
  refine_and_prune();
  result_.total_seconds = total.seconds();
  return result_;
}

const OrderingSet& Finder::orderings() const {
  GTL_REQUIRE(has_orderings(), "orderings() before grow_orderings()");
  return orderings_;
}

const CandidateSet& Finder::candidates() const {
  GTL_REQUIRE(has_candidates(), "candidates() before extract_candidates()");
  return candidates_;
}

const FinderResult& Finder::result() const {
  GTL_REQUIRE(has_result(), "result() before refine_and_prune()");
  return result_;
}

}  // namespace gtl
