#include "finder/tangled_logic_finder.hpp"

namespace gtl {

FinderResult find_tangled_logic(const Netlist& nl, const FinderConfig& cfg) {
  Finder finder(nl, cfg);
  return finder.run();
}

}  // namespace gtl
