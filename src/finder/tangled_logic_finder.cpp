#include "finder/tangled_logic_finder.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "order/linear_ordering.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace gtl {
namespace {

/// Stable 64-bit mix for deriving per-index RNG streams.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t x = base ^ (0x9E3779B97F4A7C15ULL + index * 0xBF58476D1CE4E5B9ULL);
  x ^= x >> 30;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 27;
  return x;
}

/// FNV-style hash of a member list, for candidate deduplication.
std::uint64_t hash_members(const std::vector<CellId>& cells) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const CellId c : cells) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FinderResult find_tangled_logic(const Netlist& nl, const FinderConfig& cfg) {
  Timer total_timer;
  FinderResult result;
  result.context.avg_pins_per_cell = nl.average_pins_per_cell();

  // Collect movable cells (fixed pads never seed or join a GTL).
  std::vector<CellId> movable;
  movable.reserve(nl.num_movable());
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (!nl.is_fixed(c)) movable.push_back(c);
  }
  if (movable.empty() || cfg.num_seeds == 0) {
    result.total_seconds = total_timer.seconds();
    return result;
  }

  // I.1: random seeds (distinct when the design is large enough).
  Rng master(cfg.rng_seed);
  std::vector<CellId> seeds;
  seeds.reserve(cfg.num_seeds);
  if (cfg.num_seeds <= movable.size()) {
    for (const std::uint32_t idx : master.sample_distinct(
             static_cast<std::uint32_t>(movable.size()),
             static_cast<std::uint32_t>(cfg.num_seeds))) {
      seeds.push_back(movable[idx]);
    }
  } else {
    for (std::size_t i = 0; i < cfg.num_seeds; ++i) {
      seeds.push_back(movable[master.next_below(movable.size())]);
    }
  }

  OrderingConfig ocfg;
  ocfg.max_length = cfg.max_ordering_length;
  ocfg.large_net_threshold = cfg.large_net_threshold;
  ocfg.min_cut_first = cfg.min_cut_first;

  ThreadPool pool(cfg.num_threads);
  const std::size_t n_workers = pool.size();

  // ---- Phases I + II: grow orderings, extract candidates ----
  Timer phase12_timer;
  std::vector<std::optional<Candidate>> raw(seeds.size());
  std::vector<double> rent_estimates(seeds.size(), -1.0);
  {
    const std::size_t chunk = (seeds.size() + n_workers - 1) / n_workers;
    pool.parallel_for(n_workers, [&](std::size_t w) {
      const std::size_t lo = w * chunk;
      const std::size_t hi = std::min(seeds.size(), lo + chunk);
      if (lo >= hi) return;
      OrderingEngine engine(nl, ocfg);
      for (std::size_t i = lo; i < hi; ++i) {
        const LinearOrdering ordering = engine.grow(seeds[i]);
        if (ordering.cells.size() < 2) continue;
        const ScoreCurve curve = compute_score_curve(nl, ordering, cfg.curve);
        rent_estimates[i] = curve.rent_exponent;
        const auto minimum =
            find_clear_minimum(curve.values(cfg.score), cfg.minimum);
        if (!minimum) continue;
        const std::size_t k = minimum->prefix_size;
        Candidate c;
        c.cells.assign(ordering.cells.begin(),
                       ordering.cells.begin() + static_cast<std::ptrdiff_t>(k));
        std::sort(c.cells.begin(), c.cells.end());
        c.cut = ordering.prefix_cut[k - 1];
        c.avg_pins = static_cast<double>(ordering.prefix_pins[k - 1]) /
                     static_cast<double>(k);
        c.ngtl_s = curve.ngtl_s[k - 1];
        c.gtl_sd = curve.gtl_sd[k - 1];
        c.score = curve.values(cfg.score)[k - 1];
        c.seed = seeds[i];
        c.rent_exponent_used = curve.rent_exponent;
        raw[i] = std::move(c);
      }
    });
  }
  result.orderings_grown = seeds.size();
  result.phase1_2_seconds = phase12_timer.seconds();

  // Global Rent exponent: mean of the per-ordering estimates (paper
  // §3.2.2); all Phase III scoring uses this shared context.
  std::vector<double> valid_rents;
  for (const double p : rent_estimates) {
    if (p >= 0.0) valid_rents.push_back(p);
  }
  result.context.rent_exponent =
      valid_rents.empty() ? 0.6 : std::clamp(mean(valid_rents), 0.1, 1.0);

  // Deduplicate identical candidates (same member list => same refined
  // outcome; pruning would discard the duplicates anyway).
  std::vector<Candidate> initial;
  for (auto& c : raw) {
    if (c) {
      ++result.candidates_before_refine;
      initial.push_back(std::move(*c));
    }
  }
  if (cfg.dedup_candidates) {
    std::unordered_map<std::uint64_t, std::size_t> seen;
    std::vector<Candidate> unique;
    for (auto& c : initial) {
      const std::uint64_t h = hash_members(c.cells);
      const auto it = seen.find(h);
      if (it != seen.end() && unique[it->second].cells == c.cells) continue;
      seen.emplace(h, unique.size());
      unique.push_back(std::move(c));
    }
    initial = std::move(unique);
  }
  result.candidates_after_dedup = initial.size();

  // ---- Phase III: refine (parallel) + prune (serial) ----
  Timer phase3_timer;
  std::vector<Candidate> refined(initial.size());
  {
    RefineConfig rcfg;
    rcfg.extra_seeds = cfg.refine_seeds;
    rcfg.min_size = cfg.minimum.min_size;
    const std::size_t chunk =
        initial.empty() ? 1 : (initial.size() + n_workers - 1) / n_workers;
    pool.parallel_for(n_workers, [&](std::size_t w) {
      const std::size_t lo = w * chunk;
      const std::size_t hi = std::min(initial.size(), lo + chunk);
      if (lo >= hi) return;
      OrderingEngine engine(nl, ocfg);
      GroupConnectivity group(nl);
      for (std::size_t i = lo; i < hi; ++i) {
        if (cfg.refine_seeds == 0) {
          Candidate c = score_members(initial[i].cells, group, result.context,
                                      cfg.score);
          c.seed = initial[i].seed;
          refined[i] = std::move(c);
        } else {
          Rng rng(mix_seed(cfg.rng_seed, 0x5EEDBEEF + i));
          refined[i] = refine_candidate(nl, initial[i], engine, result.context,
                                        cfg.score, rcfg, cfg.minimum,
                                        cfg.curve, rng);
        }
      }
    });
  }
  result.gtls = prune_overlapping(std::move(refined), nl.num_cells());
  result.phase3_seconds = phase3_timer.seconds();
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace gtl
