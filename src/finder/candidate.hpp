#pragma once
// Candidate GTLs: extraction from a linear ordering (Phase II, steps
// II.1-II.4) and scoring of explicit member sets — including the set
// algebra (union / intersection / difference) that Phase III's genetic
// refinement needs.

#include <optional>
#include <span>
#include <vector>

#include "finder/score_curve.hpp"
#include "metrics/group_connectivity.hpp"
#include "netlist/netlist.hpp"

namespace gtl {

/// A (candidate or final) group of tangled logic.
struct Candidate {
  /// Member cells, sorted by id.
  std::vector<CellId> cells;
  std::int64_t cut = 0;     ///< T(C)
  double avg_pins = 0.0;    ///< A_C
  double ngtl_s = 0.0;
  double gtl_sd = 0.0;
  double score = 0.0;       ///< the selected Φ (per FinderConfig::score)
  CellId seed = kInvalidCell;        ///< seed of the ordering it came from
  double rent_exponent_used = 0.0;   ///< p the scores were computed with

  [[nodiscard]] std::size_t size() const { return cells.size(); }
};

/// Score an explicit member set under `ctx`, filling every Candidate
/// field except `seed`.  `group` is scratch space (cleared and reused).
[[nodiscard]] Candidate score_members(std::span<const CellId> members,
                                      GroupConnectivity& group,
                                      const ScoreContext& ctx,
                                      ScoreKind kind);

/// score_members for a member list that is ALREADY sorted by cell id —
/// the refine hot path, where every genetic-family list is sorted by
/// construction (set algebra over sorted inputs).  Skips the defensive
/// sort; asserts the precondition in debug builds.  Bitwise-identical to
/// score_members on sorted input (sorting unique sorted ids is the
/// identity).
[[nodiscard]] Candidate score_sorted_members(std::span<const CellId> members,
                                             GroupConnectivity& group,
                                             const ScoreContext& ctx,
                                             ScoreKind kind);

/// Phase II: extract a candidate from an ordering, or nullopt when its
/// score curve has no clear minimum (seed was outside any GTL).
/// The candidate's scores use the ordering's own Rent exponent estimate.
[[nodiscard]] std::optional<Candidate> extract_candidate(
    const Netlist& nl, const LinearOrdering& ordering, ScoreKind kind,
    const CurveConfig& curve_cfg = {}, const MinimumConfig& min_cfg = {});

/// Scratch-backed extract_candidate: identical results (pinned by
/// tests/finder/score_curve_equivalence_test.cpp), but the curve lives in
/// `scratch` — zero steady-state allocation per inner re-growth, and only
/// the selected Φ's full curve is computed.
[[nodiscard]] std::optional<Candidate> extract_candidate(
    const Netlist& nl, const LinearOrdering& ordering, ScoreKind kind,
    const CurveConfig& curve_cfg, const MinimumConfig& min_cfg,
    CurveScratch& scratch);

// --- sorted-vector set algebra (member lists are sorted by id) ---

[[nodiscard]] std::vector<CellId> set_union(std::span<const CellId> a,
                                            std::span<const CellId> b);
[[nodiscard]] std::vector<CellId> set_intersection(std::span<const CellId> a,
                                                   std::span<const CellId> b);
[[nodiscard]] std::vector<CellId> set_difference(std::span<const CellId> a,
                                                 std::span<const CellId> b);

// In-place variants for preallocated merge buffers (the refine arena):
// `out` is cleared (capacity kept) and filled; it must not alias a or b.

void set_union_into(std::span<const CellId> a, std::span<const CellId> b,
                    std::vector<CellId>& out);
void set_intersection_into(std::span<const CellId> a,
                           std::span<const CellId> b,
                           std::vector<CellId>& out);
void set_difference_into(std::span<const CellId> a, std::span<const CellId> b,
                         std::vector<CellId>& out);
/// True iff the sorted lists share at least one cell.
[[nodiscard]] bool sets_overlap(std::span<const CellId> a,
                                std::span<const CellId> b);

}  // namespace gtl
