#include "finder/candidate.hpp"

#include <algorithm>
#include <cassert>

#include "util/require.hpp"

namespace gtl {
namespace {

/// Shared tail of score_members / score_sorted_members: `c.cells` is
/// already populated (sorted), `group` already holds the members.
Candidate finish_scored(Candidate c, std::size_t num_members,
                        const GroupConnectivity& group,
                        const ScoreContext& ctx, ScoreKind kind) {
  c.cut = group.cut();
  c.avg_pins = group.avg_pins_per_cell();
  const auto cut = static_cast<double>(c.cut);
  const auto size = static_cast<double>(num_members);
  c.ngtl_s = ngtl_score(cut, size, ctx);
  c.gtl_sd = gtl_sd_score(cut, size, c.avg_pins, ctx);
  c.score = kind == ScoreKind::kNgtlS ? c.ngtl_s : c.gtl_sd;
  c.rent_exponent_used = ctx.rent_exponent;
  return c;
}

}  // namespace

Candidate score_members(std::span<const CellId> members,
                        GroupConnectivity& group, const ScoreContext& ctx,
                        ScoreKind kind) {
  GTL_REQUIRE(!members.empty(), "cannot score an empty group");
  group.assign(members);

  Candidate c;
  c.cells.assign(members.begin(), members.end());
  std::sort(c.cells.begin(), c.cells.end());
  return finish_scored(std::move(c), members.size(), group, ctx, kind);
}

Candidate score_sorted_members(std::span<const CellId> members,
                               GroupConnectivity& group,
                               const ScoreContext& ctx, ScoreKind kind) {
  GTL_REQUIRE(!members.empty(), "cannot score an empty group");
  assert(std::is_sorted(members.begin(), members.end()) &&
         "score_sorted_members requires members sorted by cell id");
  group.assign(members);

  Candidate c;
  c.cells.assign(members.begin(), members.end());
  return finish_scored(std::move(c), members.size(), group, ctx, kind);
}

std::optional<Candidate> extract_candidate(const Netlist& nl,
                                           const LinearOrdering& ordering,
                                           ScoreKind kind,
                                           const CurveConfig& curve_cfg,
                                           const MinimumConfig& min_cfg) {
  CurveScratch scratch;
  return extract_candidate(nl, ordering, kind, curve_cfg, min_cfg, scratch);
}

std::optional<Candidate> extract_candidate(const Netlist& nl,
                                           const LinearOrdering& ordering,
                                           ScoreKind kind,
                                           const CurveConfig& curve_cfg,
                                           const MinimumConfig& min_cfg,
                                           CurveScratch& scratch) {
  if (ordering.cells.size() < min_cfg.min_size) return std::nullopt;
  // Fused fast path: bitwise identical to compute_selected_curve +
  // find_clear_minimum (pinned by score_curve_equivalence_test).
  const CurveExtremum curve =
      extract_curve_minimum(nl, ordering, curve_cfg, kind, min_cfg, scratch);
  const auto& minimum = curve.minimum;
  if (!minimum) return std::nullopt;

  const std::size_t k = minimum->prefix_size;
  Candidate c;
  c.cells.assign(ordering.cells.begin(),
                 ordering.cells.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(c.cells.begin(), c.cells.end());
  c.cut = ordering.prefix_cut[k - 1];
  c.avg_pins = static_cast<double>(ordering.prefix_pins[k - 1]) /
               static_cast<double>(k);
  // The selected Φ comes off the curve; the other is the same scoring
  // call the full curve would have made at this k (same args, same bits).
  const auto cut = static_cast<double>(c.cut);
  const auto size = static_cast<double>(k);
  if (kind == ScoreKind::kNgtlS) {
    c.ngtl_s = minimum->value;
    c.gtl_sd = gtl_sd_score(cut, size, c.avg_pins, curve.context);
  } else {
    c.ngtl_s = ngtl_score(cut, size, curve.context);
    c.gtl_sd = minimum->value;
  }
  c.score = minimum->value;
  c.seed = ordering.seed;
  c.rent_exponent_used = curve.rent_exponent;
  return c;
}

std::vector<CellId> set_union(std::span<const CellId> a,
                              std::span<const CellId> b) {
  std::vector<CellId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<CellId> set_intersection(std::span<const CellId> a,
                                     std::span<const CellId> b) {
  std::vector<CellId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<CellId> set_difference(std::span<const CellId> a,
                                   std::span<const CellId> b) {
  std::vector<CellId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

void set_union_into(std::span<const CellId> a, std::span<const CellId> b,
                    std::vector<CellId>& out) {
  out.clear();
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
}

void set_intersection_into(std::span<const CellId> a,
                           std::span<const CellId> b,
                           std::vector<CellId>& out) {
  out.clear();
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
}

void set_difference_into(std::span<const CellId> a, std::span<const CellId> b,
                         std::vector<CellId>& out) {
  out.clear();
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
}

bool sets_overlap(std::span<const CellId> a, std::span<const CellId> b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

}  // namespace gtl
