#pragma once
// Incremental connectivity bookkeeping for a growing/shrinking group of
// cells C ⊆ V.  This is the workhorse underneath every metric and under
// Phase I of the finder: it maintains, under add/remove of single cells,
//
//   T(C)      — the net cut  |{e : e∩C ≠ ∅ and e∩(V−C) ≠ ∅}|
//   pins(C)   — Σ_{c∈C} degree(c), so  A_C = pins(C)/|C|
//   absorb(C) — Alpert-Kahng absorption  Σ_e (|e∩C|−1)/(|e|−1)
//   |e∩C|     — per-net pin-in-group counts
//
// in O(degree(c)) per update.  `remove` locates the member in O(1) via a
// position index (not a scan of the member list), and `clear` is
// epoch-stamped: per-net counters are invalidated by bumping a counter
// instead of walking every net touched since the last clear, so
// `assign()` on a fresh group costs O(Σ degree of new members) no matter
// how much history the tracker has seen.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace gtl {

class GroupConnectivity {
 public:
  /// Track groups over `nl`. The netlist must outlive this object.
  explicit GroupConnectivity(const Netlist& nl);

  /// Add a cell to the group. Precondition: not already in the group.
  void add(CellId c);

  /// Remove a cell from the group in O(degree(c)).
  /// Precondition: currently in the group.
  void remove(CellId c);

  /// Empty the group in O(|C|).
  void clear();

  /// Rebuild the group from an explicit member list (clears first).
  void assign(std::span<const CellId> members);

  [[nodiscard]] bool contains(CellId c) const {
    return member_pos_[c] != kNoPos;
  }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::span<const CellId> members() const { return members_; }

  /// T(C): number of nets with pins both inside and outside the group.
  [[nodiscard]] std::int64_t cut() const { return cut_; }

  /// Σ degree(c) over members; numerator of A_C.
  [[nodiscard]] std::size_t pins_in_group() const { return pins_in_group_; }

  /// A_C = pins(C)/|C|; 0 for the empty group.
  [[nodiscard]] double avg_pins_per_cell() const {
    return members_.empty() ? 0.0
                            : static_cast<double>(pins_in_group_) /
                                  static_cast<double>(members_.size());
  }

  /// Absorption  Σ_e (|e∩C|−1)/(|e|−1)  over nets with |e|>1, |e∩C|≥1.
  [[nodiscard]] double absorption() const { return absorption_; }

  /// |e ∩ C| for net e.
  [[nodiscard]] std::uint32_t pins_in(NetId e) const {
    const NetCount& nc = net_count_[e];
    return nc.epoch == epoch_ ? nc.pins : 0;
  }

  /// λ(e) = |e| − |e∩C|: pins of net e outside the group (paper, §3.2.1).
  [[nodiscard]] std::uint32_t pins_out(NetId e) const {
    return netlist().net_size(e) - pins_in(e);
  }

  /// Change of T(C) if `c` were added, without modifying the group.
  [[nodiscard]] std::int64_t cut_delta_if_added(CellId c) const;

  [[nodiscard]] const Netlist& netlist() const { return *nl_; }

 private:
  static constexpr std::uint32_t kNoPos = static_cast<std::uint32_t>(-1);

  /// Per-net counter, valid only while `epoch` matches epoch_ (stale
  /// entries read as 0).  pins and epoch are interleaved so the hot
  /// add/remove loops touch one cache line per net, not two arrays.
  struct NetCount {
    std::uint32_t pins = 0;
    std::uint32_t epoch = 0;
  };

  const Netlist* nl_;
  std::vector<NetCount> net_count_;
  /// Per-cell slot in members_ (kNoPos when outside the group): O(1)
  /// membership tests and O(1) swap-erase on remove.
  std::vector<std::uint32_t> member_pos_;
  std::vector<CellId> members_;
  std::uint32_t epoch_ = 1;
  std::int64_t cut_ = 0;
  std::size_t pins_in_group_ = 0;
  double absorption_ = 0.0;
};

/// One-shot T(C) for an explicit member list (reference implementation for
/// tests and small scripts; O(Σ net sizes) — prefer GroupConnectivity for
/// repeated queries).
[[nodiscard]] std::int64_t net_cut(const Netlist& nl,
                                   std::span<const CellId> members);

}  // namespace gtl
