#pragma once
// Incremental connectivity bookkeeping for a growing/shrinking group of
// cells C ⊆ V.  This is the workhorse underneath every metric and under
// Phase I of the finder: it maintains, under add/remove of single cells,
//
//   T(C)      — the net cut  |{e : e∩C ≠ ∅ and e∩(V−C) ≠ ∅}|
//   pins(C)   — Σ_{c∈C} degree(c), so  A_C = pins(C)/|C|
//   absorb(C) — Alpert-Kahng absorption  Σ_e (|e∩C|−1)/(|e|−1)
//   |e∩C|     — per-net pin-in-group counts
//
// in O(degree(c)) per update.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace gtl {

class GroupConnectivity {
 public:
  /// Track groups over `nl`. The netlist must outlive this object.
  explicit GroupConnectivity(const Netlist& nl);

  /// Add a cell to the group. Precondition: not already in the group.
  void add(CellId c);

  /// Remove a cell from the group. Precondition: currently in the group.
  void remove(CellId c);

  /// Empty the group in O(|touched nets| + |C|).
  void clear();

  /// Rebuild the group from an explicit member list (clears first).
  void assign(std::span<const CellId> members);

  [[nodiscard]] bool contains(CellId c) const { return in_group_[c]; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::span<const CellId> members() const { return members_; }

  /// T(C): number of nets with pins both inside and outside the group.
  [[nodiscard]] std::int64_t cut() const { return cut_; }

  /// Σ degree(c) over members; numerator of A_C.
  [[nodiscard]] std::size_t pins_in_group() const { return pins_in_group_; }

  /// A_C = pins(C)/|C|; 0 for the empty group.
  [[nodiscard]] double avg_pins_per_cell() const {
    return members_.empty() ? 0.0
                            : static_cast<double>(pins_in_group_) /
                                  static_cast<double>(members_.size());
  }

  /// Absorption  Σ_e (|e∩C|−1)/(|e|−1)  over nets with |e|>1, |e∩C|≥1.
  [[nodiscard]] double absorption() const { return absorption_; }

  /// |e ∩ C| for net e.
  [[nodiscard]] std::uint32_t pins_in(NetId e) const { return pins_in_[e]; }

  /// λ(e) = |e| − |e∩C|: pins of net e outside the group (paper, §3.2.1).
  [[nodiscard]] std::uint32_t pins_out(NetId e) const {
    return netlist().net_size(e) - pins_in_[e];
  }

  /// Change of T(C) if `c` were added, without modifying the group.
  [[nodiscard]] std::int64_t cut_delta_if_added(CellId c) const;

  [[nodiscard]] const Netlist& netlist() const { return *nl_; }

 private:
  const Netlist* nl_;
  std::vector<std::uint32_t> pins_in_;
  std::vector<bool> in_group_;
  std::vector<CellId> members_;
  std::vector<NetId> touched_nets_;  // nets that ever had pins_in > 0
  std::int64_t cut_ = 0;
  std::size_t pins_in_group_ = 0;
  double absorption_ = 0.0;
};

/// One-shot T(C) for an explicit member list (reference implementation for
/// tests and small scripts; O(Σ net sizes) — prefer GroupConnectivity for
/// repeated queries).
[[nodiscard]] std::int64_t net_cut(const Netlist& nl,
                                   std::span<const CellId> members);

}  // namespace gtl
