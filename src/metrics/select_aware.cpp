#include "metrics/select_aware.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/require.hpp"

namespace gtl {

SelectAwareScore select_aware_score(const GroupConnectivity& group,
                                    const ScoreContext& ctx,
                                    const SelectAwareConfig& cfg) {
  GTL_REQUIRE(group.size() > 0, "cannot score an empty group");
  const Netlist& nl = group.netlist();

  SelectAwareScore out;
  out.raw_cut = group.cut();

  const double coverage_floor =
      cfg.min_group_coverage * static_cast<double>(group.size());
  std::unordered_set<NetId> seen;
  for (const CellId c : group.members()) {
    for (const NetId e : nl.nets_of(c)) {
      if (!seen.insert(e).second) continue;
      const std::uint32_t inside = group.pins_in(e);
      const std::uint32_t size = nl.net_size(e);
      if (inside == 0 || inside == size || size < 2) continue;  // not cut
      if (inside < cfg.min_pins_in_group) continue;
      if (static_cast<double>(inside) < coverage_floor) continue;
      out.select_nets.push_back(e);
    }
  }
  std::sort(out.select_nets.begin(), out.select_nets.end());
  out.select_lines = static_cast<std::int64_t>(out.select_nets.size());
  out.effective_cut = std::max<std::int64_t>(0, out.raw_cut - out.select_lines);

  const auto size = static_cast<double>(group.size());
  out.ngtl_s = ngtl_score(static_cast<double>(out.raw_cut), size, ctx);
  out.select_aware =
      ngtl_score(static_cast<double>(out.effective_cut), size, ctx);
  return out;
}

}  // namespace gtl
