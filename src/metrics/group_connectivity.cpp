#include "metrics/group_connectivity.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/require.hpp"

namespace gtl {

GroupConnectivity::GroupConnectivity(const Netlist& nl)
    : nl_(&nl),
      net_count_(nl.num_nets()),
      member_pos_(nl.num_cells(), kNoPos) {}

void GroupConnectivity::add(CellId c) {
  GTL_REQUIRE(!contains(c), "cell already in group");
  member_pos_[c] = static_cast<std::uint32_t>(members_.size());
  members_.push_back(c);
  pins_in_group_ += nl_->cell_degree(c);
  for (const NetId e : nl_->nets_of(c)) {
    const std::uint32_t size = nl_->net_size(e);
    NetCount& nc = net_count_[e];
    const std::uint32_t k = nc.epoch == epoch_ ? nc.pins : 0;
    if (k == 0) {
      nc.epoch = epoch_;
      if (size > 1) ++cut_;  // first pin inside: net becomes cut
    } else if (size > 1) {
      absorption_ += 1.0 / static_cast<double>(size - 1);
    }
    if (k + 1 == size && size > 1) --cut_;  // fully absorbed: no longer cut
    nc.pins = k + 1;
  }
}

void GroupConnectivity::remove(CellId c) {
  GTL_REQUIRE(contains(c), "cell not in group");
  // O(1) swap-erase via the position index.
  const std::uint32_t pos = member_pos_[c];
  members_[pos] = members_.back();
  member_pos_[members_[pos]] = pos;
  members_.pop_back();
  member_pos_[c] = kNoPos;
  pins_in_group_ -= nl_->cell_degree(c);
  for (const NetId e : nl_->nets_of(c)) {
    const std::uint32_t size = nl_->net_size(e);
    NetCount& nc = net_count_[e];
    const std::uint32_t k = nc.pins;  // in-epoch: c was a member
    if (k == size && size > 1) ++cut_;  // was fully inside: becomes cut
    nc.pins = k - 1;
    if (k == 1) {
      if (size > 1) --cut_;  // last pin left: no longer cut
    } else if (size > 1) {
      absorption_ -= 1.0 / static_cast<double>(size - 1);
    }
  }
}

void GroupConnectivity::clear() {
  for (const CellId c : members_) member_pos_[c] = kNoPos;
  members_.clear();
  // Invalidate every per-net counter at once by entering a new epoch;
  // stale counters read as 0 until a net is touched again.
  if (++epoch_ == 0) {  // wrapped: stale stamps could collide, hard-reset
    std::fill(net_count_.begin(), net_count_.end(), NetCount{});
    epoch_ = 1;
  }
  cut_ = 0;
  pins_in_group_ = 0;
  absorption_ = 0.0;
}

void GroupConnectivity::assign(std::span<const CellId> members) {
  clear();
  for (const CellId c : members) add(c);
}

std::int64_t GroupConnectivity::cut_delta_if_added(CellId c) const {
  std::int64_t delta = 0;
  for (const NetId e : nl_->nets_of(c)) {
    const std::uint32_t size = nl_->net_size(e);
    if (size <= 1) continue;
    const std::uint32_t k = pins_in(e);
    if (k == 0) ++delta;            // becomes newly cut
    if (k + 1 == size) --delta;     // becomes fully absorbed
  }
  return delta;
}

std::int64_t net_cut(const Netlist& nl, std::span<const CellId> members) {
  std::unordered_set<CellId> in(members.begin(), members.end());
  std::int64_t cut = 0;
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    bool inside = false, outside = false;
    for (const CellId c : nl.pins_of(e)) {
      (in.count(c) ? inside : outside) = true;
      if (inside && outside) break;
    }
    if (inside && outside) ++cut;
  }
  return cut;
}

}  // namespace gtl
