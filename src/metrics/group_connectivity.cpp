#include "metrics/group_connectivity.hpp"

#include <unordered_set>

#include "util/require.hpp"

namespace gtl {

GroupConnectivity::GroupConnectivity(const Netlist& nl)
    : nl_(&nl),
      pins_in_(nl.num_nets(), 0),
      in_group_(nl.num_cells(), false) {}

void GroupConnectivity::add(CellId c) {
  GTL_REQUIRE(!in_group_[c], "cell already in group");
  in_group_[c] = true;
  members_.push_back(c);
  pins_in_group_ += nl_->cell_degree(c);
  for (const NetId e : nl_->nets_of(c)) {
    const std::uint32_t size = nl_->net_size(e);
    const std::uint32_t k = pins_in_[e];
    if (k == 0) {
      touched_nets_.push_back(e);
      if (size > 1) ++cut_;  // first pin inside: net becomes cut
    } else if (size > 1) {
      absorption_ += 1.0 / static_cast<double>(size - 1);
    }
    if (k + 1 == size && size > 1) --cut_;  // fully absorbed: no longer cut
    pins_in_[e] = k + 1;
  }
}

void GroupConnectivity::remove(CellId c) {
  GTL_REQUIRE(in_group_[c], "cell not in group");
  in_group_[c] = false;
  // Swap-erase from the member list.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == c) {
      members_[i] = members_.back();
      members_.pop_back();
      break;
    }
  }
  pins_in_group_ -= nl_->cell_degree(c);
  for (const NetId e : nl_->nets_of(c)) {
    const std::uint32_t size = nl_->net_size(e);
    const std::uint32_t k = pins_in_[e];
    if (k == size && size > 1) ++cut_;  // was fully inside: becomes cut
    pins_in_[e] = k - 1;
    if (k == 1) {
      if (size > 1) --cut_;  // last pin left: no longer cut
    } else if (size > 1) {
      absorption_ -= 1.0 / static_cast<double>(size - 1);
    }
  }
}

void GroupConnectivity::clear() {
  for (const NetId e : touched_nets_) pins_in_[e] = 0;
  touched_nets_.clear();
  for (const CellId c : members_) in_group_[c] = false;
  members_.clear();
  cut_ = 0;
  pins_in_group_ = 0;
  absorption_ = 0.0;
}

void GroupConnectivity::assign(std::span<const CellId> members) {
  clear();
  for (const CellId c : members) add(c);
}

std::int64_t GroupConnectivity::cut_delta_if_added(CellId c) const {
  std::int64_t delta = 0;
  for (const NetId e : nl_->nets_of(c)) {
    const std::uint32_t size = nl_->net_size(e);
    if (size <= 1) continue;
    const std::uint32_t k = pins_in_[e];
    if (k == 0) ++delta;            // becomes newly cut
    if (k + 1 == size) --delta;     // becomes fully absorbed
  }
  return delta;
}

std::int64_t net_cut(const Netlist& nl, std::span<const CellId> members) {
  std::unordered_set<CellId> in(members.begin(), members.end());
  std::int64_t cut = 0;
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    bool inside = false, outside = false;
    for (const CellId c : nl.pins_of(e)) {
      (in.count(c) ? inside : outside) = true;
      if (inside && outside) break;
    }
    if (inside && outside) ++cut;
  }
  return cut;
}

}  // namespace gtl
