#pragma once
// Baseline cluster-quality measures surveyed in Ch. II of the paper, each
// with the weakness the paper points out.  They are implemented here (a)
// to serve as experimental baselines and (b) so the perf microbenches can
// reproduce the paper's observation that the connectivity-based ones
// ((K,L), edge separability, adhesion) are too slow to be practical.
//
// All of them view the netlist as a graph whose edges connect cells that
// share a net.  Nets larger than `max_clique_net` are skipped during
// clique expansion (standard practice: giant nets carry no locality).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace gtl {

/// Hagen-Kahng degree/separation quality of one cluster.
struct DegreeSeparation {
  double degree = 0.0;      ///< average #nets incident per member cell
  double separation = 0.0;  ///< average shortest-path length between members
  double ds = 0.0;          ///< degree / separation (higher = denser cluster)
};

/// Compute Degree and Separation for a cluster.  Shortest paths run inside
/// the cluster-induced subgraph; for clusters with more than
/// `sample_pairs` implied pairs, pair sampling keeps this tractable.
/// Unreachable pairs contribute `|C|` (a conservative finite penalty).
[[nodiscard]] DegreeSeparation degree_separation(
    const Netlist& nl, std::span<const CellId> cluster, Rng& rng,
    std::size_t sample_pairs = 512, std::uint32_t max_clique_net = 16);

/// Number of edge-disjoint paths of length <= 2 between u and v in the
/// clique-expanded graph (the quantity of Garbers et al.'s (K,2)-connected
/// clusters): multiedges u-v plus one per distinct intermediate vertex.
[[nodiscard]] std::size_t edge_disjoint_paths_len2(
    const Netlist& nl, CellId u, CellId v, std::uint32_t max_clique_net = 16);

/// True iff every (sampled) pair of cluster cells is (K,2)-connected.
[[nodiscard]] bool is_k2_connected_cluster(const Netlist& nl,
                                           std::span<const CellId> cluster,
                                           std::size_t k, Rng& rng,
                                           std::size_t sample_pairs = 256,
                                           std::uint32_t max_clique_net = 16);

/// Cong-Lim edge separability: the u-v min-cut in the clique-expanded
/// graph with unit edge capacities, computed by Edmonds-Karp restricted to
/// a BFS ball of `node_limit` cells around {u, v}.  Returns nullopt when
/// the ball had to be truncated (value would be unreliable).
[[nodiscard]] std::optional<std::size_t> edge_separability(
    const Netlist& nl, CellId u, CellId v, std::size_t node_limit = 4096,
    std::uint32_t max_clique_net = 16);

/// Kudva et al. adhesion: sum of pairwise min-cuts over all cluster pairs.
/// O(|C|^2 · maxflow) — practical only for small clusters, exactly the
/// criticism in the paper.  Returns nullopt if any pairwise cut failed.
[[nodiscard]] std::optional<std::size_t> adhesion(
    const Netlist& nl, std::span<const CellId> cluster,
    std::size_t node_limit = 4096, std::uint32_t max_clique_net = 16);

}  // namespace gtl
