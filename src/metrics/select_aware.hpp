#pragma once
// Select-line-aware GTL scoring — the paper's future-work direction
// ("Future work seeks to expand the metrics to handle more specialized
// structures driven by select lines", Ch. VI).
//
// A MUX farm or register-file slice is internally tangled, but every cell
// also hangs off a handful of high-fanout control nets (select lines,
// enables, clocks) whose drivers sit outside the group.  Each such net
// adds +1 to T(C) even though it carries no routing-local data demand, so
// plain GTL scores under-rate exactly the structures the paper's intro
// motivates (MUX functions synthesized to complex-gate clumps).
//
// The select-aware score discounts cut nets that cover a large fraction
// of the group: a net with |e∩C| >= coverage * |C| that still crosses the
// boundary is classified as a select line and removed from the effective
// cut before scoring.

#include <cstdint>
#include <vector>

#include "metrics/group_connectivity.hpp"
#include "metrics/scores.hpp"

namespace gtl {

struct SelectAwareConfig {
  /// A cut net covering at least this fraction of the group's cells is a
  /// select-line candidate.
  double min_group_coverage = 0.3;
  /// ...and it must touch at least this many member cells (guards tiny
  /// groups where one 2-pin net trivially covers 50%).
  std::uint32_t min_pins_in_group = 8;
};

struct SelectAwareScore {
  std::int64_t raw_cut = 0;        ///< T(C)
  std::int64_t select_lines = 0;   ///< cut nets classified as select lines
  std::int64_t effective_cut = 0;  ///< T(C) − select_lines
  double ngtl_s = 0.0;             ///< nGTL-S with the raw cut
  double select_aware = 0.0;       ///< nGTL-S with the effective cut
  std::vector<NetId> select_nets;  ///< the classified nets
};

/// Score the tracked group with select-line discounting.  The group must
/// be non-empty.
[[nodiscard]] SelectAwareScore select_aware_score(
    const GroupConnectivity& group, const ScoreContext& ctx,
    const SelectAwareConfig& cfg = {});

}  // namespace gtl
