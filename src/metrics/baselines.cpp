#include "metrics/baselines.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/require.hpp"

namespace gtl {
namespace {

/// Distinct graph neighbors of `c` via nets of size <= max_clique_net.
void for_each_neighbor(const Netlist& nl, CellId c,
                       std::uint32_t max_clique_net, auto&& fn) {
  for (const NetId e : nl.nets_of(c)) {
    if (nl.net_size(e) > max_clique_net) continue;
    for (const CellId w : nl.pins_of(e)) {
      if (w != c) fn(w, e);
    }
  }
}

/// All index pairs of a cluster, or a random sample when the count exceeds
/// `sample_pairs`.
std::vector<std::pair<std::size_t, std::size_t>> cluster_pairs(
    std::size_t n, std::size_t sample_pairs, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  const std::size_t total = n * (n - 1) / 2;
  if (total <= sample_pairs) {
    pairs.reserve(total);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
    }
    return pairs;
  }
  pairs.reserve(sample_pairs);
  for (std::size_t s = 0; s < sample_pairs; ++s) {
    const std::size_t i = rng.next_below(n);
    std::size_t j = rng.next_below(n - 1);
    if (j >= i) ++j;
    pairs.emplace_back(std::min(i, j), std::max(i, j));
  }
  return pairs;
}

/// Local max-flow graph: clique expansion of the BFS ball around sources.
struct LocalGraph {
  std::unordered_map<CellId, std::uint32_t> index;  // cell -> local id
  std::vector<CellId> cells;
  // adjacency as flat arrays of (to, reverse-edge-slot); unit capacities.
  struct Edge {
    std::uint32_t to;
    std::uint32_t rev;
    std::int32_t cap;
  };
  std::vector<std::vector<Edge>> adj;
  bool truncated = false;

  std::uint32_t intern(CellId c) {
    const auto [it, inserted] =
        index.emplace(c, static_cast<std::uint32_t>(cells.size()));
    if (inserted) {
      cells.push_back(c);
      adj.emplace_back();
    }
    return it->second;
  }

  void add_edge(std::uint32_t a, std::uint32_t b) {
    adj[a].push_back({b, static_cast<std::uint32_t>(adj[b].size()), 1});
    adj[b].push_back({a, static_cast<std::uint32_t>(adj[a].size()) - 1, 1});
  }
};

LocalGraph build_ball(const Netlist& nl, CellId u, CellId v,
                      std::size_t node_limit, std::uint32_t max_clique_net) {
  LocalGraph g;
  std::queue<CellId> bfs;
  g.intern(u);
  g.intern(v);
  bfs.push(u);
  bfs.push(v);

  while (!bfs.empty()) {
    const CellId c = bfs.front();
    bfs.pop();
    const std::uint32_t ci = g.index.at(c);
    for_each_neighbor(nl, c, max_clique_net, [&](CellId w, NetId) {
      if (g.index.count(w) == 0) {
        if (g.cells.size() >= node_limit) {
          g.truncated = true;
          return;
        }
        g.intern(w);
        bfs.push(w);
      }
      const std::uint32_t wi = g.index.at(w);
      // Cells are dequeued in intern order, so each adjacent pair is
      // handled exactly when its lower-id endpoint is processed; a pair
      // sharing several nets gets parallel unit edges (capacity adds up).
      if (ci < wi) g.add_edge(ci, wi);
    });
  }
  return g;
}

/// Edmonds-Karp max-flow with unit capacities.
std::size_t max_flow(LocalGraph& g, std::uint32_t s, std::uint32_t t) {
  std::size_t flow = 0;
  const std::uint32_t n = static_cast<std::uint32_t>(g.adj.size());
  std::vector<std::int32_t> prev_node(n), prev_edge(n);
  for (;;) {
    std::fill(prev_node.begin(), prev_node.end(), -1);
    std::queue<std::uint32_t> q;
    q.push(s);
    prev_node[s] = static_cast<std::int32_t>(s);
    while (!q.empty() && prev_node[t] < 0) {
      const std::uint32_t a = q.front();
      q.pop();
      for (std::size_t i = 0; i < g.adj[a].size(); ++i) {
        const auto& e = g.adj[a][i];
        if (e.cap > 0 && prev_node[e.to] < 0) {
          prev_node[e.to] = static_cast<std::int32_t>(a);
          prev_edge[e.to] = static_cast<std::int32_t>(i);
          q.push(e.to);
        }
      }
    }
    if (prev_node[t] < 0) break;
    // Unit capacities: augment by 1 along the path.
    for (std::uint32_t x = t; x != s;
         x = static_cast<std::uint32_t>(prev_node[x])) {
      auto& e = g.adj[prev_node[x]][prev_edge[x]];
      e.cap -= 1;
      g.adj[x][e.rev].cap += 1;
    }
    ++flow;
  }
  return flow;
}

}  // namespace

DegreeSeparation degree_separation(const Netlist& nl,
                                   std::span<const CellId> cluster, Rng& rng,
                                   std::size_t sample_pairs,
                                   std::uint32_t max_clique_net) {
  DegreeSeparation out;
  if (cluster.empty()) return out;

  double deg_sum = 0.0;
  std::unordered_map<CellId, std::uint32_t> local;
  local.reserve(cluster.size() * 2);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    deg_sum += nl.cell_degree(cluster[i]);
    local.emplace(cluster[i], static_cast<std::uint32_t>(i));
  }
  out.degree = deg_sum / static_cast<double>(cluster.size());
  if (cluster.size() < 2) {
    out.separation = 1.0;
    out.ds = out.degree;
    return out;
  }

  // Cluster-induced adjacency.
  std::vector<std::vector<std::uint32_t>> adj(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    for_each_neighbor(nl, cluster[i], max_clique_net, [&](CellId w, NetId) {
      const auto it = local.find(w);
      if (it != local.end() && it->second != i) adj[i].push_back(it->second);
    });
    std::sort(adj[i].begin(), adj[i].end());
    adj[i].erase(std::unique(adj[i].begin(), adj[i].end()), adj[i].end());
  }

  const auto pairs = cluster_pairs(cluster.size(), sample_pairs, rng);
  // Group pairs by source to share BFS runs.
  std::vector<std::vector<std::size_t>> targets(cluster.size());
  for (const auto& [i, j] : pairs) targets[i].push_back(j);

  double sep_sum = 0.0;
  std::size_t sep_count = 0;
  std::vector<std::int32_t> dist(cluster.size());
  for (std::size_t src = 0; src < cluster.size(); ++src) {
    if (targets[src].empty()) continue;
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<std::uint32_t> q;
    dist[src] = 0;
    q.push(static_cast<std::uint32_t>(src));
    while (!q.empty()) {
      const auto a = q.front();
      q.pop();
      for (const auto b : adj[a]) {
        if (dist[b] < 0) {
          dist[b] = dist[a] + 1;
          q.push(b);
        }
      }
    }
    for (const std::size_t j : targets[src]) {
      sep_sum += dist[j] >= 0 ? static_cast<double>(dist[j])
                              : static_cast<double>(cluster.size());
      ++sep_count;
    }
  }
  out.separation =
      sep_count == 0 ? 1.0 : sep_sum / static_cast<double>(sep_count);
  out.ds = out.separation > 0.0 ? out.degree / out.separation : out.degree;
  return out;
}

std::size_t edge_disjoint_paths_len2(const Netlist& nl, CellId u, CellId v,
                                     std::uint32_t max_clique_net) {
  GTL_REQUIRE(u != v, "need two distinct cells");
  // Direct parallel edges: one per shared (small) net.
  std::size_t direct = 0;
  std::unordered_set<CellId> nbr_u;
  for (const NetId e : nl.nets_of(u)) {
    if (nl.net_size(e) > max_clique_net) continue;
    bool has_v = false;
    for (const CellId w : nl.pins_of(e)) {
      if (w == v) has_v = true;
      if (w != u) nbr_u.insert(w);
    }
    if (has_v) ++direct;
  }
  // Length-2 paths through distinct intermediates (edge-disjoint by
  // construction: each uses its own pair of edges).
  std::size_t via = 0;
  std::unordered_set<CellId> counted;
  for_each_neighbor(nl, v, max_clique_net, [&](CellId w, NetId) {
    if (w != u && nbr_u.count(w) && counted.insert(w).second) ++via;
  });
  return direct + via;
}

bool is_k2_connected_cluster(const Netlist& nl,
                             std::span<const CellId> cluster, std::size_t k,
                             Rng& rng, std::size_t sample_pairs,
                             std::uint32_t max_clique_net) {
  if (cluster.size() < 2) return true;
  const auto pairs = cluster_pairs(cluster.size(), sample_pairs, rng);
  for (const auto& [i, j] : pairs) {
    if (edge_disjoint_paths_len2(nl, cluster[i], cluster[j], max_clique_net) <
        k) {
      return false;
    }
  }
  return true;
}

std::optional<std::size_t> edge_separability(const Netlist& nl, CellId u,
                                             CellId v, std::size_t node_limit,
                                             std::uint32_t max_clique_net) {
  GTL_REQUIRE(u != v, "need two distinct cells");
  LocalGraph g = build_ball(nl, u, v, node_limit, max_clique_net);
  if (g.truncated) return std::nullopt;
  return max_flow(g, g.index.at(u), g.index.at(v));
}

std::optional<std::size_t> adhesion(const Netlist& nl,
                                    std::span<const CellId> cluster,
                                    std::size_t node_limit,
                                    std::uint32_t max_clique_net) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    for (std::size_t j = i + 1; j < cluster.size(); ++j) {
      const auto cut =
          edge_separability(nl, cluster[i], cluster[j], node_limit,
                            max_clique_net);
      if (!cut) return std::nullopt;
      total += *cut;
    }
  }
  return total;
}

}  // namespace gtl
