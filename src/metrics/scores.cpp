#include "metrics/scores.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gtl {

double gtl_score(double cut, double size, double rent_exponent) {
  GTL_REQUIRE(size >= 1.0, "group must be non-empty");
  GTL_REQUIRE(cut >= 0.0, "cut must be non-negative");
  return cut / std::pow(size, rent_exponent);
}

double ngtl_score(double cut, double size, const ScoreContext& ctx) {
  GTL_REQUIRE(ctx.avg_pins_per_cell > 0.0, "A(G) must be positive");
  return gtl_score(cut, size, ctx.rent_exponent) / ctx.avg_pins_per_cell;
}

double gtl_sd_score(double cut, double size, double avg_pins_in_group,
                    const ScoreContext& ctx) {
  GTL_REQUIRE(ctx.avg_pins_per_cell > 0.0, "A(G) must be positive");
  GTL_REQUIRE(avg_pins_in_group >= 0.0, "A_C must be non-negative");
  const double density = avg_pins_in_group / ctx.avg_pins_per_cell;
  const double exponent = ctx.rent_exponent * density;
  return cut / (ctx.avg_pins_per_cell * std::pow(size, exponent));
}

double ratio_cut(double cut, double size) {
  GTL_REQUIRE(size >= 1.0, "group must be non-empty");
  return cut / size;
}

double ng_rent_metric(double cut, double size) {
  GTL_REQUIRE(size >= 1.0, "group must be non-empty");
  if (size < 2.0) return 1.0;               // ln|C| = 0: undefined, neutral
  if (cut < 1.0) return 0.0;                // fully absorbed
  return std::log(cut) / std::log(size);
}

double group_rent_exponent(double cut, double size, double avg_pins_in_group) {
  GTL_REQUIRE(size >= 1.0, "group must be non-empty");
  if (size < 2.0 || avg_pins_in_group <= 0.0) return 1.0;
  return group_rent_exponent(cut, size, avg_pins_in_group, std::log(size));
}

double group_rent_exponent(double cut, double size, double avg_pins_in_group,
                           double log_size) {
  GTL_REQUIRE(size >= 1.0, "group must be non-empty");
  const double t = std::max(cut, 1e-9);
  return group_rent_exponent_prelogged(std::log(t), size, avg_pins_in_group,
                                       log_size);
}

double group_rent_exponent_prelogged(double log_cut, double size,
                                     double avg_pins_in_group,
                                     double log_size) {
  if (size < 2.0 || avg_pins_in_group <= 0.0) return 1.0;
  const double p = (log_cut - std::log(avg_pins_in_group)) / log_size;
  return std::clamp(p, 0.0, 1.0);
}

GtlScores score_group(const GroupConnectivity& group, const ScoreContext& ctx) {
  GtlScores s;
  const auto cut = static_cast<double>(group.cut());
  const auto size = static_cast<double>(group.size());
  if (group.size() == 0) return s;
  s.gtl_s = gtl_score(cut, size, ctx.rent_exponent);
  s.ngtl_s = ngtl_score(cut, size, ctx);
  s.gtl_sd = gtl_sd_score(cut, size, group.avg_pins_per_cell(), ctx);
  return s;
}

}  // namespace gtl
