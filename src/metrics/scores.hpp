#pragma once
// The paper's tangled-logic metrics (§3.1) and the classical clustering
// metrics they are compared against (Ch. II, Fig. 5).
//
// Given a group C with net cut T(C), size |C|, Rent exponent p, netlist
// average pin count A_G and group average pin count A_C:
//
//   ratio cut     RC(C)     = T(C) / |C|                    (favors large C)
//   Ng Rent metric Rent(C)  ∝ ln T(C) / ln |C|              (favors large C)
//   GTL-Score     GTL-S(C)  = T(C) / |C|^p                  (size-fair)
//   normalized    nGTL-S(C) = T(C) / (A_G · |C|^p)          (≈1 for average C)
//   density-aware GTL-SD(C) = T(C) / (A_G · |C|^(p·A_C/A_G))
//
// Smaller is more tangled; strong GTLs score « 1 (e.g. < 0.1).

#include <cstdint>

#include "metrics/group_connectivity.hpp"

namespace gtl {

/// Netlist-level constants needed by the normalized scores.
struct ScoreContext {
  double rent_exponent = 0.6;      ///< p
  double avg_pins_per_cell = 3.0;  ///< A(G)
};

/// GTL-S(C) = T / |C|^p.  A cut of 0 (fully absorbed group) scores 0.
[[nodiscard]] double gtl_score(double cut, double size, double rent_exponent);

/// nGTL-S(C) = T / (A_G · |C|^p).
[[nodiscard]] double ngtl_score(double cut, double size,
                                const ScoreContext& ctx);

/// GTL-SD(C) = T / (A_G · |C|^(p · A_C/A_G)); `avg_pins_in_group` is A_C.
[[nodiscard]] double gtl_sd_score(double cut, double size,
                                  double avg_pins_in_group,
                                  const ScoreContext& ctx);

/// Classical ratio cut T(C)/|C| (Chan-Schlag-Zien; also Scaled Cost's
/// per-cluster term).  Shown in Fig. 5 to overly favor large groups.
[[nodiscard]] double ratio_cut(double cut, double size);

/// Ng-Oldfield-Pitchumani Rent-exponent metric  ln T(C) / ln |C|.
/// Monotonically decreases as C grows (paper Ch. II, item 4).
[[nodiscard]] double ng_rent_metric(double cut, double size);

/// Per-group Rent exponent estimate  (ln T(C) − ln A_C) / ln |C|
/// (paper §3.2.2), clamped to [0, 1]. Used by Phase II, averaged over all
/// prefixes of a linear ordering.
[[nodiscard]] double group_rent_exponent(double cut, double size,
                                         double avg_pins_in_group);

/// Same estimate with ln |C| supplied by the caller.  `log_size` MUST be
/// std::log(size) — Phase II's fast path caches the ln k table across
/// seeds (k is the same for every ordering), which keeps curves
/// bitwise-identical to the overload above while skipping one log per
/// prefix.
[[nodiscard]] double group_rent_exponent(double cut, double size,
                                         double avg_pins_in_group,
                                         double log_size);

/// Innermost variant with both logs supplied: `log_cut` MUST be
/// std::log(std::max(cut, 1e-9)) and `log_size` MUST be std::log(size).
/// Phase II memoizes both (cuts are small integers that repeat heavily
/// along an ordering), leaving one live std::log (of A_C) per prefix.
/// The overloads above delegate here, so all three are bitwise-identical.
[[nodiscard]] double group_rent_exponent_prelogged(double log_cut,
                                                   double size,
                                                   double avg_pins_in_group,
                                                   double log_size);

/// All three GTL metrics of one tracked group, in one call.
struct GtlScores {
  double gtl_s = 0.0;
  double ngtl_s = 0.0;
  double gtl_sd = 0.0;
};
[[nodiscard]] GtlScores score_group(const GroupConnectivity& group,
                                    const ScoreContext& ctx);

}  // namespace gtl
