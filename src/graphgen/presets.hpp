#pragma once
// Workload presets matching the paper's evaluation section:
//   - the six ISPD 2005/2006 benchmarks of Table 2 (bigblue1-3,
//     adaptec1-3) with the paper's exact |V| at scale 1.0, and
//   - the industrial 65nm design of Table 3 / Figs 1, 6, 7 with its five
//     dissolved-ROM structures of 31880/31914/31754/32002/10932 cells.
//
// `scale` in (0, 1] shrinks |V| and structure sizes proportionally so the
// same experiment runs in seconds (smoke) / minutes (default) instead of
// the paper's hours; all reported quantities keep their ratios.

#include <string>
#include <vector>

#include "graphgen/synthetic_circuit.hpp"

namespace gtl {

/// Names accepted by ispd_like_config().
[[nodiscard]] const std::vector<std::string>& ispd_benchmark_names();

/// Synthetic stand-in for one ISPD benchmark ("bigblue1", ..., "adaptec3").
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] SyntheticCircuitConfig ispd_like_config(const std::string& name,
                                                      double scale = 1.0);

/// Synthetic stand-in for the industrial design: five ROM-like structures
/// with the paper's Table 3 sizes, clustered in the upper half of the die
/// (mirroring Fig. 1's hotspot locations).
[[nodiscard]] SyntheticCircuitConfig industrial_config(double scale = 1.0);

/// Ground-truth structure sizes of the industrial preset at `scale`
/// (paper Table 3, column "Size of GTL in design").
[[nodiscard]] std::vector<std::uint32_t> industrial_gtl_sizes(
    double scale = 1.0);

}  // namespace gtl
