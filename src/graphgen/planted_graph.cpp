#include "graphgen/planted_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "graphgen/regular_nets.hpp"
#include <unordered_set>

namespace gtl {
namespace {

/// Background net size: 2 with prob 1-multi_pin_fraction, else geometric
/// tail in [3, max_net_size].
std::uint32_t draw_background_net_size(const PlantedGraphConfig& cfg,
                                       Rng& rng) {
  if (!rng.next_bool(cfg.multi_pin_fraction) || cfg.max_net_size <= 2) {
    return 2;
  }
  std::uint32_t size = 3;
  while (size < cfg.max_net_size && rng.next_bool(0.45)) ++size;
  return size;
}

/// Internal net size: mean internal_avg_net_size, min 2.
std::uint32_t draw_internal_net_size(const PlantedGraphConfig& cfg,
                                     Rng& rng) {
  const double mean = std::max(2.0, cfg.internal_avg_net_size);
  // 2 + geometric with success 1/(mean-1): expectation == mean.
  std::uint32_t size = 2;
  const double cont = 1.0 - 1.0 / (mean - 1.0);
  while (size < 12 && rng.next_bool(cont)) ++size;
  return size;
}

}  // namespace

PlantedGraph generate_planted_graph(const PlantedGraphConfig& cfg, Rng& rng) {
  std::size_t planted_total = 0;
  for (const auto& spec : cfg.gtls) {
    planted_total += static_cast<std::size_t>(spec.size) * spec.count;
  }
  if (planted_total > cfg.num_cells) {
    throw std::invalid_argument("planted GTLs larger than the graph");
  }
  for (const auto& spec : cfg.gtls) {
    if (spec.size < 2) throw std::invalid_argument("GTL size must be >= 2");
  }

  // Assign cells to GTLs: shuffle all ids, slice off each GTL.
  std::vector<CellId> ids(cfg.num_cells);
  for (std::uint32_t i = 0; i < cfg.num_cells; ++i) ids[i] = i;
  rng.shuffle(ids);

  PlantedGraph out;
  std::vector<bool> in_gtl(cfg.num_cells, false);
  std::size_t cursor = 0;
  for (const auto& spec : cfg.gtls) {
    for (std::uint32_t rep = 0; rep < spec.count; ++rep) {
      std::vector<CellId> members(ids.begin() + cursor,
                                  ids.begin() + cursor + spec.size);
      cursor += spec.size;
      for (const CellId c : members) in_gtl[c] = true;
      std::sort(members.begin(), members.end());
      out.gtl_members.push_back(std::move(members));
    }
  }
  std::vector<CellId> background;
  background.reserve(cfg.num_cells - planted_total);
  for (CellId c = 0; c < cfg.num_cells; ++c) {
    if (!in_gtl[c]) background.push_back(c);
  }
  if (background.size() < 2) {
    throw std::invalid_argument("background too small for external nets");
  }

  NetlistBuilder nb;
  nb.reserve(cfg.num_cells, /*nets=*/0, /*pins=*/0);
  for (CellId c = 0; c < cfg.num_cells; ++c) nb.add_cell();

  // --- background nets over background cells only ---
  const auto n_background_nets = static_cast<std::size_t>(
      cfg.background_nets_per_cell * static_cast<double>(background.size()));
  detail::emit_regular_nets(background, n_background_nets, rng, nb,
                    [&] { return draw_background_net_size(cfg, rng); });

  // --- planted structures ---
  for (const auto& members : out.gtl_members) {
    // Dense internal nets with near-uniform internal degrees.
    const auto n_internal = static_cast<std::size_t>(
        cfg.internal_nets_per_cell * static_cast<double>(members.size()));
    detail::emit_regular_nets(members, n_internal, rng, nb,
                      [&] { return draw_internal_net_size(cfg, rng); });
    // A few ports talking to the background (address/data lines of a
    // dissolved ROM): 2-pin nets from port cells to background cells.
    const std::uint32_t n_ports = std::min<std::uint32_t>(
        cfg.ports_per_gtl, static_cast<std::uint32_t>(members.size()));
    for (std::uint32_t p = 0; p < n_ports; ++p) {
      const CellId port = members[rng.next_below(members.size())];
      for (std::uint32_t t = 0; t < cfg.nets_per_port; ++t) {
        const CellId other = background[rng.next_below(background.size())];
        const CellId net_pins[2] = {port, other};
        nb.add_net(net_pins);
      }
    }
  }

  out.netlist = nb.build();
  return out;
}

RecoveryStats recovery_stats(std::span<const CellId> truth,
                             std::span<const CellId> found) {
  RecoveryStats st;
  if (truth.empty()) return st;
  std::unordered_set<CellId> truth_set(truth.begin(), truth.end());
  std::size_t overlap = 0;
  for (const CellId c : found) overlap += truth_set.count(c);
  st.overlap = overlap;
  st.miss_fraction = static_cast<double>(truth.size() - overlap) /
                     static_cast<double>(truth.size());
  st.over_fraction = static_cast<double>(found.size() - overlap) /
                     static_cast<double>(truth.size());
  return st;
}

}  // namespace gtl
