#include "graphgen/presets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtl {
namespace {

struct IspdEntry {
  const char* name;
  std::uint32_t num_cells;  // paper Table 2, column |V|
};

// |V| per paper Table 2.
constexpr IspdEntry kIspd[] = {
    {"bigblue1", 278164}, {"bigblue2", 557786}, {"bigblue3", 1096812},
    {"adaptec1", 211447}, {"adaptec2", 255023}, {"adaptec3", 451650},
};

std::uint32_t scaled(std::uint32_t v, double scale, std::uint32_t floor_v) {
  const double s = static_cast<double>(v) * scale;
  return std::max(floor_v, static_cast<std::uint32_t>(std::llround(s)));
}

}  // namespace

const std::vector<std::string>& ispd_benchmark_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& e : kIspd) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

SyntheticCircuitConfig ispd_like_config(const std::string& name,
                                        double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("scale must be in (0, 1]");
  }
  const IspdEntry* entry = nullptr;
  for (const auto& e : kIspd) {
    if (name == e.name) entry = &e;
  }
  if (entry == nullptr) {
    throw std::invalid_argument("unknown ISPD benchmark name: " + name);
  }

  SyntheticCircuitConfig cfg;
  cfg.name = name;
  cfg.num_cells = scaled(entry->num_cells, scale, 4096);
  cfg.num_pads = 128;
  cfg.background_nets_per_cell = 1.25;
  cfg.locality_alpha = 1.7;

  // Plant a population of tangled structures whose sizes span the range
  // the paper's Table 2 reports for the top GTLs (hundreds to ~14K cells,
  // i.e. roughly 0.1%-2.5% of |V| each).  A deterministic size ladder
  // (independent of the global RNG) keeps presets reproducible.
  const std::uint32_t n_structs =
      std::clamp<std::uint32_t>(cfg.num_cells / 30'000 + 6, 6, 24);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : name)
    hash = (hash ^ static_cast<std::uint8_t>(ch)) * 0x100000001b3ULL;
  for (std::uint32_t i = 0; i < n_structs; ++i) {
    StructureSpec spec;
    // Log-spaced ladder between 0.1% and 2.5% of |V| with a per-design
    // deterministic jitter.
    const double lo = std::max(64.0, 0.001 * cfg.num_cells);
    const double hi = std::max(lo * 2.0, 0.025 * cfg.num_cells);
    const double t = n_structs == 1
                         ? 0.5
                         : static_cast<double>(i) / (n_structs - 1);
    const double jitter =
        0.85 + 0.3 * static_cast<double>((hash >> (i % 48)) & 0xFF) / 255.0;
    spec.size = static_cast<std::uint32_t>(
        std::lround(lo * std::pow(hi / lo, t) * jitter));
    spec.internal_nets_per_cell = 1.6;
    spec.internal_avg_net_size = 3.2;
    spec.ports = 20 + (i % 4) * 8;
    cfg.structures.push_back(spec);
  }
  return cfg;
}

SyntheticCircuitConfig industrial_config(double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("scale must be in (0, 1]");
  }
  SyntheticCircuitConfig cfg;
  cfg.name = "industrial";
  // The paper does not state |V| for the industrial design; five ROMs of
  // ~32K plus background logic consistent with Fig. 6's density suggests
  // a mid-size ASIC.  400K cells puts the ROMs at ~35% of the design.
  cfg.num_cells = scaled(400'000, scale, 8192);
  cfg.num_pads = 160;
  cfg.background_nets_per_cell = 1.25;
  cfg.locality_alpha = 1.7;

  const auto sizes = industrial_gtl_sizes(scale);
  // The four large ROMs sit in the upper band of the die and the small one
  // mid-die, mirroring the hotspot geography of Fig. 1 / Fig. 6.
  const double xs[] = {0.15, 0.40, 0.65, 0.88, 0.50};
  const double ys[] = {0.85, 0.88, 0.85, 0.88, 0.55};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    StructureSpec spec;
    spec.size = sizes[i];
    // Dissolved ROMs: complex gates, very dense internal wiring, and a cut
    // of only a few dozen nets (paper Table 3: cut 28-36 at 32K cells).
    spec.internal_nets_per_cell = 1.7;
    spec.internal_avg_net_size = 3.4;
    spec.ports = i + 1 < sizes.size() ? 36 : 28;
    spec.center_x = xs[i % 5];
    spec.center_y = ys[i % 5];
    cfg.structures.push_back(spec);
  }
  return cfg;
}

std::vector<std::uint32_t> industrial_gtl_sizes(double scale) {
  // Paper Table 3, "Size of GTL in design".
  const std::uint32_t paper_sizes[] = {31880, 31914, 31754, 32002, 10932};
  std::vector<std::uint32_t> out;
  for (const std::uint32_t s : paper_sizes) {
    out.push_back(scaled(s, scale, 64));
  }
  return out;
}

}  // namespace gtl
