#pragma once
// Shared generator helper: near-degree-regular net emission.
//
// Nets are built by consuming shuffled copies of a cell pool in chunks, so
// every full pass adds exactly one net membership per cell.  This is the
// construction style of the Garbers et al. random graphs the paper cites;
// it also keeps background cell degrees tight, so a greedy agglomeration
// cannot collect a high-degree tail that would masquerade as a dense
// structure.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace gtl::detail {

/// Emit `target_nets` nets over `pool` with sizes drawn from `draw_size`.
template <typename SizeFn>
void emit_regular_nets(const std::vector<CellId>& pool,
                       std::size_t target_nets, Rng& rng, NetlistBuilder& nb,
                       SizeFn&& draw_size) {
  if (pool.size() < 2 || target_nets == 0) return;
  std::vector<CellId> walk(pool.begin(), pool.end());
  std::size_t emitted = 0;
  while (emitted < target_nets) {
    rng.shuffle(walk);
    std::size_t pos = 0;
    while (pos < walk.size() && emitted < target_nets) {
      const std::uint32_t size = std::min<std::uint32_t>(
          draw_size(), static_cast<std::uint32_t>(walk.size() - pos));
      if (size < 2) break;  // tail too short for a net; next pass
      nb.add_net(std::span<const CellId>(walk.data() + pos, size));
      pos += size;
      ++emitted;
    }
  }
}

}  // namespace gtl::detail
