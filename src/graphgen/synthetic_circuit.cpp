#include "graphgen/synthetic_circuit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "graphgen/regular_nets.hpp"
#include "util/strings.hpp"

namespace gtl {
namespace {

struct Grid {
  std::uint32_t width = 0;   // columns
  std::uint32_t height = 0;  // rows
  std::uint32_t num_cells = 0;

  [[nodiscard]] bool valid(std::int64_t col, std::int64_t row) const {
    if (col < 0 || row < 0 || col >= width || row >= height) return false;
    return static_cast<std::uint64_t>(row) * width + col < num_cells;
  }
  [[nodiscard]] CellId at(std::uint32_t col, std::uint32_t row) const {
    return static_cast<CellId>(row * width + col);
  }
  [[nodiscard]] std::uint32_t col_of(CellId c) const { return c % width; }
  [[nodiscard]] std::uint32_t row_of(CellId c) const { return c / width; }
};

std::uint32_t draw_net_size(const SyntheticCircuitConfig& cfg, Rng& rng) {
  if (!rng.next_bool(cfg.multi_pin_fraction) || cfg.max_net_size <= 2) {
    return 2;
  }
  std::uint32_t size = 3;
  // Geometric tail; rare large fan-out nets up to max_net_size.
  while (size < cfg.max_net_size && rng.next_bool(0.42)) ++size;
  return size;
}

std::uint32_t draw_internal_net_size(double mean, Rng& rng) {
  mean = std::max(2.0, mean);
  std::uint32_t size = 2;
  const double cont = 1.0 - 1.0 / (mean - 1.0);
  while (size < 12 && rng.next_bool(cont)) ++size;
  return size;
}

/// Pareto-distributed net radius in grid units (>= 1).
double draw_radius(double alpha, double cap, Rng& rng) {
  const double u = rng.next_double();
  const double r = std::pow(1.0 - u, -1.0 / alpha);
  return std::min(r, cap);
}

/// Standard-cell width profile (in row-height units): mostly small gates.
double draw_cell_width(Rng& rng) {
  const double u = rng.next_double();
  if (u < 0.45) return 1.0;
  if (u < 0.80) return 2.0;
  if (u < 0.95) return 3.0;
  return 4.0;
}

}  // namespace

SyntheticCircuit generate_synthetic_circuit(const SyntheticCircuitConfig& cfg,
                                            Rng& rng) {
  if (cfg.num_cells < 16) {
    throw std::invalid_argument("synthetic circuit needs >= 16 cells");
  }
  Grid grid;
  grid.width = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(cfg.num_cells))));
  grid.height = static_cast<std::uint32_t>(
      (cfg.num_cells + grid.width - 1) / grid.width);
  grid.num_cells = cfg.num_cells;

  SyntheticCircuit out;
  const double pitch_x = 2.5;  // horizontal pitch leaves ~30% whitespace
  const double pitch_y = 1.0;  // rows abut
  out.die_width = grid.width * pitch_x;
  out.die_height = grid.height * pitch_y;

  // --- carve out rectangular patches for the planted structures ---
  std::vector<bool> claimed(cfg.num_cells, false);
  for (const auto& spec : cfg.structures) {
    if (spec.size < 4) throw std::invalid_argument("structure size < 4");
    const auto ws = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(spec.size))));
    const auto hs = static_cast<std::uint32_t>((spec.size + ws - 1) / ws);
    if (ws >= grid.width || hs >= grid.height) {
      throw std::invalid_argument("structure does not fit on the die");
    }
    bool placed = false;
    for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
      std::uint32_t col0, row0;
      if (attempt == 0 && spec.center_x >= 0.0 && spec.center_y >= 0.0) {
        col0 = static_cast<std::uint32_t>(std::clamp<double>(
            spec.center_x * grid.width - ws / 2.0, 0.0,
            static_cast<double>(grid.width - ws)));
        row0 = static_cast<std::uint32_t>(std::clamp<double>(
            spec.center_y * grid.height - hs / 2.0, 0.0,
            static_cast<double>(grid.height - hs)));
      } else {
        col0 = static_cast<std::uint32_t>(
            rng.next_below(grid.width - ws + 1));
        row0 = static_cast<std::uint32_t>(
            rng.next_below(grid.height - hs + 1));
      }
      // Check the patch is free and fully on valid cells.
      std::vector<CellId> members;
      members.reserve(spec.size);
      bool ok = true;
      for (std::uint32_t r = row0; r < row0 + hs && ok; ++r) {
        for (std::uint32_t c = col0; c < col0 + ws && ok; ++c) {
          if (!grid.valid(c, r) || claimed[grid.at(c, r)]) ok = false;
        }
      }
      if (!ok) continue;
      for (std::uint32_t r = row0; r < row0 + hs && members.size() < spec.size;
           ++r) {
        for (std::uint32_t c = col0;
             c < col0 + ws && members.size() < spec.size; ++c) {
          members.push_back(grid.at(c, r));
        }
      }
      for (const CellId c : members) claimed[c] = true;
      std::sort(members.begin(), members.end());
      out.planted.push_back(std::move(members));
      placed = true;
    }
    if (!placed) {
      throw std::invalid_argument(
          "could not place structure patch (die too crowded)");
    }
  }

  // --- cells ---
  NetlistBuilder nb;
  nb.reserve(cfg.num_cells + cfg.num_pads,
             static_cast<std::size_t>(cfg.background_nets_per_cell *
                                      cfg.num_cells) +
                 cfg.num_pads,
             static_cast<std::size_t>(3.6 * cfg.num_cells));
  out.hint_x.reserve(cfg.num_cells + cfg.num_pads);
  out.hint_y.reserve(cfg.num_cells + cfg.num_pads);
  for (CellId c = 0; c < cfg.num_cells; ++c) {
    nb.add_cell(cfg.with_names ? numbered_name("o", c) : std::string{},
                draw_cell_width(rng), 1.0, /*fixed=*/false);
    out.hint_x.push_back((grid.col_of(c) + 0.5) * pitch_x);
    out.hint_y.push_back((grid.row_of(c) + 0.5) * pitch_y);
  }

  // --- fixed I/O pads around the periphery ---
  std::vector<CellId> pads;
  pads.reserve(cfg.num_pads);
  for (std::uint32_t p = 0; p < cfg.num_pads; ++p) {
    const CellId id =
        nb.add_cell(cfg.with_names ? numbered_name("p", p) : std::string{},
                    1.0, 1.0, /*fixed=*/true);
    pads.push_back(id);
    // Walk the perimeter: fraction t of the full boundary length.
    const double t = static_cast<double>(p) / cfg.num_pads * 4.0;
    double px = 0.0, py = 0.0;
    if (t < 1.0) {
      px = t * out.die_width;
    } else if (t < 2.0) {
      px = out.die_width;
      py = (t - 1.0) * out.die_height;
    } else if (t < 3.0) {
      px = (3.0 - t) * out.die_width;
      py = out.die_height;
    } else {
      py = (4.0 - t) * out.die_height;
    }
    out.hint_x.push_back(px);
    out.hint_y.push_back(py);
  }

  // --- background nets with power-law locality ---
  std::vector<CellId> background;
  background.reserve(cfg.num_cells);
  for (CellId c = 0; c < cfg.num_cells; ++c) {
    if (!claimed[c]) background.push_back(c);
  }
  if (background.size() < 8) {
    throw std::invalid_argument("structures consume the whole die");
  }
  const double radius_cap =
      std::max<double>(grid.width, grid.height);
  const auto n_background_nets = static_cast<std::size_t>(
      cfg.background_nets_per_cell * static_cast<double>(background.size()));

  // Net centers walk a shuffled round-robin over the background so every
  // cell drives a near-equal number of nets (degree-regularized; see
  // graphgen/regular_nets.hpp for why this matters).
  std::vector<CellId> center_walk(background.begin(), background.end());
  std::size_t center_pos = center_walk.size();

  std::vector<CellId> pins;
  std::unordered_set<CellId> pin_set;
  for (std::size_t i = 0; i < n_background_nets; ++i) {
    if (center_pos >= center_walk.size()) {
      rng.shuffle(center_walk);
      center_pos = 0;
    }
    const CellId center = center_walk[center_pos++];
    const std::uint32_t size = draw_net_size(cfg, rng);
    const double radius = draw_radius(cfg.locality_alpha, radius_cap, rng);
    const auto ccol = static_cast<std::int64_t>(grid.col_of(center));
    const auto crow = static_cast<std::int64_t>(grid.row_of(center));
    pins.clear();
    pin_set.clear();
    pins.push_back(center);
    pin_set.insert(center);
    int tries = 0;
    while (pins.size() < size && tries < 40) {
      ++tries;
      const auto ir = static_cast<std::int64_t>(std::ceil(radius));
      const std::int64_t dx = rng.next_int(-ir, ir);
      const std::int64_t dy = rng.next_int(-ir, ir);
      const std::int64_t col = ccol + dx, row = crow + dy;
      if (!grid.valid(col, row)) continue;
      const CellId c = grid.at(static_cast<std::uint32_t>(col),
                               static_cast<std::uint32_t>(row));
      if (claimed[c]) continue;  // structures reachable via ports only
      if (pin_set.insert(c).second) pins.push_back(c);
    }
    if (pins.size() >= 2) nb.add_net(pins);
  }

  // --- planted structure internals and ports ---
  for (std::size_t s = 0; s < out.planted.size(); ++s) {
    const auto& spec = cfg.structures[s];
    const auto& members = out.planted[s];
    const auto n_internal = static_cast<std::size_t>(
        spec.internal_nets_per_cell * static_cast<double>(members.size()));
    detail::emit_regular_nets(members, n_internal, rng, nb, [&] {
      return draw_internal_net_size(spec.internal_avg_net_size, rng);
    });
    for (std::uint32_t p = 0; p < spec.ports; ++p) {
      const CellId inside = members[rng.next_below(members.size())];
      const CellId outside = background[rng.next_below(background.size())];
      const CellId net_pins[2] = {inside, outside};
      nb.add_net(net_pins);
    }
  }

  // --- pad nets ---
  for (const CellId pad : pads) {
    const CellId a = background[rng.next_below(background.size())];
    const CellId net_pins[2] = {pad, a};
    nb.add_net(net_pins);
  }

  out.netlist = nb.build();
  return out;
}

}  // namespace gtl
