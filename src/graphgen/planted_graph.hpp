#pragma once
// Random hypergraphs with planted tangled-logic structures, "generated
// based on [Garbers et al. 1990]" (paper §5.1.1, Table 1): a background
// random hypergraph in which selected disjoint cell groups are made much
// more connected internally and only weakly connected externally, so the
// ground-truth GTLs are known a priori.
//
// Calibration targets (so that scores land in the paper's bands):
//   * GTL cells carry complex-gate pin profiles (A_C > A_G), giving the
//     density-aware score its contrast (paper Fig. 3);
//   * each GTL talks to the outside through a handful of "port" cells
//     only, so T(GTL) is tens of nets even for 40K-cell structures
//     (paper Table 3 reports cuts of 28-36 for 32K-cell structures).

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace gtl {

/// One planted structure request: `count` disjoint GTLs of `size` cells.
struct PlantedGtlSpec {
  std::uint32_t size = 0;
  std::uint32_t count = 1;
};

struct PlantedGraphConfig {
  std::uint32_t num_cells = 10'000;
  std::vector<PlantedGtlSpec> gtls;

  // --- background graph ---
  /// Background nets per background cell.
  double background_nets_per_cell = 1.3;
  /// Probability that a background net has more than 2 pins.
  double multi_pin_fraction = 0.3;
  /// Cap on background net sizes (tail is geometric).
  std::uint32_t max_net_size = 8;

  // --- planted structures ---
  /// Internal nets per GTL cell (drives internal pin density).
  double internal_nets_per_cell = 1.5;
  /// Mean internal net size (>= 2).
  double internal_avg_net_size = 3.0;
  /// Number of port cells per GTL through which all external nets pass.
  /// 12 ports x 2 nets reproduces the paper's Table 1 score band
  /// (nGTL-S ≈ 0.1 at 500 cells down to ≈ 0.01 at 40K cells).
  std::uint32_t ports_per_gtl = 12;
  /// External 2-pin nets attached to each port cell.
  std::uint32_t nets_per_port = 2;
};

/// A generated graph plus its ground truth.
struct PlantedGraph {
  Netlist netlist;
  /// Ground-truth member lists, one per planted GTL, sorted by cell id.
  std::vector<std::vector<CellId>> gtl_members;
};

/// Generate a planted random graph. Throws std::invalid_argument if the
/// requested GTLs do not fit in num_cells. Deterministic given `rng`.
[[nodiscard]] PlantedGraph generate_planted_graph(
    const PlantedGraphConfig& config, Rng& rng);

/// Recovery quality of a found group vs a ground-truth group
/// (Table 1's "Miss" and "Over" columns).
struct RecoveryStats {
  double miss_fraction = 1.0;  ///< |truth − found| / |truth|
  double over_fraction = 0.0;  ///< |found − truth| / |truth|
  std::size_t overlap = 0;     ///< |found ∩ truth|
};

/// Compare a found member list against ground truth.
[[nodiscard]] RecoveryStats recovery_stats(std::span<const CellId> truth,
                                           std::span<const CellId> found);

}  // namespace gtl
