#pragma once
// Rent-rule-structured synthetic circuits — the stand-in for the ISPD
// 2005/2006 placement benchmarks and the industrial 65nm design, neither of
// which can ship with this repository (see DESIGN.md substitution table).
//
// Construction: cells live on an implicit sqrt(n) x sqrt(n) grid; each
// background net picks a center cell and draws its remaining pins within a
// Pareto-distributed radius.  Power-law net locality is the classical
// mechanism that yields Rent-rule scaling T ~ A * k^p with p controlled by
// the radius exponent.  Planted "tangled structures" (dissolved ROMs, MUX
// farms) occupy rectangular patches of the grid: their cells use
// complex-gate pin profiles, carry dense internal nets, and reach the rest
// of the design only through a few dozen port nets.  Fixed I/O pads ring
// the die so quadratic placement is anchored.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace gtl {

/// One planted tangled structure.
struct StructureSpec {
  std::uint32_t size = 1000;        ///< number of cells
  double internal_nets_per_cell = 1.6;
  double internal_avg_net_size = 3.2;
  std::uint32_t ports = 30;         ///< external 2-pin port nets
  /// Optional placement hint for the patch center in [0,1]^2 die
  /// coordinates; negative = let the generator choose.
  double center_x = -1.0;
  double center_y = -1.0;
};

struct SyntheticCircuitConfig {
  std::string name = "synthetic";
  std::uint32_t num_cells = 100'000;
  std::uint32_t num_pads = 64;         ///< fixed terminals on the periphery
  double background_nets_per_cell = 1.25;
  double multi_pin_fraction = 0.3;
  std::uint32_t max_net_size = 12;
  /// Pareto shape for net radius; larger => more local => smaller Rent p.
  double locality_alpha = 1.7;
  std::vector<StructureSpec> structures;
  /// Give cells names ("o123")? Costs memory on million-cell designs.
  bool with_names = false;
};

struct SyntheticCircuit {
  Netlist netlist;
  /// Planted structure member lists (sorted by id), parallel to
  /// config.structures.
  std::vector<std::vector<CellId>> planted;
  /// The generator's implicit grid coordinates (cell centers), useful as
  /// ground truth locality for tests; the placer does NOT see these.
  std::vector<double> hint_x, hint_y;
  double die_width = 0.0;
  double die_height = 0.0;
};

/// Generate a synthetic circuit. Deterministic given `rng`.
/// Throws std::invalid_argument if structures do not fit.
[[nodiscard]] SyntheticCircuit generate_synthetic_circuit(
    const SyntheticCircuitConfig& config, Rng& rng);

}  // namespace gtl
