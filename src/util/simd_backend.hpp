#pragma once

// Internal glue for the SIMD kernel layer: shared numeric constants and
// the declarations of the AVX2 translation unit.  Only src/util/simd.cpp
// and src/util/simd_avx2.cpp may include this header.

#include <cstddef>
#include <cstdint>

namespace gtl::simd::detail {

// exp2 approximation used by bounded_scores().  Both backends evaluate
// the identical fma chain; the constants below are constexpr-rounded the
// same way in both translation units.
//
// Accuracy budget (for the enclosure argument; see bounded_scores):
//   * t = fl(expo * fl(log_k * kInvLn2)) carries <= 3*2^-53 relative
//     error, i.e. an absolute error on the exponent of <= 3e-16 * t
//     <= 3e-13 for t <= kMaxT, which perturbs 2^-t by <= ~2.1e-13
//     relatively.
//   * The degree-11 Taylor polynomial of exp(x) on |x| <= ln2/2 has
//     truncation error <= |x|^12 / 12! * e^|x| < 9e-15, and the fma
//     Horner chain adds <= ~12 * 2^-53 of rounding.
//   * The final three multiplies/divides add <= 3 * 2^-53.
// Total relative error < 3e-13, four orders of magnitude inside the
// kCurveBoundEps = 1e-9 margin applied to the lo/hi enclosure.
inline constexpr double kInvLn2 = 1.4426950408889634074;  // 1 / ln 2
inline constexpr double kLn2 = 0.69314718055994530942;    // ln 2
// Exponents beyond this take the trivial [0, +inf) enclosure; 2^-1000 is
// far below any score the finder can distinguish from zero anyway.
inline constexpr double kMaxT = 1000.0;
// Taylor coefficients of exp(x): kExpCoeff[j] = 1/j!.
inline constexpr double kExpCoeff[12] = {
    1.0,
    1.0,
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
};

}  // namespace gtl::simd::detail

#if defined(GTL_SIMD_AVX2)

// The AVX2 backend, compiled with -mavx2 -mfma -ffp-contract=off in
// src/util/simd_avx2.cpp.  Signatures mirror the public kernels in
// util/simd.hpp one to one.
namespace gtl::simd::avx2 {

void pins_over_index(const std::uint64_t* pins, std::size_t n, std::size_t k0,
                     double* out);
void cut_to_double(const std::int64_t* cut, std::size_t n, double* out);
void div_by_scalar(const double* in, std::size_t n, double d, double* out);
void mul_by_scalar(const double* in, std::size_t n, double s, double* out);
void div_elem(const double* num, const double* den, std::size_t n,
              double* out);
void sub_elem(const double* a, const double* b, std::size_t n, double* out);
void rent_clamp(const double* log_cut, const double* log_ac,
                const double* log_k, const double* a_c, std::size_t n,
                double* out);
void bounded_scores(const double* cutd, const double* expo,
                    const double* log_k, std::size_t n, double a_g,
                    double* lo, double* hi);
double min_value(const double* v, std::size_t n);
double max_value(const double* v, std::size_t n);
bool any_not_below(const double* v, std::size_t n, double t);
std::size_t collect_not_above(const double* v, std::size_t n, double t,
                              std::uint32_t* out, std::size_t cap);
std::size_t collect_not_below(const double* v, std::size_t n, double t,
                              std::uint32_t* out, std::size_t cap);
double dot_blocked(const double* u, const double* v, std::size_t n);
void axpy2(std::size_t n, double alpha, const double* p, const double* ap,
           double* x, double* r);
void xpay(std::size_t n, const double* z, double beta, double* p);
void jacobi_precondition(std::size_t n, const double* diag, const double* r,
                         double* z);
void spmv_csr(std::size_t n, const std::size_t* row_offset,
              const std::uint32_t* col, const double* val, const double* x,
              double* y);

}  // namespace gtl::simd::avx2

#endif  // GTL_SIMD_AVX2
