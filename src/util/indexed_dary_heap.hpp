#pragma once
// Position-indexed d-ary heap over densely-numbered ids (CellId, NetId,
// ...).  This is the frontier structure of the Phase-I ordering engine:
// a priority queue that supports decrease/increase-key and erase of an
// arbitrary element in O(log_d n), with zero allocation per operation.
//
// Versus a node-based std::set "heap" (the previous frontier):
//   * entries live in one contiguous vector — sift operations touch a
//     handful of cache lines instead of chasing red-black tree pointers;
//   * re-keying is an in-place sift, not an erase + insert (two tree
//     rebalances and a node allocation);
//   * a flat pos_[id] side array gives O(1) membership tests and O(1)
//     location of the entry to re-key.
// Arity 4 keeps the tree shallow (log_4 n levels) while each node's
// children share a cache line.
//
// The comparator defines a STRICT TOTAL order on keys ("ranks before"):
// less(a, b) == true means `a` is closer to the top.  Keys that embed
// the id as the final tie-break (like the ordering engine's FrontierKey)
// make top() unique, which is what keeps orderings deterministic.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gtl {

template <typename Key, typename Less, unsigned Arity = 4>
class IndexedDaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  using Id = std::uint32_t;
  static constexpr std::uint32_t kNoPos = static_cast<std::uint32_t>(-1);

  struct Entry {
    Key key;
    Id id;
  };

  IndexedDaryHeap() = default;
  explicit IndexedDaryHeap(Less less) : less_(std::move(less)) {}

  /// Size the position index for ids in [0, num_ids).  Empties the heap.
  /// Must be called before the first push; may be called again to resize.
  void reset(std::size_t num_ids) {
    entries_.clear();
    pos_.assign(num_ids, kNoPos);
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] bool contains(Id id) const {
    assert(id < pos_.size());
    return pos_[id] != kNoPos;
  }

  /// Current key of a contained id.
  [[nodiscard]] const Key& key_of(Id id) const {
    assert(contains(id));
    return entries_[pos_[id]].key;
  }

  /// Empty the heap in O(size) — only entries still present are visited,
  /// so repeated build/drain cycles cost O(work done), not O(num_ids).
  void clear() {
    for (const Entry& e : entries_) pos_[e.id] = kNoPos;
    entries_.clear();
  }

  /// Insert an id that is not currently in the heap.
  void push(Id id, const Key& key) {
    assert(id < pos_.size() && !contains(id));
    entries_.push_back(Entry{key, id});
    sift_up(static_cast<std::uint32_t>(entries_.size() - 1));
  }

  /// Re-key a contained id (key may move it either direction).
  void update_key(Id id, const Key& key) {
    assert(contains(id));
    const std::uint32_t at = pos_[id];
    const bool towards_top = less_(key, entries_[at].key);
    entries_[at].key = key;
    if (towards_top) {
      sift_up(at);
    } else {
      sift_down(at);
    }
  }

  /// Remove a contained id from anywhere in the heap.
  void erase(Id id) {
    assert(contains(id));
    const std::uint32_t at = pos_[id];
    pos_[id] = kNoPos;
    const std::uint32_t last = static_cast<std::uint32_t>(entries_.size() - 1);
    if (at != last) {
      const bool towards_top = less_(entries_[last].key, entries_[at].key);
      entries_[at] = std::move(entries_[last]);
      pos_[entries_[at].id] = at;
      entries_.pop_back();
      if (towards_top) {
        sift_up(at);
      } else {
        sift_down(at);
      }
    } else {
      entries_.pop_back();
    }
  }

  /// Highest-priority entry (unique when the key order is total).
  [[nodiscard]] const Entry& top() const {
    assert(!empty());
    return entries_.front();
  }

  void pop() {
    assert(!empty());
    pos_[entries_.front().id] = kNoPos;
    if (entries_.size() > 1) {
      entries_.front() = std::move(entries_.back());
      pos_[entries_.front().id] = 0;
      entries_.pop_back();
      sift_down(0);
    } else {
      entries_.pop_back();
    }
  }

 private:
  void sift_up(std::uint32_t at) {
    Entry moving = std::move(entries_[at]);
    while (at > 0) {
      const std::uint32_t parent = (at - 1) / Arity;
      if (!less_(moving.key, entries_[parent].key)) break;
      entries_[at] = std::move(entries_[parent]);
      pos_[entries_[at].id] = at;
      at = parent;
    }
    entries_[at] = std::move(moving);
    pos_[entries_[at].id] = at;
  }

  void sift_down(std::uint32_t at) {
    const std::uint32_t n = static_cast<std::uint32_t>(entries_.size());
    Entry moving = std::move(entries_[at]);
    for (;;) {
      const std::uint64_t first_child =
          static_cast<std::uint64_t>(at) * Arity + 1;
      if (first_child >= n) break;
      const std::uint32_t end = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(first_child + Arity, n));
      std::uint32_t best = static_cast<std::uint32_t>(first_child);
      for (std::uint32_t c = best + 1; c < end; ++c) {
        if (less_(entries_[c].key, entries_[best].key)) best = c;
      }
      if (!less_(entries_[best].key, moving.key)) break;
      entries_[at] = std::move(entries_[best]);
      pos_[entries_[at].id] = at;
      at = best;
    }
    entries_[at] = std::move(moving);
    pos_[entries_[at].id] = at;
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> pos_;  // id -> slot in entries_, kNoPos if absent
  Less less_;
};

}  // namespace gtl
