#include "util/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/failpoint.hpp"

namespace gtl {
namespace {

Status errno_status(const std::string& what) {
  return Status::invalid_argument(what + ": " + std::strerror(errno));
}

/// Status for a kFail action, preferring the schedule's message.
Status injected_status(const failpoint::Action& fp, const char* fallback) {
  return Status::unavailable(fp.message.empty() ? fallback : fp.message);
}

/// Fill sockaddr_un, rejecting paths longer than sun_path holds.
Status fill_addr(const std::filesystem::path& path, sockaddr_un* addr) {
  const std::string s = path.string();
  if (s.empty()) {
    return Status::invalid_argument("socket path must not be empty");
  }
  if (s.size() >= sizeof(addr->sun_path)) {
    return Status::invalid_argument(
        "socket path \"" + s + "\" exceeds the AF_UNIX limit of " +
        std::to_string(sizeof(addr->sun_path) - 1) + " bytes");
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, s.c_str(), s.size() + 1);
  return Status::ok();
}

}  // namespace

UnixStream::UnixStream(UnixStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Status UnixStream::connect(const std::filesystem::path& path,
                           UnixStream* out) {
  sockaddr_un addr{};
  GTL_RETURN_IF_ERROR(fill_addr(path, &addr));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket()");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status st = errno_status("connect " + path.string());
    ::close(fd);
    return st;
  }
  *out = UnixStream(fd);
  return Status::ok();
}

Status UnixStream::write_all(std::string_view data) {
  if (fd_ < 0) return Status::invalid_argument("write on a closed stream");
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t len = data.size() - off;
    // Failpoint "socket.send": fail = injected transport error; eintr =
    // one interrupted iteration; short_io = send at most `param` bytes
    // this call; delay honored.
    if (failpoint::Action fp; failpoint::check("socket.send", &fp)) {
      switch (fp.kind) {
        case failpoint::Action::Kind::kFail:
          return injected_status(fp, "send failed (injected failpoint)");
        case failpoint::Action::Kind::kEintr:
          continue;  // exactly what a real EINTR does here
        case failpoint::Action::Kind::kShortIo:
          len = std::min<std::size_t>(
              len, static_cast<std::size_t>(std::max<std::uint64_t>(
                       1, fp.param)));
          break;
        case failpoint::Action::Kind::kDelay:
          std::this_thread::sleep_for(std::chrono::milliseconds(fp.param));
          break;
      }
    }
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a fatal SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + off, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status UnixStream::write_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return write_all(framed);
}

Status UnixStream::read_line(std::string* line, bool* eof,
                             std::size_t max_bytes) {
  if (fd_ < 0) return Status::invalid_argument("read on a closed stream");
  *eof = false;
  line->clear();
  for (;;) {
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (nl > max_bytes) {
        return Status::out_of_range("line exceeds the " +
                                    std::to_string(max_bytes) + "-byte cap");
      }
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::ok();
    }
    if (buffer_.size() > max_bytes) {
      return Status::out_of_range("line exceeds the " +
                                  std::to_string(max_bytes) + "-byte cap");
    }
    char chunk[4096];
    std::size_t want = sizeof(chunk);
    // Failpoint "socket.recv": fail = injected transport error; eintr =
    // one interrupted iteration; short_io = receive at most `param`
    // bytes this call; delay honored.
    if (failpoint::Action fp; failpoint::check("socket.recv", &fp)) {
      switch (fp.kind) {
        case failpoint::Action::Kind::kFail:
          return injected_status(fp, "recv failed (injected failpoint)");
        case failpoint::Action::Kind::kEintr:
          continue;
        case failpoint::Action::Kind::kShortIo:
          want = std::min<std::size_t>(
              want, static_cast<std::size_t>(std::max<std::uint64_t>(
                        1, fp.param)));
          break;
        case failpoint::Action::Kind::kDelay:
          std::this_thread::sleep_for(std::chrono::milliseconds(fp.param));
          break;
      }
    }
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("recv");
    }
    if (n == 0) {
      if (buffer_.empty()) {
        *eof = true;
        return Status::ok();
      }
      // Unterminated final line: hand it over; the next call reports EOF.
      line->swap(buffer_);
      buffer_.clear();
      return Status::ok();
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void UnixStream::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void UnixStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

Status UnixListener::bind_and_listen(const std::filesystem::path& path,
                                     UnixListener* out, int backlog) {
  sockaddr_un addr{};
  GTL_RETURN_IF_ERROR(fill_addr(path, &addr));

  // Unlink only a stale *socket* file; refuse to clobber anything else.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Status::invalid_argument(path.string() +
                                      " exists and is not a socket");
    }
    if (::unlink(path.c_str()) != 0) {
      return errno_status("unlink stale socket " + path.string());
    }
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket()");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status bind_st = errno_status("bind " + path.string());
    ::close(fd);
    return bind_st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status listen_st = errno_status("listen " + path.string());
    ::close(fd);
    ::unlink(path.c_str());
    return listen_st;
  }
  out->close();
  out->fd_ = fd;
  out->path_ = path;
  return Status::ok();
}

Status UnixListener::poll_accept(int timeout_ms, UnixStream* out,
                                 bool* accepted) {
  *accepted = false;
  if (fd_ < 0) return Status::invalid_argument("accept on a closed listener");
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return Status::ok();  // treated as a timeout tick
    return errno_status("poll");
  }
  if (rc == 0) return Status::ok();
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return Status::ok();
    return errno_status("accept");
  }
  *out = UnixStream(conn);
  *accepted = true;
  return Status::ok();
}

void UnixListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!path_.empty()) ::unlink(path_.c_str());
  }
  path_.clear();
}

}  // namespace gtl
