// AVX2 backend of the SIMD kernel layer.  Compiled only when the
// resolved GTL_SIMD backend is avx2, with -mavx2 -mfma -ffp-contract=off.
//
// Bitwise contract with src/util/simd.cpp (scalar_ref):
//   * elementwise lanes use the same correctly-rounded IEEE-754 ops in
//     the same per-element order (vfmadd === std::fma, vdivpd === /,
//     vroundpd(nearest) === std::nearbyint, cmp/blend === the scalar
//     compare-and-select written in scalar_ref);
//   * reductions accumulate into kLaneWidth lanes with element i folding
//     into lane i % kLaneWidth and combine as ((a0+a1)+(a2+a3)) — the
//     identical blocked order scalar_ref commits to;
//   * remainder elements of elementwise kernels are delegated to
//     scalar_ref, which is valid precisely because lanes are order-free;
//   * integer->double lanes use exponent-tricks that are exact within a
//     guarded range and fall back to scalar_ref casts outside it.

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/simd.hpp"
#include "util/simd_backend.hpp"

namespace gtl::simd::avx2 {

namespace {

using detail::kExpCoeff;
using detail::kInvLn2;
using detail::kLn2;
using detail::kMaxT;

constexpr std::size_t kW = kLaneWidth;  // 4 x 64-bit lanes per __m256d

// Magic constants for exact integer->double conversion without AVX-512:
// uint64 x < 2^52 converts via OR with the exponent of 2^52 and a
// subtract; int64 |x| < 2^51 via a 2^52+2^51 offset.
constexpr std::uint64_t kExp52Bits = 0x4330000000000000ULL;  // 2^52
constexpr double kTwo52 = 4503599627370496.0;                // 2^52
constexpr std::uint64_t kExp52_51Bits = 0x4338000000000000ULL;
constexpr double kTwo52Plus51 = 6755399441055744.0;  // 2^52 + 2^51

inline double combine_lanes_add(__m256d v) {
  alignas(32) double a[kW];
  _mm256_store_pd(a, v);
  return (a[0] + a[1]) + (a[2] + a[3]);
}

}  // namespace

void pins_over_index(const std::uint64_t* pins, std::size_t n, std::size_t k0,
                     double* out) {
  if (k0 + n >= (1ULL << 52)) {  // keep the k-lane doubles exact
    scalar_ref::pins_over_index(pins, n, k0, out);
    return;
  }
  const __m256d step = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m256i limit = _mm256_set1_epi64x(1LL << 52);
  const __m256i neg1 = _mm256_set1_epi64x(-1);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    const __m256i pv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pins + i));
    // In-range means 0 <= pv < 2^52 as a signed lane.
    const __m256i ok = _mm256_and_si256(_mm256_cmpgt_epi64(limit, pv),
                                        _mm256_cmpgt_epi64(pv, neg1));
    if (_mm256_movemask_epi8(ok) != -1) {
      scalar_ref::pins_over_index(pins + i, kW, k0 + i, out + i);
      continue;
    }
    const __m256d pd = _mm256_sub_pd(
        _mm256_castsi256_pd(
            _mm256_or_si256(pv, _mm256_set1_epi64x(kExp52Bits))),
        _mm256_set1_pd(kTwo52));
    const __m256d kd =
        _mm256_add_pd(_mm256_set1_pd(static_cast<double>(k0 + i)), step);
    _mm256_storeu_pd(out + i, _mm256_div_pd(pd, kd));
  }
  scalar_ref::pins_over_index(pins + nb, n - nb, k0 + nb, out + nb);
}

void cut_to_double(const std::int64_t* cut, std::size_t n, double* out) {
  const __m256i hi = _mm256_set1_epi64x(1LL << 51);
  const __m256i lo = _mm256_set1_epi64x(-(1LL << 51) - 1);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    const __m256i cv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cut + i));
    const __m256i ok = _mm256_and_si256(_mm256_cmpgt_epi64(hi, cv),
                                        _mm256_cmpgt_epi64(cv, lo));
    if (_mm256_movemask_epi8(ok) != -1) {
      scalar_ref::cut_to_double(cut + i, kW, out + i);
      continue;
    }
    const __m256d cd = _mm256_sub_pd(
        _mm256_castsi256_pd(
            _mm256_add_epi64(cv, _mm256_set1_epi64x(kExp52_51Bits))),
        _mm256_set1_pd(kTwo52Plus51));
    _mm256_storeu_pd(out + i, cd);
  }
  scalar_ref::cut_to_double(cut + nb, n - nb, out + nb);
}

void div_by_scalar(const double* in, std::size_t n, double d, double* out) {
  const __m256d dv = _mm256_set1_pd(d);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_loadu_pd(in + i), dv));
  }
  scalar_ref::div_by_scalar(in + nb, n - nb, d, out + nb);
}

void mul_by_scalar(const double* in, std::size_t n, double s, double* out) {
  const __m256d sv = _mm256_set1_pd(s);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(in + i), sv));
  }
  scalar_ref::mul_by_scalar(in + nb, n - nb, s, out + nb);
}

void div_elem(const double* num, const double* den, std::size_t n,
              double* out) {
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_loadu_pd(num + i),
                                            _mm256_loadu_pd(den + i)));
  }
  scalar_ref::div_elem(num + nb, den + nb, n - nb, out + nb);
}

void sub_elem(const double* a, const double* b, std::size_t n, double* out) {
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  scalar_ref::sub_elem(a + nb, b + nb, n - nb, out + nb);
}

void rent_clamp(const double* log_cut, const double* log_ac,
                const double* log_k, const double* a_c, std::size_t n,
                double* out) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    __m256d p = _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(log_cut + i),
                                            _mm256_loadu_pd(log_ac + i)),
                              _mm256_loadu_pd(log_k + i));
    // clamp(p, 0, 1) by compare-and-select, matching scalar_ref lane-wise.
    p = _mm256_blendv_pd(p, zero, _mm256_cmp_pd(p, zero, _CMP_LT_OQ));
    p = _mm256_blendv_pd(p, one, _mm256_cmp_pd(one, p, _CMP_LT_OQ));
    const __m256d invalid =
        _mm256_cmp_pd(_mm256_loadu_pd(a_c + i), zero, _CMP_LE_OQ);
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(p, one, invalid));
  }
  scalar_ref::rent_clamp(log_cut + nb, log_ac + nb, log_k + nb, a_c + nb,
                         n - nb, out + nb);
}

void bounded_scores(const double* cutd, const double* expo,
                    const double* log_k, std::size_t n, double a_g,
                    double* lo, double* hi) {
  const __m256d v_inv_ln2 = _mm256_set1_pd(kInvLn2);
  const __m256d v_ln2 = _mm256_set1_pd(kLn2);
  const __m256d v_max_t = _mm256_set1_pd(kMaxT);
  const __m256d v_ag = _mm256_set1_pd(a_g);
  const __m256d v_lo_scale = _mm256_set1_pd(1.0 - kCurveBoundEps);
  const __m256d v_hi_scale = _mm256_set1_pd(1.0 + kCurveBoundEps);
  const __m256d v_zero = _mm256_setzero_pd();
  const __m256d v_inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    const __m256d t = _mm256_mul_pd(
        _mm256_loadu_pd(expo + i),
        _mm256_mul_pd(_mm256_loadu_pd(log_k + i), v_inv_ln2));
    const __m256d ok = _mm256_cmp_pd(t, v_max_t, _CMP_LE_OQ);
    const __m256d s = _mm256_xor_pd(t, sign_mask);  // exact -t
    const __m256d ri =
        _mm256_round_pd(s, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m256d f = _mm256_sub_pd(s, ri);
    const __m256d x = _mm256_mul_pd(f, v_ln2);
    __m256d q = _mm256_set1_pd(kExpCoeff[11]);
    for (int j = 10; j >= 0; --j) {
      q = _mm256_fmadd_pd(q, x, _mm256_set1_pd(kExpCoeff[j]));
    }
    // 2^ri by exponent-bit construction; ri is integral in [-1000, 0]
    // on ok lanes, garbage elsewhere (blended away below).
    const __m256i biased = _mm256_add_epi64(
        _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(ri)),
        _mm256_set1_epi64x(1023));
    const __m256d p2 = _mm256_castsi256_pd(_mm256_slli_epi64(biased, 52));
    const __m256d v = _mm256_div_pd(
        _mm256_mul_pd(_mm256_mul_pd(_mm256_loadu_pd(cutd + i), q), p2),
        v_ag);
    _mm256_storeu_pd(
        lo + i, _mm256_blendv_pd(v_zero, _mm256_mul_pd(v, v_lo_scale), ok));
    _mm256_storeu_pd(
        hi + i, _mm256_blendv_pd(v_inf, _mm256_mul_pd(v, v_hi_scale), ok));
  }
  scalar_ref::bounded_scores(cutd + nb, expo + nb, log_k + nb, n - nb, a_g,
                             lo + nb, hi + nb);
}

double min_value(const double* v, std::size_t n) {
  __m256d vacc = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    vacc = _mm256_min_pd(vacc, _mm256_loadu_pd(v + i));
  }
  alignas(32) double acc[kW];
  _mm256_store_pd(acc, vacc);
  for (std::size_t l = 0; l < n % kW; ++l) {
    acc[l] = acc[l] < v[nb + l] ? acc[l] : v[nb + l];
  }
  const double m01 = acc[0] < acc[1] ? acc[0] : acc[1];
  const double m23 = acc[2] < acc[3] ? acc[2] : acc[3];
  return m01 < m23 ? m01 : m23;
}

double max_value(const double* v, std::size_t n) {
  __m256d vacc = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    vacc = _mm256_max_pd(vacc, _mm256_loadu_pd(v + i));
  }
  alignas(32) double acc[kW];
  _mm256_store_pd(acc, vacc);
  for (std::size_t l = 0; l < n % kW; ++l) {
    acc[l] = acc[l] > v[nb + l] ? acc[l] : v[nb + l];
  }
  const double m01 = acc[0] > acc[1] ? acc[0] : acc[1];
  const double m23 = acc[2] > acc[3] ? acc[2] : acc[3];
  return m01 > m23 ? m01 : m23;
}

bool any_not_below(const double* v, std::size_t n, double t) {
  const __m256d tv = _mm256_set1_pd(t);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    const __m256d ge = _mm256_cmp_pd(_mm256_loadu_pd(v + i), tv, _CMP_GE_OQ);
    if (_mm256_movemask_pd(ge) != 0) return true;
  }
  return scalar_ref::any_not_below(v + nb, n - nb, t);
}

std::size_t collect_not_above(const double* v, std::size_t n, double t,
                              std::uint32_t* out, std::size_t cap) {
  const __m256d tv = _mm256_set1_pd(t);
  std::size_t count = 0;
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(v + i), tv, _CMP_LE_OQ));
    while (mask != 0) {
      const int l = __builtin_ctz(static_cast<unsigned>(mask));
      mask &= mask - 1;
      if (count < cap) {
        out[count] = static_cast<std::uint32_t>(i + static_cast<size_t>(l));
      }
      if (++count > cap) return cap + 1;
    }
  }
  for (std::size_t i = nb; i < n; ++i) {
    if (!(v[i] <= t)) continue;
    if (count < cap) out[count] = static_cast<std::uint32_t>(i);
    if (++count > cap) return cap + 1;
  }
  return count;
}

std::size_t collect_not_below(const double* v, std::size_t n, double t,
                              std::uint32_t* out, std::size_t cap) {
  const __m256d tv = _mm256_set1_pd(t);
  std::size_t count = 0;
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(v + i), tv, _CMP_GE_OQ));
    while (mask != 0) {
      const int l = __builtin_ctz(static_cast<unsigned>(mask));
      mask &= mask - 1;
      if (count < cap) {
        out[count] = static_cast<std::uint32_t>(i + static_cast<size_t>(l));
      }
      if (++count > cap) return cap + 1;
    }
  }
  for (std::size_t i = nb; i < n; ++i) {
    if (!(v[i] >= t)) continue;
    if (count < cap) out[count] = static_cast<std::uint32_t>(i);
    if (++count > cap) return cap + 1;
  }
  return count;
}

double dot_blocked(const double* u, const double* v, std::size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    vacc = _mm256_fmadd_pd(_mm256_loadu_pd(u + i), _mm256_loadu_pd(v + i),
                           vacc);
  }
  alignas(32) double acc[kW];
  _mm256_store_pd(acc, vacc);
  for (std::size_t l = 0; l < n % kW; ++l) {
    acc[l] = std::fma(u[nb + l], v[nb + l], acc[l]);
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void axpy2(std::size_t n, double alpha, const double* p, const double* ap,
           double* x, double* r) {
  const __m256d av = _mm256_set1_pd(alpha);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    _mm256_storeu_pd(
        x + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(p + i),
                               _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(
        r + i, _mm256_fnmadd_pd(av, _mm256_loadu_pd(ap + i),
                                _mm256_loadu_pd(r + i)));
  }
  scalar_ref::axpy2(n - nb, alpha, p + nb, ap + nb, x + nb, r + nb);
}

void xpay(std::size_t n, const double* z, double beta, double* p) {
  const __m256d bv = _mm256_set1_pd(beta);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    _mm256_storeu_pd(
        p + i, _mm256_fmadd_pd(bv, _mm256_loadu_pd(p + i),
                               _mm256_loadu_pd(z + i)));
  }
  scalar_ref::xpay(n - nb, z + nb, beta, p + nb);
}

void jacobi_precondition(std::size_t n, const double* diag, const double* r,
                         double* z) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d guard = _mm256_set1_pd(1e-12);
  const std::size_t nb = n - n % kW;
  for (std::size_t i = 0; i < nb; i += kW) {
    const __m256d d = _mm256_loadu_pd(diag + i);
    const __m256d rv = _mm256_loadu_pd(r + i);
    const __m256d ad = _mm256_andnot_pd(sign_mask, d);
    const __m256d use = _mm256_cmp_pd(ad, guard, _CMP_GT_OQ);
    // Guarded lanes may divide by ~0 here; the blend discards them and
    // SSE/AVX arithmetic never traps under the default masked MXCSR.
    _mm256_storeu_pd(z + i, _mm256_blendv_pd(rv, _mm256_div_pd(rv, d), use));
  }
  scalar_ref::jacobi_precondition(n - nb, diag + nb, r + nb, z + nb);
}

void spmv_csr(std::size_t n, const std::size_t* row_offset,
              const std::uint32_t* col, const double* val, const double* x,
              double* y) {
  // vgatherdpd sign-extends its i32 indices, so column ids must stay
  // <= INT32_MAX; SparseMatrix::assemble() enforces that bound.
  for (std::size_t row = 0; row < n; ++row) {
    const std::size_t begin = row_offset[row];
    const std::size_t len = row_offset[row + 1] - begin;
    __m256d vacc = _mm256_setzero_pd();
    const std::size_t nb = len - len % kW;
    for (std::size_t j = 0; j < nb; j += kW) {
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(col + begin + j));
      // The masked form carries an explicit (all-lanes) source operand;
      // the plain _mm256_i32gather_pd expands through an undefined
      // register and trips GCC's -Wmaybe-uninitialized.
      const __m256d xs = _mm256_mask_i32gather_pd(
          _mm256_setzero_pd(), x, idx,
          _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
      vacc = _mm256_fmadd_pd(_mm256_loadu_pd(val + begin + j), xs, vacc);
    }
    alignas(32) double acc[kW];
    _mm256_store_pd(acc, vacc);
    for (std::size_t l = 0; l < len % kW; ++l) {
      const std::size_t e = begin + nb + l;
      acc[l] = std::fma(val[e], x[col[e]], acc[l]);
    }
    y[row] = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  }
}

}  // namespace gtl::simd::avx2
