#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// The paper's algorithm is seeded-random (random seeds for agglomeration,
// random graphs for Table 1).  Every stochastic component in this library
// takes an explicit Rng so runs are reproducible bit-for-bit given a seed.

#include <cstdint>
#include <limits>
#include <vector>

namespace gtl {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Seeded through SplitMix64 so that similar seeds give unrelated streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). bound must be > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n). Requires k <= n.
  /// O(k) expected time for k << n (hash-set rejection), O(n) otherwise.
  std::vector<std::uint32_t> sample_distinct(std::uint32_t n, std::uint32_t k);

  /// Derive an independent child stream (for per-thread / per-seed RNGs).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace gtl
