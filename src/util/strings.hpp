#pragma once
// Small string helpers shared across layers.

#include <cstdint>
#include <string>

namespace gtl {

/// prefix + decimal id, built via += rather than `prefix + to_string(id)`:
/// the operator+ form trips GCC 12's -Wrestrict false positive (GCC bug
/// 105329) at -O3 under -Werror.
inline std::string numbered_name(const char* prefix, std::uint64_t id) {
  std::string name(prefix);
  name += std::to_string(id);
  return name;
}

}  // namespace gtl
