#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace gtl {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_.emplace(std::string(arg), "true");
    } else {
      kv_.emplace(std::string(arg.substr(0, eq)),
                  std::string(arg.substr(eq + 1)));
    }
  }
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : fallback;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : fallback;
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

Scale parse_scale(const CliArgs& args) {
  const std::string s = args.get("scale", "default");
  if (s == "smoke") return Scale::kSmoke;
  if (s == "paper") return Scale::kPaper;
  return Scale::kDefault;
}

const char* scale_name(Scale s) {
  switch (s) {
    case Scale::kSmoke: return "smoke";
    case Scale::kPaper: return "paper";
    default: return "default";
  }
}

}  // namespace gtl
