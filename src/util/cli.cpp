#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string_view>

namespace gtl {

CliArgs::CliArgs(int argc, char** argv) {
  program_ = argc > 0 && argv[0] != nullptr ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    std::string key;
    std::string value;
    if (eq == std::string_view::npos) {
      key = std::string(arg);
      value = "true";
      bare_.insert(key);
    } else {
      key = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    }
    // A repeated flag is ambiguous (which value wins?) — reject it
    // instead of silently keeping the first, as std::map::emplace did.
    if (!kv_.emplace(std::move(key), std::move(value)).second) {
      record_error(Status::parse_error("--" + std::string(arg.substr(0, eq)) +
                                       " given more than once"));
    }
  }
}

CliArgs& CliArgs::usage(std::string summary) {
  summary_ = std::move(summary);
  return *this;
}

CliArgs& CliArgs::describe(std::string spec, std::string help) {
  options_.emplace_back(std::move(spec), std::move(help));
  return *this;
}

bool CliArgs::help_requested() const { return has("help") || has("h"); }

void CliArgs::print_help(std::ostream& os) const {
  os << "usage: " << program_ << " [--option=value ...]\n";
  if (!summary_.empty()) os << "\n" << summary_ << "\n";
  os << "\noptions:\n";
  std::size_t width = 6;  // fits "--help"
  for (const auto& [spec, help] : options_) {
    width = std::max(width, spec.size() + 2);
  }
  for (const auto& [spec, help] : options_) {
    os << "  --" << spec << std::string(width - spec.size() - 2 + 2, ' ')
       << help << "\n";
  }
  os << "  --help" << std::string(width - 6 + 2, ' ')
     << "show this help and exit\n";
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::string CliArgs::get_string(const std::string& key,
                                const std::string& fallback) const {
  std::string value = fallback;
  (void)parse_string(key, &value);  // strict parser records the error
  return value;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  std::int64_t value = fallback;
  (void)parse_int(key, &value);  // strict parser records the error
  return value;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  double value = fallback;
  (void)parse_double(key, &value);  // strict parser records the error
  return value;
}

Status CliArgs::parse_int(const std::string& key, std::int64_t* out) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return Status::ok();
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || end == nullptr || *end != '\0') {
    const Status st = Status::parse_error("--" + key + "=" + it->second +
                                          ": not an integer");
    record_error(st);
    return st;
  }
  *out = v;
  return Status::ok();
}

Status CliArgs::parse_double(const std::string& key, double* out) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return Status::ok();
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || end == nullptr || *end != '\0') {
    const Status st = Status::parse_error("--" + key + "=" + it->second +
                                          ": not a number");
    record_error(st);
    return st;
  }
  *out = v;
  return Status::ok();
}

Status CliArgs::parse_string(const std::string& key, std::string* out) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return Status::ok();
  if (bare_.count(key) != 0) {
    const Status st =
        Status::parse_error("--" + key + ": expected --" + key + "=value");
    record_error(st);
    return st;
  }
  *out = it->second;
  return Status::ok();
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

Status CliArgs::status() const {
  // Lazy unknown-flag validation: describe() registrations happen after
  // construction, so the check runs on the first status() read once at
  // least one option is registered (a bare CliArgs with no registered
  // options accepts anything, preserving ad-hoc uses).
  if (!checked_unknown_ && !options_.empty()) {
    checked_unknown_ = true;
    for (const auto& [key, value] : kv_) {
      if (key == "help" || key == "h") continue;
      bool known = false;
      for (const auto& [spec, help] : options_) {
        const std::string spec_key = spec.substr(0, spec.find('='));
        if (key == spec_key) {
          known = true;
          break;
        }
      }
      if (!known) {
        record_error(Status::parse_error("--" + key + ": unknown option"));
        break;
      }
    }
  }
  return status_;
}

void CliArgs::record_error(Status st) const {
  if (status_.is_ok() && !st.is_ok()) status_ = std::move(st);
}

bool cli_help_exit(const CliArgs& args) {
  if (!args.help_requested()) return false;
  args.print_help(std::cout);
  return true;
}

bool cli_error_exit(const CliArgs& args) {
  const Status st = args.status();
  if (st.is_ok()) return false;
  std::cerr << "error: " << st.to_string() << "\n(--help for usage)\n";
  return true;
}

Scale parse_scale(const CliArgs& args) {
  const std::string s = args.get("scale", "default");
  if (s == "smoke") return Scale::kSmoke;
  if (s == "paper") return Scale::kPaper;
  if (s != "default") {
    args.record_error(Status::parse_error(
        "--scale=" + s + ": expected smoke, default, or paper"));
  }
  return Scale::kDefault;
}

const char* scale_name(Scale s) {
  switch (s) {
    case Scale::kSmoke: return "smoke";
    case Scale::kPaper: return "paper";
    default: return "default";
  }
}

}  // namespace gtl
