#pragma once
// Expected-style error reporting for user-facing entry points.
//
// GTL_REQUIRE (util/require.hpp) guards *programmer* errors — API misuse
// that indicates a bug in the calling code — and throws.  Status carries
// *user input* errors (bad config files, malformed CLI values, unparsable
// JSON) back to the caller as a value, so services and CLIs can reject a
// request without exceptions or aborts.  Functions that produce a value
// take an out-parameter and return Status; `GTL_RETURN_IF_ERROR` chains
// them.

#include <string>
#include <utility>

namespace gtl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< a value is outside its documented domain
  kOutOfRange,       ///< a numeric value over/underflows its target type
  kParseError,       ///< text input is syntactically malformed
  kNotFound,         ///< a required key/field is absent
  kCancelled,        ///< the operation was cancelled cooperatively
  kUnavailable,      ///< the service cannot take the request now (overload)
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kOutOfRange: return "out of range";
    case StatusCode::kParseError: return "parse error";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

// The class itself is [[nodiscard]]: ANY function returning a Status —
// current or future, in any module — warns (and fails -Werror builds)
// when the result is dropped.  Intentional drops must say so:
//   (void)try_write_snapshot(...);  // best-effort cache fill
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status out_of_range(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status parse_error(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status not_found(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code name>: <message>".
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace gtl

/// Propagate a non-OK Status to the caller.
#define GTL_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    if (::gtl::Status gtl_status_ = (expr); !gtl_status_.is_ok()) { \
      return gtl_status_;                          \
    }                                              \
  } while (false)
