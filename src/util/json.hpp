#pragma once
// Minimal JSON document model for config/result (de)serialization.
//
// Scope: exactly what a service or CLI front-end needs to round-trip
// FinderConfig / FinderResult and the bench trajectory files — objects,
// arrays, strings, bools, null, and numbers.  Numbers keep their integer
// identity (int64/uint64) when the text has no fraction/exponent, so
// 64-bit ids and seeds survive a round trip bit-exactly; doubles are
// emitted with shortest round-trippable formatting (std::to_chars).
//
// Errors are reported through gtl::Status (no exceptions on bad input);
// parse() gives byte offsets in its messages.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace gtl {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// std::map keeps dump() output deterministically key-sorted.
  using Object = std::map<std::string, JsonValue>;

  enum class Kind {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject
  };

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(std::int64_t i) : v_(i) {}
  JsonValue(std::uint64_t u) : v_(u) {}
  JsonValue(int i) : v_(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned u) : v_(static_cast<std::uint64_t>(u)) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return static_cast<Kind>(v_.index()); }
  [[nodiscard]] bool is_null() const { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::kBool; }
  [[nodiscard]] bool is_number() const {
    return kind() == Kind::kInt || kind() == Kind::kUint ||
           kind() == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const { return kind() == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind() == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind() == Kind::kObject; }

  // Typed readers: Status-returning, with numeric range checks.
  [[nodiscard]] Status get_bool(bool* out) const;
  [[nodiscard]] Status get_int64(std::int64_t* out) const;
  [[nodiscard]] Status get_uint64(std::uint64_t* out) const;
  [[nodiscard]] Status get_double(double* out) const;
  [[nodiscard]] Status get_string(std::string* out) const;

  /// Unchecked accessors; GTL_REQUIRE the kind (programmer error).
  [[nodiscard]] const Array& array() const;
  [[nodiscard]] Array& array();
  [[nodiscard]] const Object& object() const;
  [[nodiscard]] Object& object();

  // Object helpers (require is_object()).
  [[nodiscard]] bool has(const std::string& key) const;
  /// Pointer to the member, or nullptr when absent.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Insert-or-assign a member.
  JsonValue& set(const std::string& key, JsonValue value);

  /// Serialize. indent < 0: compact one-liner; otherwise pretty-printed
  /// with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  [[nodiscard]] static Status parse(std::string_view text, JsonValue* out);

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.v_ == b.v_;
  }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      v_;
};

}  // namespace gtl
