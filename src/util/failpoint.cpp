#include "util/failpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <unordered_map>

#include "util/fileio.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace gtl::failpoint {
namespace {

Status action_kind_from_name(const std::string& name, Action::Kind* out) {
  if (name == "fail") {
    *out = Action::Kind::kFail;
  } else if (name == "delay") {
    *out = Action::Kind::kDelay;
  } else if (name == "short_io") {
    *out = Action::Kind::kShortIo;
  } else if (name == "eintr") {
    *out = Action::Kind::kEintr;
  } else {
    return Status::invalid_argument(
        "failpoint: unknown action \"" + name +
        "\" (expected fail, delay, short_io, or eintr)");
  }
  return Status::ok();
}

Status spec_from_json(const std::string& point, const JsonValue& json,
                      Spec* out) {
  if (!json.is_object()) {
    return Status::invalid_argument("failpoint \"" + point +
                                    "\": spec must be a JSON object");
  }
  const JsonValue* action = json.find("action");
  if (action == nullptr) {
    return Status::invalid_argument("failpoint \"" + point +
                                    "\": spec is missing \"action\"");
  }
  std::string action_name;
  GTL_RETURN_IF_ERROR(action->get_string(&action_name));
  GTL_RETURN_IF_ERROR(action_kind_from_name(action_name, &out->action.kind));
  for (const auto& [key, value] : json.object()) {
    if (key == "action") continue;
    if (key == "param") {
      GTL_RETURN_IF_ERROR(value.get_uint64(&out->action.param));
    } else if (key == "message") {
      GTL_RETURN_IF_ERROR(value.get_string(&out->action.message));
    } else if (key == "skip") {
      GTL_RETURN_IF_ERROR(value.get_uint64(&out->skip));
    } else if (key == "limit") {
      GTL_RETURN_IF_ERROR(value.get_uint64(&out->limit));
    } else if (key == "probability") {
      GTL_RETURN_IF_ERROR(value.get_double(&out->probability));
      if (!(out->probability >= 0.0 && out->probability <= 1.0)) {
        return Status::invalid_argument(
            "failpoint \"" + point + "\": probability must be in [0, 1]");
      }
    } else {
      return Status::invalid_argument("failpoint \"" + point +
                                      "\": unknown spec key \"" + key + "\"");
    }
  }
  return Status::ok();
}

}  // namespace

Status parse_config(std::string_view text, Config* out) {
  out->seed = 0;
  out->points.clear();
  JsonValue json;
  GTL_RETURN_IF_ERROR(JsonValue::parse(text, &json));
  if (!json.is_object()) {
    return Status::invalid_argument(
        "failpoint config must be a JSON object");
  }
  for (const auto& [key, value] : json.object()) {
    if (key == "seed") {
      GTL_RETURN_IF_ERROR(value.get_uint64(&out->seed));
    } else if (key == "points") {
      if (!value.is_object()) {
        return Status::invalid_argument(
            "failpoint config: \"points\" must be an object");
      }
      for (const auto& [point, spec_json] : value.object()) {
        Spec spec;
        GTL_RETURN_IF_ERROR(spec_from_json(point, spec_json, &spec));
        out->points.emplace_back(point, spec);
      }
    } else {
      return Status::invalid_argument(
          "failpoint config: unknown key \"" + key + "\"");
    }
  }
  return Status::ok();
}

namespace {

/// Inline JSON beats a file path when both are set (tests arm inline).
Status env_config_text(std::string* text, bool* present) {
  *present = false;
  if (const char* inline_json = std::getenv("GTL_FAILPOINTS")) {
    *text = inline_json;
    *present = true;
    return Status::ok();
  }
  if (const char* file = std::getenv("GTL_FAILPOINTS_FILE")) {
    *present = true;
    return read_file_to_string(file, text);
  }
  return Status::ok();
}

}  // namespace

#if defined(GTL_FAILPOINTS_ENABLED)

namespace {

/// FNV-1a over the point name: each point gets a probability stream
/// derived from (global seed, name), independent of arming order.
std::uint64_t name_hash(std::string_view name) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct PointState {
  Spec spec;
  std::uint64_t hits = 0;
  std::uint64_t triggers = 0;
  Rng rng;
};

struct Registry {
  Mutex mu;
  std::uint64_t seed GTL_GUARDED_BY(mu) = 0;
  std::unordered_map<std::string, PointState> points GTL_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<std::uint64_t> g_armed{0};

}  // namespace

namespace detail {

bool any_armed() { return g_armed.load(std::memory_order_relaxed) != 0; }

bool check_slow(std::string_view name, Action* out) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  const auto it = r.points.find(std::string(name));
  if (it == r.points.end()) return false;
  PointState& state = it->second;
  ++state.hits;
  if (state.hits <= state.spec.skip) return false;
  if (state.triggers >= state.spec.limit) return false;
  if (state.spec.probability < 1.0 &&
      !state.rng.next_bool(state.spec.probability)) {
    return false;
  }
  ++state.triggers;
  *out = state.spec.action;
  return true;
}

}  // namespace detail

void arm(std::string name, Spec spec) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  PointState state;
  state.spec = std::move(spec);
  state.rng.reseed(r.seed ^ name_hash(name));
  const bool inserted =
      r.points.insert_or_assign(std::move(name), std::move(state)).second;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

bool disarm(std::string_view name) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  if (r.points.erase(std::string(name)) == 0) return false;
  g_armed.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void disarm_all() {
  Registry& r = registry();
  MutexLock lk(r.mu);
  r.points.clear();
  g_armed.store(0, std::memory_order_relaxed);
}

void reseed(std::uint64_t seed) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  r.seed = seed;
}

std::uint64_t hit_count(std::string_view name) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  const auto it = r.points.find(std::string(name));
  return it == r.points.end() ? 0 : it->second.hits;
}

std::uint64_t trigger_count(std::string_view name) {
  Registry& r = registry();
  MutexLock lk(r.mu);
  const auto it = r.points.find(std::string(name));
  return it == r.points.end() ? 0 : it->second.triggers;
}

std::vector<std::pair<std::string, std::uint64_t>> trigger_counts() {
  Registry& r = registry();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    MutexLock lk(r.mu);
    out.reserve(r.points.size());
    for (const auto& [name, state] : r.points) {
      out.emplace_back(name, state.triggers);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void apply(const Config& config) {
  reseed(config.seed);
  for (const auto& [name, spec] : config.points) arm(name, spec);
}

Status configure_from_json(std::string_view text) {
  Config config;
  GTL_RETURN_IF_ERROR(parse_config(text, &config));
  apply(config);
  return Status::ok();
}

Status configure_from_env() {
  std::string text;
  bool present = false;
  GTL_RETURN_IF_ERROR(env_config_text(&text, &present));
  if (!present) return Status::ok();
  return configure_from_json(text);
}

#else  // !GTL_FAILPOINTS_ENABLED

Status configure_from_env() {
  // Sites are compiled out, so arming is pointless — but a schedule that
  // would not even parse should still fail loudly instead of silently
  // testing nothing.  compiled_in() lets callers warn about the rest.
  std::string text;
  bool present = false;
  GTL_RETURN_IF_ERROR(env_config_text(&text, &present));
  if (!present) return Status::ok();
  Config config;
  return parse_config(text, &config);
}

#endif  // GTL_FAILPOINTS_ENABLED

}  // namespace gtl::failpoint
