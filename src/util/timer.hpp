#pragma once
// Wall-clock timing for runtime columns in the experiment tables.

#include <chrono>

namespace gtl {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gtl
