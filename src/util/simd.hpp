#pragma once

// SIMD kernel layer with a bitwise-deterministic backend switch.
//
// Every kernel here has exactly two implementations selected at compile
// time by the `GTL_SIMD` CMake option (auto|avx2|scalar):
//
//   * an AVX2 one (src/util/simd_avx2.cpp, built with -mavx2 -mfma), and
//   * a blocked-scalar one (src/util/simd.cpp) that executes the SAME
//     fixed lane-blocked operation order with explicit std::fma.
//
// The contract is bitwise interchangeability: for identical inputs, both
// backends produce identical output bits on every platform.  That holds
// because (a) elementwise IEEE-754 add/sub/mul/div/min/max/fma/convert
// are correctly rounded and therefore order-free, and (b) every
// *reduction* (dot products, min/max scans, per-row SpMV sums) commits
// to one fixed order — kLaneWidth independent accumulators, element i
// folding into accumulator i % kLaneWidth, combined as
// ((acc0+acc1)+(acc2+acc3)) — in BOTH backends.  Both translation units
// are compiled with -ffp-contract=off so the compiler cannot fuse or
// split operations behind our back; every fma is spelled explicitly.
//
// `gtl::simd::scalar_ref` re-exports the blocked-scalar implementations
// under a stable name in every build.  Equivalence and fuzz tests
// compare the active backend against scalar_ref bitwise (see
// tests/fuzz/simd_differential_test.cpp); in a scalar build the
// comparison is trivially the identity, in an AVX2 build it proves the
// vector port.
//
// Raw intrinsics are confined to src/util/simd* by the gtl_lint rule
// `simd-intrinsics-contained`; the rest of the tree programs against
// this header only.

#include <cstddef>
#include <cstdint>

namespace gtl::simd {

/// Number of 64-bit lanes per block.  All blocked reductions use this
/// width in both backends; changing it changes result bits everywhere.
inline constexpr std::size_t kLaneWidth = 4;

/// Relative margin applied to the fast-path score bounds computed by
/// bounded_scores().  The approximation error is ~1e-13; 1e-9 leaves
/// four orders of magnitude of slack while still pruning essentially
/// every unambiguous comparison.
inline constexpr double kCurveBoundEps = 1e-9;

/// "avx2" or "scalar" — the backend compiled into this binary.
[[nodiscard]] const char* backend_name();

// ---------------------------------------------------------------------------
// Elementwise batch kernels (score curves).  Per element the operation
// sequence is fixed and identical across backends, so outputs are
// bitwise identical to the naive scalar loop they replace.
// ---------------------------------------------------------------------------

/// out[i] = double(pins[i]) / double(k0 + i).  With k0 == 1 this is the
/// per-prefix average pin count a_c(k) = pins(k) / k.
void pins_over_index(const std::uint64_t* pins, std::size_t n, std::size_t k0,
                     double* out);

/// out[i] = double(cut[i]).
void cut_to_double(const std::int64_t* cut, std::size_t n, double* out);

/// out[i] = in[i] / d.
void div_by_scalar(const double* in, std::size_t n, double d, double* out);

/// out[i] = in[i] * s.
void mul_by_scalar(const double* in, std::size_t n, double s, double* out);

/// out[i] = num[i] / den[i].
void div_elem(const double* num, const double* den, std::size_t n,
              double* out);

/// out[i] = a[i] - b[i].
void sub_elem(const double* a, const double* b, std::size_t n, double* out);

/// Vector tail of group_rent_exponent_prelogged over a span of prefixes:
///   out[i] = a_c[i] <= 0
///       ? 1.0 : clamp((log_cut[i] - log_ac[i]) / log_k[i], 0, 1)
/// Callers guarantee size >= 2 for every element (the size < 2 guard
/// stays with them) and that log_ac[i] is only meaningful when
/// a_c[i] > 0.  Matches metrics::group_rent_exponent_prelogged bitwise.
void rent_clamp(const double* log_cut, const double* log_ac,
                const double* log_k, const double* a_c, std::size_t n,
                double* out);

/// Guaranteed enclosures of the selected score curve
///   v[i] = cutd[i] / (a_g * pow(k_i, expo[i]))   with log_k[i] = ln(k_i)
/// via a vectorized exp2 approximation:  lo[i] <= v[i] <= hi[i] always,
/// with hi/lo within a relative kCurveBoundEps of each other on the fast
/// path.  Lanes where the exponent product exceeds the safe range fall
/// back to the trivial enclosure [0, +inf).  Requires cutd[i] >= 0 and
/// expo[i] >= 0 (true for both score kinds).  Both backends produce
/// identical bits, but the *reference* semantics callers rely on is only
/// the enclosure: exact comparisons must re-evaluate with libm.
void bounded_scores(const double* cutd, const double* expo,
                    const double* log_k, std::size_t n, double a_g,
                    double* lo, double* hi);

// ---------------------------------------------------------------------------
// Scans (fixed lane-blocked order; min/max are order-free for non-NaN
// input but blocked anyway for one shared shape).
// ---------------------------------------------------------------------------

/// Minimum of v[0..n); +inf when n == 0.  No NaNs allowed.
[[nodiscard]] double min_value(const double* v, std::size_t n);

/// Maximum of v[0..n); -inf when n == 0.  No NaNs allowed.
[[nodiscard]] double max_value(const double* v, std::size_t n);

/// True iff some v[i] >= t.
[[nodiscard]] bool any_not_below(const double* v, std::size_t n, double t);

/// Collect indices i (ascending) with v[i] <= t into out[0..cap).
/// Returns the number written, or cap + 1 if more than cap matched
/// (out then holds the first cap matches).
[[nodiscard]] std::size_t collect_not_above(const double* v, std::size_t n,
                                            double t, std::uint32_t* out,
                                            std::size_t cap);

/// Collect indices i (ascending) with v[i] >= t; same cap contract.
[[nodiscard]] std::size_t collect_not_below(const double* v, std::size_t n,
                                            double t, std::uint32_t* out,
                                            std::size_t cap);

// ---------------------------------------------------------------------------
// Placer kernels (PCG building blocks).  All reductions use the fixed
// lane-blocked order described at the top of this header.
// ---------------------------------------------------------------------------

/// Blocked dot product of u and v.
[[nodiscard]] double dot_blocked(const double* u, const double* v,
                                 std::size_t n);

/// Fused CG update pair: x[i] += alpha * p[i]; r[i] -= alpha * ap[i].
void axpy2(std::size_t n, double alpha, const double* p, const double* ap,
           double* x, double* r);

/// p[i] = z[i] + beta * p[i].
void xpay(std::size_t n, const double* z, double beta, double* p);

/// Jacobi preconditioner with an explicit magnitude guard:
///   z[i] = |diag[i]| > 1e-12 ? r[i] / diag[i] : r[i]
void jacobi_precondition(std::size_t n, const double* diag, const double* r,
                         double* z);

/// CSR sparse matrix-vector product y = A x.  Each row's sum uses the
/// blocked reduction over its [row_offset[r], row_offset[r+1]) entries.
void spmv_csr(std::size_t n, const std::size_t* row_offset,
              const std::uint32_t* col, const double* val, const double* x,
              double* y);

// ---------------------------------------------------------------------------
// scalar_ref — the blocked-scalar implementations, always compiled,
// regardless of the active backend.  This is the embedded equivalence
// reference: tests call these mirrors and require bitwise equality with
// the public kernels above.
// ---------------------------------------------------------------------------
namespace scalar_ref {

void pins_over_index(const std::uint64_t* pins, std::size_t n, std::size_t k0,
                     double* out);
void cut_to_double(const std::int64_t* cut, std::size_t n, double* out);
void div_by_scalar(const double* in, std::size_t n, double d, double* out);
void mul_by_scalar(const double* in, std::size_t n, double s, double* out);
void div_elem(const double* num, const double* den, std::size_t n,
              double* out);
void sub_elem(const double* a, const double* b, std::size_t n, double* out);
void rent_clamp(const double* log_cut, const double* log_ac,
                const double* log_k, const double* a_c, std::size_t n,
                double* out);
void bounded_scores(const double* cutd, const double* expo,
                    const double* log_k, std::size_t n, double a_g,
                    double* lo, double* hi);
[[nodiscard]] double min_value(const double* v, std::size_t n);
[[nodiscard]] double max_value(const double* v, std::size_t n);
[[nodiscard]] bool any_not_below(const double* v, std::size_t n, double t);
[[nodiscard]] std::size_t collect_not_above(const double* v, std::size_t n,
                                            double t, std::uint32_t* out,
                                            std::size_t cap);
[[nodiscard]] std::size_t collect_not_below(const double* v, std::size_t n,
                                            double t, std::uint32_t* out,
                                            std::size_t cap);
[[nodiscard]] double dot_blocked(const double* u, const double* v,
                                 std::size_t n);
void axpy2(std::size_t n, double alpha, const double* p, const double* ap,
           double* x, double* r);
void xpay(std::size_t n, const double* z, double beta, double* p);
void jacobi_precondition(std::size_t n, const double* diag, const double* r,
                         double* z);
void spmv_csr(std::size_t n, const std::size_t* row_offset,
              const std::uint32_t* col, const double* val, const double* x,
              double* y);

}  // namespace scalar_ref

}  // namespace gtl::simd
