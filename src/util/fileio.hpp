#pragma once
// Whole-file reads for the I/O layer.  Loaders (Bookshelf text, binary
// netlist snapshots) slurp each file in one buffered gulp and scan the
// bytes in place, so parse cost tracks memory bandwidth instead of
// per-line stream churn.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "util/failpoint.hpp"
#include "util/status.hpp"

namespace gtl {

/// Read the entire file at `path` into `*out` (replacing its contents).
/// Binary-exact: no newline translation.  Returns kNotFound when the
/// file cannot be opened, kParseError when a read fails midway.
///
/// Failpoints: "fileio.read.open" (fail = injected open failure) and
/// "fileio.read" (fail = injected mid-read failure; short_io = truncate
/// the result to `param` bytes, simulating a torn read; delay honored).
[[nodiscard]] inline Status read_file_to_string(
    const std::filesystem::path& path, std::string* out) {
  if (failpoint::Action fp;
      failpoint::check("fileio.read.open", &fp) &&
      fp.kind == failpoint::Action::Kind::kFail) {
    return Status::not_found("cannot open " + path.string() +
                             " (injected failpoint)");
  }
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) {
    return Status::not_found("cannot open " + path.string());
  }
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  out->clear();
  if (!ec && size > 0) {
    out->resize(static_cast<std::size_t>(size));
    const std::size_t got = std::fread(out->data(), 1, out->size(), f);
    out->resize(got);
    // Regular files deliver their full size in one fread; anything
    // shorter would fall through to the tail loop below.
  }
  // Tail loop: handles size-less special files and races with writers.
  char buf[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof(buf), f);
    if (got == 0) break;
    out->append(buf, got);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) {
    return Status::parse_error("read failed for " + path.string());
  }
  if (failpoint::Action fp; failpoint::check("fileio.read", &fp)) {
    switch (fp.kind) {
      case failpoint::Action::Kind::kFail:
        return Status::parse_error("read failed for " + path.string() +
                                   " (injected failpoint)");
      case failpoint::Action::Kind::kShortIo:
        // Torn read: the caller sees a clean-looking prefix of the file.
        if (out->size() > fp.param) {
          out->resize(static_cast<std::size_t>(fp.param));
        }
        break;
      case failpoint::Action::Kind::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(fp.param));
        break;
      case failpoint::Action::Kind::kEintr:
        break;  // no interruptible loop here
    }
  }
  return Status::ok();
}

}  // namespace gtl
