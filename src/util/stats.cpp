#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtl {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("percentile: q not in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 paired points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LineFit f;
  if (std::abs(denom) < 1e-12) {
    f.slope = 0.0;
    f.intercept = sy / n;
    f.r2 = 0.0;
    return f;
  }
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (f.intercept + f.slope * xs[i]);
    ss_res += r * r;
  }
  f.r2 = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

LineFit fit_power_law(std::span<const double> ks, std::span<const double> ts) {
  if (ks.size() != ts.size() || ks.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >= 2 paired points");
  }
  std::vector<double> lx, ly;
  lx.reserve(ks.size());
  ly.reserve(ts.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (ks[i] > 0.0 && ts[i] > 0.0) {
      lx.push_back(std::log(ks[i]));
      ly.push_back(std::log(ts[i]));
    }
  }
  if (lx.size() < 2)
    throw std::invalid_argument("fit_power_law: need >= 2 positive points");
  return fit_line(lx, ly);
}

}  // namespace gtl
