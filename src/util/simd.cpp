// Blocked-scalar backend + compile-time dispatch for the SIMD kernel
// layer.  This translation unit is always compiled WITHOUT architecture
// flags and with -ffp-contract=off: every fma below is explicit, so the
// emitted operation sequence is exactly the documented one and matches
// the AVX2 backend bit for bit (see util/simd.hpp for the argument).
//
// The implementations live in gtl::simd::scalar_ref — the embedded
// equivalence reference that differential tests compare the active
// backend against — and the public entry points dispatch either here or
// to gtl::simd::avx2 depending on GTL_SIMD_AVX2.

#include "util/simd.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "util/simd_backend.hpp"

namespace gtl::simd::scalar_ref {

namespace {

using detail::kExpCoeff;
using detail::kInvLn2;
using detail::kLn2;
using detail::kMaxT;

// 2^i for integral i in [-1022, 1023], by exponent-bit construction —
// the scalar twin of (cvtpd_epi32 ; add 1023 ; sll 52) in the AVX2 TU.
double exp2_integral(double i) {
  const auto biased =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(i) + 1023);
  const std::uint64_t bits = biased << 52;
  double p2;
  std::memcpy(&p2, &bits, sizeof(p2));
  return p2;
}

}  // namespace

void pins_over_index(const std::uint64_t* pins, std::size_t n, std::size_t k0,
                     double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(pins[i]) / static_cast<double>(k0 + i);
  }
}

void cut_to_double(const std::int64_t* cut, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(cut[i]);
}

void div_by_scalar(const double* in, std::size_t n, double d, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i] / d;
}

void mul_by_scalar(const double* in, std::size_t n, double s, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i] * s;
}

void div_elem(const double* num, const double* den, std::size_t n,
              double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = num[i] / den[i];
}

void sub_elem(const double* a, const double* b, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void rent_clamp(const double* log_cut, const double* log_ac,
                const double* log_k, const double* a_c, std::size_t n,
                double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a_c[i] <= 0.0) {
      out[i] = 1.0;
      continue;
    }
    // Comparison-and-select, exactly std::clamp(p, 0.0, 1.0) and exactly
    // the cmp/blend sequence of the AVX2 TU (signed zeros included).
    double p = (log_cut[i] - log_ac[i]) / log_k[i];
    if (p < 0.0) p = 0.0;
    if (1.0 < p) p = 1.0;
    out[i] = p;
  }
}

void bounded_scores(const double* cutd, const double* expo,
                    const double* log_k, std::size_t n, double a_g,
                    double* lo, double* hi) {
  for (std::size_t i = 0; i < n; ++i) {
    const double t = expo[i] * (log_k[i] * kInvLn2);  // expo * log2(k)
    if (!(t <= kMaxT)) {
      lo[i] = 0.0;
      hi[i] = std::numeric_limits<double>::infinity();
      continue;
    }
    // exp2(-t): split -t = i + f with |f| <= 1/2 (the split is exact),
    // 2^i by exponent bits, 2^f = exp(f * ln2) by the degree-11 Taylor
    // fma chain shared with the AVX2 TU.
    const double s = -t;
    const double ri = std::nearbyint(s);
    const double f = s - ri;
    const double x = f * kLn2;
    double q = kExpCoeff[11];
    for (int j = 10; j >= 0; --j) q = std::fma(q, x, kExpCoeff[j]);
    const double v = (cutd[i] * q) * exp2_integral(ri) / a_g;
    lo[i] = v * (1.0 - kCurveBoundEps);
    hi[i] = v * (1.0 + kCurveBoundEps);
  }
}

double min_value(const double* v, std::size_t n) {
  double acc[kLaneWidth];
  for (double& a : acc) a = std::numeric_limits<double>::infinity();
  const std::size_t nb = n - n % kLaneWidth;
  for (std::size_t i = 0; i < nb; i += kLaneWidth) {
    for (std::size_t l = 0; l < kLaneWidth; ++l) {
      // Mirrors minpd(acc, x): second operand wins ties.
      acc[l] = acc[l] < v[i + l] ? acc[l] : v[i + l];
    }
  }
  for (std::size_t l = 0; l < n % kLaneWidth; ++l) {
    acc[l] = acc[l] < v[nb + l] ? acc[l] : v[nb + l];
  }
  const double m01 = acc[0] < acc[1] ? acc[0] : acc[1];
  const double m23 = acc[2] < acc[3] ? acc[2] : acc[3];
  return m01 < m23 ? m01 : m23;
}

double max_value(const double* v, std::size_t n) {
  double acc[kLaneWidth];
  for (double& a : acc) a = -std::numeric_limits<double>::infinity();
  const std::size_t nb = n - n % kLaneWidth;
  for (std::size_t i = 0; i < nb; i += kLaneWidth) {
    for (std::size_t l = 0; l < kLaneWidth; ++l) {
      acc[l] = acc[l] > v[i + l] ? acc[l] : v[i + l];
    }
  }
  for (std::size_t l = 0; l < n % kLaneWidth; ++l) {
    acc[l] = acc[l] > v[nb + l] ? acc[l] : v[nb + l];
  }
  const double m01 = acc[0] > acc[1] ? acc[0] : acc[1];
  const double m23 = acc[2] > acc[3] ? acc[2] : acc[3];
  return m01 > m23 ? m01 : m23;
}

bool any_not_below(const double* v, std::size_t n, double t) {
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] >= t) return true;
  }
  return false;
}

std::size_t collect_not_above(const double* v, std::size_t n, double t,
                              std::uint32_t* out, std::size_t cap) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(v[i] <= t)) continue;
    if (count < cap) out[count] = static_cast<std::uint32_t>(i);
    if (++count > cap) return cap + 1;
  }
  return count;
}

std::size_t collect_not_below(const double* v, std::size_t n, double t,
                              std::uint32_t* out, std::size_t cap) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(v[i] >= t)) continue;
    if (count < cap) out[count] = static_cast<std::uint32_t>(i);
    if (++count > cap) return cap + 1;
  }
  return count;
}

double dot_blocked(const double* u, const double* v, std::size_t n) {
  double acc[kLaneWidth] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t nb = n - n % kLaneWidth;
  for (std::size_t i = 0; i < nb; i += kLaneWidth) {
    for (std::size_t l = 0; l < kLaneWidth; ++l) {
      acc[l] = std::fma(u[i + l], v[i + l], acc[l]);
    }
  }
  for (std::size_t l = 0; l < n % kLaneWidth; ++l) {
    acc[l] = std::fma(u[nb + l], v[nb + l], acc[l]);
  }
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

void axpy2(std::size_t n, double alpha, const double* p, const double* ap,
           double* x, double* r) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::fma(alpha, p[i], x[i]);
    r[i] = std::fma(-alpha, ap[i], r[i]);  // == fnmadd(alpha, ap, r)
  }
}

void xpay(std::size_t n, const double* z, double beta, double* p) {
  for (std::size_t i = 0; i < n; ++i) p[i] = std::fma(beta, p[i], z[i]);
}

void jacobi_precondition(std::size_t n, const double* diag, const double* r,
                         double* z) {
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = std::abs(diag[i]) > 1e-12 ? r[i] / diag[i] : r[i];
  }
}

void spmv_csr(std::size_t n, const std::size_t* row_offset,
              const std::uint32_t* col, const double* val, const double* x,
              double* y) {
  for (std::size_t row = 0; row < n; ++row) {
    const std::size_t begin = row_offset[row];
    const std::size_t len = row_offset[row + 1] - begin;
    double acc[kLaneWidth] = {0.0, 0.0, 0.0, 0.0};
    const std::size_t nb = len - len % kLaneWidth;
    for (std::size_t j = 0; j < nb; j += kLaneWidth) {
      for (std::size_t l = 0; l < kLaneWidth; ++l) {
        const std::size_t e = begin + j + l;
        acc[l] = std::fma(val[e], x[col[e]], acc[l]);
      }
    }
    for (std::size_t l = 0; l < len % kLaneWidth; ++l) {
      const std::size_t e = begin + nb + l;
      acc[l] = std::fma(val[e], x[col[e]], acc[l]);
    }
    y[row] = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  }
}

}  // namespace gtl::simd::scalar_ref

namespace gtl::simd {

#if defined(GTL_SIMD_AVX2)
namespace active = ::gtl::simd::avx2;
const char* backend_name() { return "avx2"; }
#else
namespace active = ::gtl::simd::scalar_ref;
const char* backend_name() { return "scalar"; }
#endif

void pins_over_index(const std::uint64_t* pins, std::size_t n, std::size_t k0,
                     double* out) {
  active::pins_over_index(pins, n, k0, out);
}

void cut_to_double(const std::int64_t* cut, std::size_t n, double* out) {
  active::cut_to_double(cut, n, out);
}

void div_by_scalar(const double* in, std::size_t n, double d, double* out) {
  active::div_by_scalar(in, n, d, out);
}

void mul_by_scalar(const double* in, std::size_t n, double s, double* out) {
  active::mul_by_scalar(in, n, s, out);
}

void div_elem(const double* num, const double* den, std::size_t n,
              double* out) {
  active::div_elem(num, den, n, out);
}

void sub_elem(const double* a, const double* b, std::size_t n, double* out) {
  active::sub_elem(a, b, n, out);
}

void rent_clamp(const double* log_cut, const double* log_ac,
                const double* log_k, const double* a_c, std::size_t n,
                double* out) {
  active::rent_clamp(log_cut, log_ac, log_k, a_c, n, out);
}

void bounded_scores(const double* cutd, const double* expo,
                    const double* log_k, std::size_t n, double a_g,
                    double* lo, double* hi) {
  active::bounded_scores(cutd, expo, log_k, n, a_g, lo, hi);
}

double min_value(const double* v, std::size_t n) {
  return active::min_value(v, n);
}

double max_value(const double* v, std::size_t n) {
  return active::max_value(v, n);
}

bool any_not_below(const double* v, std::size_t n, double t) {
  return active::any_not_below(v, n, t);
}

std::size_t collect_not_above(const double* v, std::size_t n, double t,
                              std::uint32_t* out, std::size_t cap) {
  return active::collect_not_above(v, n, t, out, cap);
}

std::size_t collect_not_below(const double* v, std::size_t n, double t,
                              std::uint32_t* out, std::size_t cap) {
  return active::collect_not_below(v, n, t, out, cap);
}

double dot_blocked(const double* u, const double* v, std::size_t n) {
  return active::dot_blocked(u, v, n);
}

void axpy2(std::size_t n, double alpha, const double* p, const double* ap,
           double* x, double* r) {
  active::axpy2(n, alpha, p, ap, x, r);
}

void xpay(std::size_t n, const double* z, double beta, double* p) {
  active::xpay(n, z, beta, p);
}

void jacobi_precondition(std::size_t n, const double* diag, const double* r,
                         double* z) {
  active::jacobi_precondition(n, diag, r, z);
}

void spmv_csr(std::size_t n, const std::size_t* row_offset,
              const std::uint32_t* col, const double* val, const double* x,
              double* y) {
  active::spmv_csr(n, row_offset, col, val, x, y);
}

}  // namespace gtl::simd
