#pragma once
// Minimal RAII wrappers over AF_UNIX stream sockets — the transport for
// the gtl_serve JSON-lines protocol (serve/).  POSIX-only by design: a
// local query server talks to clients on the same machine, and a
// filesystem socket gives free authentication (directory permissions)
// plus zero network configuration.
//
// Framing is newline-delimited: one request or response per '\n'-
// terminated line.  UnixStream::read_line buffers reads internally and
// enforces a caller-supplied line-size cap, so a misbehaving peer cannot
// grow a line without bound.
//
// All errors are reported through gtl::Status (no exceptions): a server
// must survive malformed peers, and a client must surface "server not
// running" as a value, not a crash.
//
// Concurrency: a stream is single-owner and carries no lock of its own.
// The one sanctioned sharing pattern is the server's per-connection
// split — one reader thread, writers serialized by a gtl::Mutex around
// write_line (Server::serve's Conn::write_mu) — plus shutdown(), which
// is safe to call from another thread to unblock a reader (it only
// reads the fd and issues the syscall).

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace gtl {

/// One connected AF_UNIX stream endpoint (client side or an accepted
/// server-side connection).  Move-only; closes on destruction.
class UnixStream {
 public:
  UnixStream() = default;
  /// Adopt an already-connected file descriptor (server accept path).
  explicit UnixStream(int fd) : fd_(fd) {}
  ~UnixStream() { close(); }

  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;

  /// Connect to the listener at `path`.
  [[nodiscard]] static Status connect(const std::filesystem::path& path,
                                      UnixStream* out);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Write every byte of `data` (handles short writes and EINTR).
  [[nodiscard]] Status write_all(std::string_view data);

  /// Write `line` plus the '\n' terminator.
  [[nodiscard]] Status write_line(std::string_view line);

  /// Read the next '\n'-terminated line into *line (terminator stripped;
  /// a trailing unterminated line at EOF is returned as a final line).
  /// Clean EOF with no pending bytes sets *eof and leaves *line empty.
  /// A line longer than `max_bytes` is an out-of-range error — the
  /// connection should be dropped, the stream has lost framing.
  [[nodiscard]] Status read_line(std::string* line, bool* eof,
                                 std::size_t max_bytes = 1u << 20);

  /// Shut down both directions (unblocks a peer blocked in read).
  void shutdown() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
  /// Bytes received past the last returned line.
  std::string buffer_;
};

/// A listening AF_UNIX socket bound to a filesystem path.  Move-only;
/// closing unlinks the socket file it created.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener() { close(); }

  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Bind to `path` and listen.  A stale socket file from a previous
  /// (crashed) server is unlinked first; a path that exists and is NOT a
  /// socket is an error, never removed.
  [[nodiscard]] static Status bind_and_listen(const std::filesystem::path& path,
                                              UnixListener* out,
                                              int backlog = 64);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Wait up to `timeout_ms` for a connection.  On a connection, *out is
  /// the accepted stream and *accepted is true; on timeout *accepted is
  /// false with an OK status — callers poll in a loop so a stop flag
  /// (e.g. a SIGTERM handler's atomic) gets checked between waits.
  [[nodiscard]] Status poll_accept(int timeout_ms, UnixStream* out,
                                   bool* accepted);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::filesystem::path path_;
};

}  // namespace gtl
