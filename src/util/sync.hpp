// Capability-annotated synchronization layer (Clang Thread Safety
// Analysis).  Every mutex, scoped lock, and condition variable in the
// library goes through the wrappers below so that lock contracts are
// visible to the compiler: under Clang, `-Wthread-safety
// -Wthread-safety-beta` turns any guarded-state violation — reading a
// `GTL_GUARDED_BY` field without the lock, calling a `GTL_REQUIRES`
// helper unlocked, double-acquiring, or acquiring against the declared
// lock order — into a diagnostic (an error on CI, where GTL_WERROR is
// on).  Under GCC and other compilers every annotation expands to
// nothing and the wrappers are zero-cost veneers over the std types.
//
// Usage pattern:
//
//   class Registry {
//    public:
//     void insert(Entry e) GTL_EXCLUDES(mu_) {
//       gtl::MutexLock lk(mu_);
//       insert_locked(std::move(e));
//     }
//    private:
//     void insert_locked(Entry e) GTL_REQUIRES(mu_);
//     mutable gtl::Mutex mu_;
//     std::vector<Entry> entries_ GTL_GUARDED_BY(mu_);
//   };
//
// Rules of the layer (enforced by gtl_lint, see tools/gtl_lint):
//   - `sync-raw-mutex`: bare std::mutex / std::lock_guard /
//     std::unique_lock / std::scoped_lock / std::condition_variable are
//     confined to this header; everything else uses gtl::Mutex,
//     gtl::MutexLock, and gtl::CondVar.
//   - `sync-unjustified-escape`: GTL_NO_THREAD_SAFETY_ANALYSIS is an
//     escape hatch of last resort and requires a
//     `// gtl-lint: allow(sync-unjustified-escape): <why>` justification
//     at the use site.
//
// Condition-variable waits: write the predicate loop out in the
// annotated caller (`while (!ready_) cv_.wait(mu_);`) instead of
// passing a predicate lambda.  A lambda body is analyzed as its own
// unannotated function, so guarded-field reads inside it would trip the
// analysis even though the lock is held.
//
// This file is the single place allowed to touch the raw std
// primitives; keep it free of policy so the contracts stay auditable.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros.  Clang-only; no-ops elsewhere.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define GTL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define GTL_THREAD_ANNOTATION_(x)
#endif

// Declares a type that models a capability (a lock).
#define GTL_CAPABILITY(name) GTL_THREAD_ANNOTATION_(capability(name))

// Declares an RAII type whose lifetime acquires/releases a capability.
#define GTL_SCOPED_CAPABILITY GTL_THREAD_ANNOTATION_(scoped_lockable)

// Field is protected by the given capability; access requires holding it.
#define GTL_GUARDED_BY(x) GTL_THREAD_ANNOTATION_(guarded_by(x))

// Pointed-to data (not the pointer itself) is protected by the capability.
#define GTL_PT_GUARDED_BY(x) GTL_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations, checked under -Wthread-safety-beta.
#define GTL_ACQUIRED_BEFORE(...) \
  GTL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define GTL_ACQUIRED_AFTER(...) \
  GTL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function contract: caller must hold the capability on entry.
#define GTL_REQUIRES(...) \
  GTL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Function acquires / releases the capability (held on exit / entry).
#define GTL_ACQUIRE(...) \
  GTL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define GTL_RELEASE(...) \
  GTL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Function acquires the capability iff it returns the given value; the
// first argument is the success return value, any further arguments
// name the capability (defaults to `this` when omitted).
#define GTL_TRY_ACQUIRE(...) \
  GTL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Function contract: caller must NOT hold the capability (the function
// acquires it itself, or must never run under it).  This is how the
// serve inline-lane / worker-lane split is expressed.
#define GTL_EXCLUDES(...) GTL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Function returns a reference to the named capability.
#define GTL_RETURN_CAPABILITY(x) \
  GTL_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: function body is exempt from analysis.  Requires a
// `// gtl-lint: allow(sync-unjustified-escape): <why>` justification at
// the use site (enforced by gtl_lint); zero escapes exist today.
#define GTL_NO_THREAD_SAFETY_ANALYSIS \
  GTL_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace gtl {

class CondVar;

// ---------------------------------------------------------------------------
// Mutex — std::mutex carrying the "mutex" capability.
// ---------------------------------------------------------------------------

class GTL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GTL_ACQUIRE() { mu_.lock(); }
  void unlock() GTL_RELEASE() { mu_.unlock(); }
  bool try_lock() GTL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// MutexLock — scoped acquisition with mid-scope unlock()/lock() support
// (the watchdog drops its lock around cancel-token trips, and admission
// paths release early before replying).  The analysis tracks the
// managed capability through unlock()/lock(), so the destructor only
// releases when the lock is still held.
// ---------------------------------------------------------------------------

class GTL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GTL_ACQUIRE(mu) : mu_(&mu) { mu.lock(); }
  ~MutexLock() GTL_RELEASE() {
    if (held_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Release before end of scope (e.g. to reply to a client unlocked).
  void unlock() GTL_RELEASE() {
    mu_->unlock();
    held_ = false;
  }

  // Re-acquire after an unlock(); the scope's destructor takes over again.
  void lock() GTL_ACQUIRE() {
    mu_->lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_ = true;
};

// ---------------------------------------------------------------------------
// CondVar — std::condition_variable bound to gtl::Mutex.  wait() takes
// the Mutex itself (not the MutexLock) so the REQUIRES contract names
// the capability the analysis tracks.
// ---------------------------------------------------------------------------

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically release `mu`, block, and re-acquire before returning.
  // Caller must hold `mu` (normally via a MutexLock in scope).
  void wait(Mutex& mu) GTL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      GTL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      GTL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lk, timeout);
    lk.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gtl
