#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/require.hpp"

namespace gtl {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; emit null (the conventional lossy mapping).
    out += "null";
    return;
  }
  char buf[32];
  // Shortest representation that round-trips exactly.
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, res.ptr);
}

/// Containers recurse; bound the depth so hostile request bodies (100k
/// bytes of '[') get a Status instead of a stack overflow.
constexpr int kMaxParseDepth = 256;

class Parser {
 public:
  Parser(std::string_view text) : text_(text) {}

  Status parse_document(JsonValue* out) {
    GTL_RETURN_IF_ERROR(parse_value(out));
    skip_ws();
    if (pos_ != text_.size()) {
      return err("trailing characters after JSON document");
    }
    return Status::ok();
  }

 private:
  Status err(const std::string& what) const {
    return Status::parse_error(what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expect(char c) {
    if (!consume(c)) {
      return err(std::string("expected '") + c + "'");
    }
    return Status::ok();
  }

  Status parse_value(JsonValue* out) {
    if (depth_ >= kMaxParseDepth) {
      return err("nesting exceeds the depth limit of 256");
    }
    skip_ws();
    if (pos_ >= text_.size()) return err("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        GTL_RETURN_IF_ERROR(parse_string(&s));
        *out = JsonValue(std::move(s));
        return Status::ok();
      }
      case 't':
        GTL_RETURN_IF_ERROR(parse_literal("true"));
        *out = JsonValue(true);
        return Status::ok();
      case 'f':
        GTL_RETURN_IF_ERROR(parse_literal("false"));
        *out = JsonValue(false);
        return Status::ok();
      case 'n':
        GTL_RETURN_IF_ERROR(parse_literal("null"));
        *out = JsonValue(nullptr);
        return Status::ok();
      default: return parse_number(out);
    }
  }

  Status parse_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return err("invalid literal");
    }
    pos_ += lit.size();
    return Status::ok();
  }

  Status parse_object(JsonValue* out) {
    GTL_RETURN_IF_ERROR(expect('{'));
    ++depth_;
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) {
      --depth_;
      *out = JsonValue(std::move(obj));
      return Status::ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      GTL_RETURN_IF_ERROR(parse_string(&key));
      skip_ws();
      GTL_RETURN_IF_ERROR(expect(':'));
      JsonValue value;
      GTL_RETURN_IF_ERROR(parse_value(&value));
      if (!obj.emplace(std::move(key), std::move(value)).second) {
        return err("duplicate object key");
      }
      skip_ws();
      if (consume(',')) continue;
      GTL_RETURN_IF_ERROR(expect('}'));
      break;
    }
    --depth_;
    *out = JsonValue(std::move(obj));
    return Status::ok();
  }

  Status parse_array(JsonValue* out) {
    GTL_RETURN_IF_ERROR(expect('['));
    ++depth_;
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) {
      --depth_;
      *out = JsonValue(std::move(arr));
      return Status::ok();
    }
    while (true) {
      JsonValue value;
      GTL_RETURN_IF_ERROR(parse_value(&value));
      arr.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      GTL_RETURN_IF_ERROR(expect(']'));
      break;
    }
    --depth_;
    *out = JsonValue(std::move(arr));
    return Status::ok();
  }

  Status parse_string(std::string* out) {
    GTL_RETURN_IF_ERROR(expect('"'));
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return err("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return err("unescaped control character in string");
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) return err("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          GTL_RETURN_IF_ERROR(parse_hex4(&cp));
          // Surrogate pair?
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            std::uint32_t lo = 0;
            GTL_RETURN_IF_ERROR(parse_hex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return err("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(s, cp);
          break;
        }
        default: return err("invalid escape character");
      }
    }
    *out = std::move(s);
    return Status::ok();
  }

  Status parse_hex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return err("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return err("invalid hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::ok();
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    const std::size_t digits_start = start + (text_[start] == '-' ? 1u : 0u);
    bool integral = pos_ > digits_start;
    if (!integral) return err("invalid number");
    if (pos_ - digits_start > 1 && text_[digits_start] == '0') {
      return err("leading zeros are not allowed");
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      if (consume('.')) {
        const std::size_t frac = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
          ++pos_;
        }
        if (pos_ == frac) return err("missing digits after decimal point");
      }
      if (consume('e') || consume('E')) {
        if (!consume('+')) consume('-');
        const std::size_t exp = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
          ++pos_;
        }
        if (pos_ == exp) return err("missing exponent digits");
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), i);
        if (r.ec == std::errc() && r.ptr == tok.data() + tok.size()) {
          *out = JsonValue(i);
          return Status::ok();
        }
      } else {
        std::uint64_t u = 0;
        const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), u);
        if (r.ec == std::errc() && r.ptr == tok.data() + tok.size()) {
          if (u <= static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max())) {
            *out = JsonValue(static_cast<std::int64_t>(u));
          } else {
            *out = JsonValue(u);
          }
          return Status::ok();
        }
      }
      // Integer overflow: fall through to double.
    }
    double d = 0.0;
    const auto r = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (r.ec != std::errc() || r.ptr != tok.data() + tok.size()) {
      return err("invalid number");
    }
    *out = JsonValue(d);
    return Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_value(const JsonValue& v, std::string& out, int indent, int depth);

void append_newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void dump_value(const JsonValue& v, std::string& out, int indent, int depth) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: {
      bool b = false;
      (void)v.get_bool(&b);
      out += b ? "true" : "false";
      break;
    }
    case JsonValue::Kind::kInt: {
      std::int64_t i = 0;
      (void)v.get_int64(&i);
      out += std::to_string(i);
      break;
    }
    case JsonValue::Kind::kUint: {
      std::uint64_t u = 0;
      (void)v.get_uint64(&u);
      out += std::to_string(u);
      break;
    }
    case JsonValue::Kind::kDouble: {
      double d = 0.0;
      (void)v.get_double(&d);
      append_double(out, d);
      break;
    }
    case JsonValue::Kind::kString: {
      std::string s;
      (void)v.get_string(&s);
      append_escaped(out, s);
      break;
    }
    case JsonValue::Kind::kArray: {
      const auto& arr = v.array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& e : arr) {
        if (!first) out += ',';
        first = false;
        if (indent >= 0) append_newline_indent(out, indent, depth + 1);
        dump_value(e, out, indent, depth + 1);
      }
      if (indent >= 0) append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      const auto& obj = v.object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        if (indent >= 0) append_newline_indent(out, indent, depth + 1);
        append_escaped(out, key);
        out += indent >= 0 ? ": " : ":";
        dump_value(value, out, indent, depth + 1);
      }
      if (indent >= 0) append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

Status JsonValue::get_bool(bool* out) const {
  if (const bool* b = std::get_if<bool>(&v_)) {
    *out = *b;
    return Status::ok();
  }
  return Status::invalid_argument("JSON value is not a bool");
}

Status JsonValue::get_int64(std::int64_t* out) const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    *out = *i;
    return Status::ok();
  }
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    if (*u > static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max())) {
      return Status::out_of_range("JSON integer exceeds int64 range");
    }
    *out = static_cast<std::int64_t>(*u);
    return Status::ok();
  }
  return Status::invalid_argument("JSON value is not an integer");
}

Status JsonValue::get_uint64(std::uint64_t* out) const {
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    *out = *u;
    return Status::ok();
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    if (*i < 0) return Status::out_of_range("negative value for uint64");
    *out = static_cast<std::uint64_t>(*i);
    return Status::ok();
  }
  return Status::invalid_argument("JSON value is not an integer");
}

Status JsonValue::get_double(double* out) const {
  if (const double* d = std::get_if<double>(&v_)) {
    *out = *d;
    return Status::ok();
  }
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_)) {
    *out = static_cast<double>(*i);
    return Status::ok();
  }
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&v_)) {
    *out = static_cast<double>(*u);
    return Status::ok();
  }
  return Status::invalid_argument("JSON value is not a number");
}

Status JsonValue::get_string(std::string* out) const {
  if (const std::string* s = std::get_if<std::string>(&v_)) {
    *out = *s;
    return Status::ok();
  }
  return Status::invalid_argument("JSON value is not a string");
}

const JsonValue::Array& JsonValue::array() const {
  GTL_REQUIRE(is_array(), "JsonValue::array on non-array");
  return std::get<Array>(v_);
}

JsonValue::Array& JsonValue::array() {
  GTL_REQUIRE(is_array(), "JsonValue::array on non-array");
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::object() const {
  GTL_REQUIRE(is_object(), "JsonValue::object on non-object");
  return std::get<Object>(v_);
}

JsonValue::Object& JsonValue::object() {
  GTL_REQUIRE(is_object(), "JsonValue::object on non-object");
  return std::get<Object>(v_);
}

bool JsonValue::has(const std::string& key) const {
  return find(key) != nullptr;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  GTL_REQUIRE(is_object(), "JsonValue::find on non-object");
  const auto& obj = std::get<Object>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  GTL_REQUIRE(is_object(), "JsonValue::set on non-object");
  auto& obj = std::get<Object>(v_);
  return obj.insert_or_assign(key, std::move(value)).first->second;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Status JsonValue::parse(std::string_view text, JsonValue* out) {
  Parser p(text);
  return p.parse_document(out);
}

}  // namespace gtl
