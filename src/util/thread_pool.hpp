#pragma once
// Fixed-size thread pool.
//
// The paper parallelizes the per-seed searches with 8 pthreads ("the only
// serial part is the final comparison between the m refined GTLs").  We
// reproduce that structure with a std::thread pool; all tanglefind phases
// I-III run as independent tasks per seed.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gtl {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gtl
