#pragma once
// Fixed-size thread pool.
//
// The paper parallelizes the per-seed searches with 8 pthreads ("the only
// serial part is the final comparison between the m refined GTLs").  We
// reproduce that structure with a std::thread pool; all tanglefind phases
// I-III run as independent tasks per seed.

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace gtl {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lk(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// If any fn throws, the first exception (in index order) is rethrown
  /// — but only after every task has finished, since running tasks still
  /// reference the caller's fn.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run fn(i, slot) for i in [0, n): min(size(), n) tasks pull indices
  /// from a shared atomic ticket counter, so an expensive index never
  /// pins a whole pre-carved chunk behind it (dynamic load balancing).
  /// `slot` is a stable per-task id in [0, min(size(), n)) — use it to
  /// address per-worker scratch.  Determinism contract: the *set* of
  /// (i, result) pairs is independent of the interleaving as long as fn
  /// writes only to per-index state and per-slot scratch whose contents
  /// do not leak between indices; which slot processes which index is
  /// NOT deterministic.  With one worker (or n == 1) indices are
  /// processed in increasing order.
  void parallel_for_dynamic(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop() GTL_EXCLUDES(mu_);

  // workers_ is written once in the constructor and joined in the
  // destructor; no worker touches it, so it needs no guard.
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ GTL_GUARDED_BY(mu_);
  bool stop_ GTL_GUARDED_BY(mu_) = false;
};

}  // namespace gtl
