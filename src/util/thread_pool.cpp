#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "util/failpoint.hpp"

namespace gtl {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    // Failpoint "thread_pool.task": delay = stall this worker before the
    // task runs, widening scheduling races for the chaos suite.  Other
    // actions are meaningless here and ignored.
    if (failpoint::Action fp; failpoint::check("thread_pool.task", &fp)) {
      if (fp.kind == failpoint::Action::Kind::kDelay) {
        std::this_thread::sleep_for(std::chrono::milliseconds(fp.param));
      }
    }
    task();
  }
}

namespace {

/// Wait for EVERY future before rethrowing the first captured exception.
/// Rethrowing from the first failed get() would unwind this frame while
/// later tasks are still running — and they reference the caller's
/// stack-local fn (and, for the dynamic variant, the ticket counter).
void join_all_then_throw(std::vector<std::future<void>>& futs) {
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  join_all_then_throw(futs);
}

void ThreadPool::parallel_for_dynamic(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t slots = std::min(size(), n);
  std::vector<std::future<void>> futs;
  futs.reserve(slots);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    futs.push_back(submit([&fn, &next, n, slot] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i, slot);
      }
    }));
  }
  join_all_then_throw(futs);
}

}  // namespace gtl
