#include "util/thread_pool.hpp"

#include <atomic>

namespace gtl {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) f.get();  // propagate exceptions
}

}  // namespace gtl
