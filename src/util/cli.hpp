#pragma once
// Minimal command-line option parsing shared by bench/ and examples/.
// Supports  --key=value  and  --flag  forms.

#include <cstdint>
#include <map>
#include <string>

namespace gtl {

/// Parsed command line: --key=value pairs plus bare --flags (value "true").
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// Value of --key, or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = {}) const;

  /// Integer value of --key, or `fallback` if absent/unparseable.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;

  /// Double value of --key, or `fallback` if absent/unparseable.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// True if --key was given (as flag or with truthy value).
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> kv_;
};

/// Standard experiment scale selector used by every bench binary.
/// "smoke"  — seconds-scale sanity run;
/// "default"— minutes-scale run with paper-shaped ratios (the default);
/// "paper"  — full paper sizes (hours on laptop hardware).
enum class Scale { kSmoke, kDefault, kPaper };

/// Parse --scale=smoke|default|paper (defaults to kDefault).
[[nodiscard]] Scale parse_scale(const CliArgs& args);

/// Human-readable name of a scale value.
[[nodiscard]] const char* scale_name(Scale s);

}  // namespace gtl
