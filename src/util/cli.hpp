#pragma once
// Minimal command-line option parsing shared by bench/ and examples/.
// Supports  --key=value  and  --flag  forms.
//
// Binaries register their options with describe() (which powers the
// generated --help text) and check status() after reading them: a value
// that fails to parse as its requested type is reported through
// gtl::Status instead of being silently replaced by the fallback.
//
//   CliArgs args(argc, argv);
//   args.usage("Reproduce Table 1 on planted random graphs.")
//       .describe("seeds=N", "random starting seeds (default 100)")
//       .describe("threads=N", "worker threads (default: all cores)");
//   if (args.help_requested()) { args.print_help(std::cout); return 0; }
//   const auto seeds = args.get_int("seeds", 100);
//   ...
//   if (const Status st = args.status(); !st.is_ok()) {
//     std::cerr << "error: " << st.to_string() << "\n";
//     return 2;
//   }

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace gtl {

/// Parsed command line: --key=value pairs plus bare --flags (value "true").
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// One-line program description shown at the top of --help.
  CliArgs& usage(std::string summary);

  /// Register an option for --help.  `spec` is the key with an optional
  /// value hint after '='  (e.g. "seeds=N" registers --seeds).
  CliArgs& describe(std::string spec, std::string help);

  /// True when --help (or --h) was given.
  [[nodiscard]] bool help_requested() const;

  /// Generated help: usage line, summary, and every describe()d option.
  void print_help(std::ostream& os) const;

  /// Value of --key, or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = {}) const;

  /// String value of --key with validation symmetry to get_int/get_double:
  /// a bare `--key` (no =value) where a value is expected returns the
  /// fallback AND records an error in status().  Use get()/has() for
  /// boolean flags.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = {}) const;

  /// Integer value of --key, or `fallback` if absent.  An unparseable
  /// value returns the fallback AND records an error in status().
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;

  /// Double value of --key, same error contract as get_int.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// Strict accessors: absent key leaves *out untouched and returns OK;
  /// an unparseable value returns (and records) a parse error.
  [[nodiscard]] Status parse_int(const std::string& key,
                                 std::int64_t* out) const;
  [[nodiscard]] Status parse_double(const std::string& key,
                                    double* out) const;
  /// Strict string accessor (see get_string for the bare-flag contract).
  [[nodiscard]] Status parse_string(const std::string& key,
                                    std::string* out) const;

  /// True if --key was given (as flag or with a value).
  [[nodiscard]] bool has(const std::string& key) const;

  /// First error recorded by any accessor (or by parse_scale), or OK.
  /// Also validates the command line itself: a flag given more than once
  /// is an error (recorded at construction), and — once at least one
  /// option has been describe()d — so is any flag that was never
  /// registered, catching typos like --sees=40 that would otherwise run
  /// silently with defaults.
  [[nodiscard]] Status status() const;

  /// Record an error against this command line (first one wins).  Used
  /// by helpers layered on CliArgs, e.g. parse_scale.
  void record_error(Status st) const;

 private:
  std::string program_;
  std::string summary_;
  /// (spec, help) in registration order.
  std::vector<std::pair<std::string, std::string>> options_;
  std::map<std::string, std::string> kv_;
  /// Keys given as bare --flag (no '='): get_string treats these as
  /// missing values.
  std::set<std::string> bare_;
  mutable Status status_;
  /// Unknown-flag validation runs once, on the first status() call after
  /// the options have been registered.
  mutable bool checked_unknown_ = false;
};

/// Print the generated help to stdout when --help was given; true =>
/// the caller should exit 0.
[[nodiscard]] bool cli_help_exit(const CliArgs& args);

/// Report any recorded parse error to stderr with a --help hint;
/// true => the caller should exit nonzero (conventionally 2).
[[nodiscard]] bool cli_error_exit(const CliArgs& args);

/// Standard experiment scale selector used by every bench binary.
/// "smoke"  — seconds-scale sanity run;
/// "default"— minutes-scale run with paper-shaped ratios (the default);
/// "paper"  — full paper sizes (hours on laptop hardware).
enum class Scale { kSmoke, kDefault, kPaper };

/// Parse --scale=smoke|default|paper (defaults to kDefault).  An unknown
/// value returns kDefault and records an error in args.status().
[[nodiscard]] Scale parse_scale(const CliArgs& args);

/// Human-readable name of a scale value.
[[nodiscard]] const char* scale_name(Scale s);

}  // namespace gtl
