#pragma once
// Small statistics helpers used by the metrics and the experiment harness:
// mean / median / percentile, and least-squares line fitting in log-log
// space (Rent's rule  T = A * k^p  fits a line  ln T = ln A + p * ln k).

#include <cstddef>
#include <span>
#include <vector>

namespace gtl {

/// Arithmetic mean. Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Median (average of middle two for even sizes). Returns 0 if empty.
[[nodiscard]] double median(std::vector<double> xs);

/// q-th percentile with linear interpolation, q in [0,1]. Returns 0 if empty.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

/// Result of an ordinary least-squares fit y = intercept + slope * x.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Least-squares fit; xs and ys must be the same length (>= 2).
[[nodiscard]] LineFit fit_line(std::span<const double> xs,
                               std::span<const double> ys);

/// Fit  T = A * k^p  through points (k_i, T_i) with k_i, T_i > 0 via the
/// log-log line fit.  slope = p (Rent exponent), exp(intercept) = A.
[[nodiscard]] LineFit fit_power_law(std::span<const double> ks,
                                    std::span<const double> ts);

}  // namespace gtl
