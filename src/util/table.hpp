#pragma once
// Console table rendering for the experiment harness (bench/).  Each bench
// binary regenerates one paper table/figure and prints it in the same
// row/column structure the paper reports.

#include <iosfwd>
#include <string>
#include <vector>

namespace gtl {

/// A simple aligned text table with an optional title.
/// Cells are strings; use the fmt_* helpers for numbers.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row (column names).
  void set_header(std::vector<std::string> header);

  /// Append a data row. Rows may be ragged; missing cells print empty.
  void add_row(std::vector<std::string> row);

  /// Render with box-drawing alignment to `os`.
  void print(std::ostream& os) const;

  /// Render as comma-separated values (header first).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant decimal places.
[[nodiscard]] std::string fmt_double(double v, int digits = 3);

/// Format a double as a percentage ("1.25%").
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 2);

/// Format an integer with thousands separators ("1,096,812").
[[nodiscard]] std::string fmt_int(long long v);

}  // namespace gtl
