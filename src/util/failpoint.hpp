#pragma once
// Deterministic fault injection for robustness testing.
//
// A *failpoint* is a named hook compiled into an I/O or concurrency hot
// spot (socket send/recv, file reads, snapshot writes, the serve
// admission path, ...).  Tests and the chaos harness *arm* failpoints
// with a Spec — a schedule of when to trigger (skip the first N hits,
// trigger at most M times, per-hit probability) and an Action saying
// what the site should do: fail with an injected Status, sleep, process
// only a prefix of the bytes (short read/write), or behave as if the
// call was interrupted (EINTR storm).  All randomness is seeded, so a
// chaos schedule replays bit-for-bit.
//
// Cost model: sites are compiled only when the CMake option
// `GTL_FAILPOINTS=ON` defines GTL_FAILPOINTS_ENABLED.  Without it,
// `check()` is a constant-false inline and every site folds to nothing —
// production builds carry zero branches, zero strings, zero atomics.
// With it but nothing armed, a site costs one relaxed atomic load.
//
// Configuration reaches a binary three ways:
//   * programmatically: arm()/disarm()/disarm_all() (what tests use);
//   * the GTL_FAILPOINTS env var holding inline JSON;
//   * the GTL_FAILPOINTS_FILE env var naming a JSON file.
// JSON shape (every spec field optional except "action"):
//   {"seed": 42,
//    "points": {"socket.send": {"action": "short_io", "param": 3,
//                               "skip": 2, "limit": 5,
//                               "probability": 0.5,
//                               "message": "injected"}}}
// Actions: "fail", "delay" (param = ms), "short_io" (param = byte cap),
// "eintr" (one interrupted iteration per trigger; "limit" bounds the
// storm).  Sites honor the subset of actions that makes sense for them
// and ignore the rest; the per-site contract is documented at the site.
//
// Counters: hit_count() (evaluations) and trigger_count() per point let
// the chaos suite assert a schedule actually fired; gtl_serve surfaces
// trigger_counts() in its `stats` op when compiled in.

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace gtl::failpoint {

/// What a triggered failpoint tells its site to do.
struct Action {
  enum class Kind {
    kFail,     ///< return an injected error Status
    kDelay,    ///< sleep `param` milliseconds, then continue normally
    kShortIo,  ///< process at most `param` bytes in this call
    kEintr,    ///< behave as one EINTR-interrupted iteration
  };
  Kind kind = Kind::kFail;
  std::uint64_t param = 0;  ///< ms (delay) / bytes (short_io); else unused
  std::string message;      ///< optional text for the injected Status
};

/// When a failpoint triggers.  Defaults: every hit, forever.
struct Spec {
  Action action;
  /// The first `skip` hits never trigger (fail-the-Nth = skip N-1, limit 1).
  std::uint64_t skip = 0;
  /// Trigger at most this many times.
  std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
  /// Per-eligible-hit trigger probability, from the seeded stream.
  double probability = 1.0;
};

/// Parsed form of the JSON configuration (see the header comment).
struct Config {
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, Spec>> points;
};

/// Parse the JSON configuration text.  Pure (no registry side effects)
/// and always compiled, so config validation is testable in any build.
[[nodiscard]] Status parse_config(std::string_view text, Config* out);

#if defined(GTL_FAILPOINTS_ENABLED)

/// True in builds configured with -DGTL_FAILPOINTS=ON.
[[nodiscard]] constexpr bool compiled_in() { return true; }

namespace detail {
/// Number of armed points; the one-load fast path of check().
[[nodiscard]] bool any_armed();
[[nodiscard]] bool check_slow(std::string_view name, Action* out);
}  // namespace detail

/// Evaluate the failpoint `name`: true (and *out filled) when it
/// triggers on this hit.  Thread-safe.
[[nodiscard]] inline bool check(std::string_view name, Action* out) {
  return detail::any_armed() && detail::check_slow(name, out);
}

/// Arm (or replace) a failpoint.  Resets its counters and its seeded
/// probability stream.
void arm(std::string name, Spec spec);

/// Disarm one point (true if it was armed) / all points.
bool disarm(std::string_view name);
void disarm_all();

/// Reseed the probability streams of *subsequently armed* points.
void reseed(std::uint64_t seed);

/// Evaluations / triggers since the point was (re)armed; 0 when unknown.
[[nodiscard]] std::uint64_t hit_count(std::string_view name);
[[nodiscard]] std::uint64_t trigger_count(std::string_view name);

/// (name, triggers) for every armed point, name-sorted — for stats.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
trigger_counts();

/// Apply a parsed Config: reseed, then arm every listed point.
void apply(const Config& config);

/// Parse and apply inline JSON.
[[nodiscard]] Status configure_from_json(std::string_view text);

/// Read GTL_FAILPOINTS (inline JSON) else GTL_FAILPOINTS_FILE (path to
/// JSON); absent env vars are OK (nothing armed).
[[nodiscard]] Status configure_from_env();

#else  // !GTL_FAILPOINTS_ENABLED — constant no-ops the optimizer erases.

[[nodiscard]] constexpr bool compiled_in() { return false; }

[[nodiscard]] inline bool check(std::string_view, Action*) { return false; }

inline void arm(std::string, Spec) {}
inline bool disarm(std::string_view) { return false; }
inline void disarm_all() {}
inline void reseed(std::uint64_t) {}
[[nodiscard]] inline std::uint64_t hit_count(std::string_view) { return 0; }
[[nodiscard]] inline std::uint64_t trigger_count(std::string_view) {
  return 0;
}
[[nodiscard]] inline std::vector<std::pair<std::string, std::uint64_t>>
trigger_counts() {
  return {};
}
inline void apply(const Config&) {}
[[nodiscard]] inline Status configure_from_json(std::string_view text) {
  Config config;  // still validate: a typo'd schedule should fail loudly
  return parse_config(text, &config);
}
[[nodiscard]] Status configure_from_env();

#endif  // GTL_FAILPOINTS_ENABLED

}  // namespace gtl::failpoint
