#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace gtl {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < cols; ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string fmt_int(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? static_cast<unsigned long long>(-(v + 1)) + 1
                             : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gtl
