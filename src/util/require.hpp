#pragma once
// Precondition / invariant checking in the spirit of the Core Guidelines'
// Expects()/Ensures().  Violations throw std::logic_error with location
// context rather than aborting, so library users get a diagnosable error.

#include <stdexcept>
#include <string>

namespace gtl::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::string what = "requirement failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " (";
    what += msg;
    what += ')';
  }
  throw std::logic_error(what);
}

}  // namespace gtl::detail

/// Check a precondition; throws std::logic_error on failure.
#define GTL_REQUIRE(expr, msg)                                       \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::gtl::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)
