#include "util/rng.hpp"

#include <stdexcept>
#include <unordered_set>

namespace gtl {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::vector<std::uint32_t> Rng::sample_distinct(std::uint32_t n,
                                                std::uint32_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_distinct: k > n");
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint32_t j =
          i + static_cast<std::uint32_t>(next_below(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const auto v = static_cast<std::uint32_t>(next_below(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::split() { return Rng(next() ^ 0xA3C59AC2F0EED5B1ULL); }

}  // namespace gtl
