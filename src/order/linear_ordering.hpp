#pragma once
// Phase I of the tangled-logic finder (paper §3.2.1, Algorithm steps
// I.1-I.11): grow a group from a seed cell, absorbing at each step the
// frontier cell with the strongest connection to the group,
//
//     conn(v) = Σ_{e ∋ v, e∩S ≠ ∅}  1 / (λ(e) + 1),
//
// where λ(e) = |e| − |e∩S| is the number of pins of net e outside the
// group (so nets mostly inside the group weigh more).  Ties are broken by
// the smaller net-cut delta (paper: "favoring min cut"), then by cell id
// for determinism.  The order of absorption is the linear ordering; the
// engine also records T(C_k) and pins(C_k) for every prefix, which is all
// Phase II needs.
//
// The paper's large-net trick (§4.1.2) is reproduced: nets with
// λ(e) >= large_net_threshold (default 20) contribute nothing to conn and
// their pins are not pulled into the frontier until enough of the net is
// absorbed; this bounds the per-step update cost on high-fanout nets.
// Setting the threshold to 0 disables the trick (exact algorithm).

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/indexed_dary_heap.hpp"

namespace gtl {

struct OrderingConfig {
  /// Z: maximum ordering length (paper uses up to 100K).
  std::size_t max_length = 100'000;
  /// Skip gain updates through nets with >= this many external pins;
  /// 0 disables the trick (exact gains).
  std::uint32_t large_net_threshold = 20;
  /// Ablation knob: rank frontier cells by min cut delta first and
  /// connection gain second — the ordering the paper argues *against* in
  /// §3.2.1 ("if we use min-cut as the primary criterion, it is quite
  /// likely that [an outside] cell is included into the growing group").
  bool min_cut_first = false;
};

/// A linear ordering with per-prefix connectivity statistics.
struct LinearOrdering {
  CellId seed = kInvalidCell;
  /// Cells in absorption order (cells[0] == seed).
  std::vector<CellId> cells;
  /// prefix_cut[k-1] = T(C_k) where C_k = first k cells.
  std::vector<std::int64_t> prefix_cut;
  /// prefix_pins[k-1] = Σ degree(c) over C_k (numerator of A_{C_k}).
  std::vector<std::uint64_t> prefix_pins;
};

/// Reusable Phase I engine.  One engine per thread; `grow` may be called
/// any number of times (state is reset in O(touched) between runs).
class OrderingEngine {
 public:
  explicit OrderingEngine(const Netlist& nl, OrderingConfig cfg = {});

  /// Grow an ordering from `seed`.  Fixed cells are never absorbed and
  /// cannot seed (throws std::invalid_argument).  The ordering may be
  /// shorter than Z if the frontier empties (disconnected region).
  [[nodiscard]] LinearOrdering grow(CellId seed);

  [[nodiscard]] const OrderingConfig& config() const { return cfg_; }

 private:
  struct FrontierKey {
    double conn;
    std::int32_t cut_delta;
    CellId cell;
  };
  /// Default: highest conn first, lowest cut delta breaks ties (paper
  /// I.7).  min_cut_first swaps the two criteria (ablation).
  struct FrontierCompare {
    bool min_cut_first = false;
    bool operator()(const FrontierKey& a, const FrontierKey& b) const {
      if (min_cut_first) {
        if (a.cut_delta != b.cut_delta) return a.cut_delta < b.cut_delta;
        if (a.conn != b.conn) return a.conn > b.conn;
      } else {
        if (a.conn != b.conn) return a.conn > b.conn;
        if (a.cut_delta != b.cut_delta) return a.cut_delta < b.cut_delta;
      }
      return a.cell < b.cell;
    }
  };

  void reset();
  void absorb(CellId u);
  void touch_cell(CellId c);
  /// Re-key `c` in the frontier after its conn/cut_delta changed.
  void frontier_update(CellId c, double new_conn, std::int32_t new_delta);

  const Netlist* nl_;
  OrderingConfig cfg_;

  // Per-cell state (allocated once, reset via touched list).
  std::vector<double> conn_;
  std::vector<std::int32_t> cut_delta_;
  std::vector<std::uint8_t> state_;  // 0 untouched, 1 frontier, 2 in group
  // Per-net state.
  std::vector<std::uint32_t> pins_in_;

  /// Frontier: position-indexed 4-ary heap, re-keyed in place (no
  /// per-update allocation or tree rebalancing).  The key embeds the cell
  /// id as the final tie-break, so top() is unique and orderings stay
  /// byte-identical to the old std::set frontier.
  IndexedDaryHeap<FrontierKey, FrontierCompare> frontier_;
  std::vector<CellId> touched_cells_;
  std::vector<NetId> touched_nets_;
  std::int64_t cut_ = 0;
  std::uint64_t pins_in_group_ = 0;
};

}  // namespace gtl
