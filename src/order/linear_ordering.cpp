#include "order/linear_ordering.hpp"

#include <stdexcept>

#include "util/require.hpp"

namespace gtl {
namespace {

/// Contribution of net `e` (with `k` pins in the group) to an outside
/// pin's connection gain.  Inactive (above-threshold or 1-pin) nets
/// contribute nothing — the paper's large-net trick.
struct NetContribution {
  double conn = 0.0;
  std::int32_t cut_delta = 0;
};

NetContribution contribution(std::uint32_t net_size, std::uint32_t k,
                             std::uint32_t threshold) {
  NetContribution out;
  if (net_size < 2) return out;
  const std::uint32_t lambda = net_size - k;
  const bool active = threshold == 0 || lambda < threshold;
  if (!active) return out;
  if (k > 0) out.conn = 1.0 / static_cast<double>(lambda + 1);
  if (k == 0) {
    out.cut_delta = 1;  // absorbing an outside pin would newly cut the net
  } else if (k == net_size - 1) {
    out.cut_delta = -1;  // absorbing the last outside pin uncuts it
  }
  return out;
}

}  // namespace

OrderingEngine::OrderingEngine(const Netlist& nl, OrderingConfig cfg)
    : nl_(&nl),
      cfg_(cfg),
      conn_(nl.num_cells(), 0.0),
      cut_delta_(nl.num_cells(), 0),
      state_(nl.num_cells(), 0),
      pins_in_(nl.num_nets(), 0),
      frontier_(FrontierCompare{cfg.min_cut_first}) {
  frontier_.reset(nl.num_cells());
}

void OrderingEngine::reset() {
  for (const CellId c : touched_cells_) {
    conn_[c] = 0.0;
    cut_delta_[c] = 0;
    state_[c] = 0;
  }
  touched_cells_.clear();
  for (const NetId e : touched_nets_) pins_in_[e] = 0;
  touched_nets_.clear();
  frontier_.clear();
  cut_ = 0;
  pins_in_group_ = 0;
}

void OrderingEngine::touch_cell(CellId c) {
  if (state_[c] == 0) touched_cells_.push_back(c);
}

void OrderingEngine::frontier_update(CellId c, double new_conn,
                                     std::int32_t new_delta) {
  conn_[c] = new_conn;
  cut_delta_[c] = new_delta;
  frontier_.update_key(c, FrontierKey{new_conn, new_delta, c});
}

void OrderingEngine::absorb(CellId u) {
  if (state_[u] == 1) frontier_.erase(u);
  touch_cell(u);
  state_[u] = 2;
  pins_in_group_ += nl_->cell_degree(u);

  const std::uint32_t threshold = cfg_.large_net_threshold;
  for (const NetId e : nl_->nets_of(u)) {
    const std::uint32_t size = nl_->net_size(e);
    const std::uint32_t k_old = pins_in_[e];
    if (k_old == 0) touched_nets_.push_back(e);

    // Exact cut maintenance (the reported T(C_k) is never approximated).
    if (size > 1) {
      if (k_old == 0) ++cut_;
      if (k_old + 1 == size) --cut_;
    }

    const NetContribution before = contribution(size, k_old, threshold);
    pins_in_[e] = k_old + 1;
    const NetContribution after = contribution(size, k_old + 1, threshold);

    // If the net contributes nothing before and after (inactive large net
    // or fully interior), its outside pins need no attention.
    const bool discover = after.conn != 0.0 || after.cut_delta != 0;
    const bool changed = before.conn != after.conn ||
                         before.cut_delta != after.cut_delta;
    if (!discover && !changed) continue;

    for (const CellId w : nl_->pins_of(e)) {
      if (w == u || state_[w] == 2 || nl_->is_fixed(w)) continue;
      if (state_[w] == 0) {
        // Lazy initialization: compute exact current gains from scratch
        // (sees the already-updated pins_in_[e], so no delta is applied).
        touch_cell(w);
        state_[w] = 1;
        double conn = 0.0;
        std::int32_t delta = 0;
        for (const NetId f : nl_->nets_of(w)) {
          const NetContribution cf =
              contribution(nl_->net_size(f), pins_in_[f], threshold);
          conn += cf.conn;
          delta += cf.cut_delta;
        }
        conn_[w] = conn;
        cut_delta_[w] = delta;
        frontier_.push(w, FrontierKey{conn, delta, w});
      } else if (changed) {
        frontier_update(w, conn_[w] + after.conn - before.conn,
                        cut_delta_[w] + after.cut_delta - before.cut_delta);
      }
    }
  }
}

LinearOrdering OrderingEngine::grow(CellId seed) {
  GTL_REQUIRE(seed < nl_->num_cells(), "seed out of range");
  if (nl_->is_fixed(seed)) {
    throw std::invalid_argument("ordering seed must be a movable cell");
  }
  reset();

  LinearOrdering out;
  out.seed = seed;
  const std::size_t z =
      std::min<std::size_t>(cfg_.max_length, nl_->num_movable());
  out.cells.reserve(z);
  out.prefix_cut.reserve(z);
  out.prefix_pins.reserve(z);

  absorb(seed);
  out.cells.push_back(seed);
  out.prefix_cut.push_back(cut_);
  out.prefix_pins.push_back(pins_in_group_);

  while (out.cells.size() < z && !frontier_.empty()) {
    const CellId u = frontier_.top().id;
    absorb(u);
    out.cells.push_back(u);
    out.prefix_cut.push_back(cut_);
    out.prefix_pins.push_back(pins_in_group_);
  }
  return out;
}

}  // namespace gtl
