#include "viz/plots.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gtl {
namespace {

/// Map die coordinates to pixel coordinates (y flipped: die origin is
/// bottom-left, image origin top-left).
struct PixelMapper {
  double sx, sy;
  std::size_t img_h;
  [[nodiscard]] std::ptrdiff_t px(double x) const {
    return static_cast<std::ptrdiff_t>(x * sx);
  }
  [[nodiscard]] std::ptrdiff_t py(double y) const {
    return static_cast<std::ptrdiff_t>(img_h) - 1 -
           static_cast<std::ptrdiff_t>(y * sy);
  }
};

}  // namespace

Image render_placement(const Netlist& nl, std::span<const double> x,
                       std::span<const double> y, const Die& die,
                       const std::vector<std::vector<CellId>>& groups,
                       std::size_t image_width) {
  GTL_REQUIRE(die.width > 0.0 && die.height > 0.0, "die is degenerate");
  const auto image_height = static_cast<std::size_t>(std::max(
      8.0, std::round(static_cast<double>(image_width) * die.height /
                      die.width)));
  Image img(image_width, image_height, Color{250, 250, 250});
  const PixelMapper map{static_cast<double>(image_width) / die.width,
                        static_cast<double>(image_height) / die.height,
                        image_height};

  // Background cells in light gray.
  const Color gray{190, 190, 190};
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (nl.is_fixed(c)) continue;
    img.set(map.px(x[c]), map.py(y[c]), gray);
  }
  // Groups on top, 2x2 dots so small structures stay visible.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const Color col = category_color(g);
    for (const CellId c : groups[g]) {
      const std::ptrdiff_t px = map.px(x[c]), py = map.py(y[c]);
      img.fill_rect(px, py, px + 1, py + 1, col);
    }
  }
  return img;
}

Image render_congestion(const CongestionMap& map, std::size_t image_width) {
  GTL_REQUIRE(map.tiles_x > 0 && map.tiles_y > 0, "empty congestion map");
  const auto image_height = static_cast<std::size_t>(
      std::max(8.0, std::round(static_cast<double>(image_width) *
                               (map.tile_h * map.tiles_y) /
                               (map.tile_w * map.tiles_x))));
  Image img(image_width, image_height);
  const double px_per_tile_x =
      static_cast<double>(image_width) / static_cast<double>(map.tiles_x);
  const double px_per_tile_y =
      static_cast<double>(image_height) / static_cast<double>(map.tiles_y);
  for (std::size_t ty = 0; ty < map.tiles_y; ++ty) {
    for (std::size_t tx = 0; tx < map.tiles_x; ++tx) {
      const Color c = heat_color(map.utilization(tx, ty));
      const auto x0 = static_cast<std::ptrdiff_t>(tx * px_per_tile_x);
      const auto x1 = static_cast<std::ptrdiff_t>((tx + 1) * px_per_tile_x) - 1;
      // Flip y: tile row 0 is the die bottom -> image bottom.
      const std::size_t flipped = map.tiles_y - 1 - ty;
      const auto y0 = static_cast<std::ptrdiff_t>(flipped * px_per_tile_y);
      const auto y1 =
          static_cast<std::ptrdiff_t>((flipped + 1) * px_per_tile_y) - 1;
      img.fill_rect(x0, y0, x1, y1, c);
    }
  }
  return img;
}

std::string ascii_congestion(const CongestionMap& map, std::size_t cols,
                             std::size_t rows) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // last index
  std::string out;
  out.reserve((cols + 1) * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    // Top row of output = top of die.
    const std::size_t ty_hi = map.tiles_y - 1 -
                              r * map.tiles_y / rows;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t tx = c * map.tiles_x / cols;
      // Sample max utilization over the tile block this char covers.
      double u = 0.0;
      const std::size_t ty_lo =
          map.tiles_y - 1 - ((r + 1) * map.tiles_y / rows - 1);
      for (std::size_t ty = std::min(ty_lo, ty_hi); ty <= ty_hi; ++ty) {
        const std::size_t tx_end =
            std::max(tx + 1, (c + 1) * map.tiles_x / cols);
        for (std::size_t t = tx; t < tx_end && t < map.tiles_x; ++t) {
          u = std::max(u, map.utilization(t, ty));
        }
      }
      const auto level = static_cast<std::size_t>(
          std::clamp(u / 1.2, 0.0, 1.0) * kLevels);
      out.push_back(kRamp[level]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string ascii_placement(const Netlist& nl, std::span<const double> x,
                            std::span<const double> y, const Die& die,
                            const std::vector<std::vector<CellId>>& groups,
                            std::size_t cols, std::size_t rows) {
  GTL_REQUIRE(die.width > 0.0 && die.height > 0.0, "die is degenerate");
  std::vector<int> marker(cols * rows, 0);  // 0 empty, 1 background, 2+g group
  auto bin = [&](double vx, double vy) -> std::size_t {
    auto cx = static_cast<std::size_t>(
        std::clamp(vx / die.width * static_cast<double>(cols), 0.0,
                   static_cast<double>(cols - 1)));
    auto cy = static_cast<std::size_t>(
        std::clamp(vy / die.height * static_cast<double>(rows), 0.0,
                   static_cast<double>(rows - 1)));
    // Flip: row 0 of the text = top of the die.
    return (rows - 1 - cy) * cols + cx;
  };
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (!nl.is_fixed(c))
      marker[bin(x[c], y[c])] = std::max(marker[bin(x[c], y[c])], 1);
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const CellId c : groups[g]) {
      marker[bin(x[c], y[c])] = static_cast<int>(g) + 2;
    }
  }
  std::string out;
  out.reserve((cols + 1) * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const int m = marker[r * cols + c];
      if (m == 0) {
        out.push_back(' ');
      } else if (m == 1) {
        out.push_back('.');
      } else {
        out.push_back(static_cast<char>('A' + (m - 2) % 26));
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace gtl
