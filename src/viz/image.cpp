#include "viz/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace gtl {

Image::Image(std::size_t width, std::size_t height, Color fill)
    : width_(width), height_(height), rgb_(width * height * 3) {
  for (std::size_t i = 0; i < width_ * height_; ++i) {
    rgb_[i * 3 + 0] = fill.r;
    rgb_[i * 3 + 1] = fill.g;
    rgb_[i * 3 + 2] = fill.b;
  }
}

void Image::set(std::ptrdiff_t x, std::ptrdiff_t y, Color c) {
  if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(width_) ||
      y >= static_cast<std::ptrdiff_t>(height_)) {
    return;
  }
  const std::size_t i =
      (static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)) * 3;
  rgb_[i + 0] = c.r;
  rgb_[i + 1] = c.g;
  rgb_[i + 2] = c.b;
}

void Image::fill_rect(std::ptrdiff_t x0, std::ptrdiff_t y0, std::ptrdiff_t x1,
                      std::ptrdiff_t y1, Color c) {
  for (std::ptrdiff_t y = std::max<std::ptrdiff_t>(y0, 0);
       y <= y1 && y < static_cast<std::ptrdiff_t>(height_); ++y) {
    for (std::ptrdiff_t x = std::max<std::ptrdiff_t>(x0, 0);
         x <= x1 && x < static_cast<std::ptrdiff_t>(width_); ++x) {
      set(x, y, c);
    }
  }
}

Color Image::get(std::size_t x, std::size_t y) const {
  const std::size_t i = (y * width_ + x) * 3;
  return {rgb_[i], rgb_[i + 1], rgb_[i + 2]};
}

void Image::write_ppm(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(rgb_.data()),
            static_cast<std::streamsize>(rgb_.size()));
  if (!out) throw std::runtime_error("short write to " + path.string());
}

Color heat_color(double value, double hi) {
  const double t = std::clamp(value / hi, 0.0, 1.0);
  // Piecewise ramp: blue (cold) -> cyan -> green -> yellow -> red (hot).
  auto lerp = [](double a, double b, double f) {
    return static_cast<std::uint8_t>(std::lround(a + (b - a) * f));
  };
  if (t < 0.25) {
    const double f = t / 0.25;
    return {0, lerp(0, 200, f), 255};
  }
  if (t < 0.5) {
    const double f = (t - 0.25) / 0.25;
    return {0, lerp(200, 220, f), lerp(255, 60, f)};
  }
  if (t < 0.75) {
    const double f = (t - 0.5) / 0.25;
    return {lerp(0, 255, f), 220, lerp(60, 0, f)};
  }
  const double f = (t - 0.75) / 0.25;
  return {255, lerp(220, 30, f), 0};
}

Color category_color(std::size_t index) {
  static constexpr Color kPalette[] = {
      {230, 25, 75},  {60, 180, 75},   {255, 225, 25}, {0, 130, 200},
      {245, 130, 48}, {145, 30, 180},  {70, 240, 240}, {240, 50, 230},
      {210, 245, 60}, {250, 190, 212}, {0, 128, 128},  {220, 190, 255},
      {170, 110, 40}, {128, 0, 0},     {170, 255, 195}, {128, 128, 0},
  };
  return kPalette[index % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

}  // namespace gtl
