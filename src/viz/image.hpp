#pragma once
// Minimal RGB raster + binary PPM (P6) writer — enough to regenerate the
// paper's placement and congestion figures (Figs. 1, 4, 6, 7) as image
// files without external dependencies.

#include <cstdint>
#include <filesystem>
#include <vector>

namespace gtl {

struct Color {
  std::uint8_t r = 0, g = 0, b = 0;
};

class Image {
 public:
  Image(std::size_t width, std::size_t height, Color fill = {255, 255, 255});

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }

  /// Set one pixel; out-of-range coordinates are ignored (clipping).
  void set(std::ptrdiff_t x, std::ptrdiff_t y, Color c);

  /// Filled axis-aligned rectangle (clipped).
  void fill_rect(std::ptrdiff_t x0, std::ptrdiff_t y0, std::ptrdiff_t x1,
                 std::ptrdiff_t y1, Color c);

  [[nodiscard]] Color get(std::size_t x, std::size_t y) const;

  /// Write binary PPM; throws std::runtime_error on I/O failure.
  void write_ppm(const std::filesystem::path& path) const;

 private:
  std::size_t width_, height_;
  std::vector<std::uint8_t> rgb_;
};

/// Blue→green→yellow→red ramp for utilization in [0, hi]; values above hi
/// saturate to dark red.  Matches the usual congestion-map palette.
[[nodiscard]] Color heat_color(double value, double hi = 1.2);

/// Qualitative palette for structure ids (wraps around).
[[nodiscard]] Color category_color(std::size_t index);

}  // namespace gtl
