#pragma once
// Figure renderers: placement maps with GTLs highlighted (Figs. 4 and 6)
// and congestion heatmaps (Figs. 1 and 7), plus ASCII fallbacks so every
// bench can show its "figure" directly on the console.

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/congestion.hpp"
#include "place/quadratic_placer.hpp"
#include "viz/image.hpp"

namespace gtl {

/// Render a placement: background cells gray, each group in `groups`
/// drawn in a distinct color on top (the paper's "clots with colors
/// different from the majority of cells").
[[nodiscard]] Image render_placement(
    const Netlist& nl, std::span<const double> x, std::span<const double> y,
    const Die& die, const std::vector<std::vector<CellId>>& groups,
    std::size_t image_width = 800);

/// Render a congestion map with the standard heat palette.
[[nodiscard]] Image render_congestion(const CongestionMap& map,
                                      std::size_t image_width = 800);

/// Coarse ASCII heatmap of a congestion map (for console output):
/// characters " .:-=+*#%@" from cold to hot.
[[nodiscard]] std::string ascii_congestion(const CongestionMap& map,
                                           std::size_t cols = 64,
                                           std::size_t rows = 24);

/// ASCII placement density map highlighting group cells: group cells are
/// letters (A, B, ...), background density shown as dots.
[[nodiscard]] std::string ascii_placement(
    const Netlist& nl, std::span<const double> x, std::span<const double> y,
    const Die& die, const std::vector<std::vector<CellId>>& groups,
    std::size_t cols = 64, std::size_t rows = 24);

}  // namespace gtl
