#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "finder/finder_json.hpp"

namespace gtl::serve {
namespace {

/// Pull the result block out of an OK response.
Status result_block(const JsonValue& response, JsonValue* out) {
  const JsonValue* result = response.find("result");
  if (result == nullptr) {
    return Status::parse_error("ok response is missing \"result\"");
  }
  *out = *result;
  return Status::ok();
}

}  // namespace

Status Client::connect(const std::filesystem::path& path, Client* out) {
  out->path_ = path;
  return UnixStream::connect(path, &out->stream_);
}

Status Client::reconnect() {
  if (path_.empty()) {
    return Status::invalid_argument("client has no remembered socket path");
  }
  stream_.close();
  return UnixStream::connect(path_, &stream_);
}

void Client::set_retry_policy(const RetryPolicy& policy) {
  retry_ = policy;
  if (retry_.max_attempts == 0) retry_.max_attempts = 1;
  rng_.reseed(retry_.seed);
}

Status Client::call_retrying(Op op, const JsonValue::Object& fields,
                             JsonValue* response, bool idempotent,
                             std::uint64_t budget_ms) {
  using Clock = std::chrono::steady_clock;
  if (budget_ms == 0) budget_ms = retry_.budget_ms;
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(budget_ms);

  Status last = Status::ok();
  for (std::size_t attempt = 0;; ++attempt) {
    *response = JsonValue();
    last = call(op, fields, response);
    if (last.is_ok()) return last;

    // A filled response object means the server answered: that is a
    // wire-level error, retryable only when it says "overloaded".  An
    // unfilled one means the transport failed under us (dead server,
    // dropped connection) — retryable after a reconnect.
    const bool transport = !response->is_object();
    const bool overloaded =
        !transport && last.code() == StatusCode::kUnavailable;
    if (!idempotent || (!transport && !overloaded)) return last;
    if (attempt + 1 >= retry_.max_attempts) return last;

    std::uint64_t backoff = retry_.max_backoff_ms;
    if (attempt < 20) {
      backoff = std::min<std::uint64_t>(retry_.max_backoff_ms,
                                        retry_.base_backoff_ms << attempt);
    }
    // The server's shed hint is a floor, never a shortcut.
    backoff = std::max(backoff, response_retry_after_ms(*response));
    const std::uint64_t half = backoff / 2;
    const std::uint64_t wait =
        half + (backoff > half ? rng_.next_below(backoff - half + 1) : 0);
    if (Clock::now() + std::chrono::milliseconds(wait) >= give_up) {
      return last;  // the budget cannot fit another attempt
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    if (transport) {
      if (const Status rc = reconnect(); !rc.is_ok()) {
        last = rc;  // server may still be restarting; keep trying
      }
    }
  }
}

Status Client::call(Op op, JsonValue::Object fields, JsonValue* response) {
  if (!stream_.valid()) {
    return Status::invalid_argument("client is not connected");
  }
  const std::uint64_t id = next_id_++;
  fields.emplace("id", JsonValue(id));
  fields.emplace("op", JsonValue(op_name(op)));
  GTL_RETURN_IF_ERROR(
      stream_.write_line(JsonValue(std::move(fields)).dump()));

  std::string line;
  bool eof = false;
  GTL_RETURN_IF_ERROR(stream_.read_line(&line, &eof));
  if (line.empty()) {
    return Status::unavailable("server closed the connection");
  }
  GTL_RETURN_IF_ERROR(JsonValue::parse(line, response));

  // The protocol is strictly request/response on this stream, but verify
  // the echo anyway — a mismatch means the framing is gone.
  if (const JsonValue* got = response->find("id");
      got != nullptr && !got->is_null()) {
    std::uint64_t got_id = 0;
    GTL_RETURN_IF_ERROR(got->get_uint64(&got_id));
    if (got_id != id) {
      return Status::parse_error("response id " + std::to_string(got_id) +
                                 " does not match request id " +
                                 std::to_string(id));
    }
  }
  return response_status(*response);
}

Status Client::load_design(const std::string& name,
                           const std::filesystem::path& aux,
                           const std::filesystem::path& snapshot,
                           JsonValue* result) {
  JsonValue::Object fields;
  fields.emplace("design", JsonValue(name));
  if (!aux.empty()) fields.emplace("aux", JsonValue(aux.string()));
  if (!snapshot.empty()) {
    fields.emplace("snapshot", JsonValue(snapshot.string()));
  }
  JsonValue response;
  // Retry-safe: the server's load_design is idempotent for a same-source
  // replay, so a lost reply costs nothing.
  GTL_RETURN_IF_ERROR(
      call_retrying(Op::kLoadDesign, fields, &response, true, 0));
  if (result != nullptr) {
    GTL_RETURN_IF_ERROR(result_block(response, result));
  }
  return Status::ok();
}

Status Client::unload_design(const std::string& name) {
  JsonValue::Object fields;
  fields.emplace("design", JsonValue(name));
  JsonValue response;
  // NEVER retried: a replayed unload whose first attempt succeeded (but
  // whose reply was lost) would observe its own success as not_found.
  return call(Op::kUnloadDesign, std::move(fields), &response);
}

Status Client::run_finder(const std::string& design,
                          const FinderConfig* config,
                          std::uint64_t deadline_ms, FinderResult* out,
                          JsonValue* raw_result) {
  JsonValue::Object fields;
  fields.emplace("design", JsonValue(design));
  if (config != nullptr) fields.emplace("config", to_json(*config));
  if (deadline_ms != 0) fields.emplace("deadline_ms", JsonValue(deadline_ms));
  JsonValue response;
  // Retry-safe: results are deterministic, so a duplicated run returns
  // the identical bytes.  The caller's deadline bounds the whole loop.
  GTL_RETURN_IF_ERROR(
      call_retrying(Op::kRunFinder, fields, &response, true, deadline_ms));
  JsonValue result;
  GTL_RETURN_IF_ERROR(result_block(response, &result));
  GTL_RETURN_IF_ERROR(finder_result_from_json(result, out));
  if (raw_result != nullptr) *raw_result = std::move(result);
  return Status::ok();
}

Status Client::cancel(std::uint64_t target_id, bool* delivered) {
  JsonValue::Object fields;
  fields.emplace("target_id", JsonValue(target_id));
  JsonValue response;
  // Retry-safe: cancelling an already-settled run answers not_found,
  // cancelling twice is a no-op.
  GTL_RETURN_IF_ERROR(call_retrying(Op::kCancel, fields, &response, true, 0));
  if (delivered != nullptr) {
    *delivered = false;
    JsonValue result;
    GTL_RETURN_IF_ERROR(result_block(response, &result));
    if (const JsonValue* d = result.find("delivered")) {
      GTL_RETURN_IF_ERROR(d->get_bool(delivered));
    }
  }
  return Status::ok();
}

Status Client::status(JsonValue* result) {
  JsonValue response;
  GTL_RETURN_IF_ERROR(
      call_retrying(Op::kStatus, JsonValue::Object{}, &response, true, 0));
  return result_block(response, result);
}

Status Client::stats(JsonValue* result) {
  JsonValue response;
  GTL_RETURN_IF_ERROR(
      call_retrying(Op::kStats, JsonValue::Object{}, &response, true, 0));
  return result_block(response, result);
}

}  // namespace gtl::serve
