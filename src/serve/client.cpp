#include "serve/client.hpp"

#include "finder/finder_json.hpp"

namespace gtl::serve {
namespace {

/// Pull the result block out of an OK response.
Status result_block(const JsonValue& response, JsonValue* out) {
  const JsonValue* result = response.find("result");
  if (result == nullptr) {
    return Status::parse_error("ok response is missing \"result\"");
  }
  *out = *result;
  return Status::ok();
}

}  // namespace

Status Client::connect(const std::filesystem::path& path, Client* out) {
  return UnixStream::connect(path, &out->stream_);
}

Status Client::call(Op op, JsonValue::Object fields, JsonValue* response) {
  if (!stream_.valid()) {
    return Status::invalid_argument("client is not connected");
  }
  const std::uint64_t id = next_id_++;
  fields.emplace("id", JsonValue(id));
  fields.emplace("op", JsonValue(op_name(op)));
  GTL_RETURN_IF_ERROR(
      stream_.write_line(JsonValue(std::move(fields)).dump()));

  std::string line;
  bool eof = false;
  GTL_RETURN_IF_ERROR(stream_.read_line(&line, &eof));
  if (line.empty()) {
    return Status::unavailable("server closed the connection");
  }
  GTL_RETURN_IF_ERROR(JsonValue::parse(line, response));

  // The protocol is strictly request/response on this stream, but verify
  // the echo anyway — a mismatch means the framing is gone.
  if (const JsonValue* got = response->find("id");
      got != nullptr && !got->is_null()) {
    std::uint64_t got_id = 0;
    GTL_RETURN_IF_ERROR(got->get_uint64(&got_id));
    if (got_id != id) {
      return Status::parse_error("response id " + std::to_string(got_id) +
                                 " does not match request id " +
                                 std::to_string(id));
    }
  }
  return response_status(*response);
}

Status Client::load_design(const std::string& name,
                           const std::filesystem::path& aux,
                           const std::filesystem::path& snapshot,
                           JsonValue* result) {
  JsonValue::Object fields;
  fields.emplace("design", JsonValue(name));
  if (!aux.empty()) fields.emplace("aux", JsonValue(aux.string()));
  if (!snapshot.empty()) {
    fields.emplace("snapshot", JsonValue(snapshot.string()));
  }
  JsonValue response;
  GTL_RETURN_IF_ERROR(call(Op::kLoadDesign, std::move(fields), &response));
  if (result != nullptr) {
    GTL_RETURN_IF_ERROR(result_block(response, result));
  }
  return Status::ok();
}

Status Client::unload_design(const std::string& name) {
  JsonValue::Object fields;
  fields.emplace("design", JsonValue(name));
  JsonValue response;
  return call(Op::kUnloadDesign, std::move(fields), &response);
}

Status Client::run_finder(const std::string& design,
                          const FinderConfig* config,
                          std::uint64_t deadline_ms, FinderResult* out,
                          JsonValue* raw_result) {
  JsonValue::Object fields;
  fields.emplace("design", JsonValue(design));
  if (config != nullptr) fields.emplace("config", to_json(*config));
  if (deadline_ms != 0) fields.emplace("deadline_ms", JsonValue(deadline_ms));
  JsonValue response;
  GTL_RETURN_IF_ERROR(call(Op::kRunFinder, std::move(fields), &response));
  JsonValue result;
  GTL_RETURN_IF_ERROR(result_block(response, &result));
  GTL_RETURN_IF_ERROR(finder_result_from_json(result, out));
  if (raw_result != nullptr) *raw_result = std::move(result);
  return Status::ok();
}

Status Client::cancel(std::uint64_t target_id, bool* delivered) {
  JsonValue::Object fields;
  fields.emplace("target_id", JsonValue(target_id));
  JsonValue response;
  GTL_RETURN_IF_ERROR(call(Op::kCancel, std::move(fields), &response));
  if (delivered != nullptr) {
    *delivered = false;
    JsonValue result;
    GTL_RETURN_IF_ERROR(result_block(response, &result));
    if (const JsonValue* d = result.find("delivered")) {
      GTL_RETURN_IF_ERROR(d->get_bool(delivered));
    }
  }
  return Status::ok();
}

Status Client::status(JsonValue* result) {
  JsonValue response;
  GTL_RETURN_IF_ERROR(call(Op::kStatus, JsonValue::Object{}, &response));
  return result_block(response, result);
}

Status Client::stats(JsonValue* result) {
  JsonValue response;
  GTL_RETURN_IF_ERROR(call(Op::kStats, JsonValue::Object{}, &response));
  return result_block(response, result);
}

}  // namespace gtl::serve
