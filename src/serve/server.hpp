#pragma once
// The gtl_serve query server: a long-lived daemon answering JSON-lines
// requests (see protocol.hpp) against a registry of loaded designs.
//
// Threading model
//   * Cheap ops (status, stats, cancel, unload_design) execute inline on
//     the calling/connection thread — in particular `cancel` must never
//     wait behind the very queue holding its target.
//   * Heavy ops (run_finder, load_design) pass admission control (a
//     bounded FIFO; full -> "overloaded") and run on a fixed worker
//     pool.  Each worker checks out an exclusive Finder session from the
//     per-design pool, so concurrent queries never share session state.
//   * A watchdog thread arms per-request deadlines: when one expires it
//     trips the request's CancelToken, and the finder's cooperative
//     cancellation unwinds at the next seed boundary.
//
// Determinism: the "result" block of every run_finder response is
// byte-identical to a direct single-threaded Finder::run() with the same
// (design, config) — wall-clock only ever appears in the "server"
// envelope and in status/stats.
//
// The Server is usable without a socket (submit()/handle_line(), as the
// tests do) or as a daemon via serve(), which owns the Unix-socket
// accept loop and one reader thread per connection.
//
// Lock ordering (enforced by GTL_ACQUIRED_AFTER under Clang
// -Wthread-safety-beta; see README "Code quality"):
//
//   rank 1  pools_mu_     — session-pool map
//   rank 2  queue_mu_     — admission queue + stopping flag
//   rank 3  inflight_mu_  — in-flight run table
//   rank 4  watchdog_mu_  — deadline heap
//   rank 5  manifest_mu_  — manifest mirror + file write
//   rank 6  metrics_mu_   — counters/latency (leaf: nested by
//                           manifest_apply and submit)
//
// A thread may only acquire a mutex of HIGHER rank than any it already
// holds.  In practice almost every path holds a single lock at a time;
// the two real nestings are manifest_mu_ -> metrics_mu_ (recording a
// manifest write failure) and inflight_mu_ -> metrics_mu_ (stamping
// queue-depth gauges while admitting a run).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "finder/progress.hpp"
#include "serve/design_registry.hpp"
#include "serve/manifest.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/session_pool.hpp"
#include "util/socket.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace gtl::serve {

struct ServerConfig {
  /// Socket path for serve(); unused by submit()/handle_line().
  std::filesystem::path socket_path;
  /// Worker threads executing queued ops.
  std::size_t workers = 2;
  /// Admission-queue bound; a request arriving when `queue_capacity`
  /// jobs are already waiting is rejected with "overloaded".
  std::size_t queue_capacity = 16;
  /// Registry residency soft watermark (LRU eviction above this).
  std::size_t max_resident_bytes = std::size_t{512} << 20;
  /// Hard residency watermark: a load whose design alone exceeds this is
  /// shed with "overloaded" + retry_after_ms instead of evicting the
  /// entire working set.  0 = off (any single design is admitted).
  std::size_t hard_resident_bytes = 0;
  /// Backoff hint stamped on shed responses (queue full, hard
  /// watermark).
  std::uint64_t retry_after_ms = 1000;
  /// Crash-safe design manifest path; empty = no manifest.  See
  /// manifest.hpp for the write-ahead discipline and
  /// recover_from_manifest() for restart replay.
  std::filesystem::path manifest_path;
  /// Applied to run_finder requests that give no deadline_ms (0 = none).
  std::uint64_t default_deadline_ms = 0;
  /// Cap on FinderConfig::num_threads per query; 0 leaves configs alone.
  /// (num_threads never changes results, only machine load.)
  std::size_t max_threads_per_query = 0;
  /// Warm Finder sessions kept per design.
  std::size_t max_idle_sessions = 4;
  /// Longest accepted request line; longer closes the connection.
  std::size_t max_line_bytes = std::size_t{1} << 20;
};

class Server {
 public:
  /// Response sink: called exactly once per submitted line with the
  /// response (compact JSON, no trailing newline).  Inline ops invoke it
  /// before submit() returns; queued ops from a worker thread later.
  using ResponseFn = std::function<void(const std::string&)>;

  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register an already-built design (preload / demo / tests), bypassing
  /// the wire protocol.  Same registry semantics as load_design, but the
  /// design records no sources (so it is neither manifested nor
  /// idempotently reloadable).
  [[nodiscard]] Status preload(const std::string& name, BookshelfDesign design)
      GTL_EXCLUDES(pools_mu_, manifest_mu_, metrics_mu_);

  /// What a manifest replay did.
  struct RecoveryReport {
    std::size_t attempted = 0;  ///< manifest entries seen
    std::size_t recovered = 0;  ///< designs re-loaded successfully
    std::vector<std::string> notes;  ///< one line per dropped entry
  };

  /// Replay `cfg.manifest_path`: re-load every recorded design from its
  /// recorded sources, then rewrite the manifest with the survivors
  /// (entries whose sources vanished are dropped with a note, not
  /// fatal).  A missing manifest is a fresh server (OK, zero attempted);
  /// a corrupt one is reported as an error and otherwise ignored — the
  /// next successful load overwrites it.  Call before serving traffic.
  [[nodiscard]] Status recover_from_manifest(RecoveryReport* report)
      GTL_EXCLUDES(pools_mu_, manifest_mu_, metrics_mu_);

  /// Feed one request line into the server.  Inline-lane entry point:
  /// must be called with NO server lock held — inline ops (cancel in
  /// particular) acquire locks of their own and must never wait behind
  /// the worker lane.
  void submit(std::string line, ResponseFn reply)
      GTL_EXCLUDES(pools_mu_, queue_mu_, inflight_mu_, watchdog_mu_,
                   manifest_mu_, metrics_mu_);

  /// Blocking convenience: submit and wait for the response line.
  [[nodiscard]] std::string handle_line(std::string_view line)
      GTL_EXCLUDES(pools_mu_, queue_mu_, inflight_mu_, watchdog_mu_,
                   manifest_mu_, metrics_mu_);

  /// Bind `cfg.socket_path` and serve connections until `stop_flag`
  /// becomes true (checked ~10x/second) or stop() is called.  Prints
  /// nothing; the caller owns logging.
  [[nodiscard]] Status serve(const std::atomic<bool>& stop_flag)
      GTL_EXCLUDES(queue_mu_);

  /// Shut down: reject new work, cancel in-flight runs, drain the queue
  /// (each waiting job answered "cancelled"), join all threads.
  /// Idempotent; also called by the destructor.
  void stop() GTL_EXCLUDES(queue_mu_, inflight_mu_, watchdog_mu_);

  [[nodiscard]] const ServerConfig& config() const { return cfg_; }
  [[nodiscard]] DesignRegistry& registry() { return registry_; }

 private:
  /// A run_finder in flight (queued or executing); `cancel` and the
  /// deadline watchdog race for `reason` — first writer decides how a
  /// cancelled run is reported.
  struct InFlight {
    CancelToken token;
    static constexpr int kNone = 0, kDeadline = 1, kClient = 2;
    std::atomic<int> reason{kNone};
    /// Set the reason if unset and trip the token; true if we won.
    bool cancel(int why) {
      int expected = kNone;
      const bool won = reason.compare_exchange_strong(expected, why);
      token.request_cancel();  // idempotent; trip even if we lost
      return won;
    }
  };
  using InFlightPtr = std::shared_ptr<InFlight>;

  struct Job {
    Request req;
    ResponseFn reply;
    InFlightPtr inflight;  ///< run_finder only
    std::chrono::steady_clock::time_point enqueued{};
  };

  struct DeadlineEntry {
    std::chrono::steady_clock::time_point when;
    std::weak_ptr<InFlight> target;
    bool operator>(const DeadlineEntry& other) const {
      return when > other.when;
    }
  };

  /// Worker lane: drains the admission queue; acquires every lock rank
  /// in turn while executing, so it must start with none held.
  void worker_loop()
      GTL_EXCLUDES(pools_mu_, queue_mu_, inflight_mu_, watchdog_mu_,
                   manifest_mu_, metrics_mu_);
  /// Watchdog lane: owns watchdog_mu_ while sleeping, but always drops
  /// it before tripping a CancelToken — a token trip may race a worker
  /// calling finish_inflight, and holding rank-4 there would deadlock
  /// against nothing today but forbids the worker lane ever notifying
  /// the watchdog under inflight_mu_ tomorrow.
  void watchdog_loop() GTL_EXCLUDES(inflight_mu_, watchdog_mu_);
  void execute(Job job)
      GTL_EXCLUDES(pools_mu_, queue_mu_, inflight_mu_, watchdog_mu_,
                   manifest_mu_, metrics_mu_);
  void execute_run(Job& job)
      GTL_EXCLUDES(pools_mu_, inflight_mu_, watchdog_mu_, metrics_mu_);
  void execute_load(Job& job)
      GTL_EXCLUDES(pools_mu_, manifest_mu_, metrics_mu_);
  /// Inline lane: status/stats/cancel/unload on the calling thread.
  /// `cancel` must never wait behind the worker queue, so the inline
  /// lane as a whole is contracted lock-free on entry.
  void run_inline(const Request& req, const ResponseFn& reply)
      GTL_EXCLUDES(pools_mu_, queue_mu_, inflight_mu_, manifest_mu_,
                   metrics_mu_);
  JsonValue status_json() GTL_EXCLUDES(pools_mu_, queue_mu_, inflight_mu_);

  std::shared_ptr<SessionPool> pool_for(const DesignRegistry::EntryPtr& e)
      GTL_EXCLUDES(pools_mu_);
  void reply_error(const Job& job, ErrorCode code, const std::string& msg,
                   std::uint64_t retry_after_ms = 0);
  /// Record (`record` non-null) and/or forget manifest entries, then
  /// persist atomically.  No-op without a manifest path.  A failed write
  /// bumps manifest_write_failures and is returned for the caller's
  /// notes — availability beats durability, the op still succeeds.
  [[nodiscard]] Status manifest_apply(const std::string& record_name,
                                      const ManifestEntry* record,
                                      const std::vector<std::string>& forget)
      GTL_EXCLUDES(manifest_mu_, metrics_mu_);
  void arm_deadline(std::chrono::steady_clock::time_point when,
                    const InFlightPtr& target) GTL_EXCLUDES(watchdog_mu_);
  void finish_inflight(std::uint64_t id) GTL_EXCLUDES(inflight_mu_);

  ServerConfig cfg_;
  DesignRegistry registry_;
  Timer uptime_;

  // --- rank 1 -------------------------------------------------------------
  Mutex pools_mu_;
  std::unordered_map<std::string, std::shared_ptr<SessionPool>> pools_
      GTL_GUARDED_BY(pools_mu_);

  // --- rank 2 -------------------------------------------------------------
  Mutex queue_mu_ GTL_ACQUIRED_AFTER(pools_mu_);
  CondVar queue_cv_;
  std::deque<Job> queue_ GTL_GUARDED_BY(queue_mu_);
  bool stopping_ GTL_GUARDED_BY(queue_mu_) = false;
  /// Spawned in the constructor, joined by stop(); not itself guarded.
  std::vector<std::thread> workers_;

  // --- rank 3 -------------------------------------------------------------
  Mutex inflight_mu_ GTL_ACQUIRED_AFTER(pools_mu_, queue_mu_);
  std::unordered_map<std::uint64_t, InFlightPtr> inflight_
      GTL_GUARDED_BY(inflight_mu_);

  // --- rank 4 -------------------------------------------------------------
  Mutex watchdog_mu_ GTL_ACQUIRED_AFTER(pools_mu_, queue_mu_, inflight_mu_);
  CondVar watchdog_cv_;
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_ GTL_GUARDED_BY(watchdog_mu_);
  bool watchdog_stop_ GTL_GUARDED_BY(watchdog_mu_) = false;
  std::thread watchdog_;

  // --- rank 5 -------------------------------------------------------------
  /// In-memory mirror of the manifest file; the lock is held across the
  /// map update *and* the file write so the file always serializes a
  /// consistent state.
  Mutex manifest_mu_
      GTL_ACQUIRED_AFTER(pools_mu_, queue_mu_, inflight_mu_, watchdog_mu_);
  Manifest manifest_ GTL_GUARDED_BY(manifest_mu_);

  // --- rank 6 (leaf) ------------------------------------------------------
  Mutex metrics_mu_ GTL_ACQUIRED_AFTER(pools_mu_, queue_mu_, inflight_mu_,
                                       watchdog_mu_, manifest_mu_);
  ServerMetrics metrics_ GTL_GUARDED_BY(metrics_mu_);

  std::once_flag stop_once_;
};

}  // namespace gtl::serve
