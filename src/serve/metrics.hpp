#pragma once
// Server-side metrics for gtl_serve, returned by the `stats` op.
//
// Latency percentiles come from a fixed-size reservoir of the most
// recent run_finder latencies per design (nearest-rank on a sorted copy,
// computed only when stats is requested — the hot path pays one ring
// store).  Counters are plain integers; the Server guards the whole
// block with one mutex since every touch is O(1) and the finder run it
// brackets is milliseconds at minimum.  That guard is a compile-time
// contract: the owning field is `Server::metrics_` with
// GTL_GUARDED_BY(metrics_mu_) (rank 6, the leaf of the lock order — see
// server.hpp), so under Clang any unlocked touch fails the build.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace gtl::serve {

/// Ring buffer of the most recent `capacity` latency samples.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 512);

  void add(double seconds);

  struct Percentiles {
    double p50_seconds = 0.0;
    double p95_seconds = 0.0;
    double p99_seconds = 0.0;
    /// Samples currently resident (<= capacity).
    std::size_t window = 0;
  };

  /// Nearest-rank percentiles over the resident window (zeros if empty).
  [[nodiscard]] Percentiles percentiles() const;

 private:
  std::vector<double> samples_;
  std::size_t capacity_;
  std::size_t next_ = 0;
};

/// Per-design counters + latency window.
struct DesignMetrics {
  std::uint64_t queries = 0;            ///< run_finder completed OK
  std::uint64_t errors = 0;             ///< run_finder failed (any code)
  std::uint64_t cancelled = 0;          ///< ... of which client cancels
  std::uint64_t deadline_exceeded = 0;  ///< ... of which deadline expiries
  std::uint64_t sessions_created = 0;   ///< cold Finder constructions
  std::uint64_t sessions_reused = 0;    ///< warm pool checkouts
  LatencyReservoir latency;
};

/// Whole-server metrics block (guard externally — in the Server via
/// GTL_GUARDED_BY(metrics_mu_)).
struct ServerMetrics {
  std::uint64_t received = 0;           ///< request lines seen
  std::uint64_t rejected_invalid = 0;   ///< parse/validation rejections
  std::uint64_t rejected_overload = 0;  ///< queue-full + watermark sheds
  std::uint64_t completed_ok = 0;       ///< any op answered ok=true
  std::uint64_t snapshot_hits = 0;      ///< load_design served from cache
  std::uint64_t snapshot_fill_failures = 0;  ///< best-effort fill failed
  std::uint64_t designs_loaded = 0;
  std::uint64_t designs_evicted = 0;
  std::uint64_t designs_recovered = 0;  ///< manifest replay re-loads
  std::uint64_t loads_idempotent = 0;   ///< load_design same-source replays
  std::uint64_t loads_shed = 0;         ///< hard-watermark refusals
  std::uint64_t manifest_write_failures = 0;
  std::uint64_t cancel_requests = 0;
  std::map<std::string, DesignMetrics> per_design;

  [[nodiscard]] DesignMetrics& design(const std::string& name) {
    return per_design[name];
  }

  /// The `stats` result block (latency in milliseconds for readability).
  [[nodiscard]] JsonValue to_json() const;
};

}  // namespace gtl::serve
