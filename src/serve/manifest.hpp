#pragma once
// Crash-safe design manifest for gtl_serve.
//
// The manifest is a small JSON file recording which designs the server
// has acknowledged loading and from which sources:
//
//   {"version": 1,
//    "designs": {"ibm01": {"aux": "/corpus/ibm01.aux",
//                          "snapshot": "/cache/ibm01.snap"}}}
//
// Discipline: the server updates the manifest *after* registering a
// design but *before* acknowledging the load (and symmetrically removes
// the entry before acknowledging an unload), writing through a unique
// temp file + rename — the same atomicity discipline as the snapshot
// cache.  A reader therefore always sees either the old or the new
// manifest, never a torn one, and every design a client was told is
// loaded (and whose load gave recoverable sources) is either in the
// manifest or was since unloaded/evicted.  On restart the server replays
// the manifest (Server::recover_from_manifest), re-loading each design
// from its recorded sources; entries whose sources have vanished are
// dropped with a note, never fatal.
//
// Only designs loaded via load_design with on-disk sources appear here;
// preloaded in-process designs have nothing to re-load from.
//
// Concurrency: the functions below are pure file I/O with no internal
// locking.  The server's in-memory mirror (`Server::manifest_`) is
// GTL_GUARDED_BY(manifest_mu_) (rank 5 in the lock order, see
// server.hpp), and the lock is held across the map update and the
// write_manifest_atomic call so the file always serializes a consistent
// state.

#include <filesystem>
#include <map>
#include <string>

#include "util/status.hpp"

namespace gtl::serve {

inline constexpr std::uint32_t kManifestVersion = 1;

struct ManifestEntry {
  std::string aux;       ///< Bookshelf .aux source path ("" if none)
  std::string snapshot;  ///< binary snapshot path ("" if none)

  bool operator==(const ManifestEntry&) const = default;
};

/// Design name -> sources, name-sorted (deterministic serialization).
using Manifest = std::map<std::string, ManifestEntry>;

/// Read and validate a manifest file.  kNotFound when the file does not
/// exist (a fresh server), kParseError/kInvalidArgument when it exists
/// but is not a valid manifest.
[[nodiscard]] Status read_manifest(const std::filesystem::path& path,
                                   Manifest* out);

/// Serialize `manifest` and atomically replace `path` (unique temp file
/// in the same directory + rename; any failure removes the temp file and
/// leaves the previous manifest intact).
///
/// Failpoint "manifest.write": fail = injected write/rename failure.
[[nodiscard]] Status write_manifest_atomic(const Manifest& manifest,
                                           const std::filesystem::path& path);

}  // namespace gtl::serve
