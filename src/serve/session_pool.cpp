#include "serve/session_pool.hpp"

#include "finder/finder_json.hpp"

namespace gtl::serve {

std::string config_fingerprint(const FinderConfig& cfg) {
  return to_json(cfg).dump();
}

SessionLease& SessionLease::operator=(SessionLease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::move(other.pool_);
    finder_ = std::move(other.finder_);
    fingerprint_ = std::move(other.fingerprint_);
  }
  return *this;
}

void SessionLease::release() {
  if (finder_ == nullptr) {
    pool_.reset();
    return;
  }
  finder_->set_observer(nullptr);
  finder_->set_cancel_token(nullptr);
  pool_->put_back(std::move(finder_), std::move(fingerprint_));
  pool_.reset();
}

std::shared_ptr<SessionPool> SessionPool::create(
    DesignRegistry::EntryPtr entry, std::size_t max_idle) {
  return std::shared_ptr<SessionPool>(
      new SessionPool(std::move(entry), max_idle));
}

Status SessionPool::acquire(const FinderConfig& cfg, SessionLease* out,
                            bool* reused) {
  *reused = false;
  std::string fp = config_fingerprint(cfg);
  {
    MutexLock lk(mu_);
    const auto it = idle_.find(fp);
    if (it != idle_.end()) {
      std::unique_ptr<Finder> finder = std::move(it->second);
      idle_.erase(it);
      --idle_total_;
      *reused = true;
      *out = SessionLease(shared_from_this(), std::move(finder),
                          std::move(fp));
      return Status::ok();
    }
  }
  std::unique_ptr<Finder> finder;
  GTL_RETURN_IF_ERROR(Finder::create(entry_->design.netlist, cfg, &finder));
  *out = SessionLease(shared_from_this(), std::move(finder), std::move(fp));
  return Status::ok();
}

std::size_t SessionPool::idle_count() const {
  MutexLock lk(mu_);
  return idle_total_;
}

void SessionPool::put_back(std::unique_ptr<Finder> finder,
                           std::string fingerprint) {
  MutexLock lk(mu_);
  if (idle_total_ >= max_idle_) return;  // destroys the session
  idle_.emplace(std::move(fingerprint), std::move(finder));
  ++idle_total_;
}

}  // namespace gtl::serve
