#include "serve/server.hpp"

#include <exception>
#include <utility>

#include "util/failpoint.hpp"

namespace gtl::serve {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      registry_(cfg_.max_resident_bytes, cfg_.hard_resident_bytes) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Server::~Server() { stop(); }

Status Server::preload(const std::string& name, BookshelfDesign design) {
  DesignRegistry::LoadInfo info;
  GTL_RETURN_IF_ERROR(registry_.insert(name, std::move(design), &info));
  {
    MutexLock lk(pools_mu_);
    for (const std::string& evicted : info.evicted) pools_.erase(evicted);
  }
  (void)manifest_apply("", nullptr, info.evicted);
  MutexLock lk(metrics_mu_);
  ++metrics_.designs_loaded;
  metrics_.designs_evicted += info.evicted.size();
  return Status::ok();
}

Status Server::manifest_apply(const std::string& record_name,
                              const ManifestEntry* record,
                              const std::vector<std::string>& forget) {
  if (cfg_.manifest_path.empty()) return Status::ok();
  MutexLock lk(manifest_mu_);
  bool changed = false;
  for (const std::string& name : forget) {
    changed = manifest_.erase(name) != 0 || changed;
  }
  if (record != nullptr) {
    auto [it, inserted] = manifest_.insert_or_assign(record_name, *record);
    (void)it;
    changed = true;
    (void)inserted;
  }
  if (!changed) return Status::ok();
  // The in-memory map is updated even when the write fails: it is the
  // truth the next (hopefully successful) write will persist.
  const Status st = write_manifest_atomic(manifest_, cfg_.manifest_path);
  if (!st.is_ok()) {
    MutexLock mlk(metrics_mu_);
    ++metrics_.manifest_write_failures;
  }
  return st;
}

Status Server::recover_from_manifest(RecoveryReport* report) {
  report->attempted = 0;
  report->recovered = 0;
  report->notes.clear();
  if (cfg_.manifest_path.empty()) return Status::ok();

  Manifest recorded;
  if (const Status st = read_manifest(cfg_.manifest_path, &recorded);
      !st.is_ok()) {
    if (st.code() == StatusCode::kNotFound) return Status::ok();  // fresh
    // Corrupt manifest: report it, recover nothing.  The stale file is
    // left for inspection; the next successful load overwrites it.
    return st;
  }

  Manifest survivors;
  for (const auto& [name, entry] : recorded) {
    ++report->attempted;
    DesignRegistry::LoadInfo info;
    const Status st = registry_.load(name, entry.aux, entry.snapshot, &info);
    if (!st.is_ok()) {
      report->notes.push_back("dropped \"" + name + "\": " + st.to_string());
      continue;
    }
    {
      MutexLock lk(pools_mu_);
      for (const std::string& evicted : info.evicted) pools_.erase(evicted);
    }
    for (const std::string& evicted : info.evicted) survivors.erase(evicted);
    survivors[name] = entry;
    ++report->recovered;
    MutexLock lk(metrics_mu_);
    ++metrics_.designs_loaded;
    ++metrics_.designs_recovered;
    if (info.snapshot_hit) ++metrics_.snapshot_hits;
    if (info.fill_failed) ++metrics_.snapshot_fill_failures;
    metrics_.designs_evicted += info.evicted.size();
  }

  MutexLock lk(manifest_mu_);
  manifest_ = std::move(survivors);
  const Status st = write_manifest_atomic(manifest_, cfg_.manifest_path);
  if (!st.is_ok()) {
    {
      MutexLock mlk(metrics_mu_);
      ++metrics_.manifest_write_failures;
    }
    report->notes.push_back("warning: " + st.to_string());
  }
  return Status::ok();
}

void Server::submit(std::string line, ResponseFn reply) {
  {
    MutexLock lk(metrics_mu_);
    ++metrics_.received;
  }

  Request req;
  ErrorCode code = ErrorCode::kParseError;
  bool has_id = false;
  if (const Status st = parse_request(line, &req, &code, &has_id);
      !st.is_ok()) {
    {
      MutexLock lk(metrics_mu_);
      ++metrics_.rejected_invalid;
    }
    // The op is only trustworthy once field validation started.
    const bool has_op = code == ErrorCode::kInvalidArgument;
    reply(error_line(has_id, req.id, has_op, req.op, code, st.message()));
    return;
  }

  // Cheap ops never queue: `cancel` in particular must be able to reach
  // a run that is clogging the very queue it would otherwise wait in.
  if (req.op == Op::kStatus || req.op == Op::kStats ||
      req.op == Op::kCancel || req.op == Op::kUnloadDesign) {
    run_inline(req, reply);
    return;
  }

  // Failpoint "serve.admit": fail = shed this heavy op at admission, as
  // if the queue were full (same wire contract: overloaded + hint).
  if (failpoint::Action fp;
      failpoint::check("serve.admit", &fp) &&
      fp.kind == failpoint::Action::Kind::kFail) {
    {
      MutexLock lk(metrics_mu_);
      ++metrics_.rejected_overload;
    }
    reply(error_line(true, req.id, true, req.op, ErrorCode::kOverloaded,
                     "admission shed (injected failpoint); retry with backoff",
                     cfg_.retry_after_ms));
    return;
  }

  InFlightPtr inflight;
  if (req.op == Op::kRunFinder) {
    inflight = std::make_shared<InFlight>();
    {
      MutexLock lk(inflight_mu_);
      if (!inflight_.emplace(req.id, inflight).second) {
        MutexLock mlk(metrics_mu_);
        ++metrics_.rejected_invalid;
        reply(error_line(true, req.id, true, req.op,
                         ErrorCode::kInvalidRequest,
                         "a run_finder with this id is already in flight"));
        return;
      }
    }
    const std::uint64_t deadline_ms =
        req.deadline_ms != 0 ? req.deadline_ms : cfg_.default_deadline_ms;
    if (deadline_ms != 0) {
      arm_deadline(Clock::now() + std::chrono::milliseconds(deadline_ms),
                   inflight);
    }
  }

  Job job;
  job.req = std::move(req);
  job.reply = std::move(reply);
  job.inflight = std::move(inflight);
  job.enqueued = Clock::now();

  {
    MutexLock lk(queue_mu_);
    if (stopping_) {
      lk.unlock();
      if (job.inflight != nullptr) finish_inflight(job.req.id);
      reply_error(job, ErrorCode::kCancelled, "server is shutting down");
      return;
    }
    if (queue_.size() >= cfg_.queue_capacity) {
      lk.unlock();
      if (job.inflight != nullptr) finish_inflight(job.req.id);
      {
        MutexLock mlk(metrics_mu_);
        ++metrics_.rejected_overload;
      }
      reply_error(job, ErrorCode::kOverloaded,
                  "admission queue is full (" +
                      std::to_string(cfg_.queue_capacity) +
                      " waiting); retry with backoff",
                  cfg_.retry_after_ms);
      return;
    }
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

std::string Server::handle_line(std::string_view line) {
  std::string response;
  Mutex mu;
  CondVar cv;
  bool done = false;
  submit(std::string(line), [&](const std::string& resp) {
    MutexLock lk(mu);
    response = resp;
    done = true;
    cv.notify_one();
  });
  MutexLock lk(mu);
  while (!done) cv.wait(mu);
  return response;
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      MutexLock lk(queue_mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.wait(queue_mu_);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(std::move(job));
  }
}

void Server::execute(Job job) {
  // Failpoint "serve.execute": delay = stall this worker before the op
  // runs (widens queue/deadline races); fail = injected worker failure,
  // still answered with exactly one clean "internal" error line.
  if (failpoint::Action fp; failpoint::check("serve.execute", &fp)) {
    if (fp.kind == failpoint::Action::Kind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fp.param));
    } else if (fp.kind == failpoint::Action::Kind::kFail) {
      if (job.inflight != nullptr) finish_inflight(job.req.id);
      reply_error(job, ErrorCode::kInternal,
                  fp.message.empty() ? "worker failed (injected failpoint)"
                                     : fp.message);
      return;
    }
  }
  try {
    if (job.req.op == Op::kRunFinder) {
      execute_run(job);
    } else {
      execute_load(job);
    }
  } catch (const std::exception& e) {
    if (job.inflight != nullptr) finish_inflight(job.req.id);
    reply_error(job, ErrorCode::kInternal, e.what());
  }
}

void Server::execute_run(Job& job) {
  ServerTiming timing;
  timing.queue_seconds = seconds_between(job.enqueued, Clock::now());
  const std::string& design = job.req.design;

  DesignRegistry::EntryPtr entry = registry_.find(design);
  if (entry == nullptr) {
    finish_inflight(job.req.id);
    reply_error(job, ErrorCode::kNotFound,
                "design \"" + design + "\" is not loaded");
    return;
  }

  // Cancelled (or past deadline) while still queued: skip the run.
  int reason = job.inflight->reason.load();
  if (reason == InFlight::kNone && job.inflight->token.cancel_requested()) {
    reason = InFlight::kClient;
  }
  if (reason != InFlight::kNone) {
    finish_inflight(job.req.id);
    {
      MutexLock lk(metrics_mu_);
      DesignMetrics& dm = metrics_.design(design);
      ++dm.errors;
      if (reason == InFlight::kDeadline) {
        ++dm.deadline_exceeded;
      } else {
        ++dm.cancelled;
      }
    }
    reply_error(job,
                reason == InFlight::kDeadline ? ErrorCode::kDeadlineExceeded
                                              : ErrorCode::kCancelled,
                reason == InFlight::kDeadline
                    ? "deadline expired before the run started"
                    : "cancelled before the run started");
    return;
  }

  std::shared_ptr<SessionPool> pool = pool_for(entry);

  FinderConfig cfg = job.req.config;
  if (cfg_.max_threads_per_query > 0 &&
      (cfg.num_threads == 0 || cfg.num_threads > cfg_.max_threads_per_query)) {
    cfg.num_threads = cfg_.max_threads_per_query;
  }

  SessionLease lease;
  bool reused = false;
  if (const Status st = pool->acquire(cfg, &lease, &reused); !st.is_ok()) {
    finish_inflight(job.req.id);
    {
      MutexLock lk(metrics_mu_);
      ++metrics_.design(design).errors;
      ++metrics_.rejected_invalid;
    }
    reply_error(job, ErrorCode::kInvalidArgument, st.message());
    return;
  }
  {
    MutexLock lk(metrics_mu_);
    DesignMetrics& dm = metrics_.design(design);
    if (reused) {
      ++dm.sessions_reused;
    } else {
      ++dm.sessions_created;
    }
  }

  lease.finder().set_cancel_token(&job.inflight->token);
  Timer run_timer;
  const FinderResult result = lease.finder().run();
  timing.run_seconds = run_timer.seconds();
  lease.release();  // clears the token binding, parks the session
  finish_inflight(job.req.id);

  if (result.cancelled) {
    reason = job.inflight->reason.load();
    const bool deadline = reason == InFlight::kDeadline;
    {
      MutexLock lk(metrics_mu_);
      DesignMetrics& dm = metrics_.design(design);
      ++dm.errors;
      if (deadline) {
        ++dm.deadline_exceeded;
      } else {
        ++dm.cancelled;
      }
    }
    reply_error(job,
                deadline ? ErrorCode::kDeadlineExceeded : ErrorCode::kCancelled,
                deadline ? "deadline exceeded mid-run (partial work discarded)"
                         : "cancelled by client request");
    return;
  }

  {
    MutexLock lk(metrics_mu_);
    DesignMetrics& dm = metrics_.design(design);
    ++dm.queries;
    dm.latency.add(timing.queue_seconds + timing.run_seconds);
    ++metrics_.completed_ok;
  }
  job.reply(
      ok_line(job.req.id, job.req.op, deterministic_result_json(result),
              &timing));
}

void Server::execute_load(Job& job) {
  ServerTiming timing;
  timing.queue_seconds = seconds_between(job.enqueued, Clock::now());
  const std::string& name = job.req.design;
  Timer load_timer;

  if (const DesignRegistry::EntryPtr existing = registry_.find(name);
      existing != nullptr) {
    // Idempotent replay: the same name from the same recorded sources is
    // acknowledged again without re-parsing, so a client that lost the
    // first reply (crash, dropped connection) can safely resend.
    // Preloaded designs record no sources and never match.
    const bool has_sources = !existing->source_aux.empty() ||
                             !existing->source_snapshot.empty();
    if (has_sources && existing->source_aux == job.req.aux &&
        existing->source_snapshot == job.req.snapshot) {
      {
        MutexLock lk(metrics_mu_);
        ++metrics_.loads_idempotent;
        ++metrics_.completed_ok;
      }
      timing.run_seconds = load_timer.seconds();
      const Netlist& nl = existing->design.netlist;
      JsonValue::Object result;
      result.emplace("design", JsonValue(name));
      result.emplace("cells",
                     JsonValue(static_cast<std::uint64_t>(nl.num_cells())));
      result.emplace("nets",
                     JsonValue(static_cast<std::uint64_t>(nl.num_nets())));
      result.emplace("pins",
                     JsonValue(static_cast<std::uint64_t>(nl.num_pins())));
      result.emplace("resident_bytes",
                     JsonValue(static_cast<std::uint64_t>(
                         existing->resident_bytes)));
      result.emplace("idempotent", JsonValue(true));
      job.reply(ok_line(job.req.id, job.req.op, JsonValue(std::move(result)),
                        &timing));
      return;
    }
    reply_error(job, ErrorCode::kAlreadyLoaded,
                "design \"" + name + "\" is already loaded" +
                    (has_sources ? " from different sources (unload first)"
                                 : " (unload first)"));
    return;
  }

  DesignRegistry::LoadInfo info;
  const Status st =
      registry_.load(name, job.req.aux, job.req.snapshot, &info);
  if (!st.is_ok()) {
    if (st.code() == StatusCode::kUnavailable) {
      // Hard watermark shed: same wire contract as a full queue.
      {
        MutexLock lk(metrics_mu_);
        ++metrics_.loads_shed;
        ++metrics_.rejected_overload;
      }
      reply_error(job, ErrorCode::kOverloaded, st.message(),
                  cfg_.retry_after_ms);
      return;
    }
    const ErrorCode code = st.code() == StatusCode::kNotFound
                               ? ErrorCode::kNotFound
                               : ErrorCode::kInvalidArgument;
    reply_error(job, code, st.message());
    return;
  }
  {
    MutexLock lk(pools_mu_);
    for (const std::string& evicted : info.evicted) pools_.erase(evicted);
  }
  {
    MutexLock lk(metrics_mu_);
    ++metrics_.designs_loaded;
    if (info.snapshot_hit) ++metrics_.snapshot_hits;
    if (info.fill_failed) ++metrics_.snapshot_fill_failures;
    metrics_.designs_evicted += info.evicted.size();
    ++metrics_.completed_ok;
  }

  // Manifest the load *before* acknowledging it: every ok reply the
  // client ever sees is covered by the manifest (write-ahead for the
  // acknowledgment).  A failed manifest write degrades durability, not
  // availability — the load stands, the client is told via a note.
  ManifestEntry manifest_entry{job.req.aux, job.req.snapshot};
  if (const Status mst = manifest_apply(name, &manifest_entry, info.evicted);
      !mst.is_ok()) {
    info.notes.push_back("warning: manifest not updated: " + mst.to_string());
  }
  timing.run_seconds = load_timer.seconds();

  const Netlist& nl = info.entry->design.netlist;
  JsonValue::Object result;
  result.emplace("design", JsonValue(name));
  result.emplace("cells",
                 JsonValue(static_cast<std::uint64_t>(nl.num_cells())));
  result.emplace("nets", JsonValue(static_cast<std::uint64_t>(nl.num_nets())));
  result.emplace("pins", JsonValue(static_cast<std::uint64_t>(nl.num_pins())));
  result.emplace("resident_bytes", JsonValue(static_cast<std::uint64_t>(
                                       info.entry->resident_bytes)));
  result.emplace("snapshot_hit", JsonValue(info.snapshot_hit));
  result.emplace("idempotent", JsonValue(false));
  JsonValue::Array evicted;
  for (const std::string& e : info.evicted) evicted.emplace_back(e);
  result.emplace("evicted", JsonValue(std::move(evicted)));
  JsonValue::Array notes;
  for (const std::string& n : info.notes) notes.emplace_back(n);
  result.emplace("notes", JsonValue(std::move(notes)));
  job.reply(ok_line(job.req.id, job.req.op, JsonValue(std::move(result)),
                    &timing));
}

void Server::run_inline(const Request& req, const ResponseFn& reply) {
  switch (req.op) {
    case Op::kStatus: {
      JsonValue result = status_json();
      {
        MutexLock lk(metrics_mu_);
        ++metrics_.completed_ok;
      }
      reply(ok_line(req.id, req.op, std::move(result), nullptr));
      return;
    }
    case Op::kStats: {
      JsonValue result;
      {
        MutexLock lk(metrics_mu_);
        result = metrics_.to_json();
        ++metrics_.completed_ok;
      }
      if (failpoint::compiled_in()) {
        // Chaos observability: which failpoints fired, and how often.
        JsonValue::Object points;
        for (const auto& [name, triggers] : failpoint::trigger_counts()) {
          points.emplace(name, JsonValue(triggers));
        }
        result.set("failpoints", JsonValue(std::move(points)));
      }
      reply(ok_line(req.id, req.op, std::move(result), nullptr));
      return;
    }
    case Op::kCancel: {
      InFlightPtr target;
      {
        MutexLock lk(inflight_mu_);
        const auto it = inflight_.find(req.target_id);
        if (it != inflight_.end()) target = it->second;
      }
      {
        MutexLock lk(metrics_mu_);
        ++metrics_.cancel_requests;
      }
      if (target == nullptr) {
        reply(error_line(true, req.id, true, req.op, ErrorCode::kNotFound,
                         "no in-flight run_finder with id " +
                             std::to_string(req.target_id)));
        return;
      }
      const bool won = target->cancel(InFlight::kClient);
      JsonValue::Object result;
      result.emplace("target_id", JsonValue(req.target_id));
      // False when a deadline (or an earlier cancel) got there first.
      result.emplace("delivered", JsonValue(won));
      {
        MutexLock lk(metrics_mu_);
        ++metrics_.completed_ok;
      }
      reply(ok_line(req.id, req.op, JsonValue(std::move(result)), nullptr));
      return;
    }
    case Op::kUnloadDesign: {
      std::shared_ptr<SessionPool> dropped;
      {
        MutexLock lk(pools_mu_);
        const auto it = pools_.find(req.design);
        if (it != pools_.end()) {
          dropped = std::move(it->second);
          pools_.erase(it);
        }
      }
      const bool erased = registry_.erase(req.design);
      if (!erased) {
        reply(error_line(true, req.id, true, req.op, ErrorCode::kNotFound,
                         "design \"" + req.design + "\" is not loaded"));
        return;
      }
      // Forget before acknowledging: once the client hears ok, a restart
      // must not resurrect the design.
      (void)manifest_apply("", nullptr, {req.design});
      JsonValue::Object result;
      result.emplace("design", JsonValue(req.design));
      {
        MutexLock lk(metrics_mu_);
        ++metrics_.completed_ok;
      }
      reply(ok_line(req.id, req.op, JsonValue(std::move(result)), nullptr));
      return;
    }
    default:
      reply(error_line(true, req.id, true, req.op, ErrorCode::kInternal,
                       "op routed to the wrong executor"));
  }
}

JsonValue Server::status_json() {
  JsonValue::Array designs;
  for (const DesignRegistry::DesignInfo& d : registry_.list()) {
    JsonValue::Object obj;
    obj.emplace("name", JsonValue(d.name));
    obj.emplace("cells", JsonValue(static_cast<std::uint64_t>(d.cells)));
    obj.emplace("nets", JsonValue(static_cast<std::uint64_t>(d.nets)));
    obj.emplace("pins", JsonValue(static_cast<std::uint64_t>(d.pins)));
    obj.emplace("resident_bytes",
                JsonValue(static_cast<std::uint64_t>(d.resident_bytes)));
    designs.emplace_back(std::move(obj));
  }
  std::size_t queue_depth = 0;
  {
    MutexLock lk(queue_mu_);
    queue_depth = queue_.size();
  }
  std::size_t in_flight = 0;
  {
    MutexLock lk(inflight_mu_);
    in_flight = inflight_.size();
  }
  JsonValue::Object obj;
  obj.emplace("designs", JsonValue(std::move(designs)));
  obj.emplace("resident_bytes", JsonValue(static_cast<std::uint64_t>(
                                    registry_.total_resident_bytes())));
  obj.emplace("max_resident_bytes", JsonValue(static_cast<std::uint64_t>(
                                        registry_.max_resident_bytes())));
  obj.emplace("hard_resident_bytes", JsonValue(static_cast<std::uint64_t>(
                                         registry_.hard_resident_bytes())));
  obj.emplace("queue_depth",
              JsonValue(static_cast<std::uint64_t>(queue_depth)));
  obj.emplace("queue_capacity",
              JsonValue(static_cast<std::uint64_t>(cfg_.queue_capacity)));
  obj.emplace("in_flight", JsonValue(static_cast<std::uint64_t>(in_flight)));
  obj.emplace("workers", JsonValue(static_cast<std::uint64_t>(cfg_.workers)));
  obj.emplace("uptime_seconds", JsonValue(uptime_.seconds()));
  return JsonValue(std::move(obj));
}

std::shared_ptr<SessionPool> Server::pool_for(
    const DesignRegistry::EntryPtr& entry) {
  MutexLock lk(pools_mu_);
  const auto it = pools_.find(entry->name);
  // Pointer identity matters: a reloaded design must not reuse sessions
  // bound to its previous incarnation's netlist.
  if (it != pools_.end() && it->second->entry().get() == entry.get()) {
    return it->second;
  }
  auto pool = SessionPool::create(entry, cfg_.max_idle_sessions);
  pools_[entry->name] = pool;
  return pool;
}

void Server::reply_error(const Job& job, ErrorCode code,
                         const std::string& msg,
                         std::uint64_t retry_after_ms) {
  job.reply(error_line(true, job.req.id, true, job.req.op, code, msg,
                       retry_after_ms));
}

void Server::arm_deadline(Clock::time_point when, const InFlightPtr& target) {
  {
    MutexLock lk(watchdog_mu_);
    deadlines_.push(DeadlineEntry{when, target});
  }
  watchdog_cv_.notify_one();
}

void Server::finish_inflight(std::uint64_t id) {
  MutexLock lk(inflight_mu_);
  inflight_.erase(id);
}

void Server::watchdog_loop() {
  MutexLock lk(watchdog_mu_);
  for (;;) {
    if (watchdog_stop_) return;
    if (deadlines_.empty()) {
      watchdog_cv_.wait(watchdog_mu_);
      continue;
    }
    const Clock::time_point when = deadlines_.top().when;
    if (when <= Clock::now()) {
      std::weak_ptr<InFlight> target = deadlines_.top().target;
      deadlines_.pop();
      lk.unlock();
      // Expired entries whose run already finished lock() to null.
      if (const InFlightPtr inflight = target.lock()) {
        inflight->cancel(InFlight::kDeadline);
      }
      lk.lock();
    } else {
      watchdog_cv_.wait_until(watchdog_mu_, when);
    }
  }
}

Status Server::serve(const std::atomic<bool>& stop_flag) {
  UnixListener listener;
  GTL_RETURN_IF_ERROR(
      UnixListener::bind_and_listen(cfg_.socket_path, &listener));

  struct Conn {
    UnixStream stream;
    /// Serializes writes from workers and the reader; reads stay on the
    /// single reader thread, so the stream itself is not guarded.
    Mutex write_mu;
  };
  std::vector<std::thread> readers;
  std::vector<std::weak_ptr<Conn>> conns;

  Status accept_status = Status::ok();
  while (!stop_flag.load(std::memory_order_relaxed)) {
    {
      MutexLock lk(queue_mu_);
      if (stopping_) break;
    }
    UnixStream stream;
    bool accepted = false;
    if (const Status st = listener.poll_accept(100, &stream, &accepted);
        !st.is_ok()) {
      accept_status = st;
      break;
    }
    if (!accepted) continue;

    auto conn = std::make_shared<Conn>();
    conn->stream = std::move(stream);
    conns.push_back(conn);
    readers.emplace_back([this, conn] {
      std::string line;
      for (;;) {
        bool eof = false;
        if (const Status st =
                conn->stream.read_line(&line, &eof, cfg_.max_line_bytes);
            !st.is_ok()) {
          // An oversized line means the peer is alive but framing is
          // lost: tell it once, then drop.  Any other read error is a
          // broken transport — the peer cannot hear a farewell, and a
          // stray unaddressed line would only confuse a reconnecting
          // client mid-request — so drop silently.
          if (st.code() == StatusCode::kOutOfRange) {
            const std::string resp =
                error_line(false, 0, false, Op::kStatus,
                           ErrorCode::kParseError, st.message());
            MutexLock wlk(conn->write_mu);
            (void)conn->stream.write_line(resp);
          }
          break;
        }
        if (!line.empty()) {
          submit(std::move(line), [conn](const std::string& resp) {
            MutexLock wlk(conn->write_mu);
            (void)conn->stream.write_line(resp);
          });
          line.clear();
        }
        if (eof) break;
      }
      conn->stream.shutdown();
    });
  }

  listener.close();
  for (const std::weak_ptr<Conn>& weak : conns) {
    if (const std::shared_ptr<Conn> conn = weak.lock()) {
      conn->stream.shutdown();  // unblocks the reader's recv
    }
  }
  for (std::thread& t : readers) t.join();
  return accept_status;
}

void Server::stop() {
  std::call_once(stop_once_, [this] {
    std::deque<Job> drained;
    {
      MutexLock lk(queue_mu_);
      stopping_ = true;
      drained.swap(queue_);
    }
    queue_cv_.notify_all();
    {
      MutexLock lk(inflight_mu_);
      for (const auto& [id, inflight] : inflight_) {
        inflight->cancel(InFlight::kClient);
      }
    }
    for (Job& job : drained) {
      if (job.inflight != nullptr) finish_inflight(job.req.id);
      reply_error(job, ErrorCode::kCancelled, "server is shutting down");
    }
    for (std::thread& t : workers_) t.join();
    {
      MutexLock lk(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  });
}

}  // namespace gtl::serve
