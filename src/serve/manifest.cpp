#include "serve/manifest.hpp"

#include <chrono>
#include <fstream>

#include "util/failpoint.hpp"
#include "util/fileio.hpp"
#include "util/json.hpp"

namespace gtl::serve {
namespace {

Status entry_from_json(const std::string& name, const JsonValue& json,
                       ManifestEntry* out) {
  if (!json.is_object()) {
    return Status::invalid_argument("manifest design \"" + name +
                                    "\" must be a JSON object");
  }
  for (const auto& [key, value] : json.object()) {
    if (key == "aux") {
      GTL_RETURN_IF_ERROR(value.get_string(&out->aux));
    } else if (key == "snapshot") {
      GTL_RETURN_IF_ERROR(value.get_string(&out->snapshot));
    } else {
      return Status::invalid_argument("manifest design \"" + name +
                                      "\": unknown key \"" + key + "\"");
    }
  }
  if (out->aux.empty() && out->snapshot.empty()) {
    return Status::invalid_argument("manifest design \"" + name +
                                    "\" has neither aux nor snapshot");
  }
  return Status::ok();
}

}  // namespace

Status read_manifest(const std::filesystem::path& path, Manifest* out) {
  out->clear();
  std::string text;
  GTL_RETURN_IF_ERROR(read_file_to_string(path, &text));
  JsonValue json;
  if (const Status st = JsonValue::parse(text, &json); !st.is_ok()) {
    return Status::parse_error("manifest " + path.string() + ": " +
                               st.message());
  }
  if (!json.is_object()) {
    return Status::invalid_argument("manifest " + path.string() +
                                    " must be a JSON object");
  }
  bool saw_version = false;
  for (const auto& [key, value] : json.object()) {
    if (key == "version") {
      std::uint64_t version = 0;
      GTL_RETURN_IF_ERROR(value.get_uint64(&version));
      if (version == 0 || version > kManifestVersion) {
        return Status::invalid_argument(
            "manifest " + path.string() + ": unsupported version " +
            std::to_string(version));
      }
      saw_version = true;
    } else if (key == "designs") {
      if (!value.is_object()) {
        return Status::invalid_argument("manifest " + path.string() +
                                        ": \"designs\" must be an object");
      }
      for (const auto& [name, entry_json] : value.object()) {
        if (name.empty()) {
          return Status::invalid_argument("manifest " + path.string() +
                                          ": empty design name");
        }
        ManifestEntry entry;
        GTL_RETURN_IF_ERROR(entry_from_json(name, entry_json, &entry));
        (*out)[name] = std::move(entry);
      }
    } else {
      return Status::invalid_argument("manifest " + path.string() +
                                      ": unknown key \"" + key + "\"");
    }
  }
  if (!saw_version) {
    return Status::invalid_argument("manifest " + path.string() +
                                    " is missing \"version\"");
  }
  return Status::ok();
}

Status write_manifest_atomic(const Manifest& manifest,
                             const std::filesystem::path& path) {
  JsonValue::Object designs;
  for (const auto& [name, entry] : manifest) {
    JsonValue::Object obj;
    if (!entry.aux.empty()) obj.emplace("aux", JsonValue(entry.aux));
    if (!entry.snapshot.empty()) {
      obj.emplace("snapshot", JsonValue(entry.snapshot));
    }
    designs.emplace(name, JsonValue(std::move(obj)));
  }
  JsonValue::Object root;
  root.emplace("version",
               JsonValue(static_cast<std::uint64_t>(kManifestVersion)));
  root.emplace("designs", JsonValue(std::move(designs)));
  const std::string text = JsonValue(std::move(root)).dump();

  // Same unique-temp + rename discipline as the snapshot cache: a crash
  // or failure at any point leaves either the old manifest or the new
  // one at `path`, never a torn file.
  const auto nonce = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (reinterpret_cast<std::uintptr_t>(&manifest) << 16);
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(nonce);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::not_found("manifest: cannot write " + tmp.string());
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.put('\n');
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::parse_error("manifest: write failed for " +
                                 tmp.string());
    }
  }
  // Failpoint "manifest.write": fail = injected write/rename failure
  // (full disk, vanished directory, ...).  The temp file is removed and
  // the previous manifest survives untouched.
  if (failpoint::Action fp;
      failpoint::check("manifest.write", &fp) &&
      fp.kind == failpoint::Action::Kind::kFail) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::parse_error("manifest: cannot write " + path.string() +
                               " (injected failpoint)");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const std::string why = ec.message();
    std::filesystem::remove(tmp, ec);
    return Status::parse_error("manifest: cannot move " + tmp.string() +
                               " into place: " + why);
  }
  return Status::ok();
}

}  // namespace gtl::serve
