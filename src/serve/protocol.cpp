#include "serve/protocol.hpp"

#include "finder/finder_json.hpp"

namespace gtl::serve {
namespace {

Status op_from_name(const std::string& name, Op* out) {
  for (const Op op : {Op::kLoadDesign, Op::kUnloadDesign, Op::kRunFinder,
                      Op::kCancel, Op::kStatus, Op::kStats}) {
    if (name == op_name(op)) {
      *out = op;
      return Status::ok();
    }
  }
  return Status::invalid_argument("unknown op \"" + name + "\"");
}

/// Read an optional string member; null/absent keep the default.
Status read_string(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->is_null()) return Status::ok();
  if (Status st = v->get_string(out); !st.is_ok()) {
    return Status::invalid_argument(std::string(key) + ": " + st.to_string());
  }
  return Status::ok();
}

Status read_u64(const JsonValue& obj, const char* key, std::uint64_t* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->is_null()) return Status::ok();
  if (Status st = v->get_uint64(out); !st.is_ok()) {
    return Status::invalid_argument(std::string(key) + ": " + st.to_string());
  }
  return Status::ok();
}

/// The keys each op accepts (beyond id/op); anything else is a typo the
/// caller should hear about, mirroring the strict finder_json readers.
Status check_known_keys(const JsonValue& obj, Op op) {
  for (const auto& [key, value] : obj.object()) {
    if (key == "id" || key == "op") continue;
    bool known = false;
    switch (op) {
      case Op::kLoadDesign:
        known = key == "design" || key == "aux" || key == "snapshot";
        break;
      case Op::kUnloadDesign:
        known = key == "design";
        break;
      case Op::kRunFinder:
        known = key == "design" || key == "config" || key == "deadline_ms";
        break;
      case Op::kCancel:
        known = key == "target_id";
        break;
      case Op::kStatus:
      case Op::kStats:
        known = false;
        break;
    }
    if (!known) {
      return Status::invalid_argument(std::string(op_name(op)) +
                                      ": unknown key \"" + key + "\"");
    }
  }
  return Status::ok();
}

}  // namespace

Status parse_request(std::string_view line, Request* out, ErrorCode* code,
                     bool* has_id) {
  *code = ErrorCode::kParseError;
  *has_id = false;

  JsonValue json;
  GTL_RETURN_IF_ERROR(JsonValue::parse(line, &json));

  *code = ErrorCode::kInvalidRequest;
  if (!json.is_object()) {
    return Status::invalid_argument("request must be a JSON object");
  }

  // Recover the id first: even a bad request should route its error back.
  const JsonValue* id = json.find("id");
  if (id == nullptr) {
    return Status::invalid_argument("request is missing \"id\"");
  }
  if (Status st = id->get_uint64(&out->id); !st.is_ok()) {
    return Status::invalid_argument("id: " + st.to_string() +
                                    " (expected a u64)");
  }
  *has_id = true;

  const JsonValue* op = json.find("op");
  if (op == nullptr) {
    return Status::invalid_argument("request is missing \"op\"");
  }
  std::string op_str;
  GTL_RETURN_IF_ERROR(op->get_string(&op_str));
  GTL_RETURN_IF_ERROR(op_from_name(op_str, &out->op));
  GTL_RETURN_IF_ERROR(check_known_keys(json, out->op));

  *code = ErrorCode::kInvalidArgument;
  switch (out->op) {
    case Op::kLoadDesign:
      GTL_RETURN_IF_ERROR(read_string(json, "design", &out->design));
      GTL_RETURN_IF_ERROR(read_string(json, "aux", &out->aux));
      GTL_RETURN_IF_ERROR(read_string(json, "snapshot", &out->snapshot));
      if (out->design.empty()) {
        return Status::invalid_argument("load_design: \"design\" is required");
      }
      if (out->aux.empty() && out->snapshot.empty()) {
        return Status::invalid_argument(
            "load_design: give \"aux\", \"snapshot\", or both");
      }
      break;
    case Op::kUnloadDesign:
      GTL_RETURN_IF_ERROR(read_string(json, "design", &out->design));
      if (out->design.empty()) {
        return Status::invalid_argument(
            "unload_design: \"design\" is required");
      }
      break;
    case Op::kRunFinder: {
      GTL_RETURN_IF_ERROR(read_string(json, "design", &out->design));
      if (out->design.empty()) {
        return Status::invalid_argument("run_finder: \"design\" is required");
      }
      const JsonValue* config = json.find("config");
      if (config != nullptr && !config->is_null()) {
        GTL_RETURN_IF_ERROR(finder_config_from_json(*config, &out->config));
      }
      GTL_RETURN_IF_ERROR(read_u64(json, "deadline_ms", &out->deadline_ms));
      break;
    }
    case Op::kCancel: {
      const JsonValue* target = json.find("target_id");
      if (target == nullptr) {
        return Status::invalid_argument("cancel: \"target_id\" is required");
      }
      GTL_RETURN_IF_ERROR(read_u64(json, "target_id", &out->target_id));
      break;
    }
    case Op::kStatus:
    case Op::kStats:
      break;
  }
  return Status::ok();
}

std::string ok_line(std::uint64_t id, Op op, JsonValue result,
                    const ServerTiming* timing) {
  JsonValue::Object obj;
  obj.emplace("id", JsonValue(id));
  obj.emplace("ok", JsonValue(true));
  obj.emplace("op", JsonValue(op_name(op)));
  obj.emplace("result", std::move(result));
  if (timing != nullptr) {
    JsonValue::Object server;
    server.emplace("queue_seconds", JsonValue(timing->queue_seconds));
    server.emplace("run_seconds", JsonValue(timing->run_seconds));
    obj.emplace("server", JsonValue(std::move(server)));
  }
  return JsonValue(std::move(obj)).dump();
}

std::string error_line(bool has_id, std::uint64_t id, bool has_op, Op op,
                       ErrorCode code, const std::string& message,
                       std::uint64_t retry_after_ms) {
  JsonValue::Object error;
  error.emplace("code", JsonValue(error_code_name(code)));
  error.emplace("message", JsonValue(message));
  if (retry_after_ms != 0) {
    error.emplace("retry_after_ms", JsonValue(retry_after_ms));
  }

  JsonValue::Object obj;
  obj.emplace("id", has_id ? JsonValue(id) : JsonValue(nullptr));
  obj.emplace("ok", JsonValue(false));
  obj.emplace("op", has_op ? JsonValue(op_name(op)) : JsonValue(nullptr));
  obj.emplace("error", JsonValue(std::move(error)));
  return JsonValue(std::move(obj)).dump();
}

JsonValue deterministic_result_json(const FinderResult& result) {
  JsonValue json = to_json(result);
  json.set("phase1_2_seconds", JsonValue(0.0));
  json.set("phase3_seconds", JsonValue(0.0));
  json.set("total_seconds", JsonValue(0.0));
  return json;
}

std::uint64_t response_retry_after_ms(const JsonValue& response) {
  if (!response.is_object()) return 0;
  const JsonValue* error = response.find("error");
  if (error == nullptr || !error->is_object()) return 0;
  const JsonValue* hint = error->find("retry_after_ms");
  std::uint64_t ms = 0;
  if (hint != nullptr) (void)hint->get_uint64(&ms);
  return ms;
}

Status response_status(const JsonValue& response) {
  if (!response.is_object()) {
    return Status::parse_error("response must be a JSON object");
  }
  const JsonValue* ok = response.find("ok");
  bool is_ok = false;
  if (ok == nullptr || !ok->get_bool(&is_ok).is_ok()) {
    return Status::parse_error("response is missing a boolean \"ok\"");
  }
  if (is_ok) return Status::ok();

  std::string code = "internal";
  std::string message;
  if (const JsonValue* error = response.find("error");
      error != nullptr && error->is_object()) {
    if (const JsonValue* c = error->find("code")) (void)c->get_string(&code);
    if (const JsonValue* m = error->find("message")) {
      (void)m->get_string(&message);
    }
  }
  const std::string what = "server error " + code + ": " + message;
  if (code == "parse_error") return Status::parse_error(what);
  if (code == "not_found") return Status::not_found(what);
  if (code == "overloaded") return Status::unavailable(what);
  if (code == "deadline_exceeded" || code == "cancelled") {
    return Status::cancelled(what);
  }
  return Status::invalid_argument(what);
}

}  // namespace gtl::serve
