#pragma once
// Pool of reusable Finder sessions for one loaded design.
//
// A Finder session owns sizable workspace (ordering buffers, refine
// scratch, candidate pools) that PR 3/4 made reusable across runs; the
// pool keeps finished sessions warm so repeated queries against the same
// design skip the allocation storm.  Sessions are keyed by a config
// fingerprint (the key-sorted JSON dump of the FinderConfig): a session
// can only be reused for the exact config it was built with, because
// Finder validates and binds its config at construction.
//
// Lifetime: the pool holds the registry EntryPtr, and every Lease holds
// a shared_ptr to the pool — so a design evicted or unloaded mid-query
// stays alive until the last lease and the pool itself drop.  A Finder
// session is NOT thread-safe; a Lease hands exclusive ownership to one
// serving thread and returns the session on destruction (up to
// `max_idle` kept, the rest destroyed).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "finder/finder.hpp"
#include "serve/design_registry.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace gtl::serve {

class SessionPool;

/// Exclusive ownership of one Finder session, returned to its pool on
/// destruction.  Movable, not copyable.  A default-constructed lease is
/// empty (`valid()` false).
class SessionLease {
 public:
  SessionLease() = default;
  SessionLease(SessionLease&&) noexcept = default;
  SessionLease& operator=(SessionLease&& other) noexcept;
  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;
  ~SessionLease() { release(); }

  [[nodiscard]] bool valid() const { return finder_ != nullptr; }
  [[nodiscard]] Finder& finder() { return *finder_; }

  /// Return the session to the pool now (idempotent).  Clears the
  /// sticky observer/cancel-token bindings first so a recycled session
  /// never fires into a dead request's state.
  void release();

 private:
  friend class SessionPool;
  SessionLease(std::shared_ptr<SessionPool> pool, std::unique_ptr<Finder> f,
               std::string fingerprint)
      : pool_(std::move(pool)),
        finder_(std::move(f)),
        fingerprint_(std::move(fingerprint)) {}

  std::shared_ptr<SessionPool> pool_;
  std::unique_ptr<Finder> finder_;
  std::string fingerprint_;
};

class SessionPool : public std::enable_shared_from_this<SessionPool> {
 public:
  /// `entry` is the registry entry the sessions bind to; the pool keeps
  /// it alive.  `max_idle` bounds warm sessions kept across all configs.
  static std::shared_ptr<SessionPool> create(DesignRegistry::EntryPtr entry,
                                             std::size_t max_idle = 4);

  /// Check out a session for `cfg`: a warm one when the fingerprint
  /// matches (*reused = true), else a freshly constructed one.  Fails
  /// (kInvalidArgument) when the config does not validate — the
  /// service rejection path; nothing is constructed on failure.
  [[nodiscard]] Status acquire(const FinderConfig& cfg, SessionLease* out,
                               bool* reused) GTL_EXCLUDES(mu_);

  [[nodiscard]] const DesignRegistry::EntryPtr& entry() const {
    return entry_;
  }

  /// Warm sessions currently parked (for status/tests).
  [[nodiscard]] std::size_t idle_count() const GTL_EXCLUDES(mu_);

 private:
  friend class SessionLease;
  SessionPool(DesignRegistry::EntryPtr entry, std::size_t max_idle)
      : entry_(std::move(entry)), max_idle_(max_idle) {}

  void put_back(std::unique_ptr<Finder> finder, std::string fingerprint)
      GTL_EXCLUDES(mu_);

  // entry_ and max_idle_ are fixed at construction; only the parked
  // sessions are shared between serving threads.
  DesignRegistry::EntryPtr entry_;
  const std::size_t max_idle_;
  mutable Mutex mu_;
  /// fingerprint -> parked sessions for that exact config.
  std::multimap<std::string, std::unique_ptr<Finder>> idle_ GTL_GUARDED_BY(mu_);
  std::size_t idle_total_ GTL_GUARDED_BY(mu_) = 0;
};

/// The pooling key: key-sorted compact JSON of the config, so two
/// configs fingerprint equal iff every field is equal.
[[nodiscard]] std::string config_fingerprint(const FinderConfig& cfg);

}  // namespace gtl::serve
