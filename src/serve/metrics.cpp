#include "serve/metrics.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace gtl::serve {

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : capacity_(capacity) {
  GTL_REQUIRE(capacity > 0, "latency reservoir capacity must be positive");
  samples_.reserve(capacity);
}

void LatencyReservoir::add(double seconds) {
  if (samples_.size() < capacity_) {
    samples_.push_back(seconds);
  } else {
    samples_[next_] = seconds;
  }
  next_ = (next_ + 1) % capacity_;
}

LatencyReservoir::Percentiles LatencyReservoir::percentiles() const {
  Percentiles p;
  p.window = samples_.size();
  if (samples_.empty()) return p;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  const auto rank = [&](double q) {
    // Nearest-rank: the smallest sample with at least q of the mass at
    // or below it.
    const double exact = q * static_cast<double>(sorted.size());
    std::size_t idx = static_cast<std::size_t>(exact);
    if (static_cast<double>(idx) < exact) ++idx;  // ceil
    if (idx == 0) idx = 1;
    return sorted[std::min(idx, sorted.size()) - 1];
  };
  p.p50_seconds = rank(0.50);
  p.p95_seconds = rank(0.95);
  p.p99_seconds = rank(0.99);
  return p;
}

JsonValue ServerMetrics::to_json() const {
  JsonValue::Object global;
  global.emplace("received", JsonValue(received));
  global.emplace("rejected_invalid", JsonValue(rejected_invalid));
  global.emplace("rejected_overload", JsonValue(rejected_overload));
  global.emplace("completed_ok", JsonValue(completed_ok));
  global.emplace("snapshot_hits", JsonValue(snapshot_hits));
  global.emplace("snapshot_fill_failures", JsonValue(snapshot_fill_failures));
  global.emplace("designs_loaded", JsonValue(designs_loaded));
  global.emplace("designs_evicted", JsonValue(designs_evicted));
  global.emplace("designs_recovered", JsonValue(designs_recovered));
  global.emplace("loads_idempotent", JsonValue(loads_idempotent));
  global.emplace("loads_shed", JsonValue(loads_shed));
  global.emplace("manifest_write_failures", JsonValue(manifest_write_failures));
  global.emplace("cancel_requests", JsonValue(cancel_requests));

  JsonValue::Object designs;
  for (const auto& [name, m] : per_design) {
    const LatencyReservoir::Percentiles p = m.latency.percentiles();
    JsonValue::Object d;
    d.emplace("queries", JsonValue(m.queries));
    d.emplace("errors", JsonValue(m.errors));
    d.emplace("cancelled", JsonValue(m.cancelled));
    d.emplace("deadline_exceeded", JsonValue(m.deadline_exceeded));
    d.emplace("sessions_created", JsonValue(m.sessions_created));
    d.emplace("sessions_reused", JsonValue(m.sessions_reused));
    d.emplace("latency_window",
              JsonValue(static_cast<std::uint64_t>(p.window)));
    d.emplace("p50_ms", JsonValue(p.p50_seconds * 1e3));
    d.emplace("p95_ms", JsonValue(p.p95_seconds * 1e3));
    d.emplace("p99_ms", JsonValue(p.p99_seconds * 1e3));
    designs.emplace(name, JsonValue(std::move(d)));
  }

  JsonValue::Object obj;
  obj.emplace("global", JsonValue(std::move(global)));
  obj.emplace("designs", JsonValue(std::move(designs)));
  return JsonValue(std::move(obj));
}

}  // namespace gtl::serve
