#pragma once
// The gtl_serve wire protocol: JSON-lines request/response over a local
// stream (one compact JSON object per '\n'-terminated line).
//
// Request:  {"id": <u64>, "op": "<op>", ...op fields...}
//   load_design    design, aux and/or snapshot (paths)
//   unload_design  design
//   run_finder     design, config (FinderConfig object, optional),
//                  deadline_ms (optional, 0 = server default)
//   cancel         target_id (id of an in-flight run_finder)
//   status         -
//   stats          -
//
// Response: {"id": <u64|null>, "ok": true,  "op": "<op>",
//            "result": {...}, "server": {"queue_seconds", "run_seconds"}}
//        or {"id": <u64|null>, "ok": false, "op": "<op>|null",
//            "error": {"code": "<code>", "message": "...",
//                      "retry_after_ms": <u64, only when shedding>}}
//
// "retry_after_ms" appears on "overloaded" rejections: the server's
// backoff hint.  Retrying sooner is not an error, just wasted work.
//
// load_design is idempotent: re-loading a name whose recorded (aux,
// snapshot) sources match the request answers ok with "idempotent":
// true instead of re-parsing — a client that lost the first reply can
// safely resend.  The same name with *different* sources (or a design
// preloaded in-process, which records no sources) still answers
// "already_loaded".
//
// `id` is chosen by the client and echoed verbatim; it is how responses
// are matched to requests and how `cancel` names its target.  When a
// line is so malformed that no id can be recovered, the error response
// carries "id": null.
//
// Determinism contract: the "result" object of a run_finder response is
// byte-identical for a fixed (design, config) across sessions, threads,
// and server restarts — wall-clock timings live only in the "server"
// envelope block (the FinderResult timing fields inside "result" are
// zeroed).  tests/serve/session_stress_test.cpp pins this against a
// direct single-threaded Finder::run().
//
// Error codes are stable wire strings (see ErrorCode); adding a code is
// backward compatible, renaming one is not.

#include <cstdint>
#include <string>
#include <string_view>

#include "finder/finder.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace gtl::serve {

/// Wire error codes.  Keep in sync with error_code_name().
enum class ErrorCode {
  kParseError,        ///< request line is not valid JSON
  kInvalidRequest,    ///< JSON but not a valid request (id/op/fields)
  kInvalidArgument,   ///< a request value is outside its domain
  kNotFound,          ///< named design (or cancel target) is not loaded
  kAlreadyLoaded,     ///< load_design of a name already in the registry
  kOverloaded,        ///< admission queue full — retry with backoff
  kDeadlineExceeded,  ///< the per-request deadline expired
  kCancelled,         ///< cancelled by a cancel request or shutdown
  kInternal,          ///< unexpected server-side failure
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyLoaded: return "already_loaded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

enum class Op {
  kLoadDesign,
  kUnloadDesign,
  kRunFinder,
  kCancel,
  kStatus,
  kStats,
};

[[nodiscard]] constexpr const char* op_name(Op op) {
  switch (op) {
    case Op::kLoadDesign: return "load_design";
    case Op::kUnloadDesign: return "unload_design";
    case Op::kRunFinder: return "run_finder";
    case Op::kCancel: return "cancel";
    case Op::kStatus: return "status";
    case Op::kStats: return "stats";
  }
  return "unknown";
}

/// One parsed request.  Fields beyond (id, op) are op-specific; unused
/// ones keep their defaults.
struct Request {
  std::uint64_t id = 0;
  Op op = Op::kStatus;
  std::string design;            ///< load/unload/run
  std::string aux;               ///< load_design: Bookshelf .aux path
  std::string snapshot;          ///< load_design: binary snapshot path
  FinderConfig config;           ///< run_finder (defaults when absent)
  std::uint64_t deadline_ms = 0; ///< run_finder: 0 = server default
  std::uint64_t target_id = 0;   ///< cancel
};

/// Parse one request line.  On failure returns the error Status, sets
/// *code to the wire code to report, and — when the id could still be
/// recovered — leaves it in out->id with *has_id true, so the error
/// response can be routed back to the right caller.
[[nodiscard]] Status parse_request(std::string_view line, Request* out,
                                   ErrorCode* code, bool* has_id);

/// Wall-clock envelope of an executed request (never part of the
/// deterministic "result" block).
struct ServerTiming {
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
};

/// Serialize a success response line (compact, no trailing newline).
/// `timing` may be nullptr for inline ops that never queue.
[[nodiscard]] std::string ok_line(std::uint64_t id, Op op, JsonValue result,
                                  const ServerTiming* timing);

/// Serialize an error response line.  `has_id` false emits "id": null;
/// `has_op` false emits "op": null.  A nonzero `retry_after_ms` is
/// emitted into the error object (overload shedding hint).
[[nodiscard]] std::string error_line(bool has_id, std::uint64_t id,
                                     bool has_op, Op op, ErrorCode code,
                                     const std::string& message,
                                     std::uint64_t retry_after_ms = 0);

/// The "retry_after_ms" hint of an error response; 0 when absent.
[[nodiscard]] std::uint64_t response_retry_after_ms(const JsonValue& response);

/// FinderResult -> the deterministic "result" JSON of a run_finder
/// response: to_json(result) with the wall-clock fields zeroed (see the
/// determinism contract above).
[[nodiscard]] JsonValue deterministic_result_json(const FinderResult& result);

/// Map a parsed response object to a Status: OK for "ok": true, else the
/// error code/message translated to the closest StatusCode (overloaded
/// -> kUnavailable, deadline/cancel -> kCancelled, ...).
[[nodiscard]] Status response_status(const JsonValue& response);

}  // namespace gtl::serve
