#pragma once
// Registry of immutable, shared netlists for the query server.
//
// Each entry is a ref-counted `shared_ptr<const Entry>`: lookups hand
// out the pointer, so eviction/unload never invalidates a design that
// in-flight queries (or pooled Finder sessions) still reference — the
// memory is reclaimed when the last holder drops it.  Residency is
// bounded by `max_resident_bytes` with LRU eviction: loading a design
// that would push the total over the cap evicts least-recently-used
// entries first.  A single design larger than the whole cap is still
// admitted (after evicting everything else) — the cap bounds the
// *steady state*, refusing the workload entirely would help nobody.
//
// Loads go through the PR 5 snapshot-cache protocol
// (load_with_snapshot_cache): an existing snapshot is the O(read) fast
// path, otherwise the Bookshelf text is parsed and the snapshot filled
// best-effort.  NOTE the cache is keyed by path only (see
// netlist_io.hpp): a snapshot path that exists wins over the aux path.
//
// Thread-safe; every method takes the internal lock.

#include <cstddef>
#include <filesystem>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/bookshelf.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace gtl::serve {

class DesignRegistry {
 public:
  /// One loaded design; immutable after registration.  `source_aux` /
  /// `source_snapshot` record where load() read it from (both empty for
  /// insert()ed designs) — the key for idempotent reloads and the
  /// payload of the server's recovery manifest.
  struct Entry {
    std::string name;
    BookshelfDesign design;
    std::size_t resident_bytes = 0;
    std::string source_aux;
    std::string source_snapshot;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  /// `max_resident_bytes` is the *soft* watermark: loading past it
  /// evicts LRU entries to make room (a single oversized design is
  /// still admitted — see above).  `hard_resident_bytes`, when nonzero,
  /// is the shed point: a design whose own footprint exceeds it is
  /// refused with kUnavailable instead of nuking the whole working set.
  /// 0 keeps the pre-watermark behavior (admit anything).
  explicit DesignRegistry(std::size_t max_resident_bytes,
                          std::size_t hard_resident_bytes = 0);

  /// What a load did, for the response/metrics.
  struct LoadInfo {
    EntryPtr entry;
    bool snapshot_hit = false;
    bool fill_failed = false;          ///< best-effort cache fill failed
    std::vector<std::string> notes;    ///< snapshot-cache fill notes
    std::vector<std::string> evicted;  ///< names evicted to make room
  };

  /// Load from `aux` and/or `snapshot` (see the cache protocol above)
  /// and register under `name`.  Fails with kInvalidArgument if the name
  /// is already registered ("already loaded" — unload first to replace).
  [[nodiscard]] Status load(const std::string& name,
                            const std::filesystem::path& aux,
                            const std::filesystem::path& snapshot,
                            LoadInfo* info) GTL_EXCLUDES(mu_);

  /// Register an already-built design (preload / demo / tests).
  [[nodiscard]] Status insert(const std::string& name, BookshelfDesign design,
                              LoadInfo* info) GTL_EXCLUDES(mu_);

  /// Look up by name; bumps the entry to most-recently-used.  Null when
  /// absent.
  [[nodiscard]] EntryPtr find(const std::string& name) GTL_EXCLUDES(mu_);

  /// Drop the registry's reference.  True if the name was present.
  bool erase(const std::string& name) GTL_EXCLUDES(mu_);

  struct DesignInfo {
    std::string name;
    std::size_t cells = 0;
    std::size_t nets = 0;
    std::size_t pins = 0;
    std::size_t resident_bytes = 0;
  };
  /// Snapshot of the current entries, most recently used first.
  [[nodiscard]] std::vector<DesignInfo> list() const GTL_EXCLUDES(mu_);

  [[nodiscard]] std::size_t total_resident_bytes() const GTL_EXCLUDES(mu_);
  [[nodiscard]] std::size_t max_resident_bytes() const { return max_bytes_; }
  [[nodiscard]] std::size_t hard_resident_bytes() const { return hard_bytes_; }
  [[nodiscard]] std::size_t size() const GTL_EXCLUDES(mu_);

 private:
  /// Register `entry`, evicting LRU entries until the total fits (the
  /// new entry itself is never evicted).  Returns names evicted.
  std::vector<std::string> insert_locked(EntryPtr entry) GTL_REQUIRES(mu_);

  struct Slot {
    EntryPtr entry;
    std::list<std::string>::iterator lru_pos;
  };

  mutable Mutex mu_;
  // Watermarks are fixed at construction; only the guarded state below
  // is shared.
  const std::size_t max_bytes_;
  const std::size_t hard_bytes_;
  std::size_t total_bytes_ GTL_GUARDED_BY(mu_) = 0;
  /// Front = most recently used.
  std::list<std::string> lru_ GTL_GUARDED_BY(mu_);
  std::unordered_map<std::string, Slot> entries_ GTL_GUARDED_BY(mu_);
};

/// Approximate heap bytes of a loaded design (netlist + placement +
/// warnings) — the unit of the registry's residency accounting.
[[nodiscard]] std::size_t design_resident_bytes(const BookshelfDesign& design);

}  // namespace gtl::serve
