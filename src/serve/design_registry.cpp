#include "serve/design_registry.hpp"

#include "netlist/netlist_io.hpp"
#include "util/require.hpp"

namespace gtl::serve {

std::size_t design_resident_bytes(const BookshelfDesign& design) {
  std::size_t total = design.netlist.resident_bytes();
  total += design.x.capacity() * sizeof(double);
  total += design.y.capacity() * sizeof(double);
  for (const std::string& w : design.warnings) {
    total += sizeof(std::string) + w.capacity();
  }
  return total;
}

DesignRegistry::DesignRegistry(std::size_t max_resident_bytes,
                               std::size_t hard_resident_bytes)
    : max_bytes_(max_resident_bytes), hard_bytes_(hard_resident_bytes) {
  GTL_REQUIRE(max_resident_bytes > 0, "residency cap must be positive");
  GTL_REQUIRE(hard_resident_bytes == 0 ||
                  hard_resident_bytes >= max_resident_bytes,
              "hard watermark must be 0 (off) or >= the soft watermark");
}

Status DesignRegistry::load(const std::string& name,
                            const std::filesystem::path& aux,
                            const std::filesystem::path& snapshot,
                            LoadInfo* info) {
  if (name.empty()) {
    return Status::invalid_argument("design name must not be empty");
  }
  {
    MutexLock lk(mu_);
    if (entries_.count(name) != 0) {
      return Status::invalid_argument("design \"" + name +
                                      "\" is already loaded");
    }
  }

  // The parse/load runs outside the lock: a multi-second Bookshelf parse
  // must not block queries against already-loaded designs.  A racing
  // load of the same name is re-checked by insert() below.
  auto entry = std::make_shared<Entry>();
  entry->name = name;
  SnapshotCacheResult cache;
  const Status load_st = load_with_snapshot_cache(
      snapshot,
      [&](BookshelfDesign* out) -> Status {
        if (aux.empty()) {
          return Status::not_found(
              "snapshot " + snapshot.string() +
              " does not exist and no \"aux\" source was given");
        }
        return try_read_bookshelf(aux, out);
      },
      &entry->design, &cache);
  GTL_RETURN_IF_ERROR(load_st);
  entry->resident_bytes = design_resident_bytes(entry->design);
  entry->source_aux = aux.string();
  entry->source_snapshot = snapshot.string();

  // Hard watermark: a design that alone exceeds it would force every
  // other design out and still overshoot — shed it instead.  After the
  // LRU eviction below the steady-state total is <= max(soft, this
  // design), so this upfront check is the only way past hard.
  if (hard_bytes_ != 0 && entry->resident_bytes > hard_bytes_) {
    return Status::unavailable(
        "design \"" + name + "\" needs " +
        std::to_string(entry->resident_bytes) +
        " resident bytes, above the hard watermark of " +
        std::to_string(hard_bytes_));
  }

  MutexLock lk(mu_);
  if (entries_.count(name) != 0) {
    return Status::invalid_argument("design \"" + name +
                                    "\" is already loaded");
  }
  info->entry = entry;
  info->snapshot_hit = cache.hit;
  info->fill_failed = cache.fill_failed;
  info->notes = std::move(cache.notes);
  info->evicted = insert_locked(std::move(entry));
  return Status::ok();
}

Status DesignRegistry::insert(const std::string& name, BookshelfDesign design,
                              LoadInfo* info) {
  if (name.empty()) {
    return Status::invalid_argument("design name must not be empty");
  }
  auto entry = std::make_shared<Entry>();
  entry->name = name;
  entry->design = std::move(design);
  entry->resident_bytes = design_resident_bytes(entry->design);
  if (hard_bytes_ != 0 && entry->resident_bytes > hard_bytes_) {
    return Status::unavailable(
        "design \"" + name + "\" needs " +
        std::to_string(entry->resident_bytes) +
        " resident bytes, above the hard watermark of " +
        std::to_string(hard_bytes_));
  }

  MutexLock lk(mu_);
  if (entries_.count(name) != 0) {
    return Status::invalid_argument("design \"" + name +
                                    "\" is already loaded");
  }
  info->entry = entry;
  info->evicted = insert_locked(std::move(entry));
  return Status::ok();
}

std::vector<std::string> DesignRegistry::insert_locked(EntryPtr entry) {
  std::vector<std::string> evicted;
  // Evict LRU entries until the new total fits (or nothing is left to
  // evict — the single-oversized-design case documented in the header).
  while (!lru_.empty() && total_bytes_ + entry->resident_bytes > max_bytes_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    total_bytes_ -= it->second.entry->resident_bytes;
    entries_.erase(it);
    evicted.push_back(victim);
  }
  total_bytes_ += entry->resident_bytes;
  lru_.push_front(entry->name);
  const std::string key = entry->name;
  entries_.emplace(key, Slot{std::move(entry), lru_.begin()});
  return evicted;
}

DesignRegistry::EntryPtr DesignRegistry::find(const std::string& name) {
  MutexLock lk(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.entry;
}

bool DesignRegistry::erase(const std::string& name) {
  MutexLock lk(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  total_bytes_ -= it->second.entry->resident_bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  return true;
}

std::vector<DesignRegistry::DesignInfo> DesignRegistry::list() const {
  MutexLock lk(mu_);
  std::vector<DesignInfo> out;
  out.reserve(entries_.size());
  for (const std::string& name : lru_) {
    const Entry& e = *entries_.at(name).entry;
    DesignInfo info;
    info.name = e.name;
    info.cells = e.design.netlist.num_cells();
    info.nets = e.design.netlist.num_nets();
    info.pins = e.design.netlist.num_pins();
    info.resident_bytes = e.resident_bytes;
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t DesignRegistry::total_resident_bytes() const {
  MutexLock lk(mu_);
  return total_bytes_;
}

std::size_t DesignRegistry::size() const {
  MutexLock lk(mu_);
  return entries_.size();
}

}  // namespace gtl::serve
