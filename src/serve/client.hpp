#pragma once
// Synchronous client for a gtl_serve server: one call = one request
// line, one response line.  NOT thread-safe and strictly one request in
// flight — callers wanting concurrency open one Client per thread (as
// bench/serve_load.py and the stress test do), which also keeps the
// response-matching trivial: the next line on the stream answers the
// last request, and the echoed id is verified anyway.  Because of the
// one-owner contract the class carries no gtl::Mutex and sits outside
// the capability layer (util/sync.hpp) on purpose — adding a lock here
// would only hide misuse the contract forbids.
//
// Every method maps a wire error onto the closest Status (see
// protocol.hpp response_status): "overloaded" -> kUnavailable,
// "deadline_exceeded"/"cancelled" -> kCancelled, and so on, with the
// server's message preserved.

#include <cstdint>
#include <filesystem>
#include <string>

#include "finder/finder.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"
#include "util/status.hpp"

namespace gtl::serve {

/// Client-side retry behavior (see Client::set_retry_policy).  Retries
/// use capped exponential backoff with seeded jitter: attempt k waits a
/// uniform draw from [b/2, b] where b = min(max_backoff_ms,
/// base_backoff_ms * 2^k), floored by the server's retry_after_ms hint
/// when one arrived.  The whole retry loop stays within a budget — the
/// caller's deadline_ms for run_finder, else `budget_ms`.
struct RetryPolicy {
  /// Total attempts including the first; 1 = no retries (the default —
  /// existing single-shot semantics are preserved until a caller opts
  /// in).
  std::size_t max_attempts = 1;
  std::uint64_t base_backoff_ms = 50;
  std::uint64_t max_backoff_ms = 2000;
  /// Retry budget for ops without their own deadline.
  std::uint64_t budget_ms = 10000;
  /// Seed for the jitter stream (deterministic tests).
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

class Client {
 public:
  Client() = default;
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the server socket at `path`.  The path is remembered
  /// for reconnects.
  [[nodiscard]] static Status connect(const std::filesystem::path& path,
                                      Client* out);

  [[nodiscard]] bool connected() const { return stream_.valid(); }

  /// Opt into retries: transport failures (dead/restarted server —
  /// reconnect first) and "overloaded" sheds are retried with backoff,
  /// but ONLY for idempotent ops: load_design (idempotent on the
  /// server), run_finder (deterministic), cancel, status, stats.
  /// unload_design never retries — after a lost reply a retry could
  /// observe its own success as not_found.
  void set_retry_policy(const RetryPolicy& policy);
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }

  /// Drop the current connection and dial the remembered path again.
  /// Pending state on the old stream is discarded.
  [[nodiscard]] Status reconnect();

  /// load_design.  `aux`/`snapshot` may each be empty (not both).
  /// `result` (optional) receives the response's result block.
  [[nodiscard]] Status load_design(const std::string& name,
                                   const std::filesystem::path& aux,
                                   const std::filesystem::path& snapshot,
                                   JsonValue* result = nullptr);

  [[nodiscard]] Status unload_design(const std::string& name);

  /// run_finder.  `config` nullptr runs server defaults; `deadline_ms` 0
  /// uses the server default.  On success `*out` holds the decoded
  /// FinderResult (timing fields zeroed per the determinism contract) and
  /// `raw_result` (optional) the verbatim result block.
  [[nodiscard]] Status run_finder(const std::string& design,
                                  const FinderConfig* config,
                                  std::uint64_t deadline_ms, FinderResult* out,
                                  JsonValue* raw_result = nullptr);

  /// Cancel the in-flight run_finder with id `target_id`.  `delivered`
  /// (optional): whether this cancel decided the run's fate (false when
  /// a deadline or earlier cancel won the race).
  [[nodiscard]] Status cancel(std::uint64_t target_id,
                              bool* delivered = nullptr);

  [[nodiscard]] Status status(JsonValue* result);
  [[nodiscard]] Status stats(JsonValue* result);

  /// The id that will be stamped on the next request — what a concurrent
  /// controller needs to cancel() a run issued by this client.
  [[nodiscard]] std::uint64_t next_id() const { return next_id_; }

  /// Low-level escape hatch: send `fields` as the body of an `op`
  /// request (id/op stamped in) and return the whole response object.
  /// The returned Status reflects the wire error, if any; `*response` is
  /// filled whenever a well-formed response arrived, error or not.
  [[nodiscard]] Status call(Op op, JsonValue::Object fields,
                            JsonValue* response);

 private:
  /// call() wrapped in the retry policy.  `idempotent` gates any retry;
  /// `budget_ms` 0 uses the policy budget.
  [[nodiscard]] Status call_retrying(Op op, const JsonValue::Object& fields,
                                     JsonValue* response, bool idempotent,
                                     std::uint64_t budget_ms);

  UnixStream stream_;
  std::filesystem::path path_;
  std::uint64_t next_id_ = 1;
  RetryPolicy retry_;
  Rng rng_{retry_.seed};
};

}  // namespace gtl::serve
