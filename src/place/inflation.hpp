#pragma once
// Cell inflation (paper §5.1.3): "all the cells inside the GTLs found are
// inflated by four times, and placement was re-performed to spread these
// cells."  Inflation multiplies cell *area* by widening the cell; the
// spreader then has to allocate proportionally more room to the GTL,
// which dissolves its routing hotspot.

#include <span>

#include "netlist/netlist.hpp"

namespace gtl {

/// Return a copy of `nl` with the given cells' widths multiplied by
/// `area_factor` (height is the fixed row height, so area scales by the
/// same factor).  Fixed cells are never inflated.
[[nodiscard]] Netlist inflate_cells(const Netlist& nl,
                                    std::span<const CellId> cells,
                                    double area_factor = 4.0);

}  // namespace gtl
