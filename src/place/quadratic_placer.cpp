#include "place/quadratic_placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "place/linear_system.hpp"
#include "util/require.hpp"

namespace gtl {
namespace {

constexpr double kCenterAnchor = 1e-6;  // keeps every row SPD

struct MovableIndex {
  std::vector<std::size_t> of_cell;  // cell -> movable slot or npos
  std::vector<CellId> cells;         // movable slot -> cell
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

MovableIndex index_movable(const Netlist& nl) {
  MovableIndex m;
  m.of_cell.assign(nl.num_cells(), MovableIndex::npos);
  m.cells.reserve(nl.num_movable());
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (!nl.is_fixed(c)) {
      m.of_cell[c] = m.cells.size();
      m.cells.push_back(c);
    }
  }
  return m;
}

/// Slab-wise 1D density-capped spreading along one axis.  `primary` is
/// the axis being spread, `secondary` selects the slab.  Cells of a slab
/// are remapped to uniform density inside a window just wide enough to
/// hit `target_density`, centered on their area-weighted mean — overfull
/// clusters relax, already-spread regions barely move (FastPlace-style
/// cell shifting, not global flattening).  Returns target positions.
std::vector<double> spread_axis(const Netlist& nl, const MovableIndex& mov,
                                const std::vector<double>& primary,
                                const std::vector<double>& secondary,
                                double primary_extent, double secondary_extent,
                                std::size_t slabs, double strength,
                                double target_density) {
  std::vector<double> target = primary;
  if (slabs == 0 || primary_extent <= 0.0) return target;
  const double slab_h = secondary_extent / static_cast<double>(slabs);

  // Bucket movable slots by slab.
  std::vector<std::vector<std::size_t>> bucket(slabs);
  for (std::size_t s = 0; s < mov.cells.size(); ++s) {
    const double sec = std::clamp(secondary[s], 0.0, secondary_extent);
    auto b = static_cast<std::size_t>(sec / slab_h);
    if (b >= slabs) b = slabs - 1;
    bucket[b].push_back(s);
  }

  std::vector<std::size_t> order;
  for (auto& slab : bucket) {
    if (slab.empty()) continue;
    order.assign(slab.begin(), slab.end());
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return primary[a] != primary[b] ? primary[a] < primary[b]
                                                : a < b;
              });
    double total_area = 0.0;
    double weighted_mean = 0.0;
    for (const std::size_t s : order) {
      const double area = nl.cell_area(mov.cells[s]);
      total_area += area;
      weighted_mean += area * primary[s];
    }
    if (total_area <= 0.0) continue;
    weighted_mean /= total_area;

    // Window width: enough for target density, but never narrower than
    // the core (10th-90th area percentile) span — sparse-but-spread slabs
    // must not be sucked toward their mean.
    const double density_cap = std::max(target_density, 1e-3);
    const double needed = total_area / (slab_h * density_cap);
    double x10 = primary[order.front()], x90 = primary[order.back()];
    {
      double cum = 0.0;
      bool got10 = false;
      for (const std::size_t s : order) {
        cum += nl.cell_area(mov.cells[s]);
        if (!got10 && cum >= 0.1 * total_area) {
          x10 = primary[s];
          got10 = true;
        }
        if (cum >= 0.9 * total_area) {
          x90 = primary[s];
          break;
        }
      }
    }
    const double core_span = (x90 - x10) * 1.25;
    const double window =
        std::clamp(std::max(needed, core_span), 1e-9, primary_extent);
    double lo = weighted_mean - window * 0.5;
    lo = std::clamp(lo, 0.0, primary_extent - window);

    double cum = 0.0;
    for (const std::size_t s : order) {
      const double area = nl.cell_area(mov.cells[s]);
      const double uniform = lo + window * (cum + area * 0.5) / total_area;
      cum += area;
      target[s] = strength * uniform + (1.0 - strength) * primary[s];
    }
  }
  return target;
}

/// Row-based legalization (Abacus-lite, two phases):
///   A. assign cells (in x order) to rows near their ideal row, under a
///      per-row width budget;
///   B. per row, place cells at their desired x and smooth overlaps with
///      a forward (push right) then backward (pull left) pass — legal
///      whenever the row's total cell width fits, with no cursor-gap
///      waste a plain Tetris sweep would accumulate.
void legalize(const Netlist& nl, const MovableIndex& mov, const Die& die,
              std::vector<double>& x, std::vector<double>& y) {
  const auto n_rows = static_cast<std::size_t>(
      std::max(1.0, std::floor(die.height / die.row_height)));
  std::vector<double> load(n_rows, 0.0);       // assigned width per row
  std::vector<double> tail_end(n_rows, 0.0);   // desired end of last cell
  std::vector<std::vector<std::size_t>> row_cells(n_rows);

  std::vector<std::size_t> order(mov.cells.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return x[a] != x[b] ? x[a] < x[b] : y[a] < y[b];
  });

  // --- Phase A: row assignment under width budget ---
  for (const std::size_t s : order) {
    const CellId c = mov.cells[s];
    const double w = nl.cell_width(c);
    auto ideal = static_cast<std::ptrdiff_t>(y[s] / die.row_height);
    ideal = std::clamp<std::ptrdiff_t>(ideal, 0,
                                       static_cast<std::ptrdiff_t>(n_rows) - 1);
    std::size_t best_row = n_rows;  // invalid
    double best_cost = 0.0;
    for (std::ptrdiff_t d = 0; d <= static_cast<std::ptrdiff_t>(n_rows);
         ++d) {
      for (const std::ptrdiff_t r : {ideal - d, ideal + d}) {
        if (r < 0 || r >= static_cast<std::ptrdiff_t>(n_rows)) continue;
        if (d != 0 && r == ideal) continue;
        const auto row = static_cast<std::size_t>(r);
        if (load[row] + w > die.width + 1e-9) continue;  // budget spent
        const double row_y = (static_cast<double>(row) + 0.5) * die.row_height;
        // Estimated x penalty: overlap with the previous cell's desired
        // span in this row (phase B resolves it by shifting).
        const double x_pen = std::max(0.0, tail_end[row] - (x[s] - w * 0.5));
        const double cost = std::abs(row_y - y[s]) + x_pen;
        if (best_row == n_rows || cost < best_cost) {
          best_row = row;
          best_cost = cost;
        }
      }
      if (best_row != n_rows && d >= 2) break;  // good enough nearby
    }
    if (best_row == n_rows) continue;  // die truly full: leave as is
    load[best_row] += w;
    tail_end[best_row] = std::max(tail_end[best_row], x[s] + w * 0.5);
    row_cells[best_row].push_back(s);
  }

  // --- Phase B: per-row overlap smoothing ---
  for (std::size_t r = 0; r < n_rows; ++r) {
    auto& cells = row_cells[r];
    if (cells.empty()) continue;
    // Appended in ascending desired x already; positions as left edges.
    std::vector<double> px(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const double w = nl.cell_width(mov.cells[cells[i]]);
      px[i] = std::clamp(x[cells[i]] - w * 0.5, 0.0, die.width - w);
    }
    // Forward: push right to clear overlaps.
    for (std::size_t i = 1; i < cells.size(); ++i) {
      const double prev_w = nl.cell_width(mov.cells[cells[i - 1]]);
      px[i] = std::max(px[i], px[i - 1] + prev_w);
    }
    // Backward: pull left anything pushed past the die edge.
    {
      const std::size_t last = cells.size() - 1;
      const double w_last = nl.cell_width(mov.cells[cells[last]]);
      px[last] = std::min(px[last], die.width - w_last);
      for (std::size_t i = last; i-- > 0;) {
        const double w_i = nl.cell_width(mov.cells[cells[i]]);
        px[i] = std::min(px[i], px[i + 1] - w_i);
      }
    }
    const double row_y = (static_cast<double>(r) + 0.5) * die.row_height;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const double w = nl.cell_width(mov.cells[cells[i]]);
      x[cells[i]] = px[i] + w * 0.5;
      y[cells[i]] = row_y;
    }
  }
}

}  // namespace

double total_hpwl(const Netlist& nl, std::span<const double> x,
                  std::span<const double> y) {
  GTL_REQUIRE(x.size() == nl.num_cells() && y.size() == nl.num_cells(),
              "coordinate arrays must cover all cells");
  double hpwl = 0.0;
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const auto pins = nl.pins_of(e);
    if (pins.size() < 2) continue;
    double min_x = x[pins[0]], max_x = x[pins[0]];
    double min_y = y[pins[0]], max_y = y[pins[0]];
    for (const CellId c : pins.subspan(1)) {
      min_x = std::min(min_x, x[c]);
      max_x = std::max(max_x, x[c]);
      min_y = std::min(min_y, y[c]);
      max_y = std::max(max_y, y[c]);
    }
    hpwl += (max_x - min_x) + (max_y - min_y);
  }
  return hpwl;
}

Placement place_quadratic(const Netlist& nl, std::span<const double> fixed_x,
                          std::span<const double> fixed_y,
                          const PlacerConfig& cfg) {
  if (cfg.die.width <= 0.0 || cfg.die.height <= 0.0) {
    throw std::invalid_argument("die must have positive dimensions");
  }
  GTL_REQUIRE(fixed_x.size() == nl.num_cells() &&
                  fixed_y.size() == nl.num_cells(),
              "fixed position arrays must cover all cells");

  const MovableIndex mov = index_movable(nl);
  const std::size_t n = mov.cells.size();

  Placement out;
  out.x.assign(fixed_x.begin(), fixed_x.end());
  out.y.assign(fixed_y.begin(), fixed_y.end());
  if (n == 0) {
    out.hpwl = total_hpwl(nl, out.x, out.y);
    return out;
  }

  // --- assemble the connectivity Laplacian (shared by x and y) ---
  const double cx = cfg.die.width * 0.5, cy = cfg.die.height * 0.5;
  SparseMatrix a(n);
  std::vector<double> base_bx(n, kCenterAnchor * cx);
  std::vector<double> base_by(n, kCenterAnchor * cy);
  for (std::size_t i = 0; i < n; ++i) a.add(i, i, kCenterAnchor);

  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const auto pins = nl.pins_of(e);
    if (pins.size() < 2 || pins.size() > cfg.max_clique_net) continue;
    const double w = 1.0 / static_cast<double>(pins.size() - 1);
    for (std::size_t i = 0; i < pins.size(); ++i) {
      const std::size_t mi = mov.of_cell[pins[i]];
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        const std::size_t mj = mov.of_cell[pins[j]];
        if (mi != MovableIndex::npos && mj != MovableIndex::npos) {
          a.add(mi, mi, w);
          a.add(mj, mj, w);
          a.add(mi, mj, -w);
          a.add(mj, mi, -w);
        } else if (mi != MovableIndex::npos) {  // j fixed
          a.add(mi, mi, w);
          base_bx[mi] += w * fixed_x[pins[j]];
          base_by[mi] += w * fixed_y[pins[j]];
        } else if (mj != MovableIndex::npos) {  // i fixed
          a.add(mj, mj, w);
          base_bx[mj] += w * fixed_x[pins[i]];
          base_by[mj] += w * fixed_y[pins[i]];
        }
      }
    }
  }
  a.assemble();

  // --- initial unconstrained solve ---
  std::vector<double> px(n, cx), py(n, cy);
  solve_pcg(a, base_bx, px, cfg.cg_tolerance, cfg.cg_max_iterations);
  solve_pcg(a, base_by, py, cfg.cg_tolerance, cfg.cg_max_iterations);

  // --- spreading rounds with growing anchors ---
  double anchor_w = cfg.anchor_weight;
  double applied_anchor = 0.0;
  std::vector<double> bx(n), by(n);
  for (std::size_t round = 0; round < cfg.spreading_iterations; ++round) {
    const std::vector<double> tx =
        spread_axis(nl, mov, px, py, cfg.die.width, cfg.die.height,
                    cfg.bins_y, cfg.spreading_strength, cfg.target_density);
    const std::vector<double> ty =
        spread_axis(nl, mov, py, px, cfg.die.height, cfg.die.width,
                    cfg.bins_x, cfg.spreading_strength, cfg.target_density);

    // Shift anchor weight on the diagonal to the new value.
    const double delta = anchor_w - applied_anchor;
    for (std::size_t i = 0; i < n; ++i) a.add_to_diagonal(i, delta);
    applied_anchor = anchor_w;

    for (std::size_t i = 0; i < n; ++i) {
      bx[i] = base_bx[i] + anchor_w * tx[i];
      by[i] = base_by[i] + anchor_w * ty[i];
    }
    solve_pcg(a, bx, px, cfg.cg_tolerance, cfg.cg_max_iterations);
    solve_pcg(a, by, py, cfg.cg_tolerance, cfg.cg_max_iterations);
    anchor_w *= cfg.anchor_growth;
    ++out.rounds;
  }

  // Clamp into the die.
  for (std::size_t i = 0; i < n; ++i) {
    const CellId c = mov.cells[i];
    const double hw = nl.cell_width(c) * 0.5;
    const double hh = nl.cell_height(c) * 0.5;
    px[i] = std::clamp(px[i], hw, cfg.die.width - hw);
    py[i] = std::clamp(py[i], hh, cfg.die.height - hh);
  }

  if (cfg.legalize) legalize(nl, mov, cfg.die, px, py);

  for (std::size_t i = 0; i < n; ++i) {
    out.x[mov.cells[i]] = px[i];
    out.y[mov.cells[i]] = py[i];
  }
  out.hpwl = total_hpwl(nl, out.x, out.y);
  return out;
}

}  // namespace gtl
