#include "place/soft_blocks.hpp"

#include <cmath>

#include "util/require.hpp"

namespace gtl {

Placement place_with_soft_blocks(const Netlist& nl,
                                 std::span<const double> fixed_x,
                                 std::span<const double> fixed_y,
                                 const PlacerConfig& placer_cfg,
                                 std::span<const std::vector<CellId>> groups,
                                 const SoftBlockConfig& cfg) {
  GTL_REQUIRE(fixed_x.size() == nl.num_cells() &&
                  fixed_y.size() == nl.num_cells(),
              "fixed position arrays must cover all cells");

  // Augment: copy the netlist, add one anchor cell per group plus the
  // attraction pseudo-nets.
  NetlistBuilder nb;
  nb.reserve(nl.num_cells() + groups.size(), nl.num_nets(), nl.num_pins());
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    nb.add_cell(std::string(nl.cell_name(c)), nl.cell_width(c),
                nl.cell_height(c), nl.is_fixed(c));
  }
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    nb.add_net(nl.pins_of(e), std::string(nl.net_name(e)));
  }
  for (const auto& group : groups) {
    if (group.empty()) continue;
    // Anchor: tiny movable cell (area epsilon so spreading ignores it).
    const CellId anchor = nb.add_cell({}, 1e-6, 1e-6, /*fixed=*/false);
    for (const CellId member : group) {
      GTL_REQUIRE(member < nl.num_cells(), "group member out of range");
      for (std::uint32_t k = 0; k < cfg.attraction; ++k) {
        const CellId pins[2] = {member, anchor};
        nb.add_net(pins);
      }
    }
  }
  const Netlist augmented = nb.build();

  std::vector<double> ax(fixed_x.begin(), fixed_x.end());
  std::vector<double> ay(fixed_y.begin(), fixed_y.end());
  ax.resize(augmented.num_cells(), placer_cfg.die.width * 0.5);
  ay.resize(augmented.num_cells(), placer_cfg.die.height * 0.5);

  Placement p = place_quadratic(augmented, ax, ay, placer_cfg);
  // Strip the anchors.
  p.x.resize(nl.num_cells());
  p.y.resize(nl.num_cells());
  p.hpwl = total_hpwl(nl, p.x, p.y);  // HPWL over real nets only
  return p;
}

double group_rms_spread(std::span<const CellId> cells,
                        std::span<const double> x,
                        std::span<const double> y) {
  if (cells.empty()) return 0.0;
  double mx = 0.0, my = 0.0;
  for (const CellId c : cells) {
    mx += x[c];
    my += y[c];
  }
  mx /= static_cast<double>(cells.size());
  my /= static_cast<double>(cells.size());
  double acc = 0.0;
  for (const CellId c : cells) {
    const double dx = x[c] - mx, dy = y[c] - my;
    acc += dx * dx + dy * dy;
  }
  return std::sqrt(acc / static_cast<double>(cells.size()));
}

}  // namespace gtl
