#pragma once
// Soft-block placement constraints from GTLs — the paper's floorplanning
// application (Ch. I: "the designer may wish to form a soft block for the
// gates in the GTL. Then during placement, the soft block can be
// translated into placement constraints (like attractions, forces, or
// move bounds) to drive placement to a higher quality solution").
//
// Implementation: each group gets a movable zero-area anchor cell; every
// member is tied to it by `attraction` parallel 2-pin pseudo-nets.  The
// quadratic placer then solves the augmented netlist — the anchor settles
// at the group centroid and pulls the members together.  Pseudo-cells and
// pseudo-nets are stripped from the returned placement.

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/quadratic_placer.hpp"

namespace gtl {

struct SoftBlockConfig {
  /// Number of parallel attraction pseudo-nets per member cell (each has
  /// clique weight 1, so this is the attraction strength).
  std::uint32_t attraction = 2;
};

/// Place `nl` with attraction constraints for each cell group.
/// `fixed_x`/`fixed_y` cover all real cells (fixed entries read, as in
/// place_quadratic).  Returns a placement over the real cells only.
[[nodiscard]] Placement place_with_soft_blocks(
    const Netlist& nl, std::span<const double> fixed_x,
    std::span<const double> fixed_y, const PlacerConfig& placer_cfg,
    std::span<const std::vector<CellId>> groups,
    const SoftBlockConfig& cfg = {});

/// RMS distance of `cells` from their placed centroid (spread measure
/// used to evaluate soft-block effectiveness; also handy for Fig. 4-style
/// "clotting" statistics).
[[nodiscard]] double group_rms_spread(std::span<const CellId> cells,
                                      std::span<const double> x,
                                      std::span<const double> y);

}  // namespace gtl
