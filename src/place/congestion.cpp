#include "place/congestion.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace gtl {
namespace {

struct TileRange {
  std::size_t x0, x1, y0, y1;  // inclusive tile index ranges
};

struct Bbox {
  double min_x, max_x, min_y, max_y;
  bool valid = false;
};

Bbox net_bbox(const Netlist& nl, NetId e, std::span<const double> x,
              std::span<const double> y) {
  Bbox b;
  const auto pins = nl.pins_of(e);
  if (pins.size() < 2) return b;
  b.min_x = b.max_x = x[pins[0]];
  b.min_y = b.max_y = y[pins[0]];
  for (const CellId c : pins.subspan(1)) {
    b.min_x = std::min(b.min_x, x[c]);
    b.max_x = std::max(b.max_x, x[c]);
    b.min_y = std::min(b.min_y, y[c]);
    b.max_y = std::max(b.max_y, y[c]);
  }
  b.valid = true;
  return b;
}

TileRange tiles_of(const Bbox& b, const CongestionMap& m) {
  auto clamp_tile = [](double v, double tile, std::size_t count) {
    const double t = std::floor(v / tile);
    return static_cast<std::size_t>(
        std::clamp(t, 0.0, static_cast<double>(count - 1)));
  };
  TileRange r;
  r.x0 = clamp_tile(b.min_x, m.tile_w, m.tiles_x);
  r.x1 = clamp_tile(b.max_x, m.tile_w, m.tiles_x);
  r.y0 = clamp_tile(b.min_y, m.tile_h, m.tiles_y);
  r.y1 = clamp_tile(b.max_y, m.tile_h, m.tiles_y);
  return r;
}

}  // namespace

double CongestionMap::max_utilization() const {
  double best = 0.0;
  for (const double d : demand) {
    best = std::max(best, d / capacity_per_tile);
  }
  return best;
}

CongestionMap estimate_congestion(const Netlist& nl,
                                  std::span<const double> x,
                                  std::span<const double> y, const Die& die,
                                  const CongestionConfig& cfg) {
  GTL_REQUIRE(cfg.tiles_x > 0 && cfg.tiles_y > 0, "need a non-empty grid");
  GTL_REQUIRE(x.size() == nl.num_cells() && y.size() == nl.num_cells(),
              "coordinate arrays must cover all cells");
  CongestionMap m;
  m.tiles_x = cfg.tiles_x;
  m.tiles_y = cfg.tiles_y;
  m.tile_w = die.width / static_cast<double>(cfg.tiles_x);
  m.tile_h = die.height / static_cast<double>(cfg.tiles_y);
  m.capacity_per_tile = cfg.capacity_per_area * m.tile_w * m.tile_h;
  m.demand.assign(cfg.tiles_x * cfg.tiles_y, 0.0);

  for (NetId e = 0; e < nl.num_nets(); ++e) {
    if (nl.net_size(e) > cfg.max_routed_net) continue;
    const Bbox b = net_bbox(nl, e, x, y);
    if (!b.valid) continue;
    // RUDY: demand density = HPWL / bbox area, with the bbox padded to at
    // least one tile so point-like nets still register.
    const double w = std::max(b.max_x - b.min_x, m.tile_w);
    const double h = std::max(b.max_y - b.min_y, m.tile_h);
    const double density = ((b.max_x - b.min_x) + (b.max_y - b.min_y) +
                            m.tile_w) /  // min demand: local pin access
                           (w * h);
    const TileRange r = tiles_of(b, m);
    for (std::size_t ty = r.y0; ty <= r.y1; ++ty) {
      const double oy =
          std::min(b.max_y, (ty + 1) * m.tile_h) -
          std::max(b.min_y, static_cast<double>(ty) * m.tile_h);
      const double oy_eff = std::max(oy, r.y0 == r.y1 ? m.tile_h : 0.0);
      for (std::size_t tx = r.x0; tx <= r.x1; ++tx) {
        const double ox =
            std::min(b.max_x, (tx + 1) * m.tile_w) -
            std::max(b.min_x, static_cast<double>(tx) * m.tile_w);
        const double ox_eff = std::max(ox, r.x0 == r.x1 ? m.tile_w : 0.0);
        m.demand[ty * m.tiles_x + tx] +=
            density * std::max(0.0, ox_eff) * std::max(0.0, oy_eff);
      }
    }
  }
  return m;
}

CongestionReport analyze_congestion(const CongestionMap& map,
                                    const Netlist& nl,
                                    std::span<const double> x,
                                    std::span<const double> y,
                                    const CongestionConfig& cfg) {
  CongestionReport rep;
  rep.max_tile_utilization = map.max_utilization();
  for (const double d : map.demand) {
    if (d / map.capacity_per_tile >= 1.0) ++rep.full_tiles;
  }

  std::vector<double> per_net_congestion;
  per_net_congestion.reserve(nl.num_nets());
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    if (nl.net_size(e) > cfg.max_routed_net) continue;
    const Bbox b = net_bbox(nl, e, x, y);
    if (!b.valid) continue;
    ++rep.nets_total;
    const TileRange r = tiles_of(b, map);
    double sum = 0.0;
    std::size_t count = 0;
    bool full = false, ninety = false;
    for (std::size_t ty = r.y0; ty <= r.y1; ++ty) {
      for (std::size_t tx = r.x0; tx <= r.x1; ++tx) {
        const double u = map.utilization(tx, ty);
        sum += u;
        ++count;
        if (u >= 1.0) full = true;
        if (u >= 0.9) ninety = true;
      }
    }
    if (full) ++rep.nets_through_full;
    if (ninety) ++rep.nets_through_90;
    per_net_congestion.push_back(count ? sum / static_cast<double>(count)
                                       : 0.0);
  }

  // Average congestion of the worst 20% of nets (paper's footnote metric).
  if (!per_net_congestion.empty()) {
    std::sort(per_net_congestion.begin(), per_net_congestion.end());
    const std::size_t start = per_net_congestion.size() * 4 / 5;
    std::vector<double> worst(per_net_congestion.begin() +
                                  static_cast<std::ptrdiff_t>(start),
                              per_net_congestion.end());
    rep.avg_congestion_worst20 = mean(worst);
  }
  return rep;
}

}  // namespace gtl
