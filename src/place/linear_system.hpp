#pragma once
// Sparse symmetric-positive-definite linear algebra for quadratic
// placement: triplet assembly -> CSR, and a Jacobi-preconditioned
// conjugate-gradient solver.  The placement matrices are graph Laplacians
// plus diagonal anchor terms, so SPD holds whenever at least one fixed
// connection or anchor exists per connected component.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gtl {

/// Compressed-sparse-row symmetric matrix built from (row, col, value)
/// triplets; duplicate entries are summed.  Dimensions are capped at
/// INT32_MAX so column ids fit the 32-bit gather lanes of the SIMD
/// kernel layer (util/simd.hpp).
class SparseMatrix {
 public:
  explicit SparseMatrix(std::size_t n) : n_(n) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Accumulate A[r][c] += v (call for both (r,c) and (c,r) on symmetric
  /// off-diagonals).
  void add(std::size_t r, std::size_t c, double v);

  /// Finalize into CSR; call once after all add()s.
  void assemble();

  /// y = A x  (requires assemble()).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Diagonal entries (requires assemble()).
  [[nodiscard]] const std::vector<double>& diagonal() const { return diag_; }

  /// A[i][i] += v after assembly (the diagonal entry must exist).  Used to
  /// re-weight spreading anchors between placement rounds without
  /// reassembling the matrix.
  void add_to_diagonal(std::size_t i, double v);

  [[nodiscard]] bool assembled() const { return assembled_; }

 private:
  std::size_t n_;
  struct Triplet {
    std::size_t r, c;
    double v;
  };
  std::vector<Triplet> triplets_;
  std::vector<std::size_t> row_offset_;
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
  std::vector<double> diag_;
  std::vector<std::size_t> diag_pos_;  // index into val_ per row, or npos
  bool assembled_ = false;
};

struct CgResult {
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final ||Ax-b|| / ||b||
  bool converged = false;
};

/// Solve A x = b by Jacobi-PCG, starting from the passed-in x (warm
/// start).  Stops at relative residual `tolerance` or `max_iterations`.
CgResult solve_pcg(const SparseMatrix& a, std::span<const double> b,
                   std::span<double> x, double tolerance = 1e-6,
                   std::size_t max_iterations = 500);

}  // namespace gtl
