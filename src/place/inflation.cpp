#include "place/inflation.hpp"

#include <vector>

#include "util/require.hpp"

namespace gtl {

Netlist inflate_cells(const Netlist& nl, std::span<const CellId> cells,
                      double area_factor) {
  GTL_REQUIRE(area_factor > 0.0, "area factor must be positive");
  std::vector<bool> inflate(nl.num_cells(), false);
  for (const CellId c : cells) {
    GTL_REQUIRE(c < nl.num_cells(), "cell id out of range");
    if (!nl.is_fixed(c)) inflate[c] = true;
  }

  NetlistBuilder nb;
  nb.reserve(nl.num_cells(), nl.num_nets(), nl.num_pins());
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const double width =
        inflate[c] ? nl.cell_width(c) * area_factor : nl.cell_width(c);
    nb.add_cell(std::string(nl.cell_name(c)), width, nl.cell_height(c),
                nl.is_fixed(c));
  }
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    nb.add_net(nl.pins_of(e), std::string(nl.net_name(e)));
  }
  return nb.build();
}

}  // namespace gtl
