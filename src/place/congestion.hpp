#pragma once
// Routing congestion estimation over a placed netlist — the substrate for
// the paper's Fig. 1 (hotspot map), Fig. 7 (map after cell inflation) and
// the three headline numbers of §5.1.3 (nets through 100%/90% congested
// tiles, average congestion of the worst 20% of nets).
//
// Estimator: RUDY (Rectangular Uniform wire DensitY, Spindler &
// Johannes).  Each net spreads a wire demand of HPWL(net) uniformly over
// its bounding box; tile demand is the sum of overlapping net densities;
// utilization = demand / (tile routing capacity).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/quadratic_placer.hpp"

namespace gtl {

struct CongestionConfig {
  std::size_t tiles_x = 64;
  std::size_t tiles_y = 64;
  /// Routing track supply per unit die area (demand is wirelength per
  /// area, so this is in the same units).  Calibrate so the design's
  /// background sits below 1.0.
  double capacity_per_area = 1.0;
  /// Nets with more pins than this are skipped (global nets are routed on
  /// dedicated layers and would swamp the bbox model).
  std::uint32_t max_routed_net = 64;
};

/// A tile grid of routing demand vs capacity.
struct CongestionMap {
  std::size_t tiles_x = 0, tiles_y = 0;
  double tile_w = 0.0, tile_h = 0.0;
  std::vector<double> demand;  ///< row-major [ty * tiles_x + tx]
  double capacity_per_tile = 0.0;

  [[nodiscard]] double utilization(std::size_t tx, std::size_t ty) const {
    return demand[ty * tiles_x + tx] / capacity_per_tile;
  }
  [[nodiscard]] double max_utilization() const;
};

/// Build the RUDY map for a placement.
[[nodiscard]] CongestionMap estimate_congestion(const Netlist& nl,
                                                std::span<const double> x,
                                                std::span<const double> y,
                                                const Die& die,
                                                const CongestionConfig& cfg);

/// The paper's §5.1.3 congestion statistics.
struct CongestionReport {
  std::size_t nets_total = 0;          ///< nets considered for routing
  std::size_t nets_through_full = 0;   ///< nets touching a >=100% tile
  std::size_t nets_through_90 = 0;     ///< nets touching a >=90% tile
  /// Mean utilization over all tiles touched by the worst 20% of nets
  /// (per-net congestion = mean utilization of its bbox tiles).
  double avg_congestion_worst20 = 0.0;
  double max_tile_utilization = 0.0;
  std::size_t full_tiles = 0;          ///< tiles at >=100%
};

/// Score each net against the map and aggregate the paper's metrics.
[[nodiscard]] CongestionReport analyze_congestion(const CongestionMap& map,
                                                  const Netlist& nl,
                                                  std::span<const double> x,
                                                  std::span<const double> y,
                                                  const CongestionConfig& cfg);

}  // namespace gtl
