#pragma once
// Global placement substrate (see DESIGN.md substitution table): a
// FastPlace-flavored quadratic placer.
//
//   1. Net model: clique expansion with weight 1/(|e|-1) per pin pair for
//      nets up to `max_clique_net` pins (larger nets carry no locality and
//      are skipped, as in classical QP placers).
//   2. Solve the two independent SPD systems (x and y) by Jacobi-PCG,
//      anchored by the fixed I/O pads.
//   3. Spreading: slab-wise 1D area equalization in x then y (a light
//      version of FastPlace cell shifting), followed by a re-solve with
//      pseudo-net anchors of growing weight pulling cells toward their
//      spread positions.  Iterate.
//   4. Optional Tetris legalization onto standard-cell rows.
//
// What matters for the paper's experiments is the placer's *behavioral*
// fidelity: highly connected cells end up close together (which is what
// creates GTL routing hotspots), and enlarged cells demand more area
// (which is what cell inflation exploits to dissolve those hotspots).

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace gtl {

/// Placement region: [0, width] x [0, height], standard-cell rows of
/// `row_height` stacked from y = 0.
struct Die {
  double width = 0.0;
  double height = 0.0;
  double row_height = 1.0;
};

struct PlacerConfig {
  Die die;
  /// Clique net model cutoff.
  std::uint32_t max_clique_net = 16;
  /// Spreading / re-solve rounds.
  std::size_t spreading_iterations = 10;
  /// Density grid used by the spreader.
  std::size_t bins_x = 64;
  std::size_t bins_y = 64;
  /// Blend factor toward the spread positions per round (0..1).
  double spreading_strength = 0.65;
  /// Target cell-area density after spreading: a slab region is widened
  /// only until its local density drops to this value, so clusters are
  /// relieved without being flattened across the die.
  double target_density = 0.8;
  /// Anchor pseudo-net weight (initial, multiplied by `anchor_growth`
  /// after every round).
  double anchor_weight = 0.02;
  double anchor_growth = 1.5;
  /// PCG controls.
  double cg_tolerance = 1e-6;
  std::size_t cg_max_iterations = 300;
  /// Snap to rows and remove overlaps at the end.
  bool legalize = true;
};

struct Placement {
  /// Cell center coordinates, indexed by CellId (fixed cells keep their
  /// input positions).
  std::vector<double> x, y;
  double hpwl = 0.0;  ///< total half-perimeter wirelength
  std::size_t rounds = 0;
};

/// Place `nl` on cfg.die.  `fixed_x`/`fixed_y` give positions for all
/// cells (only the entries of fixed cells are read).  Throws
/// std::invalid_argument when the die is degenerate or no anchors exist.
[[nodiscard]] Placement place_quadratic(const Netlist& nl,
                                        std::span<const double> fixed_x,
                                        std::span<const double> fixed_y,
                                        const PlacerConfig& cfg);

/// Total half-perimeter wirelength of a placement (nets of >= 2 pins).
[[nodiscard]] double total_hpwl(const Netlist& nl, std::span<const double> x,
                                std::span<const double> y);

}  // namespace gtl
