#include "place/linear_system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"
#include "util/simd.hpp"

namespace gtl {

void SparseMatrix::add(std::size_t r, std::size_t c, double v) {
  GTL_REQUIRE(!assembled_, "matrix already assembled");
  GTL_REQUIRE(r < n_ && c < n_, "index out of range");
  triplets_.push_back({r, c, v});
}

void SparseMatrix::assemble() {
  GTL_REQUIRE(!assembled_, "matrix already assembled");
  GTL_REQUIRE(n_ <= static_cast<std::size_t>(
                        std::numeric_limits<std::int32_t>::max()),
              "matrix dimension exceeds the 32-bit column-id limit");
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.r != b.r ? a.r < b.r : a.c < b.c;
            });
  row_offset_.assign(n_ + 1, 0);
  col_.clear();
  val_.clear();
  col_.reserve(triplets_.size());
  val_.reserve(triplets_.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    while (i < triplets_.size() && triplets_[i].r == r) {
      const std::size_t c = triplets_[i].c;
      double v = 0.0;
      while (i < triplets_.size() && triplets_[i].r == r &&
             triplets_[i].c == c) {
        v += triplets_[i].v;
        ++i;
      }
      // Keep structurally-present diagonals even when their terms cancel
      // to exactly zero: add_to_diagonal() re-weights anchors through
      // diag_pos_ later, and dropping the entry would turn a legitimate
      // zero-sum assembly into a hard abort there.
      if (v != 0.0 || c == r) {
        col_.push_back(static_cast<std::uint32_t>(c));
        val_.push_back(v);
      }
    }
    row_offset_[r + 1] = col_.size();
  }
  triplets_.clear();
  triplets_.shrink_to_fit();

  diag_.assign(n_, 0.0);
  diag_pos_.assign(n_, static_cast<std::size_t>(-1));
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_offset_[r]; k < row_offset_[r + 1]; ++k) {
      if (col_[k] == r) {
        diag_[r] = val_[k];
        diag_pos_[r] = k;
      }
    }
  }
  assembled_ = true;
}

void SparseMatrix::add_to_diagonal(std::size_t i, double v) {
  GTL_REQUIRE(assembled_, "assemble() first");
  GTL_REQUIRE(i < n_, "index out of range");
  GTL_REQUIRE(diag_pos_[i] != static_cast<std::size_t>(-1),
              "no diagonal entry at this row");
  val_[diag_pos_[i]] += v;
  diag_[i] += v;
}

void SparseMatrix::multiply(std::span<const double> x,
                            std::span<double> y) const {
  GTL_REQUIRE(assembled_, "assemble() first");
  GTL_REQUIRE(x.size() == n_ && y.size() == n_, "dimension mismatch");
  simd::spmv_csr(n_, row_offset_.data(), col_.data(), val_.data(), x.data(),
                 y.data());
}

CgResult solve_pcg(const SparseMatrix& a, std::span<const double> b,
                   std::span<double> x, double tolerance,
                   std::size_t max_iterations) {
  const std::size_t n = a.size();
  GTL_REQUIRE(b.size() == n && x.size() == n, "dimension mismatch");
  CgResult out;

  const double b_norm = std::sqrt(simd::dot_blocked(b.data(), b.data(), n));
  if (b_norm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    out.converged = true;
    return out;
  }

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(x, ap);
  simd::sub_elem(b.data(), ap.data(), n, r.data());

  const auto& diag = a.diagonal();
  // |diag| guard: spreading anchors can legitimately drive a diagonal
  // negative mid-iteration; preconditioning with a wrong-signed or
  // near-zero divisor must degrade to the identity, not amplify.
  simd::jacobi_precondition(n, diag.data(), r.data(), z.data());
  p.assign(z.begin(), z.end());
  double rz = simd::dot_blocked(r.data(), z.data(), n);

  for (std::size_t it = 0; it < max_iterations; ++it) {
    const double res =
        std::sqrt(simd::dot_blocked(r.data(), r.data(), n)) / b_norm;
    out.residual = res;
    out.iterations = it;
    if (res < tolerance) {
      out.converged = true;
      return out;
    }
    a.multiply(p, ap);
    const double pap = simd::dot_blocked(p.data(), ap.data(), n);
    if (pap <= 0.0) break;  // matrix not SPD on this subspace
    const double alpha = rz / pap;
    simd::axpy2(n, alpha, p.data(), ap.data(), x.data(), r.data());
    simd::jacobi_precondition(n, diag.data(), r.data(), z.data());
    const double rz_new = simd::dot_blocked(r.data(), z.data(), n);
    const double beta = rz_new / rz;
    rz = rz_new;
    simd::xpay(n, z.data(), beta, p.data());
  }
  out.residual = std::sqrt(simd::dot_blocked(r.data(), r.data(), n)) / b_norm;
  out.converged = out.residual < tolerance;
  return out;
}

}  // namespace gtl
