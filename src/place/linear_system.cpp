#include "place/linear_system.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gtl {

void SparseMatrix::add(std::size_t r, std::size_t c, double v) {
  GTL_REQUIRE(!assembled_, "matrix already assembled");
  GTL_REQUIRE(r < n_ && c < n_, "index out of range");
  triplets_.push_back({r, c, v});
}

void SparseMatrix::assemble() {
  GTL_REQUIRE(!assembled_, "matrix already assembled");
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.r != b.r ? a.r < b.r : a.c < b.c;
            });
  row_offset_.assign(n_ + 1, 0);
  col_.clear();
  val_.clear();
  col_.reserve(triplets_.size());
  val_.reserve(triplets_.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    while (i < triplets_.size() && triplets_[i].r == r) {
      const std::size_t c = triplets_[i].c;
      double v = 0.0;
      while (i < triplets_.size() && triplets_[i].r == r &&
             triplets_[i].c == c) {
        v += triplets_[i].v;
        ++i;
      }
      if (v != 0.0) {
        col_.push_back(c);
        val_.push_back(v);
      }
    }
    row_offset_[r + 1] = col_.size();
  }
  triplets_.clear();
  triplets_.shrink_to_fit();

  diag_.assign(n_, 0.0);
  diag_pos_.assign(n_, static_cast<std::size_t>(-1));
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_offset_[r]; k < row_offset_[r + 1]; ++k) {
      if (col_[k] == r) {
        diag_[r] = val_[k];
        diag_pos_[r] = k;
      }
    }
  }
  assembled_ = true;
}

void SparseMatrix::add_to_diagonal(std::size_t i, double v) {
  GTL_REQUIRE(assembled_, "assemble() first");
  GTL_REQUIRE(i < n_, "index out of range");
  GTL_REQUIRE(diag_pos_[i] != static_cast<std::size_t>(-1),
              "no diagonal entry at this row");
  val_[diag_pos_[i]] += v;
  diag_[i] += v;
}

void SparseMatrix::multiply(std::span<const double> x,
                            std::span<double> y) const {
  GTL_REQUIRE(assembled_, "assemble() first");
  GTL_REQUIRE(x.size() == n_ && y.size() == n_, "dimension mismatch");
  for (std::size_t r = 0; r < n_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offset_[r]; k < row_offset_[r + 1]; ++k) {
      s += val_[k] * x[col_[k]];
    }
    y[r] = s;
  }
}

CgResult solve_pcg(const SparseMatrix& a, std::span<const double> b,
                   std::span<double> x, double tolerance,
                   std::size_t max_iterations) {
  const std::size_t n = a.size();
  GTL_REQUIRE(b.size() == n && x.size() == n, "dimension mismatch");
  CgResult out;

  auto dot = [n](std::span<const double> u, std::span<const double> v) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += u[i] * v[i];
    return s;
  };

  const double b_norm = std::sqrt(dot(b, b));
  if (b_norm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    out.converged = true;
    return out;
  }

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  const auto& diag = a.diagonal();
  auto precondition = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = diag[i] > 1e-12 ? r[i] / diag[i] : r[i];
    }
  };

  precondition();
  p.assign(z.begin(), z.end());
  double rz = dot(r, z);

  for (std::size_t it = 0; it < max_iterations; ++it) {
    const double res = std::sqrt(dot(r, r)) / b_norm;
    out.residual = res;
    out.iterations = it;
    if (res < tolerance) {
      out.converged = true;
      return out;
    }
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // matrix not SPD on this subspace
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    precondition();
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  out.residual = std::sqrt(dot(r, r)) / b_norm;
  out.converged = out.residual < tolerance;
  return out;
}

}  // namespace gtl
