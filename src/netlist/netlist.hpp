#pragma once
// The netlist hypergraph  G = (V, E):  V is a set of cells, E a set of nets,
// each net connected to a subset of V (paper, Ch. II).  This is the single
// data structure every phase of the tangled-logic finder consumes.
//
// Storage is CSR (compressed sparse row) in both directions:
//   cell -> incident nets   and   net -> member cells (pins).
// Offsets are 32-bit (the builder rejects netlists with >= 2^32-1 pins,
// far beyond ISPD-class designs), fixed flags are a byte array, and net
// sizes are cached in their own array — the Phase-I inner loops issue one
// 32-bit load per size/fixed query instead of two 64-bit loads or a
// vector<bool> bit probe, and the whole CSR is half the bytes, so twice
// as much of the graph fits in cache.
// Pins are deduplicated per net (a hyperedge is a *set* of cells), so
// cell_degree(c) == number of distinct nets touching c, and
// num_pins() == sum over nets of net_size() == sum over cells of degree.
//
// Cells carry physical width/height and a fixed flag so the same object
// feeds both the connectivity algorithms (finder) and the placer.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gtl {

using CellId = std::uint32_t;
using NetId = std::uint32_t;

inline constexpr CellId kInvalidCell = static_cast<CellId>(-1);
inline constexpr NetId kInvalidNet = static_cast<NetId>(-1);

class NetlistBuilder;

/// Immutable netlist hypergraph. Construct via NetlistBuilder.
class Netlist {
 public:
  [[nodiscard]] std::size_t num_cells() const {
    return cell_net_offset_.size() - 1;
  }
  [[nodiscard]] std::size_t num_nets() const {
    return net_pin_offset_.size() - 1;
  }
  /// Total pin count = sum of net sizes (after per-net deduplication).
  [[nodiscard]] std::size_t num_pins() const { return net_pins_.size(); }

  /// Nets incident to a cell.
  [[nodiscard]] std::span<const NetId> nets_of(CellId c) const {
    return {cell_nets_.data() + cell_net_offset_[c],
            cell_net_offset_[c + 1] - cell_net_offset_[c]};
  }

  /// Cells on a net (the net's pins), deduplicated.
  [[nodiscard]] std::span<const CellId> pins_of(NetId e) const {
    return {net_pins_.data() + net_pin_offset_[e],
            net_pin_offset_[e + 1] - net_pin_offset_[e]};
  }

  /// |e| — number of distinct cells on net e (cached; one 32-bit load).
  [[nodiscard]] std::uint32_t net_size(NetId e) const {
    return net_size_[e];
  }

  /// Number of distinct nets incident to cell c (its pin count).
  [[nodiscard]] std::uint32_t cell_degree(CellId c) const {
    return cell_net_offset_[c + 1] - cell_net_offset_[c];
  }

  /// A(G): average pin count per cell — the normalization constant of
  /// nGTL-Score (expected value of GTL-S for an average-quality group).
  [[nodiscard]] double average_pins_per_cell() const {
    return num_cells() == 0
               ? 0.0
               : static_cast<double>(num_pins()) /
                     static_cast<double>(num_cells());
  }

  [[nodiscard]] double cell_width(CellId c) const { return cell_width_[c]; }
  [[nodiscard]] double cell_height(CellId c) const { return cell_height_[c]; }
  [[nodiscard]] double cell_area(CellId c) const {
    return cell_width_[c] * cell_height_[c];
  }
  /// Fixed cells (I/O pads, macros) do not move during placement and are
  /// never absorbed into a GTL.
  [[nodiscard]] bool is_fixed(CellId c) const { return cell_fixed_[c] != 0; }

  /// Number of movable (non-fixed) cells.
  [[nodiscard]] std::size_t num_movable() const { return num_movable_; }

  /// Cell name ("" when the netlist was built without names).
  [[nodiscard]] std::string_view cell_name(CellId c) const;
  /// Net name ("" when unnamed).
  [[nodiscard]] std::string_view net_name(NetId e) const;
  /// Lookup a cell by name; nullopt if names absent or not found.
  [[nodiscard]] std::optional<CellId> find_cell(std::string_view name) const;

  [[nodiscard]] bool has_names() const { return !cell_names_.empty(); }

  /// Approximate heap bytes held by this netlist (CSR arrays, cell
  /// attributes, names, name index).  The accounting a multi-design
  /// server needs for LRU eviction by resident size — an estimate (heap
  /// allocator overhead and unordered_map buckets are approximated), but
  /// a stable one: the same netlist always reports the same value.
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  friend class NetlistBuilder;
  /// netlist_io.cpp: raw CSR (de)serialization for the binary snapshot
  /// format — snapshot load bypasses the builder's per-net sort/dedup
  /// because a written snapshot already satisfies the invariants.
  friend struct NetlistSnapshotAccess;

  /// Recompute everything derivable from the forward CSR + cell arrays
  /// (which must already be populated): cached net sizes, the transposed
  /// cell->nets CSR, the movable count, and the name index.  Shared by
  /// NetlistBuilder::build() and the snapshot loader.
  void finalize_from_forward_csr();

  std::vector<std::uint32_t> cell_net_offset_;  // size num_cells+1
  std::vector<NetId> cell_nets_;
  std::vector<std::uint32_t> net_pin_offset_;  // size num_nets+1
  std::vector<CellId> net_pins_;
  std::vector<std::uint32_t> net_size_;  // cached |e| per net
  std::vector<double> cell_width_;
  std::vector<double> cell_height_;
  std::vector<std::uint8_t> cell_fixed_;  // byte array: no bit probing
  std::size_t num_movable_ = 0;
  std::vector<std::string> cell_names_;
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, CellId> name_to_cell_;
};

/// Incremental construction of a Netlist.
/// Usage: add all cells, then all nets, then call build() exactly once.
class NetlistBuilder {
 public:
  /// Reserve internal storage (optional, for large netlists).
  void reserve(std::size_t cells, std::size_t nets, std::size_t pins);

  /// Add a cell; returns its id (ids are dense, in insertion order).
  CellId add_cell(std::string name = {}, double width = 1.0,
                  double height = 1.0, bool fixed = false);

  /// Add a net over the given cells. Duplicate cells within the net are
  /// removed. Nets with fewer than 1 distinct pin are rejected.
  NetId add_net(std::span<const CellId> cells, std::string name = {});
  NetId add_net(std::initializer_list<CellId> cells, std::string name = {}) {
    return add_net(std::span<const CellId>(cells.begin(), cells.size()),
                   std::move(name));
  }

  [[nodiscard]] std::size_t num_cells() const { return widths_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return net_offset_.size() - 1; }

  /// Finalize. The builder is left empty afterwards.
  [[nodiscard]] Netlist build();

 private:
  std::vector<double> widths_;
  std::vector<double> heights_;
  std::vector<std::uint8_t> fixed_;
  std::vector<std::string> cell_names_;
  std::vector<std::string> net_names_;
  std::vector<std::uint32_t> net_offset_ = {0};
  std::vector<CellId> net_pins_;
  bool any_cell_named_ = false;
  bool any_net_named_ = false;
};

}  // namespace gtl
