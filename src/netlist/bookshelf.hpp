#pragma once
// Bookshelf placement format I/O (the format of the ISPD 2005/2006
// placement benchmarks the paper evaluates on: .aux / .nodes / .nets / .pl).
//
// The real benchmark files drop straight into this reader; since they are
// not redistributable, graphgen/ synthesizes circuits with matched
// statistics and this writer emits them in the same format (see DESIGN.md,
// substitution table).

#include <filesystem>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gtl {

/// A netlist plus (optional) placement coordinates, as stored on disk.
struct BookshelfDesign {
  Netlist netlist;
  /// Lower-left placement coordinates per cell; empty if no .pl file.
  std::vector<double> x;
  std::vector<double> y;
};

/// Load a design from a Bookshelf .aux file (which names the .nodes, .nets
/// and .pl files).  Throws std::runtime_error on malformed input.
[[nodiscard]] BookshelfDesign read_bookshelf(const std::filesystem::path& aux);

/// Load from explicit .nodes/.nets paths (and optional .pl).
[[nodiscard]] BookshelfDesign read_bookshelf_files(
    const std::filesystem::path& nodes, const std::filesystem::path& nets,
    const std::filesystem::path& pl = {});

/// Write `design` as <stem>.aux/.nodes/.nets/.pl in `dir`.
/// Placement files are written only when design.x/y are non-empty.
void write_bookshelf(const BookshelfDesign& design,
                     const std::filesystem::path& dir,
                     const std::string& stem);

}  // namespace gtl
