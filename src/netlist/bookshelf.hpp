#pragma once
// Bookshelf placement format I/O (the format of the ISPD 2005/2006
// placement benchmarks the paper evaluates on: .aux / .nodes / .nets / .pl).
//
// The real benchmark files drop straight into this reader; since they are
// not redistributable, graphgen/ synthesizes circuits with matched
// statistics and this writer emits them in the same format (see DESIGN.md,
// substitution table).
//
// The reader is a strictly-validating, zero-copy scanner: each file is
// read in one buffered gulp and tokenized in place (std::string_view +
// std::from_chars), so parse cost is ~memory bandwidth, not per-line
// istringstream churn.  Every malformed input is rejected with a
// "bookshelf: <file>:<line>: <what>" diagnostic — short nets, duplicate
// node names, unknown pins, count mismatches, truncated files, and
// unparsable numbers all name their exact location.  Non-fatal oddities
// (a node /FIXED in .pl but not terminal in .nodes, .pl rows for unknown
// nodes) are recorded in BookshelfDesign::warnings.
//
// For repeated loads of the same design, prefer the binary snapshot
// format in netlist_io.hpp, which reloads in ~O(read) time.

#include <filesystem>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace gtl {

/// A netlist plus (optional) placement coordinates, as stored on disk.
struct BookshelfDesign {
  Netlist netlist;
  /// Lower-left placement coordinates per cell; empty if no .pl file.
  std::vector<double> x;
  std::vector<double> y;
  /// Non-fatal parse diagnostics ("<file>:<line>: <what>"), e.g. a node
  /// marked /FIXED in .pl that .nodes did not declare terminal (the flag
  /// is merged: the cell ends up fixed either way).
  std::vector<std::string> warnings;
};

/// Load a design from a Bookshelf .aux file (which names the .nodes, .nets
/// and .pl files).  Throws std::runtime_error on malformed input.
[[nodiscard]] BookshelfDesign read_bookshelf(const std::filesystem::path& aux);

/// Load from explicit .nodes/.nets paths (and optional .pl).
[[nodiscard]] BookshelfDesign read_bookshelf_files(
    const std::filesystem::path& nodes, const std::filesystem::path& nets,
    const std::filesystem::path& pl = {});

/// Status-returning variants for services/CLIs that must reject bad input
/// without exceptions.  On error `*out` is left in an unspecified state;
/// the Status message carries the "<file>:<line>: <what>" diagnostic.
[[nodiscard]] Status try_read_bookshelf(const std::filesystem::path& aux,
                                        BookshelfDesign* out);
[[nodiscard]] Status try_read_bookshelf_files(
    const std::filesystem::path& nodes, const std::filesystem::path& nets,
    const std::filesystem::path& pl, BookshelfDesign* out);

/// Write `design` as <stem>.aux/.nodes/.nets/.pl in `dir`.
/// Placement files are written only when design.x/y are non-empty.
void write_bookshelf(const BookshelfDesign& design,
                     const std::filesystem::path& dir,
                     const std::string& stem);

}  // namespace gtl
