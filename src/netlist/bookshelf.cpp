#include "netlist/bookshelf.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace gtl {
namespace {

// ---------------------------------------------------------------------------
// Zero-copy scanning layer.
//
// Each file is slurped in one gulp and tokenized in place: tokens are
// string_views into the buffer, numbers go through std::from_chars, and
// the per-line token vector is reused, so steady-state parsing allocates
// only for the strings the Netlist itself must own (cell/net names).
// The line-of-tokens shape deliberately mirrors the seed parser's
// getline+istringstream structure so its accepted dialect is preserved
// exactly (pinned by tests/netlist/bookshelf_equivalence_test.cpp):
//   * tokens are split on whitespace;
//   * a token *starting* with '#' comments out the rest of the line
//     (but "foo#bar" is one ordinary token);
//   * lines whose first token is "UCLA" (the format header) are skipped.
// ---------------------------------------------------------------------------

constexpr bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}

/// "bookshelf: <file>:<line>: <what>" — the error-reporting contract.
Status parse_fail(const std::filesystem::path& file, std::size_t line,
                  const std::string& what) {
  return Status::parse_error("bookshelf: " + file.string() + ":" +
                             std::to_string(line) + ": " + what);
}

class Scanner {
 public:
  Scanner(const std::filesystem::path& file, std::string_view data)
      : file_(file), data_(data) {}

  /// Advance to the next line with content; false at EOF.  Tokens are
  /// valid until the next call.
  bool next_line() {
    while (pos_ < data_.size()) {
      ++lineno_;
      std::size_t eol = data_.find('\n', pos_);
      if (eol == std::string_view::npos) eol = data_.size();
      const std::string_view line = data_.substr(pos_, eol - pos_);
      pos_ = eol + 1;  // past the newline (or one past the end: loop exits)
      toks_.clear();
      std::size_t i = 0;
      while (i < line.size()) {
        while (i < line.size() && is_space(line[i])) ++i;
        if (i >= line.size() || line[i] == '#') break;
        const std::size_t start = i;
        while (i < line.size() && !is_space(line[i])) ++i;
        toks_.push_back(line.substr(start, i - start));
      }
      if (toks_.empty()) continue;
      if (toks_[0] == "UCLA") continue;  // format header
      return true;
    }
    return false;
  }

  [[nodiscard]] const std::vector<std::string_view>& tokens() const {
    return toks_;
  }
  [[nodiscard]] std::size_t lineno() const { return lineno_; }
  [[nodiscard]] const std::filesystem::path& file() const { return file_; }

  [[nodiscard]] Status fail(const std::string& what) const {
    return parse_fail(file_, lineno_, what);
  }

 private:
  const std::filesystem::path& file_;
  std::string_view data_;
  std::size_t pos_ = 0;
  std::size_t lineno_ = 0;
  std::vector<std::string_view> toks_;
};

/// A leading '+' is consumed for stod/stoull parity (std::from_chars
/// rejects it; real emitters write "+0.5" pin offsets), but "+-1" and a
/// bare "+" stay malformed, as they were for the seed parser.
std::string_view strip_plus(std::string_view t) {
  if (t.size() >= 2 && t.front() == '+' && t[1] != '-' && t[1] != '+') {
    t.remove_prefix(1);
  }
  return t;
}

/// Strict finite double: the whole token must parse (no trailing junk,
/// no inf/nan — a width of "3abc" or "inf" is malformed input, not 3).
bool parse_double_token(std::string_view t, double* out) {
  t = strip_plus(t);
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), *out);
  return ec == std::errc{} && ptr == t.data() + t.size() && std::isfinite(*out);
}

/// Strict non-negative count; whole token must parse.
bool parse_count_token(std::string_view t, std::uint64_t* out) {
  t = strip_plus(t);
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), *out);
  return ec == std::errc{} && ptr == t.data() + t.size();
}

Status expect_double(const Scanner& s, std::string_view t, double* out) {
  if (!parse_double_token(t, out)) {
    return s.fail("expected number, got '" + std::string(t) + "'");
  }
  return Status::ok();
}

Status expect_count(const Scanner& s, std::string_view t,
                    std::uint64_t* out) {
  if (!parse_count_token(t, out)) {
    return s.fail("expected count, got '" + std::string(t) + "'");
  }
  return Status::ok();
}

/// Parse a "NumFoo : <count>" declaration line (the ':' is optional, as
/// in the seed parser which took the line's last token).
Status parse_decl_count(const Scanner& s, std::uint64_t* out) {
  const auto& toks = s.tokens();
  std::size_t vi = 1;
  if (vi < toks.size() && toks[vi] == ":") ++vi;
  if (vi + 1 != toks.size()) {
    return s.fail("malformed '" + std::string(toks[0]) +
                  "' declaration (expected '" + std::string(toks[0]) +
                  " : <count>')");
  }
  return expect_count(s, toks[vi], out);
}

struct NodesData {
  std::vector<std::string> names;
  std::vector<double> widths, heights;
  std::vector<std::uint8_t> fixed;  // byte flags, matching NetlistBuilder
  /// Keys view into the .nodes file buffer (kept alive by the caller), so
  /// .nets/.pl lookups hash raw token views — no per-lookup string.
  std::unordered_map<std::string_view, CellId> index;
};

Status parse_nodes(const std::filesystem::path& path, std::string_view buf,
                   NodesData* d) {
  Scanner s(path, buf);
  std::uint64_t declared_nodes = 0, declared_terminals = 0;
  std::size_t declared_nodes_line = 0, declared_terminals_line = 0;
  std::size_t terminals = 0;
  while (s.next_line()) {
    const auto& toks = s.tokens();
    if (toks[0] == "NumNodes") {
      GTL_RETURN_IF_ERROR(parse_decl_count(s, &declared_nodes));
      declared_nodes_line = s.lineno();
      if (declared_nodes >= kInvalidCell) {
        return s.fail("NumNodes " + std::to_string(declared_nodes) +
                      " exceeds the 32-bit cell-id limit");
      }
      // Cap the reservation by what the file could possibly hold (a node
      // line is >= 6 bytes), so a lying count cannot force a huge
      // allocation before the mismatch check fires.
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(declared_nodes, buf.size() / 6 + 1));
      d->names.reserve(n);
      d->widths.reserve(n);
      d->heights.reserve(n);
      d->fixed.reserve(n);
      d->index.reserve(n);
      continue;
    }
    if (toks[0] == "NumTerminals") {
      GTL_RETURN_IF_ERROR(parse_decl_count(s, &declared_terminals));
      declared_terminals_line = s.lineno();
      continue;
    }
    // "<name> <width> <height> [terminal|terminal_NI]" — terminal_NI is
    // the ISPD-2006 fixed-but-overlappable flavor; both mark the cell
    // fixed (matching the /FIXED_NI handling in .pl).
    if (toks.size() < 3) return s.fail("node line needs name w h");
    if (toks.size() > 4) {
      return s.fail("unexpected token '" + std::string(toks[4]) +
                    "' after node");
    }
    if (toks.size() == 4 && toks[3] != "terminal" &&
        toks[3] != "terminal_NI") {
      return s.fail("unexpected token '" + std::string(toks[3]) +
                    "' after node (only 'terminal'/'terminal_NI' is "
                    "allowed)");
    }
    if (d->names.size() >= kInvalidCell - 1) {
      return s.fail("too many nodes (32-bit cell-id overflow)");
    }
    const auto id = static_cast<CellId>(d->names.size());
    if (!d->index.emplace(toks[0], id).second) {
      return s.fail("duplicate node name '" + std::string(toks[0]) + "'");
    }
    double w = 0.0, h = 0.0;
    GTL_RETURN_IF_ERROR(expect_double(s, toks[1], &w));
    GTL_RETURN_IF_ERROR(expect_double(s, toks[2], &h));
    const bool terminal = toks.size() == 4;
    d->names.emplace_back(toks[0]);
    // Zero-sized pads appear in real benchmarks; clamp like the seed
    // parser did so the Netlist's positive-area invariant holds.
    d->widths.push_back(std::max(1e-9, w));
    d->heights.push_back(std::max(1e-9, h));
    d->fixed.push_back(terminal ? 1 : 0);
    if (terminal) ++terminals;
  }
  if (declared_nodes_line != 0 && declared_nodes != d->names.size()) {
    return parse_fail(path, declared_nodes_line,
                      "NumNodes declares " + std::to_string(declared_nodes) +
                          " nodes but the file defines " +
                          std::to_string(d->names.size()));
  }
  if (declared_terminals_line != 0 && declared_terminals != terminals) {
    return parse_fail(
        path, declared_terminals_line,
        "NumTerminals declares " + std::to_string(declared_terminals) +
            " terminals but the file defines " + std::to_string(terminals));
  }
  return Status::ok();
}

Status parse_nets(const std::filesystem::path& path, std::string_view buf,
                  const NodesData& nodes, NetlistBuilder* nb) {
  Scanner s(path, buf);
  std::uint64_t declared_nets = 0, declared_pins = 0;
  std::size_t declared_nets_line = 0, declared_pins_line = 0;
  std::vector<CellId> pins;
  bool net_open = false;
  std::uint64_t degree = 0;       // declared NetDegree of the open net
  std::string_view net_name;      // view into buf; empty if unnamed
  std::size_t net_line = 0;       // line of the open net's declaration
  std::size_t nets_done = 0, pins_seen = 0;

  auto net_label = [&] {
    if (net_name.empty()) return numbered_name("#", nets_done);
    std::string label = "'";
    label += net_name;
    label += '\'';
    return label;
  };
  // A net is complete only when it has exactly its declared pin count;
  // the seed parser silently flushed short nets on the next NetDegree/EOF.
  auto close_net = [&]() -> Status {
    if (!net_open) return Status::ok();
    if (pins.size() != degree) {
      return parse_fail(path, net_line,
                        "net " + net_label() + ": NetDegree declares " +
                            std::to_string(degree) + " pins but " +
                            std::to_string(pins.size()) + " follow");
    }
    nb->add_net(pins, std::string(net_name));
    ++nets_done;
    pins.clear();
    net_open = false;
    return Status::ok();
  };

  while (s.next_line()) {
    const auto& toks = s.tokens();
    if (toks[0] == "NumNets") {
      GTL_RETURN_IF_ERROR(parse_decl_count(s, &declared_nets));
      declared_nets_line = s.lineno();
      // Reserve builder storage up front (file-size capped like the
      // NumNodes reservation; a NetDegree line is >= 12 bytes) so the
      // pin array does not grow by geometric realloc on the hot path.
      nb->reserve(0, static_cast<std::size_t>(std::min<std::uint64_t>(
                         declared_nets, buf.size() / 12 + 1)),
                  0);
      continue;
    }
    if (toks[0] == "NumPins") {
      GTL_RETURN_IF_ERROR(parse_decl_count(s, &declared_pins));
      declared_pins_line = s.lineno();
      nb->reserve(0, 0, static_cast<std::size_t>(std::min<std::uint64_t>(
                            declared_pins, buf.size() / 2 + 1)));
      continue;
    }
    if (toks[0] == "NetDegree") {
      GTL_RETURN_IF_ERROR(close_net());
      // "NetDegree : <d> [name]"
      if (toks.size() < 3 || toks[1] != ":" || toks.size() > 4) {
        return s.fail("malformed NetDegree (expected 'NetDegree : <d> "
                      "[name]')");
      }
      GTL_RETURN_IF_ERROR(expect_count(s, toks[2], &degree));
      if (degree == 0) {
        return s.fail("NetDegree declares an empty net");
      }
      net_name = toks.size() == 4 ? toks[3] : std::string_view{};
      net_open = true;
      net_line = s.lineno();
      // Same lying-count guard as NumNodes: a pin line is >= 2 bytes.
      pins.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(degree, buf.size() / 2 + 1)));
      continue;
    }
    // Pin line: "<cellname> [<I|O|B> [: x y]]"
    if (!net_open) return s.fail("pin line outside a net");
    if (pins.size() == degree) {
      return parse_fail(path, s.lineno(),
                        "net " + net_label() + ": pin '" +
                            std::string(toks[0]) +
                            "' exceeds the declared NetDegree " +
                            std::to_string(degree));
    }
    if (toks.size() > 2) {
      // Optional pin offset, as in the real benchmarks: ": <x> <y>".
      double off = 0.0;
      if (toks.size() != 5 || toks[2] != ":") {
        return s.fail("malformed pin line (expected '<cell> <dir> "
                      "[: x y]')");
      }
      GTL_RETURN_IF_ERROR(expect_double(s, toks[3], &off));
      GTL_RETURN_IF_ERROR(expect_double(s, toks[4], &off));
    }
    const auto it = nodes.index.find(toks[0]);
    if (it == nodes.index.end()) {
      return s.fail("pin references unknown node '" + std::string(toks[0]) +
                    "'");
    }
    pins.push_back(it->second);
    ++pins_seen;
  }
  GTL_RETURN_IF_ERROR(close_net());
  if (declared_nets_line != 0 && declared_nets != nets_done) {
    return parse_fail(path, declared_nets_line,
                      "NumNets declares " + std::to_string(declared_nets) +
                          " nets but the file defines " +
                          std::to_string(nets_done));
  }
  if (declared_pins_line != 0 && declared_pins != pins_seen) {
    return parse_fail(path, declared_pins_line,
                      "NumPins declares " + std::to_string(declared_pins) +
                          " pins but the file defines " +
                          std::to_string(pins_seen));
  }
  return Status::ok();
}

/// Parse .pl rows "<name> <x> <y> [: <orient> [/FIXED]]" into x/y and
/// merge /FIXED into the fixed flags (the satellite bug: the seed parser
/// dropped the suffix, so placement-fixed cells lost their fixed status
/// unless .nodes also said terminal).  A .nodes/.pl disagreement and rows
/// naming unknown nodes are surfaced as warnings, not errors.
Status parse_pl(const std::filesystem::path& path, std::string_view buf,
                NodesData* nodes, std::vector<double>* x,
                std::vector<double>* y,
                std::vector<std::string>* warnings) {
  Scanner s(path, buf);
  x->assign(nodes->names.size(), 0.0);
  y->assign(nodes->names.size(), 0.0);
  // A .pl that belongs to a different design would otherwise emit one
  // warning per row; keep the first few and summarize the rest so a
  // 2M-row mismatch stays a diagnostic, not a memory balloon.
  constexpr std::size_t kMaxWarnings = 20;
  std::size_t suppressed = 0;
  auto warn = [&](std::string msg) {
    if (warnings->size() < kMaxWarnings) {
      warnings->push_back(std::move(msg));
    } else {
      ++suppressed;
    }
  };
  while (s.next_line()) {
    const auto& toks = s.tokens();
    if (toks.size() < 3) return s.fail("pl line needs name x y");
    // Unknown names first, before any strict validation: the seed parser
    // tolerated arbitrary extra rows (placer banners, rows for another
    // design), so they stay a warning, never a hard failure.
    const auto it = nodes->index.find(toks[0]);
    if (it == nodes->index.end()) {
      warn(path.string() + ":" + std::to_string(s.lineno()) +
           ": row for unknown node '" + std::string(toks[0]) + "' ignored");
      continue;
    }
    bool fixed = false;
    if (toks.size() > 3) {
      // ": [<orient>] [/FIXED]" — the fixedness suffix counts even when
      // the orientation is omitted ("x y : /FIXED"), so it can never be
      // silently consumed as an orientation.
      auto is_fixed_tok = [](std::string_view t) {
        return t == "/FIXED" || t == "/FIXED_NI";
      };
      const std::string_view last = toks.back();
      const bool has_flag = is_fixed_tok(last);
      const std::size_t body = toks.size() - (has_flag ? 1 : 0);
      // After "name x y :" at most one orientation token may remain.
      if (toks[3] != ":" || body > 5 ||
          (body == 5 && is_fixed_tok(toks[4]))) {
        return s.fail("malformed pl line (expected '<name> <x> <y> "
                      "[: <orient> [/FIXED]]')");
      }
      fixed = has_flag;
    }
    double px = 0.0, py = 0.0;
    GTL_RETURN_IF_ERROR(expect_double(s, toks[1], &px));
    GTL_RETURN_IF_ERROR(expect_double(s, toks[2], &py));
    (*x)[it->second] = px;
    (*y)[it->second] = py;
    if (fixed && nodes->fixed[it->second] == 0) {
      warn(path.string() + ":" + std::to_string(s.lineno()) + ": node '" +
           std::string(toks[0]) +
           "' is /FIXED in .pl but not terminal in .nodes; "
           "treating it as fixed");
      nodes->fixed[it->second] = 1;
    }
  }
  if (suppressed != 0) {
    warnings->push_back(path.string() + ": " + std::to_string(suppressed) +
                        " more warning(s) suppressed");
  }
  return Status::ok();
}

Status slurp(const std::filesystem::path& path, std::string* out) {
  const Status st = read_file_to_string(path, out);
  if (!st.is_ok()) {
    // Keep the open-vs-mid-read distinction the reader encodes.
    if (st.code() == StatusCode::kNotFound) {
      return Status::parse_error("bookshelf: cannot open " + path.string());
    }
    return Status::parse_error("bookshelf: " + st.message());
  }
  return Status::ok();
}

}  // namespace

Status try_read_bookshelf_files(const std::filesystem::path& nodes_path,
                                const std::filesystem::path& nets_path,
                                const std::filesystem::path& pl_path,
                                BookshelfDesign* out) {
  out->x.clear();
  out->y.clear();
  out->warnings.clear();

  // The .nodes buffer stays alive while .nets/.pl parse: the name index
  // keys view into it.
  std::string nodes_buf;
  GTL_RETURN_IF_ERROR(slurp(nodes_path, &nodes_buf));
  NodesData nodes;
  GTL_RETURN_IF_ERROR(parse_nodes(nodes_path, nodes_buf, &nodes));

  // .pl before the builder runs so /FIXED flags merge into the cells.
  if (!pl_path.empty() && std::filesystem::exists(pl_path)) {
    std::string pl_buf;
    GTL_RETURN_IF_ERROR(slurp(pl_path, &pl_buf));
    GTL_RETURN_IF_ERROR(
        parse_pl(pl_path, pl_buf, &nodes, &out->x, &out->y, &out->warnings));
  }

  NetlistBuilder nb;
  nb.reserve(nodes.names.size(), 0, 0);
  for (std::size_t i = 0; i < nodes.names.size(); ++i) {
    // Names move into the builder: the lookup index keys view into the
    // file buffer, not into these strings.
    nb.add_cell(std::move(nodes.names[i]), nodes.widths[i], nodes.heights[i],
                nodes.fixed[i] != 0);
  }
  {
    std::string nets_buf;
    GTL_RETURN_IF_ERROR(slurp(nets_path, &nets_buf));
    GTL_RETURN_IF_ERROR(parse_nets(nets_path, nets_buf, nodes, &nb));
  }
  out->netlist = nb.build();
  return Status::ok();
}

Status try_read_bookshelf(const std::filesystem::path& aux,
                          BookshelfDesign* out) {
  std::string buf;
  GTL_RETURN_IF_ERROR(slurp(aux, &buf));
  Scanner s(aux, buf);
  std::filesystem::path nodes, nets, pl;
  const auto dir = aux.parent_path();
  while (s.next_line()) {
    for (const std::string_view t : s.tokens()) {
      if (t.size() > 6 && t.substr(t.size() - 6) == ".nodes") nodes = dir / t;
      if (t.size() > 5 && t.substr(t.size() - 5) == ".nets") nets = dir / t;
      if (t.size() > 3 && t.substr(t.size() - 3) == ".pl") pl = dir / t;
    }
  }
  if (nodes.empty() || nets.empty()) {
    return Status::parse_error("bookshelf: " + aux.string() +
                               ": aux file does not name .nodes and .nets");
  }
  return try_read_bookshelf_files(nodes, nets, pl, out);
}

BookshelfDesign read_bookshelf_files(const std::filesystem::path& nodes_path,
                                     const std::filesystem::path& nets_path,
                                     const std::filesystem::path& pl_path) {
  BookshelfDesign d;
  if (const Status st =
          try_read_bookshelf_files(nodes_path, nets_path, pl_path, &d);
      !st.is_ok()) {
    throw std::runtime_error(st.message());
  }
  return d;
}

BookshelfDesign read_bookshelf(const std::filesystem::path& aux) {
  BookshelfDesign d;
  if (const Status st = try_read_bookshelf(aux, &d); !st.is_ok()) {
    throw std::runtime_error(st.message());
  }
  return d;
}

void write_bookshelf(const BookshelfDesign& design,
                     const std::filesystem::path& dir,
                     const std::string& stem) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const Netlist& nl = design.netlist;

  auto open = [&](const std::string& ext) {
    std::ofstream out(dir / (stem + ext));
    if (!out) {
      throw std::runtime_error("bookshelf: cannot write " +
                               (dir / (stem + ext)).string());
    }
    return out;
  };
  auto node_name = [&](CellId c) {
    if (nl.has_names() && !nl.cell_name(c).empty()) {
      return std::string(nl.cell_name(c));
    }
    return numbered_name("o", c);
  };

  {
    auto out = open(".aux");
    out << "RowBasedPlacement : " << stem << ".nodes " << stem << ".nets "
        << stem << ".pl\n";
  }
  {
    auto out = open(".nodes");
    std::size_t terminals = 0;
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      if (nl.is_fixed(c)) ++terminals;
    }
    out << "UCLA nodes 1.0\n";
    out << "NumNodes : " << nl.num_cells() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      out << node_name(c) << ' ' << nl.cell_width(c) << ' '
          << nl.cell_height(c);
      if (nl.is_fixed(c)) out << " terminal";
      out << '\n';
    }
  }
  {
    auto out = open(".nets");
    out << "UCLA nets 1.0\n";
    out << "NumNets : " << nl.num_nets() << "\n";
    out << "NumPins : " << nl.num_pins() << "\n";
    for (NetId e = 0; e < nl.num_nets(); ++e) {
      out << "NetDegree : " << nl.net_size(e);
      if (!nl.net_name(e).empty()) out << ' ' << nl.net_name(e);
      out << '\n';
      for (const CellId c : nl.pins_of(e)) {
        out << '\t' << node_name(c) << " B\n";
      }
    }
  }
  if (!design.x.empty()) {
    auto out = open(".pl");
    out << "UCLA pl 1.0\n";
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      out << node_name(c) << ' ' << design.x[c] << ' ' << design.y[c]
          << " : N";
      if (nl.is_fixed(c)) out << " /FIXED";
      out << '\n';
    }
  }
}

}  // namespace gtl
