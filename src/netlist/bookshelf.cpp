#include "netlist/bookshelf.hpp"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.hpp"

namespace gtl {
namespace {

[[noreturn]] void fail(const std::filesystem::path& file, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error("bookshelf: " + file.string() + ":" +
                           std::to_string(line) + ": " + what);
}

/// Split a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;
    toks.push_back(std::move(t));
  }
  return toks;
}

/// Reads lines, skipping blanks/comments and the "UCLA ..." header line.
class LineReader {
 public:
  explicit LineReader(const std::filesystem::path& path)
      : path_(path), in_(path) {
    if (!in_) throw std::runtime_error("bookshelf: cannot open " + path.string());
  }

  /// Next non-empty token list, or empty when EOF.
  std::vector<std::string> next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++lineno_;
      auto toks = tokenize(line);
      if (toks.empty()) continue;
      if (toks[0] == "UCLA") continue;  // format header
      return toks;
    }
    return {};
  }

  [[nodiscard]] std::size_t lineno() const { return lineno_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::ifstream in_;
  std::size_t lineno_ = 0;
};

double to_double(const LineReader& r, const std::string& s) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    fail(r.path(), r.lineno(), "expected number, got '" + s + "'");
  }
}

std::size_t to_size(const LineReader& r, const std::string& s) {
  try {
    return static_cast<std::size_t>(std::stoull(s));
  } catch (const std::exception&) {
    fail(r.path(), r.lineno(), "expected count, got '" + s + "'");
  }
}

struct NodesData {
  std::vector<std::string> names;
  std::vector<double> widths, heights;
  std::vector<std::uint8_t> fixed;  // byte flags, matching NetlistBuilder
  std::unordered_map<std::string, CellId> index;
};

NodesData read_nodes(const std::filesystem::path& path) {
  LineReader r(path);
  NodesData d;
  std::size_t expected = 0;
  for (auto toks = r.next(); !toks.empty(); toks = r.next()) {
    if (toks[0] == "NumNodes") {
      expected = to_size(r, toks.back());
      d.names.reserve(expected);
      d.widths.reserve(expected);
      d.heights.reserve(expected);
      d.fixed.reserve(expected);
      continue;
    }
    if (toks[0] == "NumTerminals") continue;
    // "<name> <width> <height> [terminal]"
    if (toks.size() < 3) fail(path, r.lineno(), "node line needs name w h");
    const bool terminal = toks.size() >= 4 && toks[3] == "terminal";
    d.index.emplace(toks[0], static_cast<CellId>(d.names.size()));
    d.names.push_back(toks[0]);
    d.widths.push_back(std::max(1e-9, to_double(r, toks[1])));
    d.heights.push_back(std::max(1e-9, to_double(r, toks[2])));
    d.fixed.push_back(terminal ? 1 : 0);
  }
  if (expected != 0 && d.names.size() != expected) {
    throw std::runtime_error("bookshelf: " + path.string() + ": NumNodes=" +
                             std::to_string(expected) + " but parsed " +
                             std::to_string(d.names.size()));
  }
  return d;
}

void read_nets(const std::filesystem::path& path, const NodesData& nodes,
               NetlistBuilder& nb) {
  LineReader r(path);
  std::size_t expected_nets = 0;
  std::vector<CellId> pins;
  std::size_t degree_left = 0;
  std::string net_name;
  std::size_t nets_done = 0;

  auto flush_net = [&] {
    if (!pins.empty()) {
      nb.add_net(pins, net_name);
      ++nets_done;
      pins.clear();
    }
  };

  for (auto toks = r.next(); !toks.empty(); toks = r.next()) {
    if (toks[0] == "NumNets") {
      expected_nets = to_size(r, toks.back());
      continue;
    }
    if (toks[0] == "NumPins") continue;
    if (toks[0] == "NetDegree") {
      flush_net();
      // "NetDegree : <d> [name]"
      if (toks.size() < 3) fail(path, r.lineno(), "malformed NetDegree");
      degree_left = to_size(r, toks[2]);
      net_name = toks.size() >= 4 ? toks[3] : std::string{};
      pins.reserve(degree_left);
      continue;
    }
    // Pin line: "<cellname> <I|O|B> [: x y]"
    if (degree_left == 0) fail(path, r.lineno(), "pin outside a net");
    const auto it = nodes.index.find(toks[0]);
    if (it == nodes.index.end()) {
      fail(path, r.lineno(), "pin references unknown node '" + toks[0] + "'");
    }
    pins.push_back(it->second);
    --degree_left;
  }
  flush_net();
  if (expected_nets != 0 && nets_done != expected_nets) {
    throw std::runtime_error("bookshelf: " + path.string() + ": NumNets=" +
                             std::to_string(expected_nets) + " but parsed " +
                             std::to_string(nets_done));
  }
}

void read_pl(const std::filesystem::path& path, const NodesData& nodes,
             std::vector<double>& x, std::vector<double>& y) {
  LineReader r(path);
  x.assign(nodes.names.size(), 0.0);
  y.assign(nodes.names.size(), 0.0);
  for (auto toks = r.next(); !toks.empty(); toks = r.next()) {
    // "<name> <x> <y> : <orient> [/FIXED]"
    if (toks.size() < 3) fail(path, r.lineno(), "pl line needs name x y");
    const auto it = nodes.index.find(toks[0]);
    if (it == nodes.index.end()) continue;  // tolerate extra rows
    x[it->second] = to_double(r, toks[1]);
    y[it->second] = to_double(r, toks[2]);
  }
}

}  // namespace

BookshelfDesign read_bookshelf_files(const std::filesystem::path& nodes_path,
                                     const std::filesystem::path& nets_path,
                                     const std::filesystem::path& pl_path) {
  const NodesData nodes = read_nodes(nodes_path);
  NetlistBuilder nb;
  for (std::size_t i = 0; i < nodes.names.size(); ++i) {
    nb.add_cell(nodes.names[i], nodes.widths[i], nodes.heights[i],
                nodes.fixed[i]);
  }
  read_nets(nets_path, nodes, nb);

  BookshelfDesign d;
  if (!pl_path.empty() && std::filesystem::exists(pl_path)) {
    read_pl(pl_path, nodes, d.x, d.y);
  }
  d.netlist = nb.build();
  return d;
}

BookshelfDesign read_bookshelf(const std::filesystem::path& aux) {
  LineReader r(aux);
  std::filesystem::path nodes, nets, pl;
  const auto dir = aux.parent_path();
  for (auto toks = r.next(); !toks.empty(); toks = r.next()) {
    for (const auto& t : toks) {
      std::filesystem::path p = dir / t;
      if (t.size() > 6 && t.substr(t.size() - 6) == ".nodes") nodes = p;
      if (t.size() > 5 && t.substr(t.size() - 5) == ".nets") nets = p;
      if (t.size() > 3 && t.substr(t.size() - 3) == ".pl") pl = p;
    }
  }
  if (nodes.empty() || nets.empty()) {
    throw std::runtime_error("bookshelf: " + aux.string() +
                             ": aux file does not name .nodes and .nets");
  }
  return read_bookshelf_files(nodes, nets, pl);
}

void write_bookshelf(const BookshelfDesign& design,
                     const std::filesystem::path& dir,
                     const std::string& stem) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const Netlist& nl = design.netlist;

  auto open = [&](const std::string& ext) {
    std::ofstream out(dir / (stem + ext));
    if (!out) {
      throw std::runtime_error("bookshelf: cannot write " +
                               (dir / (stem + ext)).string());
    }
    return out;
  };
  auto node_name = [&](CellId c) {
    if (nl.has_names() && !nl.cell_name(c).empty()) {
      return std::string(nl.cell_name(c));
    }
    return numbered_name("o", c);
  };

  {
    auto out = open(".aux");
    out << "RowBasedPlacement : " << stem << ".nodes " << stem << ".nets "
        << stem << ".pl\n";
  }
  {
    auto out = open(".nodes");
    std::size_t terminals = 0;
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      if (nl.is_fixed(c)) ++terminals;
    }
    out << "UCLA nodes 1.0\n";
    out << "NumNodes : " << nl.num_cells() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      out << node_name(c) << ' ' << nl.cell_width(c) << ' '
          << nl.cell_height(c);
      if (nl.is_fixed(c)) out << " terminal";
      out << '\n';
    }
  }
  {
    auto out = open(".nets");
    out << "UCLA nets 1.0\n";
    out << "NumNets : " << nl.num_nets() << "\n";
    out << "NumPins : " << nl.num_pins() << "\n";
    for (NetId e = 0; e < nl.num_nets(); ++e) {
      out << "NetDegree : " << nl.net_size(e);
      if (!nl.net_name(e).empty()) out << ' ' << nl.net_name(e);
      out << '\n';
      for (const CellId c : nl.pins_of(e)) {
        out << '\t' << node_name(c) << " B\n";
      }
    }
  }
  if (!design.x.empty()) {
    auto out = open(".pl");
    out << "UCLA pl 1.0\n";
    for (CellId c = 0; c < nl.num_cells(); ++c) {
      out << node_name(c) << ' ' << design.x[c] << ' ' << design.y[c]
          << " : N";
      if (nl.is_fixed(c)) out << " /FIXED";
      out << '\n';
    }
  }
}

}  // namespace gtl
