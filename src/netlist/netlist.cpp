#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace gtl {

std::string_view Netlist::cell_name(CellId c) const {
  if (cell_names_.empty()) return {};
  return cell_names_[c];
}

std::string_view Netlist::net_name(NetId e) const {
  if (net_names_.empty()) return {};
  return net_names_[e];
}

std::optional<CellId> Netlist::find_cell(std::string_view name) const {
  const auto it = name_to_cell_.find(std::string(name));
  if (it == name_to_cell_.end()) return std::nullopt;
  return it->second;
}

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

std::size_t names_bytes(const std::vector<std::string>& names) {
  std::size_t total = names.capacity() * sizeof(std::string);
  for (const std::string& s : names) {
    // Strings short enough for SSO occupy no extra heap.
    if (s.capacity() >= sizeof(std::string)) total += s.capacity() + 1;
  }
  return total;
}

}  // namespace

std::size_t Netlist::resident_bytes() const {
  std::size_t total = sizeof(Netlist);
  total += vec_bytes(cell_net_offset_) + vec_bytes(cell_nets_);
  total += vec_bytes(net_pin_offset_) + vec_bytes(net_pins_);
  total += vec_bytes(net_size_);
  total += vec_bytes(cell_width_) + vec_bytes(cell_height_);
  total += vec_bytes(cell_fixed_);
  total += names_bytes(cell_names_) + names_bytes(net_names_);
  // Name index: one node (key copy + value + bucket pointer) per entry,
  // approximated as key heap + ~48 bytes of node/bucket overhead.
  for (const auto& kv : name_to_cell_) {
    total += 48 + (kv.first.capacity() >= sizeof(std::string)
                       ? kv.first.capacity()
                       : 0);
  }
  return total;
}

void NetlistBuilder::reserve(std::size_t cells, std::size_t nets,
                             std::size_t pins) {
  widths_.reserve(cells);
  heights_.reserve(cells);
  fixed_.reserve(cells);
  net_offset_.reserve(nets + 1);
  net_pins_.reserve(pins);
}

CellId NetlistBuilder::add_cell(std::string name, double width, double height,
                                bool fixed) {
  GTL_REQUIRE(width > 0.0 && height > 0.0, "cell dimensions must be positive");
  GTL_REQUIRE(widths_.size() < kInvalidCell, "too many cells (id overflow)");
  const auto id = static_cast<CellId>(widths_.size());
  widths_.push_back(width);
  heights_.push_back(height);
  fixed_.push_back(fixed ? 1 : 0);
  if (!name.empty()) any_cell_named_ = true;
  cell_names_.push_back(std::move(name));
  return id;
}

NetId NetlistBuilder::add_net(std::span<const CellId> cells,
                              std::string name) {
  GTL_REQUIRE(!cells.empty(), "net must have at least one pin");
  GTL_REQUIRE(net_offset_.size() - 1 < kInvalidNet,
              "too many nets (id overflow)");
  // 32-bit CSR offsets: the total (deduplicated) pin count must stay
  // representable.  Check against the worst case before appending.
  GTL_REQUIRE(cells.size() <=
                  static_cast<std::size_t>(kInvalidCell) - net_pins_.size(),
              "too many pins (32-bit CSR offset overflow)");
  const auto id = static_cast<NetId>(net_offset_.size() - 1);
  const std::size_t begin = net_pins_.size();
  for (const CellId c : cells) {
    GTL_REQUIRE(c < widths_.size(), "net references unknown cell");
    net_pins_.push_back(c);
  }
  // Deduplicate the pins of this net (hyperedge is a set of cells).
  const auto first = net_pins_.begin() + static_cast<std::ptrdiff_t>(begin);
  std::sort(first, net_pins_.end());
  net_pins_.erase(std::unique(first, net_pins_.end()), net_pins_.end());
  net_offset_.push_back(static_cast<std::uint32_t>(net_pins_.size()));
  if (!name.empty()) any_net_named_ = true;
  net_names_.push_back(std::move(name));
  return id;
}

void Netlist::finalize_from_forward_csr() {
  const std::size_t n_cells = cell_width_.size();
  const std::size_t n_nets = net_pin_offset_.size() - 1;

  num_movable_ = static_cast<std::size_t>(
      std::count(cell_fixed_.begin(), cell_fixed_.end(), 0));

  // Cache per-net sizes (the hottest query of Phase I).
  net_size_.resize(n_nets);
  for (std::size_t e = 0; e < n_nets; ++e) {
    net_size_[e] = net_pin_offset_[e + 1] - net_pin_offset_[e];
  }

  // Build the transposed CSR: cell -> nets, via counting sort.
  cell_net_offset_.assign(n_cells + 1, 0);
  for (const CellId c : net_pins_) ++cell_net_offset_[c + 1];
  for (std::size_t i = 1; i <= n_cells; ++i) {
    cell_net_offset_[i] += cell_net_offset_[i - 1];
  }
  cell_nets_.resize(net_pins_.size());
  std::vector<std::uint32_t> cursor(cell_net_offset_.begin(),
                                    cell_net_offset_.end() - 1);
  for (std::size_t e = 0; e < n_nets; ++e) {
    for (std::uint32_t p = net_pin_offset_[e]; p < net_pin_offset_[e + 1];
         ++p) {
      cell_nets_[cursor[net_pins_[p]]++] = static_cast<NetId>(e);
    }
  }

  name_to_cell_.clear();
  if (!cell_names_.empty()) {
    name_to_cell_.reserve(n_cells);
    for (std::size_t c = 0; c < n_cells; ++c) {
      if (!cell_names_[c].empty()) {
        name_to_cell_.emplace(cell_names_[c], static_cast<CellId>(c));
      }
    }
  }
}

Netlist NetlistBuilder::build() {
  Netlist nl;
  nl.cell_width_ = std::move(widths_);
  nl.cell_height_ = std::move(heights_);
  nl.cell_fixed_ = std::move(fixed_);
  nl.net_pin_offset_ = std::move(net_offset_);
  nl.net_pins_ = std::move(net_pins_);
  if (any_cell_named_) nl.cell_names_ = std::move(cell_names_);
  if (any_net_named_) nl.net_names_ = std::move(net_names_);
  nl.finalize_from_forward_csr();

  // Reset builder to a pristine state.
  *this = NetlistBuilder{};
  return nl;
}

}  // namespace gtl
