#include "netlist/netlist_io.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/failpoint.hpp"
#include "util/fileio.hpp"

namespace gtl {

/// Friend of Netlist: raw member access for bulk (de)serialization.  The
/// load path fills the forward CSR directly and rebuilds the derived
/// structures once, skipping the builder's per-net sort/dedup (a written
/// snapshot already satisfies those invariants; the reader re-validates
/// them before assembly).
struct NetlistSnapshotAccess {
  static const std::vector<std::uint32_t>& net_pin_offset(const Netlist& n) {
    return n.net_pin_offset_;
  }
  static const std::vector<CellId>& net_pins(const Netlist& n) {
    return n.net_pins_;
  }
  static const std::vector<double>& cell_width(const Netlist& n) {
    return n.cell_width_;
  }
  static const std::vector<double>& cell_height(const Netlist& n) {
    return n.cell_height_;
  }
  static const std::vector<std::uint8_t>& cell_fixed(const Netlist& n) {
    return n.cell_fixed_;
  }
  static const std::vector<std::string>& cell_names(const Netlist& n) {
    return n.cell_names_;
  }
  static const std::vector<std::string>& net_names(const Netlist& n) {
    return n.net_names_;
  }

  static Netlist assemble(std::vector<std::uint32_t>&& net_pin_offset,
                          std::vector<CellId>&& net_pins,
                          std::vector<double>&& widths,
                          std::vector<double>&& heights,
                          std::vector<std::uint8_t>&& fixed,
                          std::vector<std::string>&& cell_names,
                          std::vector<std::string>&& net_names) {
    Netlist nl;
    nl.net_pin_offset_ = std::move(net_pin_offset);
    nl.net_pins_ = std::move(net_pins);
    nl.cell_width_ = std::move(widths);
    nl.cell_height_ = std::move(heights);
    nl.cell_fixed_ = std::move(fixed);
    nl.cell_names_ = std::move(cell_names);
    nl.net_names_ = std::move(net_names);
    nl.finalize_from_forward_csr();
    return nl;
  }
};

namespace {

constexpr char kMagic[8] = {'G', 'T', 'L', 'S', 'N', 'A', 'P', '\0'};
constexpr std::uint32_t kByteOrder = 0x01020304u;
constexpr std::uint32_t kFlagCellNames = 1u << 0;
constexpr std::uint32_t kFlagNetNames = 1u << 1;
constexpr std::uint32_t kFlagPlacement = 1u << 2;
constexpr std::uint32_t kKnownFlags =
    kFlagCellNames | kFlagNetNames | kFlagPlacement;
constexpr std::size_t kHeaderBytes = 8 + 4 * 4 + 5 * 8;  // 64

Status fail(const std::filesystem::path& path, const std::string& what) {
  return Status::parse_error("snapshot: " + path.string() + ": " + what);
}

/// FNV-1a 64: cheap, order-sensitive, and catches the truncation and
/// bit-rot cases a size check alone cannot.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void mix(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
};

/// Buffered checksummed writer: every byte written is folded into the
/// running FNV so the trailer can seal the whole file.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(const std::filesystem::path& path)
      : out_(path, std::ios::binary) {}

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void write(const void* data, std::size_t n) {
    fnv_.mix(data, n);
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
  }
  template <typename T>
  void write_pod(const T& v) {
    write(&v, sizeof(T));
  }
  template <typename T>
  void write_array(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!v.empty()) write(v.data(), v.size() * sizeof(T));
  }
  void seal() {
    // The trailer itself is not part of its own hash.
    const std::uint64_t h = fnv_.h;
    out_.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out_.flush();
  }

  /// Poison the stream as if a write had failed (failpoint support):
  /// every later ok() check sees the failure, so the normal error path
  /// — remove the temp file, report a Status — runs unchanged.
  void poison() { out_.setstate(std::ios::badbit); }

 private:
  std::ofstream out_;
  Fnv1a fnv_;
};

/// Bounds-checked cursor over the slurped snapshot bytes.
class SnapshotReader {
 public:
  SnapshotReader(const std::filesystem::path& path, const std::string& buf)
      : path_(path), buf_(buf) {}

  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  Status read(void* out, std::size_t n) {
    if (n > remaining()) {
      return fail(path_, "truncated (need " + std::to_string(n) +
                             " bytes at offset " + std::to_string(pos_) +
                             ", have " + std::to_string(remaining()) + ")");
    }
    if (n != 0) {  // empty arrays have no storage to memcpy into
      std::memcpy(out, buf_.data() + pos_, n);
      pos_ += n;
    }
    return Status::ok();
  }
  template <typename T>
  Status read_pod(T* out) {
    return read(out, sizeof(T));
  }
  template <typename T>
  Status read_array(std::vector<T>* out, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    out->resize(count);
    return read(out->data(), count * sizeof(T));
  }
  /// Zero-copy variant: view `n` bytes in place and advance.
  Status view(std::string_view* out, std::size_t n) {
    if (n > remaining()) {
      return fail(path_, "truncated (need " + std::to_string(n) +
                             " bytes at offset " + std::to_string(pos_) +
                             ", have " + std::to_string(remaining()) + ")");
    }
    *out = std::string_view(buf_).substr(pos_, n);
    pos_ += n;
    return Status::ok();
  }

 private:
  const std::filesystem::path& path_;
  const std::string& buf_;
  std::size_t pos_ = 0;
};

Status read_names(SnapshotReader& r, const std::filesystem::path& path,
                  const char* kind, std::size_t count,
                  std::uint64_t blob_bytes, std::vector<std::string>* out) {
  std::vector<std::uint32_t> lengths;
  GTL_RETURN_IF_ERROR(r.read_array(&lengths, count));
  std::uint64_t total = 0;
  for (const std::uint32_t len : lengths) total += len;  // <= count * 2^32
  if (total != blob_bytes) {
    return fail(path, std::string(kind) + " name lengths sum to " +
                          std::to_string(total) + " but the header declares " +
                          std::to_string(blob_bytes) + " blob bytes");
  }
  // The blob is already resident in the slurped file buffer; construct
  // the strings straight out of it (no transient copy of tens of MB on
  // million-cell named designs).
  std::string_view blob;
  GTL_RETURN_IF_ERROR(r.view(&blob, static_cast<std::size_t>(blob_bytes)));
  out->clear();
  out->reserve(count);
  std::size_t at = 0;
  for (const std::uint32_t len : lengths) {
    out->emplace_back(blob.substr(at, len));
    at += len;
  }
  return Status::ok();
}

}  // namespace

Status try_write_snapshot(const BookshelfDesign& design,
                          const std::filesystem::path& path) {
  using A = NetlistSnapshotAccess;
  const Netlist& nl = design.netlist;
  const std::vector<std::uint32_t>& offsets = A::net_pin_offset(nl);

  const std::uint64_t num_cells = A::cell_width(nl).size();
  const std::uint64_t num_nets = offsets.empty() ? 0 : offsets.size() - 1;
  const std::uint64_t num_pins = A::net_pins(nl).size();

  if ((!design.x.empty() || !design.y.empty()) &&
      (design.x.size() != num_cells || design.y.size() != num_cells)) {
    return Status::invalid_argument(
        "snapshot: " + path.string() +
        ": placement arrays do not match the cell count");
  }

  std::uint32_t flags = 0;
  std::uint64_t cell_name_bytes = 0, net_name_bytes = 0;
  if (!A::cell_names(nl).empty()) {
    flags |= kFlagCellNames;
    for (const std::string& s : A::cell_names(nl)) cell_name_bytes += s.size();
  }
  if (!A::net_names(nl).empty()) {
    flags |= kFlagNetNames;
    for (const std::string& s : A::net_names(nl)) net_name_bytes += s.size();
  }
  if (!design.x.empty()) flags |= kFlagPlacement;

  // Write to a uniquely-named sibling temp file and rename into place:
  // an interrupted or failed write must never leave a partial file at
  // the cache path (a poisoned cache would shadow the valid text source
  // on every subsequent run), and two processes filling the same cache
  // concurrently must not interleave into one temp file — each writes
  // its own and the last rename wins whole.
  const auto nonce = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (reinterpret_cast<std::uintptr_t>(&design) << 16);
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(nonce);
  SnapshotWriter w(tmp);
  // Failpoint "snapshot.write.open": fail = injected open failure for
  // the temp file (read-only cache directory, exhausted fds, ...).
  if (failpoint::Action fp;
      failpoint::check("snapshot.write.open", &fp) &&
      fp.kind == failpoint::Action::Kind::kFail) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::not_found("snapshot: cannot write " + tmp.string() +
                             " (injected failpoint)");
  }
  if (!w.ok()) {
    return Status::not_found("snapshot: cannot write " + tmp.string());
  }
  w.write(kMagic, sizeof(kMagic));
  w.write_pod(kByteOrder);
  w.write_pod(kSnapshotVersion);
  w.write_pod(flags);
  w.write_pod(std::uint32_t{0});  // reserved
  w.write_pod(num_cells);
  w.write_pod(num_nets);
  w.write_pod(num_pins);
  w.write_pod(cell_name_bytes);
  w.write_pod(net_name_bytes);

  if (offsets.empty()) {
    w.write_pod(std::uint32_t{0});  // canonical empty forward CSR
  } else {
    w.write_array(offsets);
  }
  w.write_array(A::net_pins(nl));
  w.write_array(A::cell_width(nl));
  w.write_array(A::cell_height(nl));
  w.write_array(A::cell_fixed(nl));
  if ((flags & kFlagCellNames) != 0) {
    std::vector<std::uint32_t> lengths;
    lengths.reserve(A::cell_names(nl).size());
    for (const std::string& s : A::cell_names(nl)) {
      lengths.push_back(static_cast<std::uint32_t>(s.size()));
    }
    w.write_array(lengths);
    for (const std::string& s : A::cell_names(nl)) w.write(s.data(), s.size());
  }
  if ((flags & kFlagNetNames) != 0) {
    std::vector<std::uint32_t> lengths;
    lengths.reserve(A::net_names(nl).size());
    for (const std::string& s : A::net_names(nl)) {
      lengths.push_back(static_cast<std::uint32_t>(s.size()));
    }
    w.write_array(lengths);
    for (const std::string& s : A::net_names(nl)) w.write(s.data(), s.size());
  }
  if ((flags & kFlagPlacement) != 0) {
    w.write_array(design.x);
    w.write_array(design.y);
  }
  // Failpoint "snapshot.write": fail = injected mid-write error (disk
  // full); short_io = torn write, the temp file is cut to `param` bytes.
  // Both poison the writer, so the regular remove-the-temp error path
  // below runs — the cache path must never gain a partial file.
  if (failpoint::Action fp; failpoint::check("snapshot.write", &fp)) {
    if (fp.kind == failpoint::Action::Kind::kFail ||
        fp.kind == failpoint::Action::Kind::kShortIo) {
      if (fp.kind == failpoint::Action::Kind::kShortIo) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(tmp, ec);
        if (!ec && size > fp.param) {
          std::filesystem::resize_file(tmp, fp.param, ec);
        }
      }
      w.poison();
    }
  }
  w.seal();
  if (!w.ok()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::parse_error("snapshot: write failed for " + tmp.string());
  }
  // Failpoint "snapshot.rename": fail = injected rename failure (cache
  // path vanished, cross-device move, ...).  The temp file is removed.
  if (failpoint::Action fp;
      failpoint::check("snapshot.rename", &fp) &&
      fp.kind == failpoint::Action::Kind::kFail) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::parse_error("snapshot: cannot move " + tmp.string() +
                               " into place (injected failpoint)");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const std::string why = ec.message();
    std::filesystem::remove(tmp, ec);
    return Status::parse_error("snapshot: cannot move " + tmp.string() +
                               " into place: " + why);
  }
  return Status::ok();
}

Status try_read_snapshot(const std::filesystem::path& path,
                         BookshelfDesign* out) {
  std::string buf;
  if (const Status st = read_file_to_string(path, &buf); !st.is_ok()) {
    // Keep the open-vs-mid-read distinction the reader encodes.
    if (st.code() == StatusCode::kNotFound) {
      return Status::not_found("snapshot: cannot open " + path.string());
    }
    return Status::parse_error("snapshot: " + st.message());
  }
  if (buf.size() < kHeaderBytes + sizeof(std::uint64_t)) {
    return fail(path, "file too small to be a snapshot (" +
                          std::to_string(buf.size()) + " bytes)");
  }
  SnapshotReader r(path, buf);

  char magic[8];
  GTL_RETURN_IF_ERROR(r.read(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail(path, "bad magic (not a GTL netlist snapshot)");
  }
  std::uint32_t byte_order = 0, version = 0, flags = 0, reserved = 0;
  GTL_RETURN_IF_ERROR(r.read_pod(&byte_order));
  GTL_RETURN_IF_ERROR(r.read_pod(&version));
  GTL_RETURN_IF_ERROR(r.read_pod(&flags));
  GTL_RETURN_IF_ERROR(r.read_pod(&reserved));
  if (byte_order != kByteOrder) {
    return fail(path, "byte-order marker mismatch (snapshot written on a "
                      "different-endian machine)");
  }
  if (version == 0 || version > kSnapshotVersion) {
    return fail(path, "unsupported snapshot version " +
                          std::to_string(version) + " (this reader knows <= " +
                          std::to_string(kSnapshotVersion) + ")");
  }
  if ((flags & ~kKnownFlags) != 0) {
    return fail(path, "unknown flag bits " + std::to_string(flags) +
                          " (file from a newer writer?)");
  }
  std::uint64_t num_cells = 0, num_nets = 0, num_pins = 0;
  std::uint64_t cell_name_bytes = 0, net_name_bytes = 0;
  GTL_RETURN_IF_ERROR(r.read_pod(&num_cells));
  GTL_RETURN_IF_ERROR(r.read_pod(&num_nets));
  GTL_RETURN_IF_ERROR(r.read_pod(&num_pins));
  GTL_RETURN_IF_ERROR(r.read_pod(&cell_name_bytes));
  GTL_RETURN_IF_ERROR(r.read_pod(&net_name_bytes));

  // Reject id overflow before any size arithmetic: with every count
  // bounded by 2^32 the per-array byte totals below stay far from u64
  // overflow.
  if (num_cells >= kInvalidCell) {
    return fail(path, "num_cells " + std::to_string(num_cells) +
                          " exceeds the 32-bit cell-id limit");
  }
  if (num_nets >= kInvalidNet) {
    return fail(path, "num_nets " + std::to_string(num_nets) +
                          " exceeds the 32-bit net-id limit");
  }
  if (num_pins >= kInvalidCell) {
    return fail(path, "num_pins " + std::to_string(num_pins) +
                          " exceeds the 32-bit CSR offset limit");
  }
  if (cell_name_bytes > buf.size() || net_name_bytes > buf.size()) {
    return fail(path, "declared name blob exceeds the file size");
  }

  // The header pins the exact file size; a mismatch is truncation or
  // trailing garbage, caught before any array is materialized.
  std::uint64_t expected = kHeaderBytes;
  expected += (num_nets + 1) * 4;  // net_pin_offset
  expected += num_pins * 4;        // net_pins
  expected += num_cells * 8 * 2;   // widths + heights
  expected += num_cells;           // fixed flags
  if ((flags & kFlagCellNames) != 0)
    expected += num_cells * 4 + cell_name_bytes;
  if ((flags & kFlagNetNames) != 0) expected += num_nets * 4 + net_name_bytes;
  if ((flags & kFlagPlacement) != 0) expected += num_cells * 8 * 2;
  expected += 8;  // checksum trailer
  if (expected != buf.size()) {
    return fail(path, "file size " + std::to_string(buf.size()) +
                          " does not match the " + std::to_string(expected) +
                          " bytes implied by the header (truncated or "
                          "corrupted snapshot)");
  }

  std::vector<std::uint32_t> offsets;
  std::vector<CellId> pins;
  std::vector<double> widths, heights, x, y;
  std::vector<std::uint8_t> fixed;
  std::vector<std::string> cell_names, net_names;

  GTL_RETURN_IF_ERROR(
      r.read_array(&offsets, static_cast<std::size_t>(num_nets) + 1));
  GTL_RETURN_IF_ERROR(r.read_array(&pins, static_cast<std::size_t>(num_pins)));
  GTL_RETURN_IF_ERROR(
      r.read_array(&widths, static_cast<std::size_t>(num_cells)));
  GTL_RETURN_IF_ERROR(
      r.read_array(&heights, static_cast<std::size_t>(num_cells)));
  GTL_RETURN_IF_ERROR(
      r.read_array(&fixed, static_cast<std::size_t>(num_cells)));
  if ((flags & kFlagCellNames) != 0) {
    GTL_RETURN_IF_ERROR(read_names(r, path, "cell",
                                   static_cast<std::size_t>(num_cells),
                                   cell_name_bytes, &cell_names));
  }
  if ((flags & kFlagNetNames) != 0) {
    GTL_RETURN_IF_ERROR(read_names(r, path, "net",
                                   static_cast<std::size_t>(num_nets),
                                   net_name_bytes, &net_names));
  }
  if ((flags & kFlagPlacement) != 0) {
    GTL_RETURN_IF_ERROR(r.read_array(&x, static_cast<std::size_t>(num_cells)));
    GTL_RETURN_IF_ERROR(r.read_array(&y, static_cast<std::size_t>(num_cells)));
  }

  // Seal check: everything before the trailer must hash to the trailer.
  Fnv1a fnv;
  fnv.mix(buf.data(), r.pos());
  std::uint64_t stored = 0;
  GTL_RETURN_IF_ERROR(r.read_pod(&stored));
  if (fnv.h != stored) {
    return fail(path, "checksum mismatch (corrupted snapshot)");
  }

  // Structural validation: the loaded arrays must satisfy every Netlist
  // invariant the builder would have enforced.
  if (offsets[0] != 0) return fail(path, "net_pin_offset[0] != 0");
  for (std::size_t e = 0; e < num_nets; ++e) {
    if (offsets[e + 1] < offsets[e]) {
      return fail(path, "net_pin_offset not monotonic at net " +
                            std::to_string(e));
    }
    if (offsets[e + 1] == offsets[e]) {
      return fail(path, "net " + std::to_string(e) + " is empty");
    }
  }
  if (offsets[static_cast<std::size_t>(num_nets)] != num_pins) {
    return fail(path, "net_pin_offset ends at " +
                          std::to_string(offsets.back()) + " but " +
                          std::to_string(num_pins) + " pins are declared");
  }
  for (std::size_t e = 0; e < num_nets; ++e) {
    for (std::uint32_t p = offsets[e]; p < offsets[e + 1]; ++p) {
      if (pins[p] >= num_cells) {
        return fail(path, "net " + std::to_string(e) +
                              " references cell id " + std::to_string(pins[p]) +
                              " >= num_cells " + std::to_string(num_cells));
      }
      if (p > offsets[e] && pins[p] <= pins[p - 1]) {
        return fail(path, "net " + std::to_string(e) +
                              " pins are not strictly increasing (duplicate "
                              "or unsorted pin)");
      }
    }
  }
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (!std::isfinite(widths[c]) || widths[c] <= 0.0 ||
        !std::isfinite(heights[c]) || heights[c] <= 0.0) {
      return fail(path, "cell " + std::to_string(c) +
                            " has a non-positive or non-finite dimension");
    }
    if (fixed[c] > 1) {
      return fail(path, "cell " + std::to_string(c) +
                            " has a fixed flag outside {0, 1}");
    }
  }
  for (std::size_t c = 0; c < x.size(); ++c) {
    if (!std::isfinite(x[c]) || !std::isfinite(y[c])) {
      return fail(path, "cell " + std::to_string(c) +
                            " has a non-finite placement coordinate");
    }
  }

  out->netlist = NetlistSnapshotAccess::assemble(
      std::move(offsets), std::move(pins), std::move(widths),
      std::move(heights), std::move(fixed), std::move(cell_names),
      std::move(net_names));
  out->x = std::move(x);
  out->y = std::move(y);
  out->warnings.clear();
  return Status::ok();
}

Status load_with_snapshot_cache(
    const std::filesystem::path& snapshot,
    const std::function<Status(BookshelfDesign*)>& load_source,
    BookshelfDesign* out, SnapshotCacheResult* result) {
  result->hit = false;
  result->fill_failed = false;
  result->notes.clear();
  if (!snapshot.empty() && std::filesystem::exists(snapshot)) {
    GTL_RETURN_IF_ERROR(try_read_snapshot(snapshot, out));
    result->hit = true;
    return Status::ok();
  }
  GTL_RETURN_IF_ERROR(load_source(out));
  if (!snapshot.empty()) {
    // Cache fill is an optimization: record, never fail.
    if (const Status st = try_write_snapshot(*out, snapshot); !st.is_ok()) {
      result->fill_failed = true;
      result->notes.push_back("warning: " + st.to_string());
    } else {
      result->notes.push_back("snapshot written to " + snapshot.string());
    }
  }
  return Status::ok();
}

void write_snapshot(const BookshelfDesign& design,
                    const std::filesystem::path& path) {
  if (const Status st = try_write_snapshot(design, path); !st.is_ok()) {
    throw std::runtime_error(st.message());
  }
}

BookshelfDesign read_snapshot(const std::filesystem::path& path) {
  BookshelfDesign d;
  if (const Status st = try_read_snapshot(path, &d); !st.is_ok()) {
    throw std::runtime_error(st.message());
  }
  return d;
}

}  // namespace gtl
