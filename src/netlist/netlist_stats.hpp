#pragma once
// Whole-netlist statistics: pin-count profile and an empirical Rent
// exponent estimate.  The Rent exponent p drives GTL-Score's |C|^p
// denominator; the paper estimates p from the prefix groups of a linear
// ordering (finder/), while this header provides an *independent* global
// estimate from BFS-grown regions — used for validation, generator
// calibration, and the stats example.

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace gtl {

/// Summary statistics of a netlist.
struct NetlistSummary {
  std::size_t num_cells = 0;
  std::size_t num_nets = 0;
  std::size_t num_pins = 0;
  double avg_pins_per_cell = 0.0;  ///< A(G)
  double avg_net_size = 0.0;
  std::uint32_t max_net_size = 0;
  std::uint32_t max_cell_degree = 0;
  std::size_t num_fixed = 0;
  double total_movable_area = 0.0;
};

/// Compute the summary in one pass.
[[nodiscard]] NetlistSummary summarize(const Netlist& nl);

/// Histogram of net sizes; index i = number of nets with exactly i pins
/// (index 0 unused, sized max_net_size+1).
[[nodiscard]] std::vector<std::size_t> net_size_histogram(const Netlist& nl);

/// Result of a global Rent-exponent estimation.
struct RentEstimate {
  double exponent = 0.0;   ///< p in T = A * k^p
  double coefficient = 0;  ///< A
  double r2 = 0.0;         ///< fit quality
  std::size_t samples = 0; ///< number of (k, T) points fitted
};

/// Estimate the Rent exponent by growing `samples` BFS regions from random
/// seeds up to `max_region` cells, recording (region size k, cut T) points
/// at geometrically spaced sizes, and fitting ln T = ln A + p ln k.
/// BFS regions approximate the "physical partitions" of classical Rent
/// studies.  Deterministic given the Rng state.
[[nodiscard]] RentEstimate estimate_rent_exponent(
    const Netlist& nl, Rng& rng, std::size_t samples = 32,
    std::size_t max_region = 4096);

}  // namespace gtl
