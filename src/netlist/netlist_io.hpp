#pragma once
// Versioned binary netlist snapshots — the O(read) load path for the
// real-benchmark corpus.  Parsing a Bookshelf design validates and
// re-deduplicates every net; a snapshot is written from an
// already-validated Netlist, so reloading is a handful of bulk array
// reads plus the derived-structure rebuild (transposed CSR, net sizes,
// name index).
//
// Format v1, little-endian, in file order:
//
//   magic            8 bytes  "GTLSNAP\0"
//   byte_order       u32      0x01020304 (refuses foreign-endian files)
//   version          u32      1
//   flags            u32      bit0 cell names, bit1 net names,
//                             bit2 placement; unknown bits are an error
//   reserved         u32      0
//   num_cells        u64
//   num_nets         u64
//   num_pins         u64      == net_pin_offset[num_nets]
//   cell_name_bytes  u64      total cell-name blob size (0 if no names)
//   net_name_bytes   u64      total net-name blob size (0 if no names)
//   net_pin_offset   (num_nets+1) x u32   monotonic, starts at 0
//   net_pins         num_pins x u32       strictly increasing per net
//   cell_width       num_cells x f64      finite, > 0
//   cell_height      num_cells x f64      finite, > 0
//   cell_fixed       num_cells x u8       0 or 1
//   [cell name lengths num_cells x u32][cell name blob]   if flag bit0
//   [net  name lengths num_nets  x u32][net  name blob]   if flag bit1
//   [x num_cells x f64][y num_cells x f64]                if flag bit2
//   checksum         u64      FNV-1a over every preceding byte
//
// Every count is validated against the 32-bit id limits, every offset
// against monotonicity and the pin count, and the file size against the
// exact total implied by the header before any array is materialized, so
// a truncated or corrupted snapshot fails loudly instead of loading a
// malformed hypergraph.  Versioning rule: any layout change bumps
// `version`; readers reject versions they do not know.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "netlist/bookshelf.hpp"
#include "util/status.hpp"

namespace gtl {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Write `design` (netlist + optional placement) as a binary snapshot.
[[nodiscard]] Status try_write_snapshot(const BookshelfDesign& design,
                                        const std::filesystem::path& path);

/// Load a snapshot.  On error `*out` is left in an unspecified state;
/// the Status message carries "snapshot: <file>: <what>".
[[nodiscard]] Status try_read_snapshot(const std::filesystem::path& path,
                                       BookshelfDesign* out);

/// Throwing wrappers (std::runtime_error), mirroring read_bookshelf.
void write_snapshot(const BookshelfDesign& design,
                    const std::filesystem::path& path);
[[nodiscard]] BookshelfDesign read_snapshot(const std::filesystem::path& path);

/// The cache protocol every CLI main shares.  `snapshot` may be empty
/// (no caching).  When it names an existing file, the snapshot is
/// loaded (`result->hit = true`); a load failure is returned as-is so
/// the caller can suggest deleting the stale file.  Otherwise
/// `load_source` fills `*out` (parse text, generate, ...), and on
/// success the cache is filled best-effort: a failed write lands in
/// `result->notes`, never in the returned Status.  `notes` also records
/// a "snapshot written to ..." line on a successful fill.
struct SnapshotCacheResult {
  bool hit = false;
  /// True when the best-effort cache fill failed (the warning is in
  /// `notes`).  The cache path holds no partial file in that case — the
  /// writer stages through a temp file and removes it on any failure —
  /// so the next load simply re-parses the source and retries the fill.
  bool fill_failed = false;
  std::vector<std::string> notes;
};
[[nodiscard]] Status load_with_snapshot_cache(
    const std::filesystem::path& snapshot,
    const std::function<Status(BookshelfDesign*)>& load_source,
    BookshelfDesign* out, SnapshotCacheResult* result);

}  // namespace gtl
