#include "netlist/netlist_stats.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/stats.hpp"

namespace gtl {

NetlistSummary summarize(const Netlist& nl) {
  NetlistSummary s;
  s.num_cells = nl.num_cells();
  s.num_nets = nl.num_nets();
  s.num_pins = nl.num_pins();
  s.avg_pins_per_cell = nl.average_pins_per_cell();
  s.avg_net_size = s.num_nets == 0 ? 0.0
                                   : static_cast<double>(s.num_pins) /
                                         static_cast<double>(s.num_nets);
  for (NetId e = 0; e < s.num_nets; ++e) {
    s.max_net_size = std::max(s.max_net_size, nl.net_size(e));
  }
  for (CellId c = 0; c < s.num_cells; ++c) {
    s.max_cell_degree = std::max(s.max_cell_degree, nl.cell_degree(c));
    if (nl.is_fixed(c)) {
      ++s.num_fixed;
    } else {
      s.total_movable_area += nl.cell_area(c);
    }
  }
  return s;
}

std::vector<std::size_t> net_size_histogram(const Netlist& nl) {
  std::uint32_t max_size = 0;
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    max_size = std::max(max_size, nl.net_size(e));
  }
  std::vector<std::size_t> hist(max_size + 1, 0);
  for (NetId e = 0; e < nl.num_nets(); ++e) ++hist[nl.net_size(e)];
  return hist;
}

namespace {

/// Grow a BFS region from `seed` up to `max_region` cells, recording the
/// net cut T at geometrically spaced sizes into (ks, ts).
void sample_bfs_region(const Netlist& nl, CellId seed, std::size_t max_region,
                       std::vector<double>& ks, std::vector<double>& ts,
                       std::vector<std::uint32_t>& pins_in,
                       std::vector<bool>& in_region,
                       std::vector<CellId>& touched_cells,
                       std::vector<NetId>& touched_nets) {
  std::queue<CellId> frontier;
  frontier.push(seed);
  in_region[seed] = true;
  touched_cells.push_back(seed);
  std::size_t size = 0;
  std::int64_t cut = 0;
  std::size_t next_record = 4;  // skip tiny-k noise

  while (!frontier.empty() && size < max_region) {
    const CellId c = frontier.front();
    frontier.pop();
    ++size;
    for (const NetId e : nl.nets_of(c)) {
      if (pins_in[e] == 0) {
        touched_nets.push_back(e);
        if (nl.net_size(e) > 1) ++cut;  // net becomes cut
      }
      ++pins_in[e];
      if (pins_in[e] == nl.net_size(e) && nl.net_size(e) > 1) {
        --cut;  // fully absorbed
      }
      // Enqueue unvisited neighbors (bounded fan-out on huge nets).
      if (pins_in[e] == 1 && nl.net_size(e) <= 64) {
        for (const CellId w : nl.pins_of(e)) {
          if (!in_region[w]) {
            in_region[w] = true;
            touched_cells.push_back(w);
            frontier.push(w);
          }
        }
      }
    }
    if (size == next_record && cut > 0) {
      ks.push_back(static_cast<double>(size));
      ts.push_back(static_cast<double>(cut));
      next_record = next_record * 3 / 2 + 1;
    }
  }

  for (const CellId c : touched_cells) in_region[c] = false;
  for (const NetId e : touched_nets) pins_in[e] = 0;
  touched_cells.clear();
  touched_nets.clear();
}

}  // namespace

RentEstimate estimate_rent_exponent(const Netlist& nl, Rng& rng,
                                    std::size_t samples,
                                    std::size_t max_region) {
  RentEstimate est;
  if (nl.num_cells() < 8 || nl.num_nets() == 0) return est;
  max_region = std::min(max_region, nl.num_cells() / 2);
  if (max_region < 8) max_region = std::min<std::size_t>(8, nl.num_cells());

  std::vector<double> ks, ts;
  std::vector<std::uint32_t> pins_in(nl.num_nets(), 0);
  std::vector<bool> in_region(nl.num_cells(), false);
  std::vector<CellId> touched_cells;
  std::vector<NetId> touched_nets;

  for (std::size_t s = 0; s < samples; ++s) {
    const auto seed = static_cast<CellId>(rng.next_below(nl.num_cells()));
    sample_bfs_region(nl, seed, max_region, ks, ts, pins_in, in_region,
                      touched_cells, touched_nets);
  }
  if (ks.size() < 2) return est;

  const LineFit fit = fit_power_law(ks, ts);
  est.exponent = std::clamp(fit.slope, 0.0, 1.0);
  est.coefficient = std::exp(fit.intercept);
  est.r2 = fit.r2;
  est.samples = ks.size();
  return est;
}

}  // namespace gtl
