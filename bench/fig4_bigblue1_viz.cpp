// Reproduces Figure 4: "GTL found by our method in Bigblue1."
//
// Place the bigblue1 stand-in, run the finder, and render the placement
// with each found GTL in its own color — the paper's "clots with colors
// different from the majority of cells".  The quantified claim: cells of
// a found GTL crowd into a small local region, so each GTL's bounding-box
// area share is far below a uniform spread of the same cell count.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "graphgen/presets.hpp"
#include "netlist/netlist_io.hpp"
#include "place/quadratic_placer.hpp"
#include "viz/plots.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Reproduce Figure 4: render the GTLs found in the bigblue1 "
             "stand-in on its placement.")
      .describe("seeds=N", "random starting seeds (default 100)")
      .describe("threads=N", "worker threads (0 = all hardware threads)")
      .describe("snapshot=FILE", "binary snapshot cache for the generated "
                                 "stand-in: load FILE if it exists, else "
                                 "write it after generating");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  const auto arg_seeds = args.get_int("seeds", 100);
  const auto arg_threads = args.get_int("threads", 0);
  const std::string snapshot = args.get("snapshot");
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Figure 4 — GTLs found in bigblue1, shown on placement",
                scale);

  // The circuit: generated fresh, or reloaded from the snapshot cache
  // (netlist + hint placement; the die extent is recovered from the pad
  // ring, which the generator places exactly on the die boundary).
  BookshelfDesign d;
  SnapshotCacheResult cache;
  const Status load_st = load_with_snapshot_cache(
      snapshot,
      [&](BookshelfDesign* out) -> Status {
        const auto cfg =
            ispd_like_config("bigblue1", bench::size_factor(scale));
        Rng rng(4444);
        SyntheticCircuit generated = generate_synthetic_circuit(cfg, rng);
        out->netlist = std::move(generated.netlist);
        out->x = std::move(generated.hint_x);
        out->y = std::move(generated.hint_y);
        return Status::ok();
      },
      &d, &cache);
  if (!load_st.is_ok()) {
    std::cerr << "error: " << load_st.to_string()
              << "\n(delete the stale snapshot to regenerate)\n";
    return 2;
  }
  if (cache.hit) {
    // Identify what the cache actually holds: a hit overrides --scale,
    // so a stale snapshot must at least be visible in the log.
    std::cout << "loaded snapshot " << snapshot << " ("
              << d.netlist.num_cells() << " cells, " << d.netlist.num_nets()
              << " nets; cache overrides --scale)\n";
  }
  for (const std::string& note : cache.notes) std::cout << note << "\n";
  if (d.x.empty()) {
    std::cerr << "error: snapshot " << snapshot
              << " carries no placement hints\n";
    return 2;
  }
  SyntheticCircuit circuit;
  circuit.netlist = std::move(d.netlist);
  circuit.hint_x = std::move(d.x);
  circuit.hint_y = std::move(d.y);
  for (CellId c = 0; c < circuit.netlist.num_cells(); ++c) {
    circuit.die_width = std::max(circuit.die_width, circuit.hint_x[c]);
    circuit.die_height = std::max(circuit.die_height, circuit.hint_y[c]);
  }

  FinderConfig fcfg;
  fcfg.num_seeds = static_cast<std::size_t>(arg_seeds);
  fcfg.max_ordering_length = std::max<std::size_t>(
      2'000, circuit.netlist.num_cells() / 8);
  fcfg.num_threads = static_cast<std::size_t>(arg_threads);
  fcfg.rng_seed = 99;
  if (bench::config_error_exit(fcfg)) return 2;
  Timer timer;
  Finder finder(circuit.netlist, fcfg);
  const FinderResult& found = finder.run();
  std::cout << "finder: " << found.gtls.size() << " GTLs in "
            << fmt_double(timer.seconds(), 1) << "s\n";

  PlacerConfig pcfg;
  pcfg.die = {circuit.die_width, circuit.die_height, 1.0};
  pcfg.spreading_iterations = 10;
  Timer place_timer;
  const Placement placement =
      place_quadratic(circuit.netlist, circuit.hint_x, circuit.hint_y, pcfg);
  std::cout << "placement: HPWL " << fmt_double(placement.hpwl, 0) << " in "
            << fmt_double(place_timer.seconds(), 1) << "s\n\n";

  std::vector<std::vector<CellId>> groups;
  for (const auto& g : found.gtls) groups.push_back(g.cells);

  const auto dir = bench::out_dir(args);
  render_placement(circuit.netlist, placement.x, placement.y, pcfg.die,
                   groups, 900)
      .write_ppm(dir / "fig4_bigblue1_placement.ppm");
  std::cout << "image written to " << (dir / "fig4_bigblue1_placement.ppm")
            << "\n\nplacement map (letters = found GTLs):\n"
            << ascii_placement(circuit.netlist, placement.x, placement.y,
                               pcfg.die, groups, 72, 20);

  // Quantify the clotting of the strongest GTLs.
  Table t("GTL clotting (measured)");
  t.set_header({"GTL", "cells", "score", "cell share", "bbox area share",
                "crowding (uniform/actual)"});
  const double die_area = pcfg.die.width * pcfg.die.height;
  bool all_crowded = true;
  for (std::size_t i = 0; i < std::min<std::size_t>(5, groups.size()); ++i) {
    double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
    for (const CellId c : groups[i]) {
      min_x = std::min(min_x, placement.x[c]);
      max_x = std::max(max_x, placement.x[c]);
      min_y = std::min(min_y, placement.y[c]);
      max_y = std::max(max_y, placement.y[c]);
    }
    const double bbox_share =
        (max_x - min_x) * (max_y - min_y) / die_area;
    const double cell_share =
        static_cast<double>(groups[i].size()) /
        static_cast<double>(circuit.netlist.num_movable());
    // Crowding factor: a uniformly spread group of this cell share would
    // cover the whole die (share ~1); a clot covers ~its cell share.
    const double crowding = bbox_share > 1e-12 ? 1.0 / bbox_share : 1e12;
    all_crowded = all_crowded && bbox_share < 0.5;
    t.add_row({std::to_string(i + 1),
               fmt_int(static_cast<long long>(groups[i].size())),
               fmt_double(found.gtls[i].score, 3), fmt_percent(cell_share),
               fmt_percent(bbox_share), fmt_double(crowding, 1) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nfound GTLs crowd into small local regions: "
            << (all_crowded ? "YES" : "NO")
            << "   [paper: GTL clots visible in Fig. 4]\n";
  bench::shape_note();
  return all_crowded ? 0 : 1;
}
