// Reproduces Table 2: "Experimental results on ISPD 05/06 placement
// benchmarks" — bigblue1-3 and adaptec1-3.
//
// The real benchmark data is not redistributable, so each circuit is a
// synthetic stand-in with the paper's |V| (scaled), a Rent-rule background
// and a planted population of tangled structures (see DESIGN.md).  To run
// against the real data, pass --aux=<path to .aux file> instead.
//
// Reported per design (paper's columns): |V|, #seeds, #GTL found, the top
// three GTLs' size / cut / GTL-S / GTL-SD, and the runtime.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "graphgen/presets.hpp"
#include "netlist/bookshelf.hpp"
#include "netlist/netlist_io.hpp"

namespace {

using namespace gtl;

struct PaperRow {
  const char* name;
  const char* top3;  // size/cut/GTL-S/GTL-SD of the paper's top 3
  int gtls_found;
  int runtime_min;
};

constexpr PaperRow kPaper[] = {
    {"bigblue1",
     "6187/369/0.14/0.031; 1548/307/0.32/0.083; 3539/800/0.46/0.14", 72, 81},
    {"bigblue2",
     "13888/397/0.107/0.045; 9602/560/0.196/0.111; 10776/1091/0.352/0.195", 93,
     104},
    {"bigblue3",
     "695/81/0.204/0.225; 297/76/0.354/0.202; 13005/2289/0.686/0.454", 112,
     159},
    {"adaptec1",
     "2628/124/0.128/0.083; 2616/136/0.141/0.093; 375/36/0.142/0.212", 78,
     77},
    {"adaptec2",
     "751/52/0.132/0.315; 3387/263/0.236/0.058; 618/123/0.358/0.435", 54,
     114},
    {"adaptec3",
     "896/31/0.065/0.058; 420/25/0.089/0.17; 960/67/0.134/0.126", 109, 142},
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.usage("Reproduce Table 2 on synthetic ISPD 05/06 stand-ins "
             "(or real data via --aux).")
      .describe("aux=FILE", "Bookshelf .aux file with the real benchmark")
      .describe("snapshot=FILE", "binary snapshot cache for --aux: load "
                                 "FILE if it exists, else write it after "
                                 "parsing")
      .describe("seeds=N", "random starting seeds per design (default 100)")
      .describe("threads=N", "worker threads (0 = all hardware threads)");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  const auto arg_seeds = args.get_int("seeds", 100);
  const auto arg_threads = args.get_int("threads", 0);
  const std::string snapshot = args.get("snapshot");
  if (!snapshot.empty() && !args.has("aux")) {
    args.record_error(Status::invalid_argument(
        "--snapshot caches a single real design; it requires --aux"));
  }
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Table 2 — ISPD 05/06 placement benchmarks", scale);
  const double f = bench::size_factor(scale);

  Table t("Table 2 (measured)");
  t.set_header({"Case", "|V|", "#seeds", "#GTL", "Top 3 GTLs", "GTL size",
                "Cut", "GTL-S", "GTL-SD", "Runtime(s)"});

  const std::string aux = args.get("aux");
  std::vector<std::string> names = ispd_benchmark_names();
  if (!aux.empty()) names = {aux};

  for (std::size_t b = 0; b < names.size(); ++b) {
    Netlist netlist;
    std::string case_name;
    if (!aux.empty()) {
      // Snapshot cache: first run parses the Bookshelf text and fills the
      // cache, every later run reloads in ~O(read) time.
      BookshelfDesign d;
      SnapshotCacheResult cache;
      const Status st = load_with_snapshot_cache(
          snapshot,
          [&](BookshelfDesign* out) -> Status {
            GTL_RETURN_IF_ERROR(try_read_bookshelf(aux, out));
            for (const std::string& w : out->warnings) {
              std::cerr << "warning: " << w << "\n";
            }
            return Status::ok();
          },
          &d, &cache);
      if (!st.is_ok()) {
        std::cerr << "error: " << st.to_string()
                  << "\n(delete the stale snapshot to re-parse --aux)\n";
        return 2;
      }
      for (const std::string& note : cache.notes) {
        std::cerr << note << "\n";
      }
      if (cache.hit) {
        std::cout << "loaded snapshot " << snapshot << " ("
                  << d.netlist.num_cells() << " cells, "
                  << d.netlist.num_nets()
                  << " nets; cache overrides --aux)\n";
      }
      netlist = std::move(d.netlist);
      case_name = std::filesystem::path(aux).stem().string();
    } else {
      const auto cfg = ispd_like_config(names[b], f);
      Rng rng(7000 + b);
      netlist = generate_synthetic_circuit(cfg, rng).netlist;
      case_name = names[b];
    }

    FinderConfig fcfg;
    fcfg.num_seeds = static_cast<std::size_t>(arg_seeds);
    fcfg.max_ordering_length = std::max<std::size_t>(
        2'000, static_cast<std::size_t>(netlist.num_cells() / 8));
    fcfg.num_threads = static_cast<std::size_t>(arg_threads);
    fcfg.rng_seed = 4242 + b;
    if (bench::config_error_exit(fcfg)) return 2;
    Timer timer;
    Finder finder(netlist, fcfg);
    const FinderResult& res = finder.run();
    const double secs = timer.seconds();

    for (std::size_t i = 0; i < std::min<std::size_t>(3, res.gtls.size());
         ++i) {
      const auto& g = res.gtls[i];
      t.add_row({i == 0 ? case_name : "",
                 i == 0 ? fmt_int(static_cast<long long>(netlist.num_cells()))
                        : "",
                 i == 0 ? std::to_string(fcfg.num_seeds) : "",
                 i == 0 ? std::to_string(res.gtls.size()) : "",
                 "Structure " + std::to_string(i + 1),
                 fmt_int(static_cast<long long>(g.size())),
                 fmt_int(g.cut), fmt_double(g.ngtl_s, 3),
                 fmt_double(g.gtl_sd, 3),
                 i == 0 ? fmt_double(secs, 1) : ""});
    }
    if (res.gtls.empty()) {
      t.add_row({case_name,
                 fmt_int(static_cast<long long>(netlist.num_cells())),
                 std::to_string(fcfg.num_seeds), "0", "-", "-", "-", "-", "-",
                 fmt_double(secs, 1)});
    }
    if (aux.empty() && b < std::size(kPaper)) {
      std::cout << case_name << ": " << res.gtls.size() << " GTLs in "
                << fmt_double(secs, 1) << "s   [paper: " << kPaper[b].gtls_found
                << " GTLs in " << kPaper[b].runtime_min
                << "m; top3 " << kPaper[b].top3 << "]\n";
    }
  }

  std::cout << '\n';
  t.print(std::cout);
  bench::shape_note();
  return 0;
}
