// Reproduces Figure 2: "Example of nGTL-Score."
//
// A random graph with one planted GTL (paper: 250K cells, 40K GTL).  Two
// agglomeration curves of nGTL-Score versus group size:
//   * outside the GTL — starts ~0.3, rises, asymptotically approaches ~1
//     (the paper quotes 0.9): never a clear minimum;
//   * inside the GTL — rises above 1, then drops precipitously to a deep
//     minimum (~0.1) exactly when the whole GTL has been absorbed, and
//     rises again as outside cells are added.

#include <fstream>
#include <iostream>

#include "curve_common.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Reproduce Figure 2: nGTL-Score agglomeration curves inside "
             "and outside a planted GTL.");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Figure 2 — nGTL-Score vs group size", scale);

  const auto fx = bench::make_curve_fixture(scale);
  const auto dir = bench::out_dir(args);
  {
    std::ofstream csv(dir / "fig2_ngtl_curve.csv");
    bench::print_curve_csv(csv, "inside_gtl_ngtl_s", fx.inside_curve.ngtl_s);
    bench::print_curve_csv(csv, "outside_gtl_ngtl_s", fx.outside_curve.ngtl_s);
  }
  std::cout << "curve CSV written to " << (dir / "fig2_ngtl_curve.csv")
            << "\n\n";

  const auto [in_k, in_v] = bench::curve_minimum(fx.inside_curve.ngtl_s);
  const auto [out_k, out_v] = bench::curve_minimum(fx.outside_curve.ngtl_s);
  const double out_start = fx.outside_curve.ngtl_s[29];
  const double out_end = fx.outside_curve.ngtl_s.back();
  const double in_peak_before =
      *std::max_element(fx.inside_curve.ngtl_s.begin() + 29,
                        fx.inside_curve.ngtl_s.begin() + in_k);

  Table t("Figure 2 (measured vs paper)");
  t.set_header({"quantity", "measured", "paper"});
  t.add_row({"planted GTL size", fmt_int(fx.gtl_size), "40,000"});
  t.add_row({"outside curve at small k", fmt_double(out_start, 2), "~0.3"});
  t.add_row({"outside curve plateau", fmt_double(out_end, 2), "~0.9"});
  t.add_row({"outside curve min (no dip)",
             fmt_double(out_v, 2) + " @ k=" +
                 fmt_int(static_cast<long long>(out_k)),
             "none (monotone rise)"});
  t.add_row({"inside curve peak before dip", fmt_double(in_peak_before, 2),
             ">1.5"});
  t.add_row({"inside curve min value", fmt_double(in_v, 3), "~0.1"});
  t.add_row({"inside curve min position", fmt_int(static_cast<long long>(in_k)),
             fmt_int(fx.gtl_size) + " (= GTL size)"});
  t.print(std::cout);

  const bool min_at_gtl =
      in_k > fx.gtl_size * 95 / 100 && in_k < fx.gtl_size * 105 / 100;
  std::cout << "\ninside-curve minimum lands at the GTL boundary: "
            << (min_at_gtl ? "YES" : "NO") << "\n";
  bench::shape_note();
  return min_at_gtl ? 0 : 1;
}
