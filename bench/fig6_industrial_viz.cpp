// Reproduces Figure 6: "GTL of the industrial circuit."
//
// The five dissolved-ROM structures of the industrial design, highlighted
// on its placement.  The paper's claim: the GTLs the finder reports match
// the ROM blobs the designers know about, and they sit exactly where the
// routing hotspots of Fig. 1 appear (upper part of the die).

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "graphgen/planted_graph.hpp"
#include "graphgen/presets.hpp"
#include "place/quadratic_placer.hpp"
#include "viz/plots.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Reproduce Figure 6: highlight the industrial circuit's GTLs "
             "on its placement.")
      .describe("seeds=N", "random starting seeds (default 150)")
      .describe("threads=N", "worker threads (0 = all hardware threads)");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  const auto arg_seeds = args.get_int("seeds", 150);
  const auto arg_threads = args.get_int("threads", 0);
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Figure 6 — GTLs of the industrial circuit on placement",
                scale);

  const auto cfg = industrial_config(bench::size_factor(scale));
  Rng rng(6666);
  const SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);

  std::uint32_t largest = 0;
  for (const auto& s : cfg.structures) largest = std::max(largest, s.size);

  FinderConfig fcfg;
  fcfg.num_seeds = static_cast<std::size_t>(arg_seeds);
  fcfg.max_ordering_length = largest * 4;
  fcfg.num_threads = static_cast<std::size_t>(arg_threads);
  fcfg.rng_seed = 66;
  if (bench::config_error_exit(fcfg)) return 2;
  Timer timer;
  Finder finder(circuit.netlist, fcfg);
  const FinderResult& found = finder.run();

  // Keep the strong GTLs (the ROMs score ~0.02-0.1; background communities
  // score 0.5+).
  std::vector<std::vector<CellId>> groups;
  for (const auto& g : found.gtls) {
    if (g.score < 0.3) groups.push_back(g.cells);
  }
  std::cout << "finder: " << found.gtls.size() << " GTLs ("
            << groups.size() << " strong) in "
            << fmt_double(timer.seconds(), 1) << "s\n";

  PlacerConfig pcfg;
  pcfg.die = {circuit.die_width, circuit.die_height, 1.0};
  pcfg.spreading_iterations = 10;
  const Placement placement =
      place_quadratic(circuit.netlist, circuit.hint_x, circuit.hint_y, pcfg);

  const auto dir = bench::out_dir(args);
  render_placement(circuit.netlist, placement.x, placement.y, pcfg.die,
                   groups, 900)
      .write_ppm(dir / "fig6_industrial_placement.ppm");
  std::cout << "image written to "
            << (dir / "fig6_industrial_placement.ppm")
            << "\n\nplacement map (letters = strong GTLs):\n"
            << ascii_placement(circuit.netlist, placement.x, placement.y,
                               pcfg.die, groups, 72, 20);

  // The paper's check: the found GTLs are the designers' ROM blobs.
  Table t("found vs designer ROMs");
  t.set_header({"ROM (designer size)", "best-matching GTL", "miss", "over"});
  bool all_matched = groups.size() >= circuit.planted.size();
  for (const auto& truth : circuit.planted) {
    RecoveryStats best;
    std::size_t best_size = 0;
    for (const auto& g : groups) {
      const auto rec = recovery_stats(truth, g);
      if (rec.overlap > best.overlap) {
        best = rec;
        best_size = g.size();
      }
    }
    all_matched = all_matched && best.miss_fraction < 0.05;
    t.add_row({fmt_int(static_cast<long long>(truth.size())),
               fmt_int(static_cast<long long>(best_size)),
               fmt_percent(best.miss_fraction),
               fmt_percent(best.over_fraction)});
  }
  t.print(std::cout);
  std::cout << "\nall designer ROMs recovered as strong GTLs: "
            << (all_matched ? "YES" : "NO")
            << "   [paper Table 3 + Fig. 6: exact match]\n";
  bench::shape_note();
  return all_matched ? 0 : 1;
}
