// Reproduces Figure 5: "Functions of nGTL-Score, density-aware GTL-Score
// and ratio cut T(C)/|C| versus groups extracted from a linear ordering of
// cells from Bigblue1."
//
// One linear ordering grown inside a tangled structure of the bigblue1
// stand-in, three metric curves over its prefixes:
//   * ratio cut — much flatter, global minimum at the right end of the
//     curve: it overly favors large groups;
//   * nGTL-S and GTL-SD — minima at (nearly) the same prefix, i.e. the
//     same GTL; GTL-SD's minimum is the lower one; nGTL-S hovers around 1
//     away from the structure.

#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "curve_common.hpp"
#include "graphgen/presets.hpp"
#include "order/linear_ordering.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Reproduce Figure 5: compare nGTL-S / GTL-SD / ratio-cut "
             "curves on the bigblue1 stand-in.");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Figure 5 — nGTL-S / GTL-SD / ratio-cut curves (bigblue1)",
                scale);

  const auto cfg = ispd_like_config("bigblue1", bench::size_factor(scale));
  Rng rng(5555);
  const SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);

  // Seed inside the largest planted structure (the paper grows from a
  // seed that discovers a real bigblue1 structure).
  std::size_t biggest = 0;
  for (std::size_t i = 1; i < circuit.planted.size(); ++i) {
    if (circuit.planted[i].size() > circuit.planted[biggest].size()) {
      biggest = i;
    }
  }
  const auto& structure = circuit.planted[biggest];
  OrderingEngine engine(
      circuit.netlist,
      {.max_length = structure.size() * 4, .large_net_threshold = 20});
  // Like the finder, try several member seeds: a boundary (port) seed can
  // escape the structure and produce a background-shaped curve.
  LinearOrdering ordering;
  ScoreCurve curve;
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    ordering = engine.grow(structure[(attempt * 7919) % structure.size()]);
    curve = compute_score_curve(circuit.netlist, ordering);
    if (find_clear_minimum(curve.gtl_sd).has_value()) break;
  }

  // A background ordering isolates the ratio-cut bias claim: with no
  // structure anywhere, ratio cut still keeps falling (min at the right
  // end) while nGTL-S stays flat near 1.
  CellId bg_seed = 0;
  {
    std::vector<bool> planted_cell(circuit.netlist.num_cells(), false);
    for (const auto& p : circuit.planted) {
      for (const CellId c : p) planted_cell[c] = true;
    }
    while (planted_cell[bg_seed] || circuit.netlist.is_fixed(bg_seed)) {
      ++bg_seed;
    }
  }
  const LinearOrdering bg_ordering = engine.grow(bg_seed);
  const ScoreCurve bg_curve = compute_score_curve(circuit.netlist, bg_ordering);

  const auto dir = bench::out_dir(args);
  {
    std::ofstream csv(dir / "fig5_metric_comparison.csv");
    bench::print_curve_csv(csv, "ngtl_s", curve.ngtl_s);
    bench::print_curve_csv(csv, "gtl_sd", curve.gtl_sd);
    bench::print_curve_csv(csv, "ratio_cut", curve.ratio_cut);
    bench::print_curve_csv(csv, "bg_ngtl_s", bg_curve.ngtl_s);
    bench::print_curve_csv(csv, "bg_ratio_cut", bg_curve.ratio_cut);
  }
  std::cout << "curve CSV written to "
            << (dir / "fig5_metric_comparison.csv") << "\n\n";

  const auto [ng_k, ng_v] = bench::curve_minimum(curve.ngtl_s);
  const auto [sd_k, sd_v] = bench::curve_minimum(curve.gtl_sd);
  const auto [rc_k, rc_v] = bench::curve_minimum(curve.ratio_cut);
  const auto [brc_k, brc_v] = bench::curve_minimum(bg_curve.ratio_cut);
  const auto [bng_k, bng_v] = bench::curve_minimum(bg_curve.ngtl_s);

  Table t("Figure 5 (measured vs paper)");
  t.set_header({"curve", "min value", "min at k", "paper"});
  t.add_row({"nGTL-S (inside)", fmt_double(ng_v, 3),
             fmt_int(static_cast<long long>(ng_k)),
             "dip at the structure; ~1 elsewhere"});
  t.add_row({"GTL-SD (inside)", fmt_double(sd_v, 3),
             fmt_int(static_cast<long long>(sd_k)),
             "same dip position, lower minimum"});
  t.add_row({"ratio cut (inside)", fmt_double(rc_v, 3),
             fmt_int(static_cast<long long>(rc_k)),
             "flat, overly favors large size"});
  t.add_row({"ratio cut (background)", fmt_double(brc_v, 3),
             fmt_int(static_cast<long long>(brc_k)),
             "min at right end of curve"});
  t.add_row({"nGTL-S (background)", fmt_double(bng_v, 3),
             fmt_int(static_cast<long long>(bng_k)), "mostly around 1"});
  t.print(std::cout);

  const bool same_dip =
      sd_k > ng_k * 90 / 100 && sd_k < ng_k * 110 / 100 + 2;
  const bool sd_lower = sd_v < ng_v;
  const bool dip_at_structure = ng_k > structure.size() * 85 / 100 &&
                                ng_k < structure.size() * 115 / 100;
  // Ratio cut's size bias on the background curve: minimum in the final
  // 20% while nGTL-S stays within a band around 1.
  const bool rc_right = brc_k > bg_ordering.cells.size() * 8 / 10;
  const bool ng_flat = bng_v > 0.3;
  std::cout << "\nnGTL-S and GTL-SD identify the same GTL: "
            << (same_dip ? "YES" : "NO")
            << "\nGTL-SD minimum is the lowest: " << (sd_lower ? "YES" : "NO")
            << "\ndip sits at the planted structure (size "
            << fmt_int(static_cast<long long>(structure.size()))
            << "): " << (dip_at_structure ? "YES" : "NO")
            << "\nbackground ratio-cut min at right end: "
            << (rc_right ? "YES" : "NO")
            << "\nbackground nGTL-S stays near 1: " << (ng_flat ? "YES" : "NO")
            << "\n(note: on planted ultra-low-cut structures ratio cut can\n"
               " also dip at the GTL; the bias claim is isolated on the\n"
               " background ordering — see EXPERIMENTS.md)\n";
  bench::shape_note();
  return same_dip && sd_lower && dip_at_structure && rc_right && ng_flat ? 0
                                                                         : 1;
}
