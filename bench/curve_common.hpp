#pragma once
// Shared fixture for the Fig. 2 / Fig. 3 curve benches: the paper's
// 250K-cell random graph with one 40K-cell planted GTL, and two cell
// agglomerations — one seeded inside the GTL, one outside.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "finder/score_curve.hpp"
#include "graphgen/planted_graph.hpp"
#include "order/linear_ordering.hpp"

namespace gtl::bench {

struct CurveFixture {
  PlantedGraph graph;
  LinearOrdering inside;
  LinearOrdering outside;
  ScoreCurve inside_curve;
  ScoreCurve outside_curve;
  std::uint32_t gtl_size = 0;
};

inline CurveFixture make_curve_fixture(Scale scale) {
  const double f = size_factor(scale);
  PlantedGraphConfig cfg;
  cfg.num_cells = std::max<std::uint32_t>(
      5'000, static_cast<std::uint32_t>(250'000 * f));
  const auto gtl_size = std::max<std::uint32_t>(
      800, static_cast<std::uint32_t>(40'000 * f));
  cfg.gtls.push_back({gtl_size, 1});
  Rng rng(2468);

  CurveFixture fx{generate_planted_graph(cfg, rng), {}, {}, {}, {}, gtl_size};
  OrderingEngine engine(
      fx.graph.netlist,
      {.max_length = std::min<std::size_t>(cfg.num_cells, gtl_size * 3),
       .large_net_threshold = 20});

  // Inside agglomeration: like the finder, try a few member seeds — a
  // seed on the GTL boundary (e.g. a port cell) can escape the structure
  // (paper §3.2.3 motivates Phase III with exactly this failure mode).
  for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
    const CellId seed =
        fx.graph.gtl_members[0][(attempt * 7919) % gtl_size];
    fx.inside = engine.grow(seed);
    fx.inside_curve = compute_score_curve(fx.graph.netlist, fx.inside);
    if (find_clear_minimum(fx.inside_curve.gtl_sd).has_value()) break;
  }

  CellId bg = 0;
  while (std::binary_search(fx.graph.gtl_members[0].begin(),
                            fx.graph.gtl_members[0].end(), bg)) {
    ++bg;
  }
  fx.outside = engine.grow(bg);
  fx.outside_curve = compute_score_curve(fx.graph.netlist, fx.outside);
  return fx;
}

/// Print a curve as "k,value" rows at ~60 geometrically spaced samples.
inline void print_curve_csv(std::ostream& os, const std::string& name,
                            const std::vector<double>& curve) {
  os << "# " << name << "\nk," << name << "\n";
  std::size_t k = 1;
  while (k <= curve.size()) {
    os << k << ',' << curve[k - 1] << '\n';
    k = std::max(k + 1, k * 115 / 100);
  }
  if (k / (115.0 / 100.0) < curve.size()) {
    os << curve.size() << ',' << curve.back() << '\n';
  }
}

/// Position (1-based) and value of the curve minimum for k >= 30.
inline std::pair<std::size_t, double> curve_minimum(
    const std::vector<double>& curve) {
  const auto it = std::min_element(curve.begin() + 29, curve.end());
  return {static_cast<std::size_t>(it - curve.begin()) + 1, *it};
}

}  // namespace gtl::bench
