#!/usr/bin/env python3
"""Load-test a gtl_serve daemon and record throughput/latency.

Spawns the built `gtl_serve` binary with a planted demo design, then
hammers it with N concurrent clients over the Unix socket, each running
the same deterministic run_finder query in a closed loop.  Every
response is cross-checked byte-for-byte against the first one received,
so the benchmark doubles as a concurrency-determinism check.

Appends a gtl-bench-v1 run to BENCH_phase1.json (same schema as
bench/run_perf.py) so serving performance lives in the same reviewable
trajectory as the kernel benchmarks:

    bench/serve_load.py --bin build/tools/gtl_serve \
        --label "PR N: what changed" --append --out BENCH_phase1.json

Entry keys are "ServeLoad/clients=N": items_per_second is end-to-end
queries/sec across all clients, real_time_ns is the p99 per-request
latency, cpu_time_ns the p50 (the schema has no dedicated percentile
slots; p95 rides along as an extra key).
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

SCHEMA = "gtl-bench-v1"


def git_rev():
    try:
        return subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            check=True, capture_output=True, text=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def wait_for_listening(proc, deadline_s=30.0):
    """Block until the daemon prints its listening line (or dies)."""
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("gtl_serve exited before listening "
                               f"(rc={proc.poll()})")
        sys.stderr.write(line)
        if "listening on" in line:
            return
    raise RuntimeError("timed out waiting for gtl_serve to listen")


class Client:
    """Minimal blocking JSON-lines client (one request in flight)."""

    def __init__(self, path, retry_s=10.0):
        # The daemon announces its socket just before binding it, so the
        # first connect can race the listen(2); retry briefly.  A socket
        # whose connect failed is dead — make a fresh one per attempt.
        end = time.monotonic() + retry_s
        while True:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                self.sock.connect(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                self.sock.close()
                if time.monotonic() >= end:
                    raise
                time.sleep(0.05)
        self.buf = b""

    def call(self, req):
        self.sock.sendall((json.dumps(req) + "\n").encode())
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise RuntimeError("server closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def close(self):
        self.sock.close()


def client_loop(path, base_id, queries, request, out):
    """Run `queries` sequential run_finder calls; collect latencies."""
    c = Client(path)
    try:
        for i in range(queries):
            req = dict(request)
            req["id"] = base_id + i
            t0 = time.perf_counter()
            resp = c.call(req)
            dt = time.perf_counter() - t0
            if not resp.get("ok"):
                out["error"] = f"query failed: {json.dumps(resp)}"
                return
            out["latencies"].append(dt)
            out["results"].append(
                json.dumps(resp["result"], sort_keys=True,
                           separators=(",", ":")))
    except Exception as e:  # surfaced per-thread, not swallowed
        out["error"] = f"{type(e).__name__}: {e}"
    finally:
        c.close()


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    k = min(len(sorted_vals) - 1, int(round(p / 100.0 * (len(sorted_vals) - 1))))
    return sorted_vals[k]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bin", required=True, help="path to gtl_serve binary")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--queries", type=int, default=8,
                    help="queries per client")
    ap.add_argument("--workers", type=int, default=4,
                    help="server worker threads")
    ap.add_argument("--demo-design", default="adaptec1")
    ap.add_argument("--demo-factor", type=float, default=0.02)
    ap.add_argument("--seeds", type=int, default=20)
    ap.add_argument("--max-ordering-length", type=int, default=2000)
    ap.add_argument("--label", default="serve_load")
    ap.add_argument("--out", default=None,
                    help="gtl-bench-v1 JSON to append the run to")
    ap.add_argument("--append", action="store_true")
    args = ap.parse_args()
    if args.clients < 1:
        sys.exit("--clients must be >= 1")

    sock_path = os.path.join(tempfile.mkdtemp(prefix="gtl_serve_"),
                             "gtl.sock")
    proc = subprocess.Popen(
        [args.bin,
         f"--socket={sock_path}",
         f"--workers={args.workers}",
         f"--queue-cap={args.clients * args.queries + 8}",
         f"--demo-design={args.demo_design}",
         f"--demo-factor={args.demo_factor}",
         "--max-threads-per-query=1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        wait_for_listening(proc)

        request = {
            "op": "run_finder",
            "design": args.demo_design,
            "config": {"num_seeds": args.seeds,
                       "max_ordering_length": args.max_ordering_length,
                       "num_threads": 1},
        }
        # One warm-up query so session construction is off the clock.
        warm = Client(sock_path)
        resp = warm.call(dict(request, id=1))
        warm.close()
        if not resp.get("ok"):
            sys.exit(f"warm-up query failed: {json.dumps(resp)}")

        outs = [{"latencies": [], "results": [], "error": None}
                for _ in range(args.clients)]
        threads = [
            threading.Thread(
                target=client_loop,
                args=(sock_path, (t + 1) * 100000, args.queries,
                      request, outs[t]))
            for t in range(args.clients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

        for i, o in enumerate(outs):
            if o["error"]:
                sys.exit(f"client {i}: {o['error']}")
        results = [r for o in outs for r in o["results"]]
        if len(set(results)) != 1:
            sys.exit("determinism violation: concurrent clients received "
                     f"{len(set(results))} distinct result payloads")

        lat = sorted(d for o in outs for d in o["latencies"])
        total = len(lat)
        qps = total / wall
        p50, p95, p99 = (percentile(lat, p) for p in (50, 95, 99))
        print(f"ServeLoad: clients={args.clients} queries={total} "
              f"wall={wall:.2f}s qps={qps:.2f} "
              f"p50={p50 * 1e3:.1f}ms p95={p95 * 1e3:.1f}ms "
              f"p99={p99 * 1e3:.1f}ms")
    finally:
        proc.terminate()
        try:
            rc = proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            sys.exit("gtl_serve did not shut down on SIGTERM")
    sys.stderr.write(proc.stdout.read())
    if rc != 0:
        sys.exit(f"gtl_serve exited non-zero on SIGTERM: {rc}")

    if not args.out:
        return
    entry = {
        "label": args.label,
        "git_rev": git_rev(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "num_cpus": os.cpu_count() or 1,
        "mhz_per_cpu": 0,
        "benchmarks": {
            f"ServeLoad/clients={args.clients}": {
                "real_time_ns": p99 * 1e9,
                "cpu_time_ns": p50 * 1e9,
                "p95_ns": p95 * 1e9,
                "iterations": total,
                "items_per_second": qps,
            }
        },
    }
    if os.path.exists(args.out):
        with open(args.out) as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            sys.exit(f"{args.out}: unexpected schema {doc.get('schema')!r}")
    else:
        doc = {"schema": SCHEMA, "runs": []}
    if doc["runs"] and not args.append:
        sys.exit(f"{args.out} already records {len(doc['runs'])} run(s); "
                 "pass --append to extend it")
    doc["runs"].append(entry)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"recorded ServeLoad/clients={args.clients} -> {args.out}")


if __name__ == "__main__":
    main()
