#pragma once
// Shared plumbing for the experiment harness.  Every bench binary
// regenerates one table or figure of the paper; all of them accept
//   --scale=smoke|default|paper   (see util/cli.hpp)
//   --seeds=N --threads=N --out=DIR
// and print the paper's reference values next to the measured ones so the
// shape comparison is immediate.

#include <filesystem>
#include <iostream>
#include <string>

#include "finder/tangled_logic_finder.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gtl::bench {

/// Linear size factor applied to the paper's |V| and structure sizes.
inline double size_factor(Scale scale) {
  switch (scale) {
    case Scale::kSmoke: return 0.01;
    case Scale::kPaper: return 1.0;
    default: return 0.05;
  }
}

/// Output directory for figures (PPM images, CSV curves).
inline std::filesystem::path out_dir(const CliArgs& args) {
  std::filesystem::path dir = args.get("out", "bench_out");
  std::filesystem::create_directories(dir);
  return dir;
}

/// Standard banner: what this binary reproduces and at what scale.
inline void banner(const std::string& what, Scale scale) {
  std::cout << "=================================================\n"
            << what << "\n"
            << "scale: " << scale_name(scale)
            << " (paper sizes x " << size_factor(scale) << ")\n"
            << "=================================================\n";
}

/// Paper-vs-measured footnote.
inline void shape_note() {
  std::cout << "\nNOTE: reproduction targets are shape-level (who wins, by\n"
               "roughly what factor, where minima/crossovers fall), not\n"
               "absolute numbers: the substrate is a synthetic circuit\n"
               "generator + simulator, not the paper's testbed.\n";
}

}  // namespace gtl::bench
