#pragma once
// Shared plumbing for the experiment harness.  Every bench binary
// regenerates one table or figure of the paper; all of them accept
//   --scale=smoke|default|paper   (see util/cli.hpp)
//   --seeds=N --threads=N --out=DIR --help
// and print the paper's reference values next to the measured ones so the
// shape comparison is immediate.
//
// CLI conventions (util/cli.hpp): binaries register options up front,
// print generated --help on request, and exit nonzero on unparseable
// values or invalid finder configs instead of running with silently
// substituted defaults.

#include <filesystem>
#include <iostream>
#include <string>

#include "finder/finder.hpp"
#include "finder/tangled_logic_finder.hpp"
#include "util/cli.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gtl::bench {

/// Register the options shared by every bench binary.
inline void describe_common_options(CliArgs& args) {
  args.describe("scale=smoke|default|paper",
                "experiment scale (default: default)")
      .describe("out=DIR", "output directory for figures/CSVs "
                           "(default: bench_out)");
}

/// Print the generated help when --help was given; true => exit 0.
inline bool help_exit(const CliArgs& args) { return cli_help_exit(args); }

/// Report any recorded CLI parse error; true => exit nonzero.
inline bool cli_error_exit(const CliArgs& args) {
  return gtl::cli_error_exit(args);
}

/// Reject an out-of-range finder config (Status, not abort); true =>
/// exit nonzero.
inline bool config_error_exit(const FinderConfig& cfg) {
  const Status st = cfg.validate();
  if (st.is_ok()) return false;
  std::cerr << "error: " << st.to_string() << "\n";
  return true;
}

/// Linear size factor applied to the paper's |V| and structure sizes.
inline double size_factor(Scale scale) {
  switch (scale) {
    case Scale::kSmoke: return 0.01;
    case Scale::kPaper: return 1.0;
    default: return 0.05;
  }
}

/// Output directory for figures (PPM images, CSV curves).
inline std::filesystem::path out_dir(const CliArgs& args) {
  std::filesystem::path dir = args.get("out", "bench_out");
  std::filesystem::create_directories(dir);
  return dir;
}

/// Standard banner: what this binary reproduces and at what scale.
inline void banner(const std::string& what, Scale scale) {
  std::cout << "=================================================\n"
            << what << "\n"
            << "scale: " << scale_name(scale)
            << " (paper sizes x " << size_factor(scale) << ")\n"
            << "=================================================\n";
}

/// Paper-vs-measured footnote.
inline void shape_note() {
  std::cout << "\nNOTE: reproduction targets are shape-level (who wins, by\n"
               "roughly what factor, where minima/crossovers fall), not\n"
               "absolute numbers: the substrate is a synthetic circuit\n"
               "generator + simulator, not the paper's testbed.\n";
}

}  // namespace gtl::bench
