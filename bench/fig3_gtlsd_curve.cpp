// Reproduces Figure 3: "Example of density-aware GTL-Score."
//
// Same two agglomerations as Figure 2, scored with GTL-SD.  The paper's
// point: both metrics reveal the planted GTL, but "the contrast of the
// local minimum of the GTL-SD score is more dramatic than the original
// metric" — because the planted structure is built from complex
// (high-pin-count) gates, so A_C/A_G > 1 deepens its minimum.

#include <fstream>
#include <iostream>

#include "curve_common.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Reproduce Figure 3: density-aware GTL-SD agglomeration "
             "curves inside and outside a planted GTL.");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Figure 3 — density-aware GTL-Score vs group size", scale);

  const auto fx = bench::make_curve_fixture(scale);
  const auto dir = bench::out_dir(args);
  {
    std::ofstream csv(dir / "fig3_gtlsd_curve.csv");
    bench::print_curve_csv(csv, "inside_gtl_gtl_sd", fx.inside_curve.gtl_sd);
    bench::print_curve_csv(csv, "outside_gtl_gtl_sd", fx.outside_curve.gtl_sd);
  }
  std::cout << "curve CSV written to " << (dir / "fig3_gtlsd_curve.csv")
            << "\n\n";

  const auto [sd_k, sd_v] = bench::curve_minimum(fx.inside_curve.gtl_sd);
  const auto [ng_k, ng_v] = bench::curve_minimum(fx.inside_curve.ngtl_s);
  const auto [out_k, out_v] = bench::curve_minimum(fx.outside_curve.gtl_sd);

  // Contrast = plateau-after-minimum / minimum (depth of the dip).
  const double sd_plateau = fx.inside_curve.gtl_sd.back();
  const double ng_plateau = fx.inside_curve.ngtl_s.back();
  const double sd_contrast = sd_plateau / std::max(sd_v, 1e-12);
  const double ng_contrast = ng_plateau / std::max(ng_v, 1e-12);

  Table t("Figure 3 (measured vs paper)");
  t.set_header({"quantity", "measured", "paper"});
  t.add_row({"GTL-SD min (inside)",
             fmt_double(sd_v, 4) + " @ k=" +
                 fmt_int(static_cast<long long>(sd_k)),
             "deep minimum at GTL size"});
  t.add_row({"nGTL-S min (inside)",
             fmt_double(ng_v, 4) + " @ k=" +
                 fmt_int(static_cast<long long>(ng_k)),
             "~0.1 at GTL size"});
  t.add_row({"GTL-SD dip contrast", fmt_double(sd_contrast, 1) + "x",
             "more dramatic than nGTL-S"});
  t.add_row({"nGTL-S dip contrast", fmt_double(ng_contrast, 1) + "x", "-"});
  t.add_row({"outside GTL-SD min",
             fmt_double(out_v, 2) + " @ k=" +
                 fmt_int(static_cast<long long>(out_k)),
             "no dip (flat curve)"});
  t.print(std::cout);

  const bool both_find =
      sd_k > fx.gtl_size * 95 / 100 && sd_k < fx.gtl_size * 105 / 100 &&
      ng_k > fx.gtl_size * 95 / 100 && ng_k < fx.gtl_size * 105 / 100;
  const bool sd_deeper = sd_contrast > ng_contrast;
  std::cout << "\nboth metrics reveal the GTL: " << (both_find ? "YES" : "NO")
            << "\nGTL-SD contrast exceeds nGTL-S contrast: "
            << (sd_deeper ? "YES" : "NO") << "\n";
  bench::shape_note();
  return both_find && sd_deeper ? 0 : 1;
}
