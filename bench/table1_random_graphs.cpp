// Reproduces Table 1: "Experimental results on random graphs."
//
// Four cases of planted random graphs (Garbers-style, see graphgen/):
//   1:  10K nodes, one   500-cell GTL
//   2: 100K nodes, one  2K-cell + one 15K-cell GTL
//   3: 100K nodes, one  5K-cell GTL
//   4: 800K nodes, six 40K-cell GTLs
// The tangled-logic finder must rediscover every planted GTL with tiny
// miss/over rates (paper: miss <= 0.14%, over <= 0.5%) and strong scores
// (nGTL-S, GTL-SD well below 1).

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graphgen/planted_graph.hpp"

namespace {

using namespace gtl;
using bench::size_factor;

struct Case {
  int id;
  std::uint32_t num_cells;
  std::vector<PlantedGtlSpec> gtls;
  const char* paper_row;  // reference summary from the paper
};

std::uint32_t scaled(std::uint32_t v, double f, std::uint32_t floor_v) {
  return std::max(floor_v, static_cast<std::uint32_t>(v * f));
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.usage("Reproduce Table 1: rediscover planted GTLs in random graphs.")
      .describe("seeds=N", "random starting seeds per case (default 100)")
      .describe("threads=N", "worker threads (0 = all hardware threads)");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  const auto arg_seeds = args.get_int("seeds", 100);
  const auto arg_threads = args.get_int("threads", 0);
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Table 1 — random graphs with planted GTLs", scale);
  const double f = size_factor(scale);

  const std::vector<Case> cases = {
      {1, 10'000, {{500, 1}},
       "1 GTL found, size 501, nGTL-S 0.1, miss 0%, over 0.2%"},
      {2, 100'000, {{2'000, 1}, {15'000, 1}},
       "2 GTLs, nGTL-S 0.017-0.025, miss <=0.03%, over <=0.5%"},
      {3, 100'000, {{5'000, 1}},
       "1 GTL, size 5008, nGTL-S 0.023, miss 0%, over 0.16%"},
      {4, 800'000, {{40'000, 6}},
       "6 GTLs, nGTL-S 0.0095-0.0191, miss <=0.14%, over <=0.28%"},
  };

  Table t("Table 1 (measured)");
  t.set_header({"Case", "|V|", "Synthesized GTLs", "#seeds", "#GTL found",
                "GTL size", "nGTL-S", "GTL-SD", "Miss", "Over"});

  for (const auto& c : cases) {
    // Case 1 is small enough to run at paper size on every scale.
    const double cf = c.id == 1 && scale != Scale::kSmoke ? 1.0 : f;
    PlantedGraphConfig gcfg;
    gcfg.num_cells = scaled(c.num_cells, cf, 2'000);
    std::string synth;
    std::uint32_t largest = 0;
    for (const auto& spec : c.gtls) {
      PlantedGtlSpec s{scaled(spec.size, cf, 100), spec.count};
      largest = std::max(largest, s.size);
      if (!synth.empty()) synth += "+";
      synth += fmt_int(s.size) + "x" + std::to_string(s.count);
      gcfg.gtls.push_back(s);
    }
    Rng rng(1000 + c.id);
    const PlantedGraph pg = generate_planted_graph(gcfg, rng);

    FinderConfig fcfg;
    fcfg.num_seeds = static_cast<std::size_t>(arg_seeds);
    fcfg.max_ordering_length =
        std::min<std::size_t>(gcfg.num_cells, largest * 4);
    fcfg.num_threads = static_cast<std::size_t>(arg_threads);
    fcfg.rng_seed = 42 + c.id;
    if (bench::config_error_exit(fcfg)) return 2;
    Timer timer;
    Finder finder(pg.netlist, fcfg);
    const FinderResult& res = finder.run();

    bool first_row = true;
    for (const auto& g : res.gtls) {
      // Match each found GTL to its best ground-truth structure.
      RecoveryStats best;
      for (const auto& truth : pg.gtl_members) {
        const auto rec = recovery_stats(truth, g.cells);
        if (rec.overlap > best.overlap) best = rec;
      }
      t.add_row({first_row ? std::to_string(c.id) : "",
                 first_row ? fmt_int(gcfg.num_cells) : "",
                 first_row ? synth : "",
                 first_row ? std::to_string(fcfg.num_seeds) : "",
                 first_row ? std::to_string(res.gtls.size()) : "",
                 fmt_int(static_cast<long long>(g.size())),
                 fmt_double(g.ngtl_s, 4), fmt_double(g.gtl_sd, 4),
                 fmt_percent(best.miss_fraction),
                 fmt_percent(best.over_fraction)});
      first_row = false;
    }
    if (res.gtls.empty()) {
      t.add_row({std::to_string(c.id), fmt_int(gcfg.num_cells), synth,
                 std::to_string(fcfg.num_seeds), "0", "-", "-", "-", "-", "-"});
    }
    std::cout << "case " << c.id << " done in "
              << fmt_double(timer.seconds(), 1)
              << "s   [paper: " << c.paper_row << "]\n";
  }

  std::cout << '\n';
  t.print(std::cout);
  bench::shape_note();
  return 0;
}
