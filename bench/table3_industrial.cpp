// Reproduces Table 3: "GTLs found on the industrial circuit."
//
// The industrial 65nm ASIC contains five dissolved ROM blocks of
// 31880/31914/31754/32002/10932 cells (per its designers).  Our stand-in
// plants structures of exactly those sizes (scaled) in a Rent-rule sea of
// gates; the finder must report each with matching size, a cut of a few
// dozen nets, and a GTL-Score of a few hundredths.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "graphgen/planted_graph.hpp"
#include "graphgen/presets.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Reproduce Table 3: recover the five dissolved ROM blocks of "
             "the industrial-circuit stand-in.")
      .describe("seeds=N", "random starting seeds (default 150)")
      .describe("threads=N", "worker threads (0 = all hardware threads)");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  const auto arg_seeds = args.get_int("seeds", 150);
  const auto arg_threads = args.get_int("threads", 0);
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Table 3 — GTLs found on the industrial circuit", scale);
  const double f = bench::size_factor(scale);

  const auto cfg = industrial_config(f);
  Rng rng(9001);
  const SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);

  std::uint32_t largest = 0;
  for (const auto& s : cfg.structures) largest = std::max(largest, s.size);

  FinderConfig fcfg;
  fcfg.num_seeds = static_cast<std::size_t>(arg_seeds);
  fcfg.max_ordering_length = largest * 4;
  fcfg.num_threads = static_cast<std::size_t>(arg_threads);
  fcfg.rng_seed = 77;
  if (bench::config_error_exit(fcfg)) return 2;
  Timer timer;
  Finder finder(circuit.netlist, fcfg);
  const FinderResult& res = finder.run();
  std::cout << "finder: " << res.gtls.size() << " GTLs in "
            << fmt_double(timer.seconds(), 1) << "s on "
            << fmt_int(static_cast<long long>(circuit.netlist.num_cells()))
            << " cells\n\n";

  // Paper reference rows (design size, found size, cut, score).
  struct PaperRow { int design, found, cut; double score; };
  const PaperRow paper[] = {{31880, 31835, 36, 0.025},
                            {31914, 31869, 36, 0.025},
                            {31754, 31803, 36, 0.026},
                            {32002, 32048, 36, 0.026},
                            {10932, 10952, 28, 0.028}};

  Table t("Table 3 (measured vs paper)");
  t.set_header({"Size of GTL in design", "Size of GTL found", "Cut",
                "GTL-Score", "paper(design/found/cut/score)"});
  for (std::size_t i = 0; i < circuit.planted.size(); ++i) {
    // Match the planted structure to the best-overlapping found GTL.
    const Candidate* best = nullptr;
    std::size_t best_overlap = 0;
    for (const auto& g : res.gtls) {
      const auto rec = recovery_stats(circuit.planted[i], g.cells);
      if (rec.overlap > best_overlap) {
        best_overlap = rec.overlap;
        best = &g;
      }
    }
    std::string paper_ref = "-";
    if (i < std::size(paper)) {
      paper_ref = fmt_int(paper[i].design) + "/" + fmt_int(paper[i].found) +
                  "/" + std::to_string(paper[i].cut) + "/" +
                  fmt_double(paper[i].score, 3);
    }
    if (best == nullptr) {
      t.add_row({fmt_int(static_cast<long long>(circuit.planted[i].size())),
                 "NOT FOUND", "-", "-", paper_ref});
      continue;
    }
    t.add_row({fmt_int(static_cast<long long>(circuit.planted[i].size())),
               fmt_int(static_cast<long long>(best->size())),
               fmt_int(best->cut), fmt_double(best->ngtl_s, 3), paper_ref});
  }
  t.print(std::cout);

  std::cout << "\nglobal Rent exponent estimate: "
            << fmt_double(res.context.rent_exponent, 3)
            << ", A(G) = " << fmt_double(res.context.avg_pins_per_cell, 3)
            << "\n";
  bench::shape_note();
  return 0;
}
