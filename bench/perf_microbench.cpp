// Performance microbenchmarks (google-benchmark) validating the paper's
// complexity claims (Ch. IV) and the design-choice ablations DESIGN.md
// calls out:
//   * Phase I ordering cost ~ O(|E| ln |V|) — growth rate across sizes;
//   * the large-net update-skip trick (paper's K=20) on fanout-heavy nets;
//   * Phase III refinement cost vs. detection quality;
//   * GTL metric evaluation is O(degree) per update, while the baseline
//     connectivity metrics (edge separability / adhesion) need max-flows —
//     the paper's Ch. II argument for why they are impractical.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <vector>

#include "finder/finder.hpp"
#include "finder/refine.hpp"
#include "finder/score_curve.hpp"
#include "graphgen/planted_graph.hpp"
#include "graphgen/presets.hpp"
#include "metrics/baselines.hpp"
#include "metrics/group_connectivity.hpp"
#include "netlist/bookshelf.hpp"
#include "netlist/netlist_io.hpp"
#include "order/linear_ordering.hpp"
#include "place/congestion.hpp"
#include "place/linear_system.hpp"
#include "place/quadratic_placer.hpp"
#include "util/indexed_dary_heap.hpp"
#include "util/rng.hpp"

namespace {

using namespace gtl;

const PlantedGraph& graph_of_size(std::uint32_t n) {
  static std::map<std::uint32_t, PlantedGraph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    PlantedGraphConfig cfg;
    cfg.num_cells = n;
    cfg.gtls.push_back({n / 10, 1});
    Rng rng(n);
    it = cache.emplace(n, generate_planted_graph(cfg, rng)).first;
  }
  return it->second;
}

/// Phase I throughput: cells absorbed per second at various |V|.
void BM_OrderingGrow(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const PlantedGraph& pg = graph_of_size(n);
  OrderingEngine engine(pg.netlist,
                        {.max_length = n / 4, .large_net_threshold = 20});
  std::size_t steps = 0;
  for (auto _ : state) {
    const LinearOrdering ord = engine.grow(pg.gtl_members[0][0]);
    steps += ord.cells.size();
    benchmark::DoNotOptimize(ord.prefix_cut.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_OrderingGrow)->Arg(2'000)->Arg(8'000)->Arg(32'000);

/// Ablation: exact gains (threshold 0) vs the paper's large-net skip, on a
/// graph salted with high-fanout nets.
void BM_LargeNetThreshold(benchmark::State& state) {
  const bool use_trick = state.range(0) != 0;
  static const PlantedGraph* salted = [] {
    PlantedGraphConfig cfg;
    cfg.num_cells = 8'000;
    cfg.gtls.push_back({800, 1});
    Rng rng(5);
    auto* pg = new PlantedGraph(generate_planted_graph(cfg, rng));
    // Salt with 40-pin "bus" nets via a rebuild.
    NetlistBuilder nb;
    for (CellId c = 0; c < pg->netlist.num_cells(); ++c) nb.add_cell();
    for (NetId e = 0; e < pg->netlist.num_nets(); ++e) {
      nb.add_net(pg->netlist.pins_of(e));
    }
    for (int b = 0; b < 120; ++b) {
      std::vector<CellId> pins;
      for (int i = 0; i < 40; ++i) {
        pins.push_back(static_cast<CellId>(rng.next_below(8'000)));
      }
      nb.add_net(pins);
    }
    pg->netlist = nb.build();
    return pg;
  }();
  OrderingEngine engine(
      salted->netlist,
      {.max_length = 2'000,
       .large_net_threshold = use_trick ? 20u : 0u});
  for (auto _ : state) {
    const LinearOrdering ord = engine.grow(salted->gtl_members[0][0]);
    benchmark::DoNotOptimize(ord.cells.data());
  }
}
BENCHMARK(BM_LargeNetThreshold)->Arg(0)->Arg(1);

/// Frontier-structure microbenchmark: the exact op mix Phase I issues
/// (push on discovery, update_key on neighbor gain change, pop/erase on
/// absorb) on the production indexed 4-ary heap vs the previous
/// node-based std::set frontier.  Keys mirror FrontierKey: (gain desc,
/// delta asc, id asc) — a strict total order.
struct ChurnKey {
  double gain;
  std::int32_t delta;
  std::uint32_t id;
};
struct ChurnLess {
  bool operator()(const ChurnKey& a, const ChurnKey& b) const {
    if (a.gain != b.gain) return a.gain > b.gain;
    if (a.delta != b.delta) return a.delta < b.delta;
    return a.id < b.id;
  }
};

/// Pre-computed deterministic op tape so both structures replay the same
/// work: fill with kChurnIds pushes, then one pop + up to
/// `kUpdatesPerStep` re-keys per absorb-step until drained.
struct ChurnTape {
  std::vector<std::uint32_t> update_ids;
  std::vector<double> update_gains;
};
constexpr std::uint32_t kChurnIds = 32'768;
constexpr int kUpdatesPerStep = 8;

const ChurnTape& churn_tape() {
  static const ChurnTape tape = [] {
    ChurnTape t;
    Rng rng(71);
    const std::size_t n = static_cast<std::size_t>(kChurnIds) *
                          kUpdatesPerStep;
    t.update_ids.reserve(n);
    t.update_gains.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      t.update_ids.push_back(
          static_cast<std::uint32_t>(rng.next_below(kChurnIds)));
      t.update_gains.push_back(rng.next_double() * 4.0);
    }
    return t;
  }();
  return tape;
}

void BM_FrontierIndexedHeap(benchmark::State& state) {
  const ChurnTape& tape = churn_tape();
  IndexedDaryHeap<ChurnKey, ChurnLess> heap;
  heap.reset(kChurnIds);
  std::size_t ops = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kChurnIds; ++i) {
      heap.push(i, ChurnKey{tape.update_gains[i], 0, i});
    }
    std::size_t cursor = 0;
    for (std::uint32_t step = 0; step < kChurnIds; ++step) {
      const std::uint32_t victim = heap.top().id;
      heap.pop();
      for (int u = 0; u < kUpdatesPerStep; ++u, ++cursor) {
        const std::uint32_t id = tape.update_ids[cursor];
        if (id != victim && heap.contains(id)) {
          heap.update_key(id, ChurnKey{tape.update_gains[cursor], 0, id});
          ++ops;
        }
      }
      ++ops;
    }
    benchmark::DoNotOptimize(heap.empty());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_FrontierIndexedHeap);

void BM_FrontierStdSet(benchmark::State& state) {
  const ChurnTape& tape = churn_tape();
  std::set<ChurnKey, ChurnLess> frontier;
  std::vector<double> gain(kChurnIds);
  std::vector<std::uint8_t> present(kChurnIds);
  std::size_t ops = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kChurnIds; ++i) {
      gain[i] = tape.update_gains[i];
      present[i] = 1;
      frontier.insert(ChurnKey{gain[i], 0, i});
    }
    std::size_t cursor = 0;
    for (std::uint32_t step = 0; step < kChurnIds; ++step) {
      const std::uint32_t victim = frontier.begin()->id;
      frontier.erase(frontier.begin());
      present[victim] = 0;
      for (int u = 0; u < kUpdatesPerStep; ++u, ++cursor) {
        const std::uint32_t id = tape.update_ids[cursor];
        if (id != victim && present[id]) {
          frontier.erase(ChurnKey{gain[id], 0, id});
          gain[id] = tape.update_gains[cursor];
          frontier.insert(ChurnKey{gain[id], 0, id});
          ++ops;
        }
      }
      ++ops;
    }
    benchmark::DoNotOptimize(frontier.empty());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_FrontierStdSet);

/// GroupConnectivity update cost (the inner loop of everything).
void BM_GroupConnectivityAdd(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  GroupConnectivity group(pg.netlist);
  Rng rng(11);
  std::vector<CellId> cells(4'000);
  for (auto& c : cells) c = static_cast<CellId>(rng.next_below(8'000));
  for (auto _ : state) {
    group.clear();
    for (const CellId c : cells) {
      if (!group.contains(c)) group.add(c);
    }
    benchmark::DoNotOptimize(group.cut());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 4'000);
}
BENCHMARK(BM_GroupConnectivityAdd);

/// Refine-loop churn: interleaved add/remove (Phase III moves cells both
/// ways).  The O(1) member-position index is what keeps `remove` from
/// turning this loop quadratic in group size.
void BM_GroupConnectivityChurn(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  GroupConnectivity group(pg.netlist);
  Rng rng(13);
  std::vector<CellId> ops(8'000);
  for (auto& c : ops) c = static_cast<CellId>(rng.next_below(8'000));
  for (auto _ : state) {
    group.clear();
    for (const CellId c : ops) {
      if (group.contains(c)) {
        group.remove(c);
      } else {
        group.add(c);
      }
    }
    benchmark::DoNotOptimize(group.cut());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 8'000);
}
BENCHMARK(BM_GroupConnectivityChurn);

/// Family scoring in Phase III: many short-lived groups on one tracker.
/// The epoch-stamped clear() makes each assign O(Σ degree of members),
/// independent of how many nets earlier groups touched.
void BM_GroupAssignSmall(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  GroupConnectivity group(pg.netlist);
  Rng rng(29);
  std::vector<std::vector<CellId>> families;
  for (int f = 0; f < 64; ++f) {
    std::vector<CellId>& fam = families.emplace_back();
    for (int i = 0; i < 60; ++i) {
      fam.push_back(static_cast<CellId>(rng.next_below(8'000)));
    }
    std::sort(fam.begin(), fam.end());
    fam.erase(std::unique(fam.begin(), fam.end()), fam.end());
  }
  std::size_t assigns = 0;
  for (auto _ : state) {
    for (const auto& fam : families) {
      group.assign(fam);
      benchmark::DoNotOptimize(group.absorption());
      ++assigns;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(assigns));
}
BENCHMARK(BM_GroupAssignSmall);

/// Phase III end-to-end: refine one grown candidate (re-growths + the
/// genetic family evaluation) on reused worker scratch.
void BM_RefineCandidate(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  OrderingEngine engine(pg.netlist,
                        {.max_length = 2'000, .large_net_threshold = 20});
  const ScoreContext ctx{0.7, pg.netlist.average_pins_per_cell()};
  GroupConnectivity group(pg.netlist);
  RefineArena arena;
  Candidate initial =
      score_members(pg.gtl_members[0], group, ctx, ScoreKind::kNgtlS);
  initial.seed = pg.gtl_members[0][0];
  for (auto _ : state) {
    Rng rng(41);
    const Candidate refined = refine_candidate(
        pg.netlist, initial, engine, group, arena, ctx, ScoreKind::kNgtlS,
        RefineConfig{}, MinimumConfig{}, CurveConfig{}, rng);
    benchmark::DoNotOptimize(refined.score);
  }
}
BENCHMARK(BM_RefineCandidate)->Unit(benchmark::kMillisecond);

/// Paper-scale Phase II/III workload: a planted graph large enough that
/// curve extraction and genetic refinement carry real weight, driven
/// through the session API so the same source measures any tree state.
/// Single worker: these track algorithmic cost, not parallel speedup.
const PlantedGraph& paper_scale_graph() {
  static const PlantedGraph* pg = [] {
    PlantedGraphConfig cfg;
    cfg.num_cells = 48'000;
    cfg.gtls.push_back({2'400, 2});
    cfg.gtls.push_back({1'200, 2});
    Rng rng(2026);
    return new PlantedGraph(generate_planted_graph(cfg, rng));
  }();
  return *pg;
}

FinderConfig paper_scale_config() {
  FinderConfig cfg;
  cfg.num_seeds = 40;
  cfg.max_ordering_length = 10'000;
  cfg.num_threads = 1;
  cfg.rng_seed = 7;
  return cfg;
}

/// Serving-scale workload: a Table-3-sized resident netlist (2M cells)
/// dense with small planted structures, so most seeds yield candidates
/// and Phase III carries the run — the repeated-query shape the session
/// API serves.  This is where the per-candidate O(nets+cells)
/// GroupConnectivity rebuild of the old refine path bites hardest.
const PlantedGraph& serving_scale_graph() {
  static const PlantedGraph* pg = [] {
    PlantedGraphConfig cfg;
    cfg.num_cells = 2'000'000;
    cfg.gtls.push_back({120, 8'000});
    Rng rng(2027);
    return new PlantedGraph(generate_planted_graph(cfg, rng));
  }();
  return *pg;
}

FinderConfig serving_scale_config() {
  FinderConfig cfg;
  cfg.num_seeds = 64;
  cfg.max_ordering_length = 300;
  cfg.num_threads = 1;
  cfg.rng_seed = 7;
  return cfg;
}

/// Phase II alone: score curves + clear-minimum extraction over 40
/// pre-grown 10k-cell orderings (the transcendental-heavy loop).
void BM_ScoreCurve(benchmark::State& state) {
  static Finder* finder = [] {
    auto* f = new Finder(paper_scale_graph().netlist, paper_scale_config());
    f->grow_orderings();
    return f;
  }();
  std::size_t prefixes = 0;
  for (auto _ : state) {
    const CandidateSet& cs = finder->extract_candidates();
    benchmark::DoNotOptimize(cs.candidates.data());
    for (const auto& ord : finder->orderings().orderings) {
      prefixes += ord.cells.size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(prefixes));
}
BENCHMARK(BM_ScoreCurve)->UseRealTime()->Unit(benchmark::kMillisecond);

/// The Phase II kernel in isolation: fused curve + clear-minimum
/// extraction (the simd::bounded_scores enclosure fast path) over the
/// same 40 pre-grown 10k-cell orderings, without finder bookkeeping.
/// Items = prefixes scored per second.
void BM_ScoreCurveBatch(benchmark::State& state) {
  static Finder* finder = [] {
    auto* f = new Finder(paper_scale_graph().netlist, paper_scale_config());
    f->grow_orderings();
    return f;
  }();
  const Netlist& nl = paper_scale_graph().netlist;
  CurveScratch scratch;
  std::size_t prefixes = 0;
  for (auto _ : state) {
    for (const LinearOrdering& ord : finder->orderings().orderings) {
      const CurveExtremum ext = extract_curve_minimum(
          nl, ord, CurveConfig{}, ScoreKind::kGtlSd, MinimumConfig{},
          scratch);
      benchmark::DoNotOptimize(ext.rent_exponent);
      prefixes += ord.cells.size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(prefixes));
}
BENCHMARK(BM_ScoreCurveBatch)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Phase III alone: genetic refinement + pruning of the extracted
/// candidate set (inner re-growths, family set algebra, family scoring).
void BM_RefinePhase(benchmark::State& state) {
  static Finder* finder = [] {
    auto* f = new Finder(serving_scale_graph().netlist, serving_scale_config());
    f->grow_orderings();
    f->extract_candidates();
    return f;
  }();
  std::size_t refined = 0;
  for (auto _ : state) {
    const FinderResult& res = finder->refine_and_prune();
    benchmark::DoNotOptimize(res.gtls.data());
    refined += res.candidates_after_dedup;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(refined));
}
BENCHMARK(BM_RefinePhase)->UseRealTime()->Unit(benchmark::kMillisecond);

/// End-to-end Finder::run() on the serving-scale workload (the number
/// the acceptance bar tracks; session reused, so this is steady-state
/// serving cost).
void BM_FinderRun(benchmark::State& state) {
  static Finder* finder =
      new Finder(serving_scale_graph().netlist, serving_scale_config());
  for (auto _ : state) {
    const FinderResult& res = finder->run();
    benchmark::DoNotOptimize(res.gtls.data());
  }
}
BENCHMARK(BM_FinderRun)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Full finder, with and without Phase III refinement (ablation).
void BM_FinderRefinementAblation(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  FinderConfig cfg;
  cfg.num_seeds = 20;
  cfg.max_ordering_length = 3'200;
  cfg.num_threads = 1;
  cfg.refine_seeds = static_cast<std::size_t>(state.range(0));
  Finder finder(pg.netlist, cfg);
  for (auto _ : state) {
    const FinderResult& res = finder.run();
    benchmark::DoNotOptimize(res.gtls.data());
  }
}
BENCHMARK(BM_FinderRefinementAblation)->Arg(0)->Arg(3)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

/// The repeated-query serving scenario: many small finder queries against
/// one resident netlist.  Cold start pays thread spawn plus O(|V|)
/// engine/scratch allocation on every call (the old one-shot API);
/// session reuse pays them once.
FinderConfig repeated_query_config() {
  FinderConfig cfg;
  cfg.num_seeds = 4;
  cfg.max_ordering_length = 250;
  cfg.num_threads = 4;
  cfg.rng_seed = 5;
  return cfg;
}

void BM_FinderColdStart(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  const FinderConfig cfg = repeated_query_config();
  for (auto _ : state) {
    Finder finder(pg.netlist, cfg);
    benchmark::DoNotOptimize(finder.run().gtls.data());
  }
}
BENCHMARK(BM_FinderColdStart)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_FinderReuse(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  Finder finder(pg.netlist, repeated_query_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.run().gtls.data());
  }
}
BENCHMARK(BM_FinderReuse)->UseRealTime()->Unit(benchmark::kMillisecond);

/// The paper's Ch. II argument: GTL metrics are cheap; edge separability
/// (max-flow per pair) is not.  Same 60-cell cluster, both costs.
void BM_ClusterScoreGtl(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  GroupConnectivity group(pg.netlist);
  std::vector<CellId> cluster(pg.gtl_members[0].begin(),
                              pg.gtl_members[0].begin() + 60);
  const ScoreContext ctx{0.7, pg.netlist.average_pins_per_cell()};
  for (auto _ : state) {
    group.assign(cluster);
    const GtlScores s = score_group(group, ctx);
    benchmark::DoNotOptimize(s.ngtl_s);
  }
}
BENCHMARK(BM_ClusterScoreGtl)->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_ClusterScoreAdhesion(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  std::vector<CellId> cluster(pg.gtl_members[0].begin(),
                              pg.gtl_members[0].begin() + 12);
  for (auto _ : state) {
    auto a = adhesion(pg.netlist, cluster, 512);
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel("12-cell cluster only; quadratic in cluster size");
}
BENCHMARK(BM_ClusterScoreAdhesion)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

/// On-disk design corpus for the I/O benchmarks: a quarter-scale named
/// bigblue1 stand-in written once as Bookshelf text.  Parse throughput
/// is the entry fee every real-corpus run pays before any phase starts.
struct BookshelfCorpus {
  std::filesystem::path dir;
  std::int64_t text_bytes = 0;      // .nodes + .nets + .pl
  std::int64_t snapshot_bytes = 0;  // bench.snap
  // The corpus dir is per-process (unique nonce); clean it up at exit
  // so repeated runs do not accumulate multi-MB trees in /tmp.
  ~BookshelfCorpus() {
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

const BookshelfCorpus& bookshelf_corpus() {
  static const BookshelfCorpus corpus = [] {
    BookshelfCorpus c;
    SyntheticCircuitConfig cfg = ispd_like_config("bigblue1", 0.25);
    cfg.with_names = true;
    Rng rng(2028);
    SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);
    BookshelfDesign d;
    d.netlist = std::move(circuit.netlist);
    d.x = std::move(circuit.hint_x);
    d.y = std::move(circuit.hint_y);
    // Per-process directory: concurrent runs (or another user's leftover
    // tree in a sticky /tmp) must not share corpus files.
    const auto nonce = static_cast<unsigned long long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    c.dir = std::filesystem::temp_directory_path() /
            ("gtl_bench_bookshelf_" + std::to_string(nonce));
    write_bookshelf(d, c.dir, "bench");
    write_snapshot(d, c.dir / "bench.snap");
    for (const char* ext : {".nodes", ".nets", ".pl"}) {
      c.text_bytes += static_cast<std::int64_t>(
          std::filesystem::file_size(c.dir / ("bench" + std::string(ext))));
    }
    c.snapshot_bytes = static_cast<std::int64_t>(
        std::filesystem::file_size(c.dir / "bench.snap"));
    return c;
  }();
  return corpus;
}

/// Full .nodes/.nets/.pl text parse of the corpus design.
void BM_BookshelfParse(benchmark::State& state) {
  const BookshelfCorpus& c = bookshelf_corpus();
  for (auto _ : state) {
    const BookshelfDesign d = read_bookshelf_files(
        c.dir / "bench.nodes", c.dir / "bench.nets", c.dir / "bench.pl");
    benchmark::DoNotOptimize(d.netlist.num_pins());
  }
  state.SetBytesProcessed(state.iterations() * c.text_bytes);
}
BENCHMARK(BM_BookshelfParse)->Unit(benchmark::kMillisecond);

/// Binary snapshot reload of the same design — the cache-hit path for
/// repeated loads of a real-benchmark corpus.
void BM_SnapshotLoad(benchmark::State& state) {
  const BookshelfCorpus& c = bookshelf_corpus();
  for (auto _ : state) {
    const BookshelfDesign d = read_snapshot(c.dir / "bench.snap");
    benchmark::DoNotOptimize(d.netlist.num_pins());
  }
  state.SetBytesProcessed(state.iterations() * c.snapshot_bytes);
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMillisecond);

/// Congestion-map construction throughput.
void BM_CongestionMap(benchmark::State& state) {
  const PlantedGraph& pg = graph_of_size(8'000);
  Rng rng(3);
  std::vector<double> x(pg.netlist.num_cells()), y(pg.netlist.num_cells());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.next_double() * 100.0;
    y[i] = rng.next_double() * 100.0;
  }
  const Die die{100.0, 100.0, 1.0};
  CongestionConfig cfg;
  for (auto _ : state) {
    const CongestionMap m = estimate_congestion(pg.netlist, x, y, die, cfg);
    benchmark::DoNotOptimize(m.demand.data());
  }
}
BENCHMARK(BM_CongestionMap);

/// Jacobi-PCG on a 2D grid Laplacian (the placer's inner solver).
void BM_PcgSolve(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const std::size_t n = side * side;
  SparseMatrix a(n);
  auto id = [side](std::size_t r, std::size_t c) { return r * side + c; };
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      double d = 1e-6;
      const std::size_t i = id(r, c);
      if (r > 0) { a.add(i, id(r - 1, c), -1.0); d += 1.0; }
      if (r + 1 < side) { a.add(i, id(r + 1, c), -1.0); d += 1.0; }
      if (c > 0) { a.add(i, id(r, c - 1), -1.0); d += 1.0; }
      if (c + 1 < side) { a.add(i, id(r, c + 1), -1.0); d += 1.0; }
      a.add(i, i, d);
    }
  }
  a.assemble();
  std::vector<double> b(n, 0.01), x(n, 0.0);
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    const CgResult r = solve_pcg(a, b, x, 1e-6, 500);
    benchmark::DoNotOptimize(r.iterations);
  }
}
BENCHMARK(BM_PcgSolve)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

/// CSR SpMV alone — the gather-heavy product dominating every PCG
/// iteration — on the same 2D grid Laplacian shape BM_PcgSolve solves.
/// Items = nonzeros streamed per second.
void BM_SpMV(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const std::size_t n = side * side;
  SparseMatrix a(n);
  std::size_t nnz = 0;
  auto id = [side](std::size_t r, std::size_t c) { return r * side + c; };
  const auto add = [&a, &nnz](std::size_t r, std::size_t c, double v) {
    a.add(r, c, v);
    ++nnz;
  };
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      double d = 1e-6;
      const std::size_t i = id(r, c);
      if (r > 0) { add(i, id(r - 1, c), -1.0); d += 1.0; }
      if (r + 1 < side) { add(i, id(r + 1, c), -1.0); d += 1.0; }
      if (c > 0) { add(i, id(r, c - 1), -1.0); d += 1.0; }
      if (c + 1 < side) { add(i, id(r, c + 1), -1.0); d += 1.0; }
      add(i, i, d);
    }
  }
  a.assemble();
  Rng rng(17);
  std::vector<double> x(n), y(n);
  for (double& v : x) v = rng.next_double() * 2.0 - 1.0;
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(nnz));
}
BENCHMARK(BM_SpMV)->Arg(64)->Arg(160);

/// The placer end to end: clique/star assembly, anchored PCG solves
/// through the SIMD kernels, spreading rounds, legalization.  A padded
/// synthetic circuit supplies the fixed anchors place_quadratic needs.
void BM_PlacerSolve(benchmark::State& state) {
  static const SyntheticCircuit* circuit = [] {
    SyntheticCircuitConfig cfg;
    cfg.num_cells = 12'000;
    cfg.num_pads = 64;
    StructureSpec s;
    s.size = 600;
    s.center_x = 0.5;
    s.center_y = 0.7;
    cfg.structures.push_back(s);
    Rng rng(2029);
    return new SyntheticCircuit(generate_synthetic_circuit(cfg, rng));
  }();
  PlacerConfig cfg;
  cfg.die = {circuit->die_width, circuit->die_height, 1.0};
  cfg.spreading_iterations = 6;
  cfg.cg_max_iterations = 200;
  cfg.cg_tolerance = 1e-5;
  for (auto _ : state) {
    const Placement p = place_quadratic(circuit->netlist, circuit->hint_x,
                                        circuit->hint_y, cfg);
    benchmark::DoNotOptimize(p.hpwl);
  }
}
BENCHMARK(BM_PlacerSolve)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
