// Reproduces Figure 1 + Figure 7 and the §5.1.3 congestion numbers:
//
//   Fig. 1 — routing congestion map of the placed industrial design:
//            hotspots sit exactly where the dissolved-ROM GTLs are.
//   Fig. 7 — congestion after inflating every strong-GTL cell 4x and
//            re-placing: the hotspots dissolve.
//
// Paper's headline numbers (industrial design):
//   nets through 100%-congested tiles: 179K -> 36K   (5x reduction)
//   nets through  90%-congested tiles: 217K -> 113K  (~2x reduction)
//   avg congestion of worst-20% nets:  136% -> 91%

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "graphgen/presets.hpp"
#include "place/congestion.hpp"
#include "place/inflation.hpp"
#include "place/quadratic_placer.hpp"
#include "viz/plots.hpp"

int main(int argc, char** argv) {
  using namespace gtl;
  CliArgs args(argc, argv);
  args.usage("Reproduce Figures 1 & 7: congestion maps before/after "
             "inflating strong-GTL cells 4x.")
      .describe("seeds=N", "random starting seeds (default 150)")
      .describe("threads=N", "worker threads (0 = all hardware threads)");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  const auto arg_seeds = args.get_int("seeds", 150);
  const auto arg_threads = args.get_int("threads", 0);
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Figures 1 & 7 — congestion before/after GTL cell inflation",
                scale);

  const auto cfg = industrial_config(bench::size_factor(scale));
  Rng rng(7777);
  const SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);

  PlacerConfig pcfg;
  pcfg.die = {circuit.die_width, circuit.die_height, 1.0};
  pcfg.spreading_iterations = 10;
  Timer place_timer;
  const Placement before =
      place_quadratic(circuit.netlist, circuit.hint_x, circuit.hint_y, pcfg);
  std::cout << "baseline placement: HPWL " << fmt_double(before.hpwl, 0)
            << " in " << fmt_double(place_timer.seconds(), 1) << "s\n";

  // Calibrate routing supply so the worst hotspot peaks at ~1.6x capacity
  // (the paper's design shows worst-20%-net congestion of 136%).
  CongestionConfig ccfg;
  ccfg.tiles_x = 64;
  ccfg.tiles_y = 64;
  const CongestionMap probe = estimate_congestion(
      circuit.netlist, before.x, before.y, pcfg.die, ccfg);
  double peak_demand = 0.0;
  for (const double d : probe.demand) {
    peak_demand = std::max(peak_demand, d);
  }
  const double tile_area = (pcfg.die.width / ccfg.tiles_x) *
                           (pcfg.die.height / ccfg.tiles_y);
  ccfg.capacity_per_area = peak_demand / tile_area / 1.6;

  const CongestionMap map0 = estimate_congestion(
      circuit.netlist, before.x, before.y, pcfg.die, ccfg);
  const CongestionReport rep0 =
      analyze_congestion(map0, circuit.netlist, before.x, before.y, ccfg);

  const auto dir = bench::out_dir(args);
  render_congestion(map0, 900).write_ppm(dir / "fig1_congestion_before.ppm");
  std::cout << "\nFig. 1 (before inflation), congestion map:\n"
            << ascii_congestion(map0, 72, 18);

  // Find the GTLs and inflate the strong ones by 4x.
  std::uint32_t largest = 0;
  for (const auto& s : cfg.structures) largest = std::max(largest, s.size);
  FinderConfig fcfg;
  fcfg.num_seeds = static_cast<std::size_t>(arg_seeds);
  fcfg.max_ordering_length = largest * 4;
  fcfg.num_threads = static_cast<std::size_t>(arg_threads);
  fcfg.rng_seed = 17;
  if (bench::config_error_exit(fcfg)) return 2;
  Timer find_timer;
  Finder finder(circuit.netlist, fcfg);
  const FinderResult& found = finder.run();
  std::vector<CellId> inflate_set;
  std::size_t strong = 0;
  for (const auto& g : found.gtls) {
    if (g.score > 0.3) continue;
    ++strong;
    inflate_set.insert(inflate_set.end(), g.cells.begin(), g.cells.end());
  }
  std::cout << "\nfinder: " << found.gtls.size() << " GTLs (" << strong
            << " strong, "
            << fmt_int(static_cast<long long>(inflate_set.size()))
            << " cells inflated 4x) in " << fmt_double(find_timer.seconds(), 1)
            << "s\n";

  const Netlist inflated = inflate_cells(circuit.netlist, inflate_set, 4.0);
  const Placement after =
      place_quadratic(inflated, circuit.hint_x, circuit.hint_y, pcfg);
  const CongestionMap map1 =
      estimate_congestion(inflated, after.x, after.y, pcfg.die, ccfg);
  const CongestionReport rep1 =
      analyze_congestion(map1, inflated, after.x, after.y, ccfg);

  render_congestion(map1, 900).write_ppm(dir / "fig7_congestion_after.ppm");
  std::cout << "\nFig. 7 (after inflation), congestion map:\n"
            << ascii_congestion(map1, 72, 18);
  std::cout << "\nimages: " << (dir / "fig1_congestion_before.ppm") << ", "
            << (dir / "fig7_congestion_after.ppm") << "\n\n";

  auto ratio = [](std::size_t a, std::size_t b) {
    return b == 0 ? (a == 0 ? 1.0 : 1e9) : static_cast<double>(a) / b;
  };
  Table t("§5.1.3 congestion metrics (measured vs paper)");
  t.set_header({"metric", "before", "after", "reduction", "paper"});
  t.add_row({"nets through >=100% tiles",
             fmt_int(static_cast<long long>(rep0.nets_through_full)),
             fmt_int(static_cast<long long>(rep1.nets_through_full)),
             fmt_double(ratio(rep0.nets_through_full, rep1.nets_through_full),
                        1) + "x",
             "179K -> 36K (5x)"});
  t.add_row({"nets through >=90% tiles",
             fmt_int(static_cast<long long>(rep0.nets_through_90)),
             fmt_int(static_cast<long long>(rep1.nets_through_90)),
             fmt_double(ratio(rep0.nets_through_90, rep1.nets_through_90),
                        1) + "x",
             "217K -> 113K (~2x)"});
  t.add_row({"avg congestion, worst-20% nets",
             fmt_percent(rep0.avg_congestion_worst20),
             fmt_percent(rep1.avg_congestion_worst20), "-", "136% -> 91%"});
  t.add_row({"peak tile utilization", fmt_percent(rep0.max_tile_utilization),
             fmt_percent(rep1.max_tile_utilization), "-", "-"});
  t.add_row({"tiles at >=100%",
             fmt_int(static_cast<long long>(rep0.full_tiles)),
             fmt_int(static_cast<long long>(rep1.full_tiles)), "-", "-"});
  t.add_row({"total HPWL", fmt_double(before.hpwl, 0),
             fmt_double(after.hpwl, 0), "-", "grows (area cost)"});
  t.print(std::cout);

  const bool direction_ok =
      rep1.nets_through_full * 2 < rep0.nets_through_full &&
      rep1.max_tile_utilization < rep0.max_tile_utilization;
  std::cout << "\ncongestion relief reproduced (>=2x fewer nets through\n"
               "full tiles, lower peak): "
            << (direction_ok ? "YES" : "NO") << "\n";
  bench::shape_note();
  return direction_ok ? 0 : 1;
}
