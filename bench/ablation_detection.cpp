// Detection-quality ablations for the design choices the paper argues
// for (and DESIGN.md calls out):
//
//   A. ordering criterion — connection gain Σ 1/(λ+1) first (paper §3.2.1)
//      vs. min-cut first (the paper: min-cut-first readily absorbs weakly
//      connected outside cells and excludes strongly connected inside
//      ones);
//   B. selection metric — GTL-SD (paper's final choice) vs. nGTL-S;
//   C. Phase III refinement — on vs. off;
//   D. seed budget — recovery rate as m shrinks.
//
// Each variant runs the full finder on the same planted graphs; quality =
// planted structures recovered with <5% miss, plus mean miss/over.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "graphgen/planted_graph.hpp"

namespace {

using namespace gtl;

struct Quality {
  std::size_t recovered = 0;
  std::size_t planted = 0;
  double mean_miss = 0.0;
  double mean_over = 0.0;
  std::size_t reported = 0;
  double seconds = 0.0;
};

Quality evaluate(const PlantedGraph& pg, const FinderConfig& cfg) {
  Timer timer;
  Finder finder(pg.netlist, cfg);
  const FinderResult& res = finder.run();
  Quality q;
  q.seconds = timer.seconds();
  q.planted = pg.gtl_members.size();
  q.reported = res.gtls.size();
  for (const auto& truth : pg.gtl_members) {
    RecoveryStats best;
    best.miss_fraction = 1.0;
    for (const auto& g : res.gtls) {
      const auto rec = recovery_stats(truth, g.cells);
      if (rec.overlap > best.overlap) best = rec;
    }
    if (best.miss_fraction < 0.05) ++q.recovered;
    q.mean_miss += best.miss_fraction;
    q.mean_over += best.over_fraction;
  }
  q.mean_miss /= static_cast<double>(q.planted);
  q.mean_over /= static_cast<double>(q.planted);
  return q;
}

std::string fmt_quality(const Quality& q) {
  return std::to_string(q.recovered) + "/" + std::to_string(q.planted);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.usage("Detection-quality ablations: ordering criterion, selection "
             "metric, Phase III refinement, seed budget.")
      .describe("seeds=N", "baseline seed budget (default 400)")
      .describe("threads=N", "worker threads (0 = all hardware threads)");
  bench::describe_common_options(args);
  if (bench::help_exit(args)) return 0;
  const Scale scale = parse_scale(args);
  const auto arg_seeds = args.get_int("seeds", 400);
  const auto arg_threads = args.get_int("threads", 0);
  if (bench::cli_error_exit(args)) return 2;
  bench::banner("Ablations — ordering criterion, metric, refinement, seeds",
                scale);
  const double f = bench::size_factor(scale) * 20.0;  // default == x1 here

  PlantedGraphConfig gcfg;
  gcfg.num_cells = std::max<std::uint32_t>(4'000,
      static_cast<std::uint32_t>(20'000 * f));
  gcfg.gtls.push_back(
      {std::max<std::uint32_t>(200, static_cast<std::uint32_t>(1'000 * f)), 2});
  gcfg.gtls.push_back(
      {std::max<std::uint32_t>(100, static_cast<std::uint32_t>(400 * f)), 2});
  Rng rng(31337);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);
  std::cout << "workload: " << fmt_int(gcfg.num_cells)
            << " cells, 4 planted GTLs\n\n";

  FinderConfig base;
  base.num_seeds = static_cast<std::size_t>(arg_seeds);
  base.max_ordering_length = gcfg.gtls[0].size * 4;
  base.num_threads = static_cast<std::size_t>(arg_threads);
  base.rng_seed = 5;
  if (bench::config_error_exit(base)) return 2;

  Table t("ablation results");
  t.set_header({"variant", "recovered", "mean miss", "mean over",
                "#reported", "time(s)"});

  auto row = [&](const std::string& name, const FinderConfig& cfg) {
    const Quality q = evaluate(pg, cfg);
    t.add_row({name, fmt_quality(q), fmt_percent(q.mean_miss),
               fmt_percent(q.mean_over),
               std::to_string(q.reported), fmt_double(q.seconds, 2)});
    return q;
  };

  const Quality baseline = row("baseline (paper config)", base);

  FinderConfig min_cut = base;
  min_cut.min_cut_first = true;
  const Quality mc = row("A: min-cut-first ordering", min_cut);

  FinderConfig ngtl = base;
  ngtl.score = ScoreKind::kNgtlS;
  row("B: select by nGTL-S", ngtl);

  FinderConfig norefine = base;
  norefine.refine_seeds = 0;
  row("C: no Phase III refinement", norefine);

  for (const std::size_t m : {std::size_t{100}, std::size_t{50}}) {
    FinderConfig fewer = base;
    fewer.num_seeds = m;
    row("D: " + std::to_string(m) + " seeds", fewer);
  }

  t.print(std::cout);

  std::cout << "\npaper §3.2.1 claim (connection-first beats min-cut-first): "
            << (baseline.recovered >= mc.recovered &&
                        baseline.mean_miss <= mc.mean_miss + 1e-9
                    ? "CONFIRMED"
                    : "NOT CONFIRMED")
            << "\n";
  bench::shape_note();
  return 0;
}
