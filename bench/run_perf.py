#!/usr/bin/env python3
"""Run perf_microbench and emit/append a compact perf-trajectory JSON.

Every PR that touches a hot path should append a labelled run to
BENCH_phase1.json (committed at the repo root) so the perf history is
reviewable alongside the code:

    bench/run_perf.py --bin build/release/bench/perf_microbench \
        --label "PR N: what changed" --append --out BENCH_phase1.json

The emitted schema (gtl-bench-v1):

    {
      "schema": "gtl-bench-v1",
      "runs": [
        {
          "label": "...",            # human description of the tree state
          "git_rev": "abc1234",      # HEAD; "-dirty" if tree uncommitted
          "date": "2026-07-29T...",  # from google-benchmark's context
          "num_cpus": 8,
          "mhz_per_cpu": 3000,
          "benchmarks": {
            "BM_OrderingGrow/32000": {
              "real_time_ns": 5116275.0,
              "cpu_time_ns": 5017241.0,
              "items_per_second": 1594500.0,   # when the bench reports it
              "iterations": 3
            }, ...
          }
        }, ...
      ]
    }

Aggregate entries (when --repetitions is used) keep only the median, the
robust center for regression comparison.  --compare prints a ratio
table against the last recorded run; on its own it is read-only (no
file is written) — combine with --append to also record the run.
"""

import argparse
import json
import os
import subprocess
import sys

DEFAULT_FILTER = (
    "BM_OrderingGrow|BM_Frontier|BM_GroupConnectivity|BM_GroupAssignSmall|"
    "BM_RefineCandidate|BM_LargeNetThreshold|"
    "BM_ScoreCurve|BM_ScoreCurveBatch|BM_RefinePhase|BM_FinderRun|"
    "BM_FinderColdStart|BM_FinderReuse|"
    "BM_BookshelfParse|BM_SnapshotLoad|"
    "BM_PlacerSolve|BM_SpMV"
)

# --compare flags any tracked benchmark slower than the last recorded run
# by more than this factor.  Advisory: the exit code stays 0 (CI smoke
# runners are noisy, shared, and differently sized — a flag is a prompt
# to re-measure on quiet hardware, not a verdict).
REGRESSION_FACTOR = 1.15

SCHEMA = "gtl-bench-v1"


def run_benchmarks(binary, bench_filter, min_time, repetitions):
    cmd = [
        binary,
        f"--benchmark_filter={bench_filter}",
        "--benchmark_format=json",
    ]
    if min_time is not None:
        # Bare seconds: google-benchmark <= 1.7 rejects the "Ns" suffix
        # that newer releases accept.
        cmd.append(f"--benchmark_min_time={min_time}")
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
        cmd.append("--benchmark_report_aggregates_only=true")
    try:
        out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    except subprocess.CalledProcessError as e:
        # Surface the binary's own error text; the bare CalledProcessError
        # shows only the command and exit code.
        sys.exit(f"benchmark run failed (exit {e.returncode}):\n{e.stderr}")
    return json.loads(out.stdout)


def git_rev():
    try:
        # --dirty marks measurements taken on an uncommitted tree, so a
        # recorded rev always identifies real code state.
        return subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            check=True, capture_output=True, text=True,
        ).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale.get(unit, 1.0)


def extract_run(raw, label, repetitions):
    ctx = raw.get("context", {})
    benchmarks = {}
    for b in raw.get("benchmarks", []):
        name = b["name"]
        if repetitions > 1:
            # Keep only the median aggregate; strip the suffix so run
            # keys line up across single-shot and repeated runs.
            if b.get("aggregate_name") != "median":
                continue
            name = name.rsplit("_median", 1)[0]
        # UseRealTime benchmarks report as "<name>/real_time"; strip the
        # marker so their keys line up with the pre-UseRealTime history.
        if name.endswith("/real_time"):
            name = name[: -len("/real_time")]
        entry = {
            "real_time_ns": to_ns(b["real_time"], b.get("time_unit", "ns")),
            "cpu_time_ns": to_ns(b["cpu_time"], b.get("time_unit", "ns")),
            "iterations": b.get("iterations", 0),
        }
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        benchmarks[name] = entry
    return {
        "label": label,
        "git_rev": git_rev(),
        "date": ctx.get("date", ""),
        "num_cpus": ctx.get("num_cpus", 0),
        "mhz_per_cpu": ctx.get("mhz_per_cpu", 0),
        "benchmarks": benchmarks,
    }


def load_doc(path):
    if os.path.exists(path):
        with open(path) as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            sys.exit(f"{path}: unknown schema {doc.get('schema')!r}")
        return doc
    return {"schema": SCHEMA, "runs": []}


def print_comparison(prev, cur):
    """Real-time ratio table vs `prev` (wall clock is the only meaningful
    axis for the pool-threaded Finder benchmarks, whose work happens off
    the benchmark thread).  Rows slower than REGRESSION_FACTOR x the
    recorded time are flagged; returns the flagged names (advisory — the
    caller/CI must not fail on them)."""
    flagged = []
    missing = []
    print(f"{'benchmark':<42} {'prev ns':>12} {'cur ns':>12} {'speedup':>8}")
    names = sorted(set(prev["benchmarks"]) | set(cur["benchmarks"]))
    for name in names:
        old = prev["benchmarks"].get(name)
        entry = cur["benchmarks"].get(name)
        if entry is None:
            # A tracked benchmark that vanished is worse than a slow one:
            # surface it instead of silently shrinking the table.
            print(f"{name:<42} {old['real_time_ns']:>12.0f} {'-':>12} "
                  f"{'MISSING':>8}")
            missing.append(name)
            continue
        if old is None:
            print(f"{name:<42} {'-':>12} {entry['real_time_ns']:>12.0f} "
                  f"{'new':>8}")
            continue
        ratio = old["real_time_ns"] / entry["real_time_ns"]
        flag = ""
        if entry["real_time_ns"] > old["real_time_ns"] * REGRESSION_FACTOR:
            flag = "  !! regressed"
            flagged.append(name)
        print(f"{name:<42} {old['real_time_ns']:>12.0f} "
              f"{entry['real_time_ns']:>12.0f} {ratio:>7.2f}x{flag}")
    if missing:
        print(f"ADVISORY: {len(missing)} recorded benchmark(s) missing "
              "from this run: " + ", ".join(missing))
    if flagged:
        print(f"ADVISORY: {len(flagged)} benchmark(s) regressed "
              f"> {REGRESSION_FACTOR:.2f}x vs the last recorded run: "
              + ", ".join(flagged))
    elif not missing:
        print(f"no benchmark regressed > {REGRESSION_FACTOR:.2f}x vs the "
              "last recorded run")
    return flagged


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bin", default="build/release/bench/perf_microbench",
                    help="perf_microbench binary (Release build!)")
    ap.add_argument("--out", default="BENCH_phase1.json")
    ap.add_argument("--label", required=True,
                    help="what tree state this run measures")
    ap.add_argument("--filter", default=DEFAULT_FILTER)
    ap.add_argument("--min-time", default=None,
                    help="--benchmark_min_time seconds (e.g. 0.05 for CI)")
    ap.add_argument("--repetitions", type=int, default=3,
                    help="repetitions; medians are recorded (1 = single shot)")
    ap.add_argument("--append", action="store_true",
                    help="extend --out's recorded trajectory with this run")
    ap.add_argument("--replace", action="store_true",
                    help="discard --out's recorded runs and start over")
    ap.add_argument("--compare", action="store_true",
                    help="print a ratio table vs the last recorded run; "
                         "read-only unless combined with --append")
    args = ap.parse_args()

    # Resolve the write mode BEFORE burning minutes on measurement:
    # never silently truncate a committed trajectory, and fail the
    # flag conflict while the mistake is still free.
    doc = load_doc(args.out)
    if args.compare and not doc["runs"] and not (args.append or args.replace):
        sys.exit(f"{args.out} has no recorded runs to compare against")
    writing = args.append or args.replace or not doc["runs"]
    if not writing and not args.compare:
        sys.exit(f"{args.out} already records {len(doc['runs'])} run(s); "
                 "pass --append to extend it, --replace to start over, "
                 "or --compare for a read-only ratio table")

    raw = run_benchmarks(args.bin, args.filter, args.min_time,
                         args.repetitions)
    run = extract_run(raw, args.label, args.repetitions)

    if args.compare and doc["runs"]:
        print_comparison(doc["runs"][-1], run)
    if not writing:
        print("(read-only comparison; re-run with --append to record)")
        return
    if args.replace:
        doc = {"schema": SCHEMA, "runs": []}
    doc["runs"].append(run)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"recorded {len(run['benchmarks'])} benchmarks -> {args.out}")


if __name__ == "__main__":
    main()
