# Shared compile options for every gtl target, attached via the
# INTERFACE target gtl::compile_options (see gtl_add_library below).

add_library(gtl_compile_options INTERFACE)
add_library(gtl::compile_options ALIAS gtl_compile_options)
set_target_properties(gtl_compile_options PROPERTIES
                      EXPORT_NAME compile_options)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(gtl_compile_options INTERFACE -Wall -Wextra)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    # Thread Safety Analysis over the capability-annotated sync layer
    # (src/util/sync.hpp): guarded-field access without the lock,
    # REQUIRES/EXCLUDES violations, double-acquire, and (via the beta
    # set) ACQUIRED_BEFORE/AFTER lock-order violations all diagnose at
    # compile time.  With GTL_WERROR (every CI leg) they fail the build;
    # the lint job's gate-is-live smoke asserts the flags really bite.
    target_compile_options(gtl_compile_options INTERFACE
                           -Wthread-safety -Wthread-safety-beta)
  endif()
  if(GTL_WERROR)
    target_compile_options(gtl_compile_options INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(gtl_compile_options INTERFACE /W4)
  if(GTL_WERROR)
    target_compile_options(gtl_compile_options INTERFACE /WX)
  endif()
endif()

# Every gtl target (libraries, tools, tests, benches) attaches
# gtl::compile_options, so the define is consistent across all TUs — the
# failpoint sites are inline in headers and must not differ per TU.
if(GTL_FAILPOINTS)
  target_compile_definitions(gtl_compile_options INTERFACE GTL_FAILPOINTS_ENABLED=1)
endif()

if(GTL_SANITIZE)
  string(REPLACE "," ";" _gtl_san_list "${GTL_SANITIZE}")
  foreach(_san IN LISTS _gtl_san_list)
    # -fno-sanitize-recover makes UBSan findings abort (and so fail ctest)
    # instead of printing and continuing.
    target_compile_options(gtl_compile_options INTERFACE
                           -fsanitize=${_san} -fno-sanitize-recover=all
                           -fno-omit-frame-pointer)
    target_link_options(gtl_compile_options INTERFACE
                        -fsanitize=${_san} -fno-sanitize-recover=all)
  endforeach()
endif()

find_package(Threads REQUIRED)

# clang-tidy as part of compilation (GTL_CLANG_TIDY=ON / `tidy` preset).
# Attached per gtl target — never to third-party TUs (googletest,
# benchmark) — via gtl_enable_clang_tidy().  Findings fail the build:
# the tree carries a zero-warnings baseline (see .clang-tidy).  When a
# Python 3 interpreter is available the invocation goes through
# tools/tidy_cache.py, a ccache-style wrapper keyed on the compile
# command + source/header/config hashes, so unchanged TUs replay
# instantly on CI re-runs.
if(GTL_CLANG_TIDY)
  find_program(GTL_CLANG_TIDY_EXE
               NAMES clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17
                     clang-tidy-16 clang-tidy-15 clang-tidy-14)
  if(NOT GTL_CLANG_TIDY_EXE)
    message(FATAL_ERROR "GTL_CLANG_TIDY=ON but no clang-tidy in PATH")
  endif()
  set(_gtl_tidy_cmd "${GTL_CLANG_TIDY_EXE}")
  find_package(Python3 COMPONENTS Interpreter QUIET)
  if(Python3_Interpreter_FOUND)
    set(_gtl_tidy_cmd
        "${Python3_EXECUTABLE};${PROJECT_SOURCE_DIR}/tools/tidy_cache.py"
        "--cache-dir;${CMAKE_BINARY_DIR}/tidy-cache"
        "--root;${PROJECT_SOURCE_DIR}"
        "--;${GTL_CLANG_TIDY_EXE}")
  endif()
  set(GTL_CLANG_TIDY_COMMAND "${_gtl_tidy_cmd}" CACHE INTERNAL
      "clang-tidy launcher attached to gtl targets")
endif()

function(gtl_enable_clang_tidy target)
  if(GTL_CLANG_TIDY)
    set_target_properties(${target} PROPERTIES
                          CXX_CLANG_TIDY "${GTL_CLANG_TIDY_COMMAND}")
  endif()
endfunction()

# gtl_add_library(<name> SOURCES ... [DEPS ...])
#
# Defines STATIC library gtl_<name> with alias gtl::<name>, the shared
# include roots (src/ for internal headers, include/ for the public
# <gtl/...> surface), warnings, and its layer dependencies.  Both roots
# collapse to `include` in the install tree (see the GTL_INSTALL rules).
function(gtl_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_library(gtl_${name} STATIC ${ARG_SOURCES})
  add_library(gtl::${name} ALIAS gtl_${name})
  set_target_properties(gtl_${name} PROPERTIES EXPORT_NAME ${name})
  target_include_directories(gtl_${name} PUBLIC
    $<BUILD_INTERFACE:${PROJECT_SOURCE_DIR}/src>
    $<BUILD_INTERFACE:${PROJECT_SOURCE_DIR}/include>
    $<INSTALL_INTERFACE:include>)
  target_link_libraries(gtl_${name}
    PUBLIC ${ARG_DEPS} Threads::Threads
    PRIVATE gtl::compile_options)
  gtl_enable_clang_tidy(gtl_${name})
  set_property(GLOBAL APPEND PROPERTY GTL_INSTALL_TARGETS gtl_${name})
endfunction()

# gtl_add_executable(<name> SOURCES ... [DEPS ...] [INSTALL_DIR <dir>])
function(gtl_add_executable name)
  cmake_parse_arguments(ARG "" "INSTALL_DIR" "SOURCES;DEPS" ${ARGN})
  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name}
    PRIVATE ${ARG_DEPS} gtl::compile_options)
  gtl_enable_clang_tidy(${name})
  if(ARG_INSTALL_DIR)
    install(TARGETS ${name} RUNTIME DESTINATION ${ARG_INSTALL_DIR})
  endif()
endfunction()
