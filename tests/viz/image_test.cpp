#include "viz/image.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace gtl {
namespace {

TEST(Image, ConstructsWithFill) {
  Image img(4, 3, Color{10, 20, 30});
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  const Color c = img.get(2, 1);
  EXPECT_EQ(c.r, 10);
  EXPECT_EQ(c.g, 20);
  EXPECT_EQ(c.b, 30);
}

TEST(Image, SetAndGetPixel) {
  Image img(4, 4);
  img.set(1, 2, Color{255, 0, 0});
  const Color c = img.get(1, 2);
  EXPECT_EQ(c.r, 255);
  EXPECT_EQ(c.g, 0);
}

TEST(Image, OutOfRangeSetIsClipped) {
  Image img(2, 2);
  img.set(-1, 0, Color{1, 1, 1});
  img.set(5, 5, Color{1, 1, 1});  // must not crash or corrupt
  EXPECT_EQ(img.get(0, 0).r, 255);
}

TEST(Image, FillRectClipsAndFills) {
  Image img(4, 4, Color{0, 0, 0});
  img.fill_rect(1, 1, 10, 2, Color{9, 9, 9});
  EXPECT_EQ(img.get(1, 1).r, 9);
  EXPECT_EQ(img.get(3, 2).r, 9);
  EXPECT_EQ(img.get(0, 0).r, 0);
  EXPECT_EQ(img.get(1, 3).r, 0);
}

TEST(Image, WritesValidPpm) {
  const auto path = std::filesystem::temp_directory_path() /
                    "tanglefind_image_test.ppm";
  Image img(3, 2, Color{1, 2, 3});
  img.write_ppm(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  int w, h, maxv;
  in >> w >> h >> maxv;
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxv, 255);
  in.get();  // single whitespace
  std::vector<char> data(3 * 2 * 3);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  EXPECT_EQ(in.gcount(), 18);
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[1], 2);
  EXPECT_EQ(data[2], 3);
  std::filesystem::remove(path);
}

TEST(Image, WriteToBadPathThrows) {
  Image img(2, 2);
  EXPECT_THROW(img.write_ppm("/nonexistent_dir_xyz/out.ppm"),
               std::runtime_error);
}

TEST(HeatColor, ColdIsBlueHotIsRed) {
  const Color cold = heat_color(0.0);
  const Color hot = heat_color(2.0);  // saturates
  EXPECT_GT(cold.b, 200);
  EXPECT_LT(cold.r, 50);
  EXPECT_GT(hot.r, 200);
  EXPECT_LT(hot.b, 50);
}

TEST(HeatColor, MonotoneRedChannel) {
  int prev = -1;
  for (double v = 0.5; v <= 1.2; v += 0.1) {
    const Color c = heat_color(v);
    EXPECT_GE(static_cast<int>(c.r), prev);
    prev = c.r;
  }
}

TEST(CategoryColor, DistinctForSmallIndices) {
  const Color a = category_color(0);
  const Color b = category_color(1);
  EXPECT_TRUE(a.r != b.r || a.g != b.g || a.b != b.b);
  // Wraps around without crashing.
  (void)category_color(1000);
}

}  // namespace
}  // namespace gtl
