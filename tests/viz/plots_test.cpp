#include "viz/plots.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace gtl {
namespace {

TEST(Plots, RenderPlacementProducesImage) {
  const Netlist nl = testing::make_grid3x3();
  const std::vector<double> x = {1, 2, 3, 1, 2, 3, 1, 2, 3};
  const std::vector<double> y = {1, 1, 1, 2, 2, 2, 3, 3, 3};
  const Die die{4.0, 4.0, 1.0};
  const std::vector<std::vector<CellId>> groups = {{0, 1}, {8}};
  const Image img = render_placement(nl, x, y, die, groups, 100);
  EXPECT_EQ(img.width(), 100u);
  EXPECT_EQ(img.height(), 100u);  // square die
  // Group 0's color appears where cell 0 sits: (1,1) die -> (25, 74) px.
  const Color c0 = category_color(0);
  const Color px = img.get(25, 74);
  EXPECT_EQ(px.r, c0.r);
  EXPECT_EQ(px.g, c0.g);
}

TEST(Plots, RenderCongestionMatchesGrid) {
  CongestionMap m;
  m.tiles_x = 2;
  m.tiles_y = 2;
  m.tile_w = 5.0;
  m.tile_h = 5.0;
  m.capacity_per_tile = 1.0;
  m.demand = {0.0, 0.0, 0.0, 2.0};  // top-right tile hot
  const Image img = render_congestion(m, 64);
  // Top-right pixel region must be red-ish, bottom-left blue-ish.
  const Color hot = img.get(48, 16);
  const Color cold = img.get(16, 48);
  EXPECT_GT(hot.r, 150);
  EXPECT_GT(cold.b, 150);
}

TEST(Plots, AsciiCongestionShapeAndContent) {
  CongestionMap m;
  m.tiles_x = 4;
  m.tiles_y = 4;
  m.tile_w = 1.0;
  m.tile_h = 1.0;
  m.capacity_per_tile = 1.0;
  m.demand.assign(16, 0.0);
  m.demand[15] = 5.0;  // top-right
  const std::string art = ascii_congestion(m, 8, 4);
  const auto lines = [&] {
    std::vector<std::string> ls;
    std::string cur;
    for (const char ch : art) {
      if (ch == '\n') {
        ls.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(ch);
      }
    }
    return ls;
  }();
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& l : lines) EXPECT_EQ(l.size(), 8u);
  // Hot tile appears in the first (top) line, right side.
  EXPECT_EQ(lines[0].back(), '@');
  EXPECT_EQ(lines[3][0], ' ');
}

TEST(Plots, AsciiPlacementMarksGroups) {
  const Netlist nl = testing::make_grid3x3();
  const std::vector<double> x = {0.5, 1.5, 2.5, 0.5, 1.5, 2.5, 0.5, 1.5, 2.5};
  const std::vector<double> y = {0.5, 0.5, 0.5, 1.5, 1.5, 1.5, 2.5, 2.5, 2.5};
  const Die die{3.0, 3.0, 1.0};
  const std::vector<std::vector<CellId>> groups = {{0}, {8}};
  const std::string art = ascii_placement(nl, x, y, die, groups, 3, 3);
  // Cell 0 at bottom-left -> last row first char = 'A';
  // cell 8 top-right -> first row last char = 'B'.
  const std::vector<std::string> lines = {art.substr(0, 3), art.substr(4, 3),
                                          art.substr(8, 3)};
  EXPECT_EQ(lines[2][0], 'A');
  EXPECT_EQ(lines[0][2], 'B');
  EXPECT_EQ(lines[1][1], '.');  // background cell 4
}

TEST(Plots, DegenerateDieThrows) {
  const Netlist nl = testing::make_grid3x3();
  const std::vector<double> xy(9, 0.0);
  EXPECT_THROW((void)render_placement(nl, xy, xy, Die{0, 0, 1}, {}),
               std::logic_error);
  EXPECT_THROW((void)ascii_placement(nl, xy, xy, Die{0, 0, 1}, {}),
               std::logic_error);
}

}  // namespace
}  // namespace gtl
