// lint-fixture: path=src/util/simd_avx2.cpp expect=none
#include <immintrin.h>

// The SIMD kernel layer itself is the one place intrinsics belong.
double sum4(const double* v) {
  const __m256d acc = _mm256_loadu_pd(v);
  double out[4];
  _mm256_storeu_pd(out, acc);
  return ((out[0] + out[1]) + (out[2] + out[3]));
}
