// lint-fixture: path=src/finder/fixture.cpp expect=none
#include "finder/candidate.hpp"
#include "metrics/scores.hpp"
#include "netlist/netlist.hpp"
#include "order/linear_ordering.hpp"
#include "util/status.hpp"

#include <vector>
