// lint-fixture: path=src/finder/fixture.cpp expect=none
// gtl-lint: allow(det-wall-clock): timing metadata only; zeroed in results
#include "util/timer.hpp"

double f() {
  gtl::Timer timer;  // gtl-lint: allow(det-wall-clock): metadata only
  return timer.seconds();
}
