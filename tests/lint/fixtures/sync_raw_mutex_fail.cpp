// lint-fixture: path=src/serve/fixture.cpp expect=sync-raw-mutex:6,sync-raw-mutex:9,sync-raw-mutex:10,sync-raw-mutex:15
#include <condition_variable>
#include <mutex>

// The declaration alone is a finding — a bare mutex is invisible to TSA.
std::mutex g_mu;
// Strings and comments never trip the rule: "std::mutex".  // std::lock_guard
const char* label = "std::unique_lock";
std::condition_variable g_cv;
std::unique_lock<std::mutex> hold() { return std::unique_lock<std::mutex>(g_mu); }

// std::once_flag carries no lock discipline and stays legal.
#include <cstddef>
void touch() {
  std::scoped_lock lk(g_mu);
}
