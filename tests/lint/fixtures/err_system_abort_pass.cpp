// lint-fixture: path=src/util/fixture.cpp expect=none
#include <string>

void cli_help_exit(const std::string& s);
void f() { cli_help_exit("x"); }
