// lint-fixture: path=src/finder/fixture.cpp expect=none
#include <string>

// rand() and std::chrono in comments are not findings.
std::string f() {
  return "call rand() or std::random_device";  // and not in strings either
}
