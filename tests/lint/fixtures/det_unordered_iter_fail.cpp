// lint-fixture: path=src/finder/fixture.cpp expect=det-unordered-iter:8,det-unordered-iter:11
#include <unordered_map>
#include <vector>

void f() {
  std::unordered_map<int, int> seen;
  seen[1] = 2;
  for (const auto& kv : seen) {
    (void)kv;
  }
  auto it = seen.begin();
  (void)it;
}
