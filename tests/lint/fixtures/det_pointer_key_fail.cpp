// lint-fixture: path=src/order/fixture.cpp expect=det-pointer-key:6,det-pointer-key:7
#include <functional>
#include <map>

struct Cell;
std::map<Cell*, int> by_ptr;
using CellOrder = std::less<const Cell*>;
