// lint-fixture: path=src/serve/fixture.cpp expect=err-serve-throw:4
#include <stdexcept>

void f() { throw std::runtime_error("boom"); }
