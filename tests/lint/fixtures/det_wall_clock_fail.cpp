// lint-fixture: path=src/finder/fixture.cpp expect=det-wall-clock:2,det-wall-clock:3,det-wall-clock:6,det-wall-clock:7
#include "util/timer.hpp"
#include <chrono>

double f() {
  gtl::Timer timer;
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return timer.seconds();
}
