// lint-fixture: path=tools/fixture.cpp expect=none
#include <cstdlib>

int f() { return rand(); }
