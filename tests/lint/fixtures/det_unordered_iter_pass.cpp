// lint-fixture: path=src/metrics/fixture.cpp expect=none
#include <unordered_set>
#include <vector>

int f(const std::vector<int>& xs) {
  std::unordered_set<int> seen;
  std::unordered_set<int> copy(xs.begin(), xs.end());
  int hits = 0;
  for (int x : xs) {
    if (seen.count(x) != 0) ++hits;
    seen.insert(x);
  }
  return hits + static_cast<int>(copy.size());
}
