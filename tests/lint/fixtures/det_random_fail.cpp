// lint-fixture: path=src/graphgen/fixture.cpp expect=det-random:6,det-random:7,det-random:8
#include <cstdlib>
#include <random>

int f() {
  std::random_device rd;
  std::srand(rd());
  return std::rand();
}
