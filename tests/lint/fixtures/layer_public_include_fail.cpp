// lint-fixture: path=src/viz/fixture.cpp expect=layer-public-include:2
#include "gtl/netlist.hpp"
