// lint-fixture: path=src/serve/fixture.cpp expect=none
#include "util/sync.hpp"

// gtl-lint: allow(sync-unjustified-escape): lock-free epoch-guarded read path, benchmarked in PR 10
void hot_path() GTL_NO_THREAD_SAFETY_ANALYSIS;

void also_inline()
    GTL_NO_THREAD_SAFETY_ANALYSIS;  // gtl-lint: allow(sync-unjustified-escape): destructor runs single-threaded
