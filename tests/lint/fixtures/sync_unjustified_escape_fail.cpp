// lint-fixture: path=src/serve/fixture.cpp expect=sync-unjustified-escape:5
#include "util/sync.hpp"

// No justification: the escape hatch is a finding.
void hot_path() GTL_NO_THREAD_SAFETY_ANALYSIS;

// Mentioning GTL_NO_THREAD_SAFETY_ANALYSIS in a comment is fine, and so
// is the string "GTL_NO_THREAD_SAFETY_ANALYSIS".
const char* doc = "GTL_NO_THREAD_SAFETY_ANALYSIS";
