// lint-fixture: path=src/util/fixture.cpp expect=err-system-abort:5,err-system-abort:6,err-system-abort:7
#include <cstdlib>

void f() {
  std::system("ls");
  std::abort();
  std::exit(1);
}
