// lint-fixture: path=src/serve/fixture.cpp expect=none
#include <string>

std::string f() {
  return R"json({"op": "throw system( abort( rand("})json";
}
