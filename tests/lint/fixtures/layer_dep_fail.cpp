// lint-fixture: path=src/netlist/fixture.cpp expect=layer-dep:2,layer-dep:3
#include "finder/finder.hpp"
#include "serve/protocol.hpp"
#include "util/status.hpp"
