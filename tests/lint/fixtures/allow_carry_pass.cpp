// lint-fixture: path=src/order/fixture.cpp expect=none
#include <cstdlib>

// gtl-lint: allow(det-random): fixture exercises the carried scope

int f() { return rand(); }
