// lint-fixture: path=src/metrics/fixture.cpp expect=simd-intrinsics-contained:2,simd-intrinsics-contained:5,simd-intrinsics-contained:6,simd-intrinsics-contained:11
#include <immintrin.h>

double sum4(const double* v) {
  __m256d acc = _mm256_loadu_pd(v);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  (void)lo;
  double out[4];
  // Strings and comments never trip the rule: "_mm256_add_pd".
  const char* label = "_mm256_add_pd";  // _mm_prefetch
  _mm256_storeu_pd(out, acc);
  return out[0] + (label != nullptr ? 0.0 : 1.0);
}
