// lint-fixture: path=src/metrics/fixture.cpp expect=lint-allow:4,det-random:4
#include <cstdlib>

int f() { return rand(); }  // gtl-lint: allow(no-such-rule): not a rule
