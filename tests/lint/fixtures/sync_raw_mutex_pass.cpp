// lint-fixture: path=src/util/sync.hpp expect=none
// The capability layer itself is the one place the raw primitives live.
#include <condition_variable>
#include <mutex>

namespace gtl {

class Mutex {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

class CondVar {
 private:
  std::condition_variable cv_;
};

}  // namespace gtl
