// lint-fixture: path=src/graphgen/fixture.cpp expect=none
#include <algorithm>
#include <random>
#include <vector>

void f(std::vector<int>& xs, unsigned seed) {
  std::mt19937 gen(seed);
  std::shuffle(xs.begin(), xs.end(), gen);
}
