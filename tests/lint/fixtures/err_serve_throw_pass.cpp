// lint-fixture: path=src/serve/fixture.cpp expect=none
#include <string>

// A comment mentioning throw is fine.
std::string f() { return "error: throw reported upstream"; }
