#!/usr/bin/env python3
"""Pins tools/tidy_cache.py against a stub clang-tidy.

The stub appends one line to a counter file per real invocation and
echoes a canned diagnostic, so the test can assert:

  1. first call runs the tool; second identical call replays from cache
     (identical stdout/exit, no new tool invocation),
  2. editing the source file invalidates the entry,
  3. editing an unrelated repo header invalidates the entry (the global
     header hash is deliberately coarse),
  4. a nonzero tool exit is replayed faithfully,
  5. GTL_TIDY_CACHE_DISABLE=1 bypasses the cache,
  6. missing `--` is a usage error (exit 3).

Usage: tidy_cache_test.py <path-to-tidy_cache.py>
"""

import os
import subprocess
import sys
import tempfile

PASSES = 0


def check(cond, what):
    global PASSES
    if not cond:
        sys.exit(f"tidy_cache_test: FAIL: {what}")
    PASSES += 1


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: tidy_cache_test.py <tidy_cache.py>")
    wrapper = os.path.abspath(sys.argv[1])
    check(os.path.isfile(wrapper), f"wrapper exists at {wrapper}")

    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "repo")
        os.makedirs(os.path.join(root, "src", "util"))
        cache = os.path.join(tmp, "cache")
        counter = os.path.join(tmp, "count")
        source = os.path.join(tmp, "file.cpp")
        header = os.path.join(root, "src", "util", "a.hpp")
        stub = os.path.join(tmp, "fake_tidy.py")

        with open(source, "w") as f:
            f.write("int x;\n")
        with open(header, "w") as f:
            f.write("#pragma once\n")
        with open(os.path.join(root, ".clang-tidy"), "w") as f:
            f.write("Checks: '-*'\n")
        with open(stub, "w") as f:
            f.write(
                "import os, sys\n"
                f"open({counter!r}, 'a').write('run\\n')\n"
                "print('stub-finding: something')\n"
                "sys.exit(int(os.environ.get('STUB_EXIT', '0')))\n"
            )

        def runs():
            if not os.path.exists(counter):
                return 0
            with open(counter) as f:
                return len(f.readlines())

        def invoke(env_extra=None, args=None):
            env = dict(os.environ)
            if env_extra:
                env.update(env_extra)
            cmd = [sys.executable, wrapper] + (
                args
                if args is not None
                else ["--cache-dir", cache, "--root", root, "--",
                      sys.executable, stub, source, "--", "c++", "-c", source]
            )
            return subprocess.run(cmd, capture_output=True, text=True,
                                  env=env)

        # 1. miss then hit
        r1 = invoke()
        check(r1.returncode == 0, f"first run exits 0: {r1.stderr}")
        check("stub-finding" in r1.stdout, "first run prints the diagnostic")
        check(runs() == 1, "first run invoked the tool")
        r2 = invoke()
        check(r2.returncode == 0, "cache hit exits 0")
        check(r2.stdout == r1.stdout, "cache hit replays stdout verbatim")
        check(runs() == 1, "cache hit did not invoke the tool")

        # 2. source edit invalidates
        with open(source, "w") as f:
            f.write("int y;\n")
        invoke()
        check(runs() == 2, "source edit causes a re-run")

        # 3. unrelated repo header edit invalidates (coarse global hash)
        with open(header, "w") as f:
            f.write("#pragma once\nint z;\n")
        invoke()
        check(runs() == 3, "repo header edit causes a re-run")

        # 4. nonzero exit is cached and replayed
        with open(source, "w") as f:
            f.write("int bad;\n")
        r4 = invoke(env_extra={"STUB_EXIT": "7"})
        check(r4.returncode == 7, "tool failure propagates")
        check(runs() == 4, "failure ran the tool")
        r5 = invoke(env_extra={"STUB_EXIT": "7"})
        check(r5.returncode == 7, "cached failure replays its exit code")
        check(runs() == 4, "cached failure did not re-run the tool")

        # 5. disable switch bypasses the cache
        invoke(env_extra={"GTL_TIDY_CACHE_DISABLE": "1"})
        check(runs() == 5, "GTL_TIDY_CACHE_DISABLE=1 always runs the tool")

        # 6. usage errors
        r7 = invoke(args=["--cache-dir", cache, "--root", root])
        check(r7.returncode == 3, "missing -- is a usage error")

    print(f"tidy_cache_test: ok ({PASSES} checks)")


if __name__ == "__main__":
    main()
