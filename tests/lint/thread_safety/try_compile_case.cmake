# Compile one thread-safety case and assert the expected outcome.
#
#   cmake -DCOMPILER=<clang++> -DSOURCE=<case.cpp> -DINCLUDE_DIR=<src>
#         -DEXPECT=PASS|FAIL [-DPATTERN=<regex>] -P try_compile_case.cmake
#
# EXPECT=PASS: the case must compile clean (positive control — proves the
# harness itself is wired correctly).
# EXPECT=FAIL: the case must fail AND the diagnostics must match PATTERN,
# so an unrelated error (typo, missing header) cannot masquerade as the
# thread-safety diagnostic the case documents.
#
# Registered from tests/CMakeLists.txt only when the compiler is Clang —
# GCC accepts the annotations as unknown attributes and would "pass"
# every negative case.

foreach(var COMPILER SOURCE INCLUDE_DIR EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "try_compile_case.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only
          -I${INCLUDE_DIR}
          -Wthread-safety -Wthread-safety-beta -Werror
          ${SOURCE}
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "PASS")
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
      "expected ${SOURCE} to compile clean, but it failed (${rv}):\n"
      "${out}\n${err}")
  endif()
elseif(EXPECT STREQUAL "FAIL")
  if(rv EQUAL 0)
    message(FATAL_ERROR
      "expected ${SOURCE} to FAIL under -Wthread-safety -Werror, "
      "but it compiled clean — the gate is not live")
  endif()
  if(NOT DEFINED PATTERN)
    set(PATTERN "thread-safety")
  endif()
  if(NOT "${out}${err}" MATCHES "${PATTERN}")
    message(FATAL_ERROR
      "${SOURCE} failed to compile, but not with the expected "
      "thread-safety diagnostic (wanted \"${PATTERN}\"):\n${out}\n${err}")
  endif()
else()
  message(FATAL_ERROR "EXPECT must be PASS or FAIL, got \"${EXPECT}\"")
endif()
