// Negative-compile case: acquiring a mutex already held by the same
// scope must fail under -Wthread-safety -Werror (std::mutex deadlocks
// at runtime on relock; the analysis rejects it statically).
// Expected diagnostic: "acquiring mutex 'mu' that is already held".

#include "util/sync.hpp"

gtl::Mutex mu;
int value GTL_GUARDED_BY(mu) = 0;

int double_acquire() {
  gtl::MutexLock outer(mu);
  gtl::MutexLock inner(mu);  // BAD: relock of a held mutex
  return value;
}
