// Positive control for the thread-safety negative-compile harness: a
// correctly annotated class that MUST compile clean under
// -Wthread-safety -Wthread-safety-beta -Werror.  It exists so the
// harness cannot pass vacuously (a broken include path would fail this
// case, not silently "fail" the negative ones).
//
// The CI gate-is-live smoke step also compiles a copy of this file with
// the GTL_REQUIRES annotation stripped and asserts THAT fails — proving
// the warning flags are actually live in the toolchain.

#include "util/sync.hpp"

class Box {
 public:
  int get() GTL_EXCLUDES(mu_) {
    gtl::MutexLock lk(mu_);
    return locked_get();
  }

  void set(int v) GTL_EXCLUDES(mu_) {
    gtl::MutexLock lk(mu_);
    value_ = v;
  }

  // Exercises the mid-scope unlock()/lock() pattern the server's
  // watchdog relies on.
  int get_with_gap() GTL_EXCLUDES(mu_) {
    gtl::MutexLock lk(mu_);
    int v = locked_get();
    lk.unlock();
    v += 1;
    lk.lock();
    v += locked_get();
    return v;
  }

 private:
  int locked_get() GTL_REQUIRES(mu_) { return value_; }

  gtl::Mutex mu_;
  int value_ GTL_GUARDED_BY(mu_) = 0;
};

int use(Box& b) {
  b.set(1);
  return b.get() + b.get_with_gap();
}
