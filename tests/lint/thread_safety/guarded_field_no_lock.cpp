// Negative-compile case: reading a GTL_GUARDED_BY field without holding
// its mutex must fail under -Wthread-safety -Werror.
// Expected diagnostic: "requires holding mutex 'mu_'".

#include "util/sync.hpp"

class Counter {
 public:
  void bump() GTL_EXCLUDES(mu_) {
    gtl::MutexLock lk(mu_);
    ++value_;
  }

  // BAD: unlocked read of a guarded field.
  int read() const { return value_; }

 private:
  mutable gtl::Mutex mu_;
  int value_ GTL_GUARDED_BY(mu_) = 0;
};

int use(Counter& c) {
  c.bump();
  return c.read();
}
