// Negative-compile case: a private helper that touches guarded state
// but lacks GTL_REQUIRES must fail under -Wthread-safety -Werror — the
// analysis sees the unlocked access inside the helper body even though
// every current caller happens to hold the lock.
// Expected diagnostic: "requires holding mutex 'mu_'".

#include "util/sync.hpp"

class Box {
 public:
  int get() GTL_EXCLUDES(mu_) {
    gtl::MutexLock lk(mu_);
    return locked_get();
  }

 private:
  // BAD: missing GTL_REQUIRES(mu_).
  int locked_get() { return value_; }

  gtl::Mutex mu_;
  int value_ GTL_GUARDED_BY(mu_) = 0;
};

int use(Box& b) { return b.get(); }
