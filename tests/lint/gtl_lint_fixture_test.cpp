// Pins gtl_lint itself: every fixture under tests/lint/fixtures declares
// on its first line where it pretends to live and exactly which findings
// it must produce:
//
//   // lint-fixture: path=src/<module>/x.cpp expect=<rule>:<line>[,...]
//   // lint-fixture: path=src/<module>/x.cpp expect=none
//
// A must-fail fixture that stops failing (or fails on the wrong line,
// or with the wrong rule) breaks this suite — the linter's behaviour is
// version-controlled next to the rules it enforces.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.hpp"

namespace {

namespace fs = std::filesystem;
using gtl::lint::Finding;
using gtl::lint::lint_file;
using gtl::lint::rule_names;

struct Fixture {
  std::string name;
  std::string path;                                    // pretend repo path
  std::multiset<std::pair<std::string, int>> expect;   // (rule, line)
  std::string text;
};

std::vector<Fixture> load_fixtures() {
  static const std::regex kHeader(
      R"(^// lint-fixture: path=(\S+) expect=(\S+))");
  std::vector<Fixture> fixtures;
  for (const auto& entry : fs::directory_iterator(GTL_LINT_FIXTURE_DIR)) {
    if (!entry.is_regular_file()) continue;
    Fixture fx;
    fx.name = entry.path().filename().string();
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    fx.text = buf.str();
    std::smatch m;
    const std::string first_line = fx.text.substr(0, fx.text.find('\n'));
    if (!std::regex_search(first_line, m, kHeader)) {
      ADD_FAILURE() << fx.name << ": missing lint-fixture header";
      continue;
    }
    fx.path = m[1].str();
    const std::string expect = m[2].str();
    if (expect != "none") {
      std::stringstream ss(expect);
      std::string item;
      while (std::getline(ss, item, ',')) {
        const std::size_t colon = item.rfind(':');
        if (colon == std::string::npos) {
          ADD_FAILURE() << fx.name << ": bad expect item " << item;
          continue;
        }
        fx.expect.emplace(item.substr(0, colon),
                          std::stoi(item.substr(colon + 1)));
      }
    }
    fixtures.push_back(std::move(fx));
  }
  EXPECT_GE(fixtures.size(), 15u) << "fixture corpus went missing?";
  return fixtures;
}

std::string describe(const std::multiset<std::pair<std::string, int>>& set) {
  std::string out;
  for (const auto& [rule, line] : set) {
    if (!out.empty()) out += ", ";
    out += rule + ":" + std::to_string(line);
  }
  return out.empty() ? "none" : out;
}

TEST(GtlLintFixtures, EveryFixtureProducesExactlyItsDeclaredFindings) {
  for (const Fixture& fx : load_fixtures()) {
    const std::vector<Finding> findings = lint_file(fx.path, fx.text);
    std::multiset<std::pair<std::string, int>> got;
    for (const Finding& f : findings) {
      EXPECT_EQ(f.file, fx.path) << fx.name;
      EXPECT_FALSE(f.message.empty()) << fx.name << ": " << f.rule;
      got.emplace(f.rule, f.line);
    }
    EXPECT_EQ(got, fx.expect)
        << fx.name << ": expected {" << describe(fx.expect) << "}, got {"
        << describe(got) << "}";
  }
}

TEST(GtlLintFixtures, MustFailFixturesDoFail) {
  // The naming convention is load-bearing for humans scanning the
  // corpus: *_fail.cpp must produce findings, *_pass.cpp must not.
  for (const Fixture& fx : load_fixtures()) {
    if (fx.name.find("_fail.") != std::string::npos) {
      EXPECT_FALSE(fx.expect.empty()) << fx.name;
      EXPECT_FALSE(lint_file(fx.path, fx.text).empty()) << fx.name;
    }
    if (fx.name.find("_pass.") != std::string::npos) {
      EXPECT_TRUE(fx.expect.empty()) << fx.name;
      EXPECT_TRUE(lint_file(fx.path, fx.text).empty()) << fx.name;
    }
  }
}

TEST(GtlLint, RuleNamesAreUniqueAndStable) {
  const std::vector<std::string>& names = rule_names();
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  // Removing or renaming a rule silently orphans allow() comments in the
  // tree; force that to be a conscious decision.
  const std::set<std::string> expected = {
      "det-unordered-iter", "det-random",           "det-wall-clock",
      "det-pointer-key",    "layer-dep",            "layer-public-include",
      "err-serve-throw",    "err-system-abort",     "simd-intrinsics-contained",
      "sync-raw-mutex",     "sync-unjustified-escape",
  };
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

TEST(GtlLint, NonSourcePathsProduceNoFindings) {
  const std::string bad = "int f() { return rand(); }\n";
  EXPECT_TRUE(lint_file("tests/foo.cpp", bad).empty());
  EXPECT_TRUE(lint_file("bench/foo.cpp", bad).empty());
  EXPECT_TRUE(lint_file("src/", bad).empty());
  EXPECT_TRUE(lint_file("src/nosuchmodule/foo.cpp", bad).empty());
}

TEST(GtlLint, LayerDagMatchesTheDocumentedArchitecture) {
  const auto violates = [](const std::string& mod, const std::string& inc) {
    const std::string text = "#include \"" + inc + "\"\n";
    return !lint_file("src/" + mod + "/x.cpp", text).empty();
  };
  // Spine of the DAG: util -> netlist -> {order,metrics,graphgen,place}
  // -> finder -> serve; viz hangs off place.
  EXPECT_TRUE(violates("util", "netlist/netlist.hpp"));
  EXPECT_TRUE(violates("netlist", "order/linear_ordering.hpp"));
  EXPECT_TRUE(violates("order", "finder/finder.hpp"));
  EXPECT_TRUE(violates("metrics", "finder/finder.hpp"));
  EXPECT_TRUE(violates("graphgen", "metrics/scores.hpp"));
  EXPECT_TRUE(violates("place", "viz/plots.hpp"));
  EXPECT_TRUE(violates("finder", "serve/server.hpp"));
  EXPECT_TRUE(violates("finder", "viz/plots.hpp"));
  EXPECT_TRUE(violates("serve", "viz/plots.hpp"));

  EXPECT_FALSE(violates("netlist", "util/status.hpp"));
  EXPECT_FALSE(violates("metrics", "order/linear_ordering.hpp"));
  EXPECT_FALSE(violates("viz", "place/congestion.hpp"));
  EXPECT_FALSE(violates("finder", "metrics/scores.hpp"));
  EXPECT_FALSE(violates("serve", "finder/finder.hpp"));
  EXPECT_FALSE(violates("serve", "serve/protocol.hpp"));  // self
  EXPECT_FALSE(violates("util", "util/status.hpp"));      // self
}

}  // namespace
