#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gtl {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| long-name "), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RaggedRowsTolerated) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TableFormat, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(0.5, 0), "0");  // rounds to even
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(TableFormat, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
  EXPECT_EQ(fmt_percent(0.0, 0), "0%");
}

TEST(TableFormat, FmtIntThousands) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_int(1000), "1,000");
  EXPECT_EQ(fmt_int(1096812), "1,096,812");
  EXPECT_EQ(fmt_int(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace gtl
