#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gtl {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 30.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
}

TEST(Stats, PercentileRejectsBadQ) {
  EXPECT_THROW((void)percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(Stats, FitLineExact) {
  // y = 3x + 1
  const std::vector<double> xs = {0, 1, 2, 3};
  const std::vector<double> ys = {1, 4, 7, 10};
  const LineFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, FitLineNoisyR2BelowOne) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  const std::vector<double> ys = {0.1, 0.9, 2.2, 2.8, 4.1};
  const LineFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 1.0, 0.1);
  EXPECT_GT(f.r2, 0.98);
  EXPECT_LT(f.r2, 1.0);
}

TEST(Stats, FitLineRejectsTooFewPoints) {
  EXPECT_THROW(
      (void)fit_line(std::vector<double>{1.0}, std::vector<double>{2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)fit_line(std::vector<double>{1, 2}, std::vector<double>{1}),
      std::invalid_argument);
}

TEST(Stats, FitPowerLawRecoversRentExponent) {
  // T = 2.5 * k^0.63 — the exact model of Rent's rule.
  std::vector<double> ks, ts;
  for (double k = 4; k <= 4096; k *= 2) {
    ks.push_back(k);
    ts.push_back(2.5 * std::pow(k, 0.63));
  }
  const LineFit f = fit_power_law(ks, ts);
  EXPECT_NEAR(f.slope, 0.63, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 2.5, 1e-9);
}

TEST(Stats, FitPowerLawIgnoresNonPositivePoints) {
  const std::vector<double> ks = {0.0, 2, 4, 8};
  const std::vector<double> ts = {5.0, 2, 4, 8};
  const LineFit f = fit_power_law(ks, ts);  // first point dropped
  EXPECT_NEAR(f.slope, 1.0, 1e-9);
}

}  // namespace
}  // namespace gtl
