#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace gtl {
namespace {

CliArgs make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(CliArgs, ParsesKeyValue) {
  const auto args = make_args({"--scale=paper", "--seeds=50"});
  EXPECT_EQ(args.get("scale"), "paper");
  EXPECT_EQ(args.get_int("seeds", 0), 50);
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = make_args({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = make_args({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose"), "true");
}

TEST(CliArgs, UnparseableNumberFallsBackAndRecordsError) {
  const auto args = make_args({"--n=abc"});
  EXPECT_TRUE(args.status().is_ok());
  EXPECT_EQ(args.get_int("n", 9), 9);
  // Not silent anymore: the error is reported through Status.
  const Status st = args.status();
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("--n=abc"), std::string::npos);
}

TEST(CliArgs, PartialAndEmptyNumbersAreErrors) {
  const auto partial = make_args({"--n=12x"});
  EXPECT_EQ(partial.get_int("n", 5), 5);
  EXPECT_FALSE(partial.status().is_ok());
  const auto empty = make_args({"--n="});
  EXPECT_EQ(empty.get_int("n", 5), 5);
  EXPECT_FALSE(empty.status().is_ok());
}

TEST(CliArgs, FirstRecordedErrorWins) {
  const auto args = make_args({"--a=x", "--b=y"});
  (void)args.get_int("a", 0);
  (void)args.get_double("b", 0.0);
  EXPECT_NE(args.status().message().find("--a=x"), std::string::npos);
}

TEST(CliArgs, StrictParsersReportWithoutFallback) {
  const auto args = make_args({"--n=5", "--bad=zz"});
  std::int64_t n = 0;
  EXPECT_TRUE(args.parse_int("n", &n).is_ok());
  EXPECT_EQ(n, 5);
  std::int64_t untouched = 77;
  EXPECT_TRUE(args.parse_int("absent", &untouched).is_ok());
  EXPECT_EQ(untouched, 77);
  EXPECT_FALSE(args.parse_int("bad", &untouched).is_ok());
  EXPECT_EQ(untouched, 77);
}

TEST(CliArgs, HelpRequestedAndGeneratedText) {
  auto args = make_args({"--help"});
  EXPECT_TRUE(args.help_requested());
  EXPECT_FALSE(make_args({"--seeds=3"}).help_requested());

  args.usage("Test program summary.")
      .describe("seeds=N", "random starting seeds")
      .describe("verbose", "print more");
  std::ostringstream os;
  args.print_help(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("usage:"), std::string::npos);
  EXPECT_NE(text.find("Test program summary."), std::string::npos);
  EXPECT_NE(text.find("--seeds=N"), std::string::npos);
  EXPECT_NE(text.find("random starting seeds"), std::string::npos);
  EXPECT_NE(text.find("--verbose"), std::string::npos);
  EXPECT_NE(text.find("--help"), std::string::npos);
}

TEST(CliArgs, ParsesDouble) {
  const auto args = make_args({"--factor=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("factor", 0.0), 0.25);
}

TEST(CliArgs, NonDashArgumentsIgnored) {
  const auto args = make_args({"positional", "--k=v"});
  EXPECT_EQ(args.get("k"), "v");
  EXPECT_FALSE(args.has("positional"));
}

TEST(CliArgs, GetStringReturnsValueOrFallback) {
  const auto args = make_args({"--aux=design.aux"});
  EXPECT_EQ(args.get_string("aux"), "design.aux");
  EXPECT_EQ(args.get_string("absent", "fallback"), "fallback");
  EXPECT_TRUE(args.status().is_ok());
}

TEST(CliArgs, GetStringBareFlagRecordsError) {
  // A bare --aux where a value is expected is a typo (--aux=... was
  // meant), symmetric with get_int on an unparseable value.
  const auto args = make_args({"--aux"});
  EXPECT_EQ(args.get_string("aux", "fallback"), "fallback");
  const Status st = args.status();
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("aux"), std::string::npos);

  std::string out = "untouched";
  EXPECT_FALSE(args.parse_string("aux", &out).is_ok());
  EXPECT_EQ(out, "untouched");
}

TEST(CliArgs, DuplicateFlagRecordsError) {
  const auto args = make_args({"--seeds=3", "--seeds=4"});
  const Status st = args.status();
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("more than once"), std::string::npos);
}

TEST(CliArgs, UnknownFlagRecordsErrorOnceDescribed) {
  // Without any describe()d options the check is off (ad-hoc parsers).
  EXPECT_TRUE(make_args({"--sees=40"}).status().is_ok());

  auto args = make_args({"--sees=40"});
  args.describe("seeds=N", "random starting seeds");
  const Status st = args.status();
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("--sees"), std::string::npos);
  EXPECT_NE(st.message().find("unknown option"), std::string::npos);
}

TEST(CliArgs, DescribedFlagsAndHelpPassUnknownCheck) {
  auto args = make_args({"--seeds=3", "--verbose"});
  args.describe("seeds=N", "seeds").describe("verbose", "print more");
  EXPECT_TRUE(args.status().is_ok());
  auto help = make_args({"--help"});
  help.describe("seeds=N", "seeds");
  EXPECT_TRUE(help.status().is_ok());
}

TEST(Scale, ParseAndName) {
  EXPECT_EQ(parse_scale(make_args({"--scale=smoke"})), Scale::kSmoke);
  EXPECT_EQ(parse_scale(make_args({"--scale=paper"})), Scale::kPaper);
  EXPECT_EQ(parse_scale(make_args({"--scale=default"})), Scale::kDefault);
  EXPECT_EQ(parse_scale(make_args({})), Scale::kDefault);
  EXPECT_STREQ(scale_name(Scale::kSmoke), "smoke");
  EXPECT_STREQ(scale_name(Scale::kPaper), "paper");
  EXPECT_STREQ(scale_name(Scale::kDefault), "default");
}

TEST(Scale, UnknownScaleDefaultsButRecordsError) {
  const auto args = make_args({"--scale=garbage"});
  EXPECT_EQ(parse_scale(args), Scale::kDefault);
  const Status st = args.status();
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("garbage"), std::string::npos);
}

}  // namespace
}  // namespace gtl
