#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gtl {
namespace {

CliArgs make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(CliArgs, ParsesKeyValue) {
  const auto args = make_args({"--scale=paper", "--seeds=50"});
  EXPECT_EQ(args.get("scale"), "paper");
  EXPECT_EQ(args.get_int("seeds", 0), 50);
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const auto args = make_args({});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, BareFlagIsTrue) {
  const auto args = make_args({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose"), "true");
}

TEST(CliArgs, UnparseableNumberFallsBack) {
  const auto args = make_args({"--n=abc"});
  EXPECT_EQ(args.get_int("n", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("n", 2.5), 2.5);
}

TEST(CliArgs, ParsesDouble) {
  const auto args = make_args({"--factor=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("factor", 0.0), 0.25);
}

TEST(CliArgs, NonDashArgumentsIgnored) {
  const auto args = make_args({"positional", "--k=v"});
  EXPECT_EQ(args.get("k"), "v");
  EXPECT_FALSE(args.has("positional"));
}

TEST(Scale, ParseAndName) {
  EXPECT_EQ(parse_scale(make_args({"--scale=smoke"})), Scale::kSmoke);
  EXPECT_EQ(parse_scale(make_args({"--scale=paper"})), Scale::kPaper);
  EXPECT_EQ(parse_scale(make_args({"--scale=default"})), Scale::kDefault);
  EXPECT_EQ(parse_scale(make_args({})), Scale::kDefault);
  EXPECT_EQ(parse_scale(make_args({"--scale=garbage"})), Scale::kDefault);
  EXPECT_STREQ(scale_name(Scale::kSmoke), "smoke");
  EXPECT_STREQ(scale_name(Scale::kPaper), "paper");
  EXPECT_STREQ(scale_name(Scale::kDefault), "default");
}

}  // namespace
}  // namespace gtl
