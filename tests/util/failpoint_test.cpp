// Failpoint framework: config parsing (validated in every build) and the
// arming/scheduling/determinism semantics (compiled only under
// GTL_FAILPOINTS=ON — those tests skip themselves elsewhere so the
// default tier-1 suite stays meaningful without the option).

#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "util/fileio.hpp"

namespace gtl::failpoint {
namespace {

TEST(FailpointConfig, ParsesFullSchedule) {
  Config config;
  const Status st = parse_config(
      R"({"seed": 42,
          "points": {"socket.send": {"action": "short_io", "param": 3,
                                     "skip": 2, "limit": 5,
                                     "probability": 0.5,
                                     "message": "injected"}}})",
      &config);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(config.seed, 42u);
  ASSERT_EQ(config.points.size(), 1u);
  EXPECT_EQ(config.points[0].first, "socket.send");
  const Spec& spec = config.points[0].second;
  EXPECT_EQ(spec.action.kind, Action::Kind::kShortIo);
  EXPECT_EQ(spec.action.param, 3u);
  EXPECT_EQ(spec.action.message, "injected");
  EXPECT_EQ(spec.skip, 2u);
  EXPECT_EQ(spec.limit, 5u);
  EXPECT_DOUBLE_EQ(spec.probability, 0.5);
}

TEST(FailpointConfig, DefaultsAreEveryHitForever) {
  Config config;
  ASSERT_TRUE(parse_config(R"({"points": {"p": {"action": "fail"}}})",
                           &config)
                  .is_ok());
  ASSERT_EQ(config.points.size(), 1u);
  const Spec& spec = config.points[0].second;
  EXPECT_EQ(spec.action.kind, Action::Kind::kFail);
  EXPECT_EQ(spec.skip, 0u);
  EXPECT_EQ(spec.limit, std::numeric_limits<std::uint64_t>::max());
  EXPECT_DOUBLE_EQ(spec.probability, 1.0);
  EXPECT_EQ(config.seed, 0u);
}

TEST(FailpointConfig, EmptyScheduleIsValid) {
  Config config;
  EXPECT_TRUE(parse_config("{}", &config).is_ok());
  EXPECT_TRUE(config.points.empty());
}

TEST(FailpointConfig, RejectsMalformedSchedules) {
  // A schedule that silently tests nothing is worse than a loud error,
  // so every typo class must be rejected.
  const char* bad[] = {
      "",                                                   // not JSON
      "[]",                                                 // not an object
      R"({"sede": 1})",                                     // top-level typo
      R"({"points": []})",                                  // points not object
      R"({"points": {"p": "fail"}})",                       // spec not object
      R"({"points": {"p": {}}})",                           // missing action
      R"({"points": {"p": {"action": "explode"}}})",        // unknown action
      R"({"points": {"p": {"action": 3}}})",                // action not string
      R"({"points": {"p": {"action": "fail", "prm": 1}}})", // spec key typo
      R"({"points": {"p": {"action": "fail",
                           "probability": 1.5}}})",         // out of range
      R"({"points": {"p": {"action": "fail",
                           "probability": -0.1}}})",        // out of range
      R"({"seed": "lots"})",                                // seed not number
  };
  for (const char* text : bad) {
    Config config;
    EXPECT_FALSE(parse_config(text, &config).is_ok())
        << "accepted: " << text;
  }
}

TEST(FailpointConfig, ConfigureFromJsonValidatesInEveryBuild) {
  // Compiled out, this still parses (and reports the typo); compiled in,
  // it additionally arms — either way a bad schedule is an error.
  EXPECT_FALSE(configure_from_json(R"({"nope": 1})").is_ok());
  EXPECT_TRUE(configure_from_json("{}").is_ok());
  disarm_all();
}

#if defined(GTL_FAILPOINTS_ENABLED)

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disarm_all();
    reseed(0);
  }
  void TearDown() override {
    disarm_all();
    reseed(0);
  }
};

TEST_F(FailpointTest, CompiledIn) { EXPECT_TRUE(compiled_in()); }

TEST_F(FailpointTest, UnarmedPointNeverTriggers) {
  Action action;
  EXPECT_FALSE(check("no.such.point", &action));
  EXPECT_EQ(hit_count("no.such.point"), 0u);
}

TEST_F(FailpointTest, ArmedPointTriggersWithItsAction) {
  Spec spec;
  spec.action.kind = Action::Kind::kFail;
  spec.action.message = "boom";
  arm("p", spec);

  Action action;
  ASSERT_TRUE(check("p", &action));
  EXPECT_EQ(action.kind, Action::Kind::kFail);
  EXPECT_EQ(action.message, "boom");
  EXPECT_EQ(hit_count("p"), 1u);
  EXPECT_EQ(trigger_count("p"), 1u);
}

TEST_F(FailpointTest, SkipAndLimitImplementFailTheNth) {
  // fail-the-3rd-hit-once: skip 2, limit 1.
  Spec spec;
  spec.skip = 2;
  spec.limit = 1;
  arm("p", spec);

  Action action;
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(check("p", &action));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(hit_count("p"), 6u);
  EXPECT_EQ(trigger_count("p"), 1u);
}

TEST_F(FailpointTest, ProbabilityStreamIsSeedDeterministic) {
  const auto pattern = [](std::uint64_t seed) {
    disarm_all();
    reseed(seed);
    Spec spec;
    spec.probability = 0.5;
    arm("p", spec);
    std::vector<bool> fired;
    Action action;
    for (int i = 0; i < 64; ++i) fired.push_back(check("p", &action));
    return fired;
  };

  const std::vector<bool> a = pattern(7);
  const std::vector<bool> b = pattern(7);
  const std::vector<bool> c = pattern(8);
  EXPECT_EQ(a, b) << "same seed must replay bit-for-bit";
  EXPECT_NE(a, c) << "different seeds must give different schedules";
  // p = 0.5 over 64 draws: both outcomes occur (probability ~2^-64 not to).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FailpointTest, StreamsAreIndependentOfArmingOrder) {
  const auto run = [](bool p_first) {
    disarm_all();
    reseed(99);
    Spec spec;
    spec.probability = 0.5;
    if (p_first) {
      arm("p", spec);
      arm("q", spec);
    } else {
      arm("q", spec);
      arm("p", spec);
    }
    std::vector<bool> fired;
    Action action;
    for (int i = 0; i < 32; ++i) fired.push_back(check("p", &action));
    return fired;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST_F(FailpointTest, DisarmStopsTriggersAndReportsPresence) {
  arm("p", Spec{});
  Action action;
  ASSERT_TRUE(check("p", &action));
  EXPECT_TRUE(disarm("p"));
  EXPECT_FALSE(disarm("p"));
  EXPECT_FALSE(check("p", &action));
}

TEST_F(FailpointTest, RearmResetsCounters) {
  arm("p", Spec{});
  Action action;
  ASSERT_TRUE(check("p", &action));
  ASSERT_TRUE(check("p", &action));
  EXPECT_EQ(hit_count("p"), 2u);
  arm("p", Spec{});
  EXPECT_EQ(hit_count("p"), 0u);
  EXPECT_EQ(trigger_count("p"), 0u);
}

TEST_F(FailpointTest, TriggerCountsAreNameSorted) {
  arm("b.point", Spec{});
  arm("a.point", Spec{});
  Action action;
  ASSERT_TRUE(check("b.point", &action));
  const auto counts = trigger_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "a.point");
  EXPECT_EQ(counts[0].second, 0u);
  EXPECT_EQ(counts[1].first, "b.point");
  EXPECT_EQ(counts[1].second, 1u);
}

TEST_F(FailpointTest, ConfigureFromJsonArms) {
  ASSERT_TRUE(configure_from_json(
                  R"({"seed": 5,
                      "points": {"p": {"action": "delay", "param": 1,
                                       "limit": 2}}})")
                  .is_ok());
  Action action;
  ASSERT_TRUE(check("p", &action));
  EXPECT_EQ(action.kind, Action::Kind::kDelay);
  EXPECT_EQ(action.param, 1u);
  ASSERT_TRUE(check("p", &action));
  EXPECT_FALSE(check("p", &action)) << "limit 2 must cap the storm";
}

TEST_F(FailpointTest, ShortReadFaultSurfacesAsTornFileRead) {
  // End-to-end through a wired site: a short_io on "fileio.read" hands
  // the caller a prefix, which downstream validation must then reject —
  // the file itself is untouched.
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "gtl_failpoint_read.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "0123456789";
  }

  Spec spec;
  spec.action.kind = Action::Kind::kShortIo;
  spec.action.param = 4;
  spec.limit = 1;
  arm("fileio.read", spec);

  std::string torn;
  ASSERT_TRUE(read_file_to_string(path, &torn).is_ok());
  EXPECT_EQ(torn, "0123") << "short_io must hand back exactly the prefix";

  std::string whole;
  ASSERT_TRUE(read_file_to_string(path, &whole).is_ok());
  EXPECT_EQ(whole, "0123456789") << "the limit spent, reads heal";
  std::filesystem::remove(path);
}

TEST_F(FailpointTest, InjectedOpenFailureIsNotFound) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "gtl_failpoint_open.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "payload";
  }
  Spec spec;
  spec.limit = 1;
  arm("fileio.read.open", spec);

  std::string text;
  const Status st = read_file_to_string(path, &text);
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.to_string();
  EXPECT_TRUE(read_file_to_string(path, &text).is_ok());
  std::filesystem::remove(path);
}

#else  // !GTL_FAILPOINTS_ENABLED

TEST(Failpoint, DisabledBuildIsInert) {
  EXPECT_FALSE(compiled_in());
  arm("p", Spec{});  // no-op, nothing to trigger
  Action action;
  EXPECT_FALSE(check("p", &action));
  EXPECT_EQ(hit_count("p"), 0u);
  EXPECT_TRUE(trigger_counts().empty());
}

#endif  // GTL_FAILPOINTS_ENABLED

}  // namespace
}  // namespace gtl::failpoint
