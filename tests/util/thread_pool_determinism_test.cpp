// Determinism smoke test for the build-critical util layer: parallel_for
// over per-index RNG streams derived with Rng::split must produce the
// same values regardless of pool width or scheduling order. This is the
// mechanism behind tangled_logic_finder.hpp's promise that results
// depend only on `rng_seed`, never on `num_threads` (the finder-level
// half of that invariant lives in tests/finder/finder_determinism_test.cpp).

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace gtl {
namespace {

std::vector<std::uint64_t> draw_per_index(std::size_t num_threads,
                                          std::uint64_t seed, std::size_t n) {
  std::vector<Rng> streams;
  streams.reserve(n);
  Rng root(seed);
  for (std::size_t i = 0; i < n; ++i) streams.push_back(root.split());
  std::vector<std::uint64_t> out(n);
  ThreadPool pool(num_threads);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = streams[i].next(); });
  return out;
}

TEST(ThreadPoolDeterminism, PerIndexStreamsIndependentOfThreadCount) {
  const auto one = draw_per_index(1, 42, 256);
  const auto four = draw_per_index(4, 42, 256);
  const auto eight = draw_per_index(8, 42, 256);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(ThreadPoolDeterminism, StreamsIndependentOfPoolReuse) {
  // Reusing one pool for two batches must match two fresh pools.
  std::vector<std::uint64_t> reused;
  {
    Rng root(7);
    std::vector<Rng> streams;
    for (std::size_t i = 0; i < 64; ++i) streams.push_back(root.split());
    reused.resize(64);
    ThreadPool pool(4);
    pool.parallel_for(32,
                      [&](std::size_t i) { reused[i] = streams[i].next(); });
    pool.parallel_for(32, [&](std::size_t i) {
      reused[32 + i] = streams[32 + i].next();
    });
  }
  EXPECT_EQ(reused, draw_per_index(4, 7, 64));
}

}  // namespace
}  // namespace gtl
