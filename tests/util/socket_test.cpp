// UnixStream/UnixListener robustness: the SIGPIPE contract (a peer
// vanishing mid-response must surface as a Status on the writer, never
// kill the process), line framing limits, and listener edge cases.
//
// These tests run in-process with real AF_UNIX sockets: if the SIGPIPE
// guard (MSG_NOSIGNAL in write_all) ever regresses, the injected-peer
// tests take down the whole test binary — the loudest possible failure.

#include "util/socket.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>

namespace gtl {
namespace {

namespace fs = std::filesystem;

class SocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keep the path short: sun_path caps out near 100 bytes.
    path_ = fs::temp_directory_path() /
            ("gtl_sock_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++) + ".sock");
    fs::remove(path_);
  }
  void TearDown() override {
    if (client_.joinable()) client_.join();
    fs::remove(path_);
  }

  /// Accept one connection while `client_action` runs against the path
  /// on its own thread (joined in TearDown — the peer conversation and
  /// the client conversation interleave).
  UnixStream accept_one(const std::function<void(const fs::path&)>&
                            client_action) {
    EXPECT_TRUE(UnixListener::bind_and_listen(path_, &listener_).is_ok());
    client_ = std::thread([this, client_action] { client_action(path_); });
    UnixStream peer;
    bool accepted = false;
    EXPECT_TRUE(listener_.poll_accept(2000, &peer, &accepted).is_ok());
    EXPECT_TRUE(accepted);
    return peer;
  }

  fs::path path_;
  UnixListener listener_;
  std::thread client_;
  static int counter_;
};

int SocketTest::counter_ = 0;

TEST_F(SocketTest, LineRoundTripAndCleanEof) {
  UnixStream peer = accept_one([](const fs::path& path) {
    UnixStream client;
    ASSERT_TRUE(UnixStream::connect(path, &client).is_ok());
    ASSERT_TRUE(client.write_line("hello").is_ok());
    std::string line;
    bool eof = false;
    ASSERT_TRUE(client.read_line(&line, &eof).is_ok());
    EXPECT_EQ(line, "world");
    client.close();
  });

  std::string line;
  bool eof = false;
  ASSERT_TRUE(peer.read_line(&line, &eof).is_ok());
  EXPECT_EQ(line, "hello");
  EXPECT_FALSE(eof);
  ASSERT_TRUE(peer.write_line("world").is_ok());

  // The client closed after its read: next read is a clean EOF.
  ASSERT_TRUE(peer.read_line(&line, &eof).is_ok());
  EXPECT_TRUE(eof);
  EXPECT_TRUE(line.empty());
}

TEST_F(SocketTest, WriteToVanishedPeerIsStatusNotSigpipe) {
  // The satellite contract: a client that disconnects without reading
  // must turn the server's writes into an error *value*.  If SIGPIPE
  // leaked through, this test would not fail — it would kill the
  // process.
  UnixStream peer = accept_one([](const fs::path& path) {
    UnixStream client;
    ASSERT_TRUE(UnixStream::connect(path, &client).is_ok());
    client.close();  // vanish before reading anything
  });

  // The first writes may land in the socket buffer; keep pushing until
  // the broken pipe surfaces.  64 MiB is far past any kernel buffer.
  const std::string chunk(std::size_t{1} << 20, 'x');
  Status st = Status::ok();
  for (int i = 0; i < 64 && st.is_ok(); ++i) st = peer.write_all(chunk);
  EXPECT_FALSE(st.is_ok()) << "peer is gone; writes must fail eventually";
}

TEST_F(SocketTest, PeerKilledMidResponseSurfacesError) {
  // Same contract one step later in the protocol: the client got part of
  // a response, then died.  The remaining writes must fail cleanly.
  UnixStream peer = accept_one([](const fs::path& path) {
    UnixStream client;
    ASSERT_TRUE(UnixStream::connect(path, &client).is_ok());
    ASSERT_TRUE(client.write_line("req").is_ok());
    std::string first;
    bool eof = false;
    ASSERT_TRUE(client.read_line(&first, &eof).is_ok());
    EXPECT_EQ(first, "part-1");
    client.close();  // die mid-response
  });

  std::string line;
  bool eof = false;
  ASSERT_TRUE(peer.read_line(&line, &eof).is_ok());
  EXPECT_EQ(line, "req");
  ASSERT_TRUE(peer.write_line("part-1").is_ok());

  const std::string chunk(std::size_t{1} << 20, 'y');
  Status st = Status::ok();
  for (int i = 0; i < 64 && st.is_ok(); ++i) st = peer.write_all(chunk);
  EXPECT_FALSE(st.is_ok());
}

TEST_F(SocketTest, OverlongLineIsOutOfRangeNotUnbounded) {
  UnixStream peer = accept_one([](const fs::path& path) {
    UnixStream client;
    ASSERT_TRUE(UnixStream::connect(path, &client).is_ok());
    ASSERT_TRUE(client.write_line(std::string(64, 'a')).is_ok());
  });

  std::string line;
  bool eof = false;
  const Status st = peer.read_line(&line, &eof, /*max_bytes=*/16);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << st.to_string();
}

TEST_F(SocketTest, PollAcceptTimesOutCleanly) {
  UnixListener listener;
  ASSERT_TRUE(UnixListener::bind_and_listen(path_, &listener).is_ok());
  UnixStream peer;
  bool accepted = true;
  ASSERT_TRUE(listener.poll_accept(20, &peer, &accepted).is_ok());
  EXPECT_FALSE(accepted);
}

TEST_F(SocketTest, RefusesToBindOverNonSocketFile) {
  {
    std::ofstream out(path_);
    out << "precious data";
  }
  UnixListener listener;
  EXPECT_FALSE(UnixListener::bind_and_listen(path_, &listener).is_ok());
  EXPECT_TRUE(fs::exists(path_)) << "a non-socket file must never be removed";
}

TEST_F(SocketTest, ReplacesStaleSocketFile) {
  // Simulate a crashed server: a bound socket whose process died without
  // unlinking the path (our listener unlinks in close(), so build the
  // stale file with raw calls).
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string p = path_.string();
    ASSERT_LT(p.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd);  // no unlink: the stale file stays behind
  }
  ASSERT_TRUE(fs::exists(path_));

  UnixListener listener;
  ASSERT_TRUE(UnixListener::bind_and_listen(path_, &listener).is_ok());
  UnixStream client;
  EXPECT_TRUE(UnixStream::connect(path_, &client).is_ok());
}

TEST_F(SocketTest, ConnectToMissingPathIsError) {
  UnixStream client;
  EXPECT_FALSE(UnixStream::connect(path_, &client).is_ok());
  EXPECT_FALSE(client.valid());
}

}  // namespace
}  // namespace gtl
