#include "util/status.hpp"

#include <gtest/gtest.h>

namespace gtl {
namespace {

TEST(Status, DefaultIsOk) {
  const Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_TRUE(st.message().empty());
  EXPECT_EQ(st.to_string(), "ok");
  EXPECT_EQ(st, Status::ok());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status st = Status::invalid_argument("num_seeds too large");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "num_seeds too large");
  EXPECT_EQ(st.to_string(), "invalid argument: num_seeds too large");

  EXPECT_EQ(Status::out_of_range("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::parse_error("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::cancelled("x").code(), StatusCode::kCancelled);
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kParseError), "parse error");
}

Status fails_then_succeeds(bool fail, int* reached) {
  GTL_RETURN_IF_ERROR(fail ? Status::invalid_argument("boom") : Status::ok());
  ++*reached;
  return Status::ok();
}

TEST(Status, ReturnIfErrorMacro) {
  int reached = 0;
  EXPECT_TRUE(fails_then_succeeds(false, &reached).is_ok());
  EXPECT_EQ(reached, 1);
  const Status st = fails_then_succeeds(true, &reached);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reached, 1);  // early return skipped the increment
}

}  // namespace
}  // namespace gtl
