#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace gtl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestoresSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextIntInvalidRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_int(3, 2), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(23);
  for (std::uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto s = rng.sample_distinct(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<std::uint32_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), k);
    for (const auto v : s) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(29);
  const auto s = rng.sample_distinct(10, 10);
  std::set<std::uint32_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(Rng, SampleDistinctTooManyThrows) {
  Rng rng(31);
  EXPECT_THROW(rng.sample_distinct(5, 6), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(37);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace gtl
