#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace gtl {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  const Status st = JsonValue::parse(text, &v);
  EXPECT_TRUE(st.is_ok()) << text << " -> " << st.to_string();
  return v;
}

Status parse_err(const std::string& text) {
  JsonValue v;
  const Status st = JsonValue::parse(text, &v);
  EXPECT_FALSE(st.is_ok()) << text << " unexpectedly parsed";
  return st;
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  bool b = false;
  ASSERT_TRUE(parse_ok("true").get_bool(&b).is_ok());
  EXPECT_TRUE(b);
  std::string s;
  ASSERT_TRUE(parse_ok("\"hi\"").get_string(&s).is_ok());
  EXPECT_EQ(s, "hi");
}

TEST(Json, IntegersKeepIdentity) {
  std::int64_t i = 0;
  ASSERT_TRUE(parse_ok("-42").get_int64(&i).is_ok());
  EXPECT_EQ(i, -42);

  // A value above int64 max parses as uint64 and survives exactly.
  std::uint64_t u = 0;
  ASSERT_TRUE(parse_ok("18446744073709551615").get_uint64(&u).is_ok());
  EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());

  // Integers read as doubles when asked.
  double d = 0.0;
  ASSERT_TRUE(parse_ok("7").get_double(&d).is_ok());
  EXPECT_EQ(d, 7.0);

  // But a fractional number is not an integer.
  EXPECT_FALSE(parse_ok("1.5").get_int64(&i).is_ok());
  // And a negative number is not a uint64.
  EXPECT_EQ(parse_ok("-1").get_uint64(&u).code(), StatusCode::kOutOfRange);
}

TEST(Json, DoublesRoundTripBitExactly) {
  for (const double d : {0.1, 1e-300, 3.141592653589793, -2.5e17,
                         0.6849315068493151}) {
    const std::string text = JsonValue(d).dump();
    double back = 0.0;
    ASSERT_TRUE(parse_ok(text).get_double(&back).is_ok()) << text;
    EXPECT_EQ(back, d) << text;
  }
}

TEST(Json, NonFiniteDoublesDumpAsNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
}

TEST(Json, StringEscapes) {
  std::string s;
  ASSERT_TRUE(
      parse_ok(R"("a\"b\\c\nd\te\u0041")").get_string(&s).is_ok());
  EXPECT_EQ(s, "a\"b\\c\nd\teA");

  // Escaping round trip: dump then parse recovers the original.
  const std::string nasty = "line1\nline2\t\"quoted\"\\slash\x01";
  std::string back;
  ASSERT_TRUE(parse_ok(JsonValue(nasty).dump()).get_string(&back).is_ok());
  EXPECT_EQ(back, nasty);
}

TEST(Json, UnicodeEscapes) {
  std::string s;
  ASSERT_TRUE(parse_ok(R"("\u00e9\u4e2d")").get_string(&s).is_ok());
  EXPECT_EQ(s, "\xc3\xa9\xe4\xb8\xad");  // é and 中 in UTF-8
  // Surrogate pair: U+1F600.
  ASSERT_TRUE(parse_ok(R"("\ud83d\ude00")").get_string(&s).is_ok());
  EXPECT_EQ(s, "\xf0\x9f\x98\x80");
}

TEST(Json, NestedContainers) {
  const JsonValue v = parse_ok(R"({"a": [1, {"b": true}, null], "c": {}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_TRUE(a->array()[2].is_null());
  EXPECT_TRUE(v.find("c")->is_object());
  EXPECT_TRUE(v.find("c")->object().empty());
  EXPECT_FALSE(v.has("missing"));
}

TEST(Json, DumpIsDeterministicAndReparsable) {
  const std::string text =
      R"({"z": 1, "a": [true, "x"], "m": {"k": 2.5}})";
  const JsonValue v = parse_ok(text);
  const std::string compact = v.dump();
  // Keys come out sorted: deterministic output for diffs and caching.
  EXPECT_EQ(compact, R"({"a":[true,"x"],"m":{"k":2.5},"z":1})");
  EXPECT_EQ(parse_ok(compact), v);
  // Pretty output reparses to the same document.
  EXPECT_EQ(parse_ok(v.dump(2)), v);
}

TEST(Json, SetAndMutateObjects) {
  JsonValue v{JsonValue::Object{}};
  v.set("x", JsonValue(std::int64_t{1}));
  v.set("x", JsonValue("two"));
  std::string s;
  ASSERT_TRUE(v.find("x")->get_string(&s).is_ok());
  EXPECT_EQ(s, "two");
}

TEST(Json, ParseErrors) {
  EXPECT_EQ(parse_err("").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_err("{").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_err("[1,]").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_err("tru").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_err("1 2").code(), StatusCode::kParseError);  // trailing
  EXPECT_EQ(parse_err("\"unterminated").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_err("\"bad\\escape\"").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_err("{\"a\":1,\"a\":2}").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_err("01").code(), StatusCode::kParseError);  // no octal
  EXPECT_EQ(parse_err("1.").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_err("1e").code(), StatusCode::kParseError);
  // Errors carry a byte offset.
  EXPECT_NE(parse_err("[1, x]").message().find("byte"), std::string::npos);
}

TEST(Json, HostileNestingRejectedNotCrashed) {
  // Service boundary: deep nesting must yield a Status, never a stack
  // overflow.
  const std::string deep(100'000, '[');
  EXPECT_EQ(parse_err(deep).code(), StatusCode::kParseError);
  const std::string deep_obj = [] {
    std::string s;
    for (int i = 0; i < 10'000; ++i) s += "{\"a\":";
    return s;
  }();
  EXPECT_EQ(parse_err(deep_obj).code(), StatusCode::kParseError);
  // 255 levels is still fine.
  std::string ok255(255, '[');
  ok255 += "1";
  ok255.append(255, ']');
  EXPECT_TRUE(parse_ok(ok255).is_array());
}

TEST(Json, TypedAccessorsRejectWrongKinds) {
  bool b = false;
  EXPECT_FALSE(parse_ok("1").get_bool(&b).is_ok());
  std::string s;
  EXPECT_FALSE(parse_ok("1").get_string(&s).is_ok());
  double d = 0.0;
  EXPECT_FALSE(parse_ok("\"1\"").get_double(&d).is_ok());
  // Container accessors on wrong kinds are programmer errors.
  EXPECT_THROW((void)parse_ok("1").array(), std::logic_error);
  EXPECT_THROW((void)parse_ok("[]").object(), std::logic_error);
}

}  // namespace
}  // namespace gtl
