#include "util/indexed_dary_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace gtl {
namespace {

/// Test key mirroring the ordering engine's FrontierKey: primary criterion
/// plus the id as final tie-break, making the order strict and total.
struct Key {
  double gain = 0.0;
  std::int32_t delta = 0;
  std::uint32_t id = 0;
};

struct KeyLess {
  bool operator()(const Key& a, const Key& b) const {
    if (a.gain != b.gain) return a.gain > b.gain;  // max-gain first
    if (a.delta != b.delta) return a.delta < b.delta;
    return a.id < b.id;
  }
};

using Heap = IndexedDaryHeap<Key, KeyLess>;

Heap make_heap(std::size_t n) {
  Heap h;
  h.reset(n);
  return h;
}

TEST(IndexedDaryHeap, PushPopDrainsInPriorityOrder) {
  Heap h = make_heap(16);
  const double gains[] = {0.5, 2.0, 1.0, 0.25, 3.0, 1.5};
  for (std::uint32_t i = 0; i < 6; ++i) h.push(i, Key{gains[i], 0, i});
  EXPECT_EQ(h.size(), 6u);

  std::vector<double> popped;
  while (!h.empty()) {
    popped.push_back(h.top().key.gain);
    h.pop();
  }
  const std::vector<double> want = {3.0, 2.0, 1.5, 1.0, 0.5, 0.25};
  EXPECT_EQ(popped, want);
  EXPECT_EQ(h.size(), 0u);
}

TEST(IndexedDaryHeap, DuplicatePrimaryKeysPopInIdOrder) {
  Heap h = make_heap(32);
  // Same (gain, delta) everywhere: the embedded id must break the tie.
  for (std::uint32_t id : {7u, 3u, 31u, 0u, 12u}) {
    h.push(id, Key{1.0, -2, id});
  }
  std::vector<std::uint32_t> popped;
  while (!h.empty()) {
    popped.push_back(h.top().id);
    h.pop();
  }
  const std::vector<std::uint32_t> want = {0, 3, 7, 12, 31};
  EXPECT_EQ(popped, want);
}

TEST(IndexedDaryHeap, UpdateKeyMovesBothDirections) {
  Heap h = make_heap(8);
  for (std::uint32_t i = 0; i < 4; ++i) {
    h.push(i, Key{static_cast<double>(i), 0, i});
  }
  EXPECT_EQ(h.top().id, 3u);

  // Raise id 0 above everything.
  h.update_key(0, Key{10.0, 0, 0});
  EXPECT_EQ(h.top().id, 0u);
  EXPECT_EQ(h.key_of(0).gain, 10.0);

  // Sink it back below everything.
  h.update_key(0, Key{-1.0, 0, 0});
  EXPECT_EQ(h.top().id, 3u);

  std::vector<std::uint32_t> popped;
  while (!h.empty()) {
    popped.push_back(h.top().id);
    h.pop();
  }
  const std::vector<std::uint32_t> want = {3, 2, 1, 0};
  EXPECT_EQ(popped, want);
}

TEST(IndexedDaryHeap, EraseRemovesFromAnywhere) {
  Heap h = make_heap(8);
  for (std::uint32_t i = 0; i < 6; ++i) {
    h.push(i, Key{static_cast<double>(i), 0, i});
  }
  h.erase(5);  // the top
  h.erase(2);  // somewhere in the middle
  EXPECT_FALSE(h.contains(5));
  EXPECT_FALSE(h.contains(2));
  EXPECT_TRUE(h.contains(4));

  std::vector<std::uint32_t> popped;
  while (!h.empty()) {
    popped.push_back(h.top().id);
    h.pop();
  }
  const std::vector<std::uint32_t> want = {4, 3, 1, 0};
  EXPECT_EQ(popped, want);
}

TEST(IndexedDaryHeap, ClearEmptiesAndAllowsReuse) {
  Heap h = make_heap(8);
  for (std::uint32_t i = 0; i < 5; ++i) h.push(i, Key{1.0, 0, i});
  h.clear();
  EXPECT_TRUE(h.empty());
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_FALSE(h.contains(i));

  h.push(3, Key{2.0, 0, 3});
  h.push(1, Key{5.0, 0, 1});
  EXPECT_EQ(h.top().id, 1u);
  EXPECT_EQ(h.size(), 2u);
}

TEST(IndexedDaryHeap, RandomizedChurnMatchesStdSet) {
  constexpr std::uint32_t kIds = 300;
  Heap h = make_heap(kIds);
  std::set<Key, KeyLess> reference;
  std::vector<bool> present(kIds, false);
  std::vector<Key> key_of(kIds);
  Rng rng(20260729);

  auto random_key = [&](std::uint32_t id) {
    return Key{static_cast<double>(rng.next_below(40)) * 0.25,
               static_cast<std::int32_t>(rng.next_below(5)) - 2, id};
  };

  for (int step = 0; step < 20'000; ++step) {
    const std::uint32_t id = static_cast<std::uint32_t>(rng.next_below(kIds));
    switch (rng.next_below(4)) {
      case 0:  // push or re-key
        if (!present[id]) {
          key_of[id] = random_key(id);
          h.push(id, key_of[id]);
          reference.insert(key_of[id]);
          present[id] = true;
        } else {
          reference.erase(key_of[id]);
          key_of[id] = random_key(id);
          h.update_key(id, key_of[id]);
          reference.insert(key_of[id]);
        }
        break;
      case 1:  // erase
        if (present[id]) {
          h.erase(id);
          reference.erase(key_of[id]);
          present[id] = false;
        }
        break;
      case 2:  // pop
        if (!reference.empty()) {
          const Key top = *reference.begin();
          ASSERT_EQ(h.top().id, top.id);
          h.pop();
          reference.erase(reference.begin());
          present[top.id] = false;
        }
        break;
      default:  // membership probe
        ASSERT_EQ(h.contains(id), present[id]);
        break;
    }
    ASSERT_EQ(h.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_EQ(h.top().id, reference.begin()->id);
      ASSERT_EQ(h.top().key.gain, reference.begin()->gain);
    }
  }
}

}  // namespace
}  // namespace gtl
