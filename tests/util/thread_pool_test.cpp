#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gtl {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 1000; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500500);
}

}  // namespace
}  // namespace gtl
