#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gtl {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DynamicVisitsEveryIndexOnceWithValidSlots) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<bool> slot_ok{true};
  pool.parallel_for_dynamic(100, [&](std::size_t i, std::size_t slot) {
    hits[i].fetch_add(1);
    if (slot >= 4) slot_ok = false;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_TRUE(slot_ok.load());
}

TEST(ThreadPool, DynamicMoreWorkersThanItems) {
  // Only min(size, n) slots may appear: per-slot scratch sized to the
  // item count must stay in bounds.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  std::atomic<bool> slot_ok{true};
  pool.parallel_for_dynamic(3, [&](std::size_t i, std::size_t slot) {
    hits[i].fetch_add(1);
    if (slot >= 3) slot_ok = false;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_TRUE(slot_ok.load());
}

TEST(ThreadPool, DynamicZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for_dynamic(
      0, [](std::size_t, std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, DynamicSingleWorkerRunsInIndexOrder) {
  // The deterministic-prefix guarantee for cancelled runs rests on this:
  // one worker drains the ticket counter in increasing order.
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for_dynamic(
      64, [&](std::size_t i, std::size_t) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, DynamicPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_dynamic(8,
                                [](std::size_t i, std::size_t) {
                                  if (i == 3) throw std::runtime_error("x");
                                }),
      std::runtime_error);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 1000; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500500);
}

}  // namespace
}  // namespace gtl
