#include "graphgen/planted_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "metrics/group_connectivity.hpp"
#include "metrics/scores.hpp"

namespace gtl {
namespace {

TEST(PlantedGraph, RespectsRequestedSizes) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 2000;
  cfg.gtls.push_back({100, 2});
  cfg.gtls.push_back({300, 1});
  Rng rng(1);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  EXPECT_EQ(pg.netlist.num_cells(), 2000u);
  ASSERT_EQ(pg.gtl_members.size(), 3u);
  EXPECT_EQ(pg.gtl_members[0].size(), 100u);
  EXPECT_EQ(pg.gtl_members[1].size(), 100u);
  EXPECT_EQ(pg.gtl_members[2].size(), 300u);
}

TEST(PlantedGraph, GtlsAreDisjoint) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 1000;
  cfg.gtls.push_back({150, 3});
  Rng rng(2);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  std::unordered_set<CellId> seen;
  for (const auto& gtl : pg.gtl_members) {
    for (const CellId c : gtl) {
      EXPECT_TRUE(seen.insert(c).second) << "cell in two GTLs";
    }
  }
}

TEST(PlantedGraph, MembersSortedAndInRange) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 500;
  cfg.gtls.push_back({80, 1});
  Rng rng(3);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);
  const auto& m = pg.gtl_members[0];
  EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
  for (const CellId c : m) EXPECT_LT(c, 500u);
}

TEST(PlantedGraph, OversizedRequestThrows) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 100;
  cfg.gtls.push_back({90, 2});
  Rng rng(4);
  EXPECT_THROW((void)generate_planted_graph(cfg, rng), std::invalid_argument);
}

TEST(PlantedGraph, TinyGtlRejected) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 100;
  cfg.gtls.push_back({1, 1});
  Rng rng(5);
  EXPECT_THROW((void)generate_planted_graph(cfg, rng), std::invalid_argument);
}

TEST(PlantedGraph, DeterministicGivenSeed) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 800;
  cfg.gtls.push_back({60, 1});
  Rng r1(77), r2(77);
  const PlantedGraph a = generate_planted_graph(cfg, r1);
  const PlantedGraph b = generate_planted_graph(cfg, r2);
  EXPECT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
  EXPECT_EQ(a.netlist.num_pins(), b.netlist.num_pins());
  EXPECT_EQ(a.gtl_members, b.gtl_members);
}

TEST(PlantedGraph, PlantedGtlHasLowNgtlScore) {
  // The defining property: the planted structure must score far below the
  // average-group value of 1 (paper: strong GTLs < 0.1).
  PlantedGraphConfig cfg;
  cfg.num_cells = 10'000;
  cfg.gtls.push_back({500, 1});
  Rng rng(6);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  GroupConnectivity g(pg.netlist);
  g.assign(pg.gtl_members[0]);
  const ScoreContext ctx{0.65, pg.netlist.average_pins_per_cell()};
  const GtlScores s = score_group(g, ctx);
  EXPECT_LT(s.ngtl_s, 0.25);
  EXPECT_LT(s.gtl_sd, s.ngtl_s);  // density-aware contrast is stronger
}

TEST(PlantedGraph, GtlCutIsSmallAbsoluteNumber) {
  // Ports bound the cut: at most ports_per_gtl * nets_per_port.
  PlantedGraphConfig cfg;
  cfg.num_cells = 5'000;
  cfg.ports_per_gtl = 24;
  cfg.nets_per_port = 2;
  cfg.gtls.push_back({400, 1});
  Rng rng(7);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  GroupConnectivity g(pg.netlist);
  g.assign(pg.gtl_members[0]);
  EXPECT_LE(g.cut(), 48);
  EXPECT_GT(g.cut(), 0);
}

TEST(PlantedGraph, GtlIsDenserThanBackground) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 8'000;
  cfg.gtls.push_back({600, 1});
  Rng rng(8);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  GroupConnectivity g(pg.netlist);
  g.assign(pg.gtl_members[0]);
  // A_C of the GTL exceeds A_G: complex-gate pin profile.
  EXPECT_GT(g.avg_pins_per_cell(), pg.netlist.average_pins_per_cell());
}

TEST(RecoveryStats, ExactMatch) {
  const std::vector<CellId> truth = {1, 2, 3, 4};
  const auto st = recovery_stats(truth, truth);
  EXPECT_DOUBLE_EQ(st.miss_fraction, 0.0);
  EXPECT_DOUBLE_EQ(st.over_fraction, 0.0);
  EXPECT_EQ(st.overlap, 4u);
}

TEST(RecoveryStats, MissAndOver) {
  const std::vector<CellId> truth = {1, 2, 3, 4};
  const std::vector<CellId> found = {2, 3, 4, 5, 6};
  const auto st = recovery_stats(truth, found);
  EXPECT_DOUBLE_EQ(st.miss_fraction, 0.25);  // missed cell 1
  EXPECT_DOUBLE_EQ(st.over_fraction, 0.5);   // extra cells 5, 6
  EXPECT_EQ(st.overlap, 3u);
}

TEST(RecoveryStats, EmptyTruthIsSafe) {
  const auto st = recovery_stats({}, std::vector<CellId>{1});
  EXPECT_DOUBLE_EQ(st.miss_fraction, 1.0);
}

}  // namespace
}  // namespace gtl
