#include "graphgen/synthetic_circuit.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "metrics/group_connectivity.hpp"
#include "netlist/netlist_stats.hpp"

namespace gtl {
namespace {

SyntheticCircuitConfig small_config() {
  SyntheticCircuitConfig cfg;
  cfg.num_cells = 4'000;
  cfg.num_pads = 16;
  StructureSpec s;
  s.size = 300;
  s.ports = 20;
  cfg.structures.push_back(s);
  return cfg;
}

TEST(SyntheticCircuit, BasicShape) {
  Rng rng(1);
  const SyntheticCircuit c = generate_synthetic_circuit(small_config(), rng);
  EXPECT_EQ(c.netlist.num_cells(), 4'000u + 16u);
  EXPECT_EQ(c.netlist.num_movable(), 4'000u);
  EXPECT_GT(c.netlist.num_nets(), 2'000u);
  EXPECT_GT(c.die_width, 0.0);
  EXPECT_GT(c.die_height, 0.0);
  ASSERT_EQ(c.hint_x.size(), c.netlist.num_cells());
  ASSERT_EQ(c.hint_y.size(), c.netlist.num_cells());
}

TEST(SyntheticCircuit, PadsAreFixedAndOnPerimeter) {
  Rng rng(2);
  const SyntheticCircuit c = generate_synthetic_circuit(small_config(), rng);
  std::size_t fixed = 0;
  for (CellId i = 0; i < c.netlist.num_cells(); ++i) {
    if (!c.netlist.is_fixed(i)) continue;
    ++fixed;
    const double x = c.hint_x[i], y = c.hint_y[i];
    const bool on_edge = x <= 1e-9 || y <= 1e-9 ||
                         x >= c.die_width - 1e-9 || y >= c.die_height - 1e-9;
    EXPECT_TRUE(on_edge) << "pad " << i << " at (" << x << "," << y << ")";
  }
  EXPECT_EQ(fixed, 16u);
}

TEST(SyntheticCircuit, HintsInsideDie) {
  Rng rng(3);
  const SyntheticCircuit c = generate_synthetic_circuit(small_config(), rng);
  for (std::size_t i = 0; i < c.hint_x.size(); ++i) {
    EXPECT_GE(c.hint_x[i], 0.0);
    EXPECT_LE(c.hint_x[i], c.die_width);
    EXPECT_GE(c.hint_y[i], 0.0);
    EXPECT_LE(c.hint_y[i], c.die_height);
  }
}

TEST(SyntheticCircuit, PlantedStructureHasFewExternalNets) {
  Rng rng(4);
  const auto cfg = small_config();
  const SyntheticCircuit c = generate_synthetic_circuit(cfg, rng);
  ASSERT_EQ(c.planted.size(), 1u);
  EXPECT_EQ(c.planted[0].size(), 300u);

  GroupConnectivity g(c.netlist);
  g.assign(c.planted[0]);
  EXPECT_LE(g.cut(), static_cast<std::int64_t>(cfg.structures[0].ports));
  EXPECT_GT(g.cut(), 0);
}

TEST(SyntheticCircuit, StructureRespectsCenterHint) {
  SyntheticCircuitConfig cfg = small_config();
  cfg.structures[0].center_x = 0.1;
  cfg.structures[0].center_y = 0.9;
  Rng rng(5);
  const SyntheticCircuit c = generate_synthetic_circuit(cfg, rng);
  double mx = 0.0, my = 0.0;
  for (const CellId cell : c.planted[0]) {
    mx += c.hint_x[cell];
    my += c.hint_y[cell];
  }
  mx /= static_cast<double>(c.planted[0].size());
  my /= static_cast<double>(c.planted[0].size());
  EXPECT_LT(mx / c.die_width, 0.35);  // left side
  EXPECT_GT(my / c.die_height, 0.65);  // upper side
}

TEST(SyntheticCircuit, BackgroundNetsAvoidStructures) {
  Rng rng(6);
  const SyntheticCircuit c = generate_synthetic_circuit(small_config(), rng);
  std::unordered_set<CellId> planted(c.planted[0].begin(),
                                     c.planted[0].end());
  // Any net touching a planted cell must be either internal (all pins
  // planted) or a 2-pin port net.
  for (NetId e = 0; e < c.netlist.num_nets(); ++e) {
    const auto pins = c.netlist.pins_of(e);
    std::size_t inside = 0;
    for (const CellId p : pins) inside += planted.count(p);
    if (inside == 0) continue;
    EXPECT_TRUE(inside == pins.size() || (pins.size() == 2 && inside == 1))
        << "net " << e << " partially straddles the structure";
  }
}

TEST(SyntheticCircuit, NetLocalityIsPowerLaw) {
  // Background net bounding boxes (in hint space) must be mostly local:
  // median span far below die width.
  Rng rng(7);
  SyntheticCircuitConfig cfg = small_config();
  cfg.structures.clear();
  const SyntheticCircuit c = generate_synthetic_circuit(cfg, rng);
  std::vector<double> spans;
  for (NetId e = 0; e < c.netlist.num_nets(); ++e) {
    const auto pins = c.netlist.pins_of(e);
    if (pins.size() < 2) continue;
    bool has_pad = false;
    double lo = 1e18, hi = -1e18;
    for (const CellId p : pins) {
      has_pad |= c.netlist.is_fixed(p);
      lo = std::min(lo, c.hint_x[p]);
      hi = std::max(hi, c.hint_x[p]);
    }
    if (!has_pad) spans.push_back(hi - lo);
  }
  ASSERT_GT(spans.size(), 1000u);
  std::sort(spans.begin(), spans.end());
  const double median_span = spans[spans.size() / 2];
  EXPECT_LT(median_span, c.die_width * 0.2);
  // ...but the tail must contain long nets too (power law, not uniform).
  EXPECT_GT(spans.back(), c.die_width * 0.3);
}

TEST(SyntheticCircuit, TooSmallThrows) {
  SyntheticCircuitConfig cfg;
  cfg.num_cells = 4;
  Rng rng(8);
  EXPECT_THROW((void)generate_synthetic_circuit(cfg, rng),
               std::invalid_argument);
}

TEST(SyntheticCircuit, OversizedStructureThrows) {
  SyntheticCircuitConfig cfg;
  cfg.num_cells = 1000;
  StructureSpec s;
  s.size = 999;  // patch cannot fit inside a ~32x32 grid with margin
  cfg.structures.push_back(s);
  Rng rng(9);
  EXPECT_THROW((void)generate_synthetic_circuit(cfg, rng),
               std::invalid_argument);
}

TEST(SyntheticCircuit, WithNamesGeneratesLookup) {
  SyntheticCircuitConfig cfg = small_config();
  cfg.num_cells = 100;
  cfg.structures.clear();
  cfg.with_names = true;
  Rng rng(10);
  const SyntheticCircuit c = generate_synthetic_circuit(cfg, rng);
  EXPECT_TRUE(c.netlist.has_names());
  EXPECT_TRUE(c.netlist.find_cell("o0").has_value());
  EXPECT_TRUE(c.netlist.find_cell("p0").has_value());
}

TEST(SyntheticCircuit, DeterministicGivenSeed) {
  Rng r1(11), r2(11);
  const SyntheticCircuit a = generate_synthetic_circuit(small_config(), r1);
  const SyntheticCircuit b = generate_synthetic_circuit(small_config(), r2);
  EXPECT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
  EXPECT_EQ(a.netlist.num_pins(), b.netlist.num_pins());
  EXPECT_EQ(a.planted, b.planted);
}

}  // namespace
}  // namespace gtl
