#include "graphgen/presets.hpp"

#include <gtest/gtest.h>

namespace gtl {
namespace {

TEST(Presets, IspdNamesListedAndAccepted) {
  const auto& names = ispd_benchmark_names();
  ASSERT_EQ(names.size(), 6u);
  for (const auto& n : names) {
    const auto cfg = ispd_like_config(n, 0.05);
    EXPECT_EQ(cfg.name, n);
    EXPECT_GE(cfg.num_cells, 4096u);
    EXPECT_FALSE(cfg.structures.empty());
  }
}

TEST(Presets, PaperCellCountsAtFullScale) {
  EXPECT_EQ(ispd_like_config("bigblue1", 1.0).num_cells, 278164u);
  EXPECT_EQ(ispd_like_config("bigblue2", 1.0).num_cells, 557786u);
  EXPECT_EQ(ispd_like_config("bigblue3", 1.0).num_cells, 1096812u);
  EXPECT_EQ(ispd_like_config("adaptec1", 1.0).num_cells, 211447u);
  EXPECT_EQ(ispd_like_config("adaptec2", 1.0).num_cells, 255023u);
  EXPECT_EQ(ispd_like_config("adaptec3", 1.0).num_cells, 451650u);
}

TEST(Presets, UnknownNameThrows) {
  EXPECT_THROW((void)ispd_like_config("bogus"), std::invalid_argument);
}

TEST(Presets, BadScaleThrows) {
  EXPECT_THROW((void)ispd_like_config("bigblue1", 0.0), std::invalid_argument);
  EXPECT_THROW((void)ispd_like_config("bigblue1", 1.5), std::invalid_argument);
  EXPECT_THROW((void)industrial_config(-1.0), std::invalid_argument);
}

TEST(Presets, ScaleShrinksProportionally) {
  const auto full = ispd_like_config("adaptec1", 1.0);
  const auto tenth = ispd_like_config("adaptec1", 0.1);
  EXPECT_NEAR(static_cast<double>(tenth.num_cells),
              static_cast<double>(full.num_cells) * 0.1, 1.0);
}

TEST(Presets, StructureSizesWithinPaperRange) {
  const auto cfg = ispd_like_config("bigblue1", 1.0);
  for (const auto& s : cfg.structures) {
    EXPECT_GE(s.size, 64u);
    // Top GTLs in Table 2 go up to ~14K cells (2.5% of bigblue2).
    EXPECT_LE(s.size, cfg.num_cells / 20);
  }
}

TEST(Presets, IndustrialHasPaperGtlSizes) {
  const auto sizes = industrial_gtl_sizes(1.0);
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes[0], 31880u);
  EXPECT_EQ(sizes[1], 31914u);
  EXPECT_EQ(sizes[2], 31754u);
  EXPECT_EQ(sizes[3], 32002u);
  EXPECT_EQ(sizes[4], 10932u);

  const auto cfg = industrial_config(1.0);
  ASSERT_EQ(cfg.structures.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(cfg.structures[i].size, sizes[i]);
  }
}

TEST(Presets, IndustrialRomsSitInUpperDie) {
  const auto cfg = industrial_config(0.1);
  // The four big ROMs mirror Fig. 1's hotspots in the upper band.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(cfg.structures[i].center_y, 0.7);
  }
}

TEST(Presets, IndustrialPortsMatchPaperCutBand) {
  // Paper Table 3: cuts of 28-36.
  const auto cfg = industrial_config(1.0);
  for (const auto& s : cfg.structures) {
    EXPECT_GE(s.ports, 28u);
    EXPECT_LE(s.ports, 36u);
  }
}

}  // namespace
}  // namespace gtl
