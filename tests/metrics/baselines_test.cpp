#include "metrics/baselines.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hpp"

namespace gtl {
namespace {

std::vector<CellId> cells(std::initializer_list<CellId> ids) { return ids; }

TEST(DegreeSeparation, CliqueHasSeparationOne) {
  const Netlist nl = testing::make_two_cliques();
  Rng rng(1);
  const auto ds = degree_separation(nl, cells({0, 1, 2}), rng);
  EXPECT_NEAR(ds.separation, 1.0, 1e-12);  // all pairs adjacent
  EXPECT_GT(ds.degree, 0.0);
  EXPECT_NEAR(ds.ds, ds.degree / ds.separation, 1e-12);
}

TEST(DegreeSeparation, PathHasLargerSeparation) {
  // Cells 0-1-2-3 in a path: avg distance > 1.
  const Netlist nl = testing::make_netlist(4, {{0, 1}, {1, 2}, {2, 3}});
  Rng rng(2);
  const auto ds = degree_separation(nl, cells({0, 1, 2, 3}), rng);
  EXPECT_GT(ds.separation, 1.5);
}

TEST(DegreeSeparation, DenserClusterScoresHigher) {
  const Netlist nl = testing::make_two_cliques();
  Rng rng(3);
  const auto clique = degree_separation(nl, cells({0, 1, 2, 3}), rng);
  // Straddling group: fewer internal connections, longer paths.
  const auto straddle = degree_separation(nl, cells({2, 3, 4, 5}), rng);
  EXPECT_GT(clique.ds, straddle.ds);
}

TEST(DegreeSeparation, SingletonAndEmpty) {
  const Netlist nl = testing::make_grid3x3();
  Rng rng(4);
  const auto single = degree_separation(nl, cells({4}), rng);
  EXPECT_DOUBLE_EQ(single.separation, 1.0);
  const auto empty = degree_separation(nl, {}, rng);
  EXPECT_DOUBLE_EQ(empty.ds, 0.0);
}

TEST(DegreeSeparation, DisconnectedPairPenalized) {
  const Netlist nl = testing::make_netlist(4, {{0, 1}, {2, 3}});
  Rng rng(5);
  const auto ds = degree_separation(nl, cells({0, 1, 2, 3}), rng);
  EXPECT_GT(ds.separation, 2.0);  // unreachable pairs add |C| each
}

TEST(EdgeDisjointPaths, CountsDirectAndLength2) {
  // 0-1 direct, plus 0-2-1 and 0-3-1.
  const Netlist nl =
      testing::make_netlist(4, {{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 1}});
  EXPECT_EQ(edge_disjoint_paths_len2(nl, 0, 1), 3u);
}

TEST(EdgeDisjointPaths, ParallelNetsCount) {
  const Netlist nl = testing::make_netlist(2, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(edge_disjoint_paths_len2(nl, 0, 1), 3u);
}

TEST(EdgeDisjointPaths, NoPathIsZero) {
  const Netlist nl = testing::make_netlist(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(edge_disjoint_paths_len2(nl, 0, 3), 0u);
}

TEST(K2Connectivity, CliqueIsK2Connected) {
  const Netlist nl = testing::make_two_cliques();
  Rng rng(6);
  // In a 4-clique every pair has 1 direct + 2 length-2 paths = 3.
  EXPECT_TRUE(is_k2_connected_cluster(nl, cells({0, 1, 2, 3}), 3, rng));
  EXPECT_FALSE(is_k2_connected_cluster(nl, cells({0, 1, 2, 3}), 4, rng));
}

TEST(K2Connectivity, BridgedPairFails) {
  const Netlist nl = testing::make_two_cliques();
  Rng rng(7);
  // Cells 0 and 7 sit in different cliques: no short disjoint paths.
  EXPECT_FALSE(is_k2_connected_cluster(nl, cells({0, 7}), 1, rng));
}

TEST(EdgeSeparability, BridgeHasMinCutOne) {
  const Netlist nl = testing::make_two_cliques();
  const auto cut = edge_separability(nl, 3, 4);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, 1u);
}

TEST(EdgeSeparability, IntraCliqueCutIsThree) {
  const Netlist nl = testing::make_two_cliques();
  // Inside a 4-clique the min cut between two nodes is 3 (cell 0 to 1, but
  // node 3 also has the bridge; pick 0,1 whose degree is 3).
  const auto cut = edge_separability(nl, 0, 1);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, 3u);
}

TEST(EdgeSeparability, TruncatedBallReturnsNullopt) {
  const Netlist nl = testing::make_grid3x3();
  const auto cut = edge_separability(nl, 0, 8, /*node_limit=*/4);
  EXPECT_FALSE(cut.has_value());
}

TEST(Adhesion, SumOfPairwiseMinCuts) {
  // Path 0-1-2: min cuts are 1 for all three pairs.
  const Netlist nl = testing::make_netlist(3, {{0, 1}, {1, 2}});
  const auto a = adhesion(nl, cells({0, 1, 2}));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 3u);
}

TEST(Adhesion, CliqueAdhesionHigherThanPath) {
  const Netlist clique = testing::make_two_cliques();
  const Netlist path = testing::make_netlist(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto ac = adhesion(clique, cells({0, 1, 2, 3}));
  const auto ap = adhesion(path, cells({0, 1, 2, 3}));
  ASSERT_TRUE(ac.has_value());
  ASSERT_TRUE(ap.has_value());
  EXPECT_GT(*ac, *ap);  // the paper: adhesion reflects internal cohesion
}

}  // namespace
}  // namespace gtl
