#include "metrics/group_connectivity.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graphgen/planted_graph.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

TEST(GroupConnectivity, EmptyGroup) {
  const Netlist nl = testing::make_grid3x3();
  GroupConnectivity g(nl);
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.cut(), 0);
  EXPECT_EQ(g.pins_in_group(), 0u);
  EXPECT_DOUBLE_EQ(g.avg_pins_per_cell(), 0.0);
}

TEST(GroupConnectivity, SingleCellCutEqualsDegreeOnTwoPinNets) {
  const Netlist nl = testing::make_grid3x3();
  GroupConnectivity g(nl);
  g.add(4);  // center cell: 4 incident 2-pin nets, all cut
  EXPECT_EQ(g.cut(), 4);
  EXPECT_EQ(g.pins_in_group(), 4u);
  EXPECT_TRUE(g.contains(4));
}

TEST(GroupConnectivity, AbsorbedNetLeavesCut) {
  const Netlist nl = testing::make_netlist(3, {{0, 1}, {1, 2}});
  GroupConnectivity g(nl);
  g.add(0);
  EXPECT_EQ(g.cut(), 1);
  g.add(1);  // net {0,1} fully inside; {1,2} cut
  EXPECT_EQ(g.cut(), 1);
  g.add(2);
  EXPECT_EQ(g.cut(), 0);
}

TEST(GroupConnectivity, RemoveInvertsAdd) {
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity g(nl);
  for (CellId c : {0, 1, 2, 3}) g.add(c);
  const auto cut_before = g.cut();
  const auto pins_before = g.pins_in_group();
  const double abs_before = g.absorption();
  g.add(4);
  g.remove(4);
  EXPECT_EQ(g.cut(), cut_before);
  EXPECT_EQ(g.pins_in_group(), pins_before);
  EXPECT_NEAR(g.absorption(), abs_before, 1e-12);
  EXPECT_EQ(g.size(), 4u);
}

TEST(GroupConnectivity, CliqueGroupHasUnitCut) {
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity g(nl);
  for (CellId c : {0, 1, 2, 3}) g.add(c);
  EXPECT_EQ(g.cut(), 1);  // only the bridge net {3,4}
  // Absorption: 6 internal 2-pin nets fully inside -> each contributes 1.
  EXPECT_NEAR(g.absorption(), 6.0, 1e-12);
}

TEST(GroupConnectivity, MultiPinNetCutCounting) {
  // One 4-pin net; cut iff the group contains some but not all pins.
  const Netlist nl = testing::make_netlist(4, {{0, 1, 2, 3}});
  GroupConnectivity g(nl);
  EXPECT_EQ(g.cut(), 0);
  g.add(0);
  EXPECT_EQ(g.cut(), 1);
  g.add(1);
  g.add(2);
  EXPECT_EQ(g.cut(), 1);
  g.add(3);
  EXPECT_EQ(g.cut(), 0);
}

TEST(GroupConnectivity, SinglePinNetNeverCut) {
  const Netlist nl = testing::make_netlist(2, {{0}, {0, 1}});
  GroupConnectivity g(nl);
  g.add(0);
  EXPECT_EQ(g.cut(), 1);  // only the 2-pin net
}

TEST(GroupConnectivity, PinsInTracksPerNet) {
  const Netlist nl = testing::make_netlist(4, {{0, 1, 2, 3}});
  GroupConnectivity g(nl);
  g.add(1);
  g.add(3);
  EXPECT_EQ(g.pins_in(0), 2u);
  EXPECT_EQ(g.pins_out(0), 2u);
}

TEST(GroupConnectivity, CutDeltaIfAddedMatchesActualAdd) {
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity g(nl);
  g.add(0);
  g.add(1);
  for (CellId c : {CellId{2}, CellId{3}, CellId{4}, CellId{7}}) {
    const auto predicted = g.cut_delta_if_added(c);
    const auto before = g.cut();
    g.add(c);
    EXPECT_EQ(g.cut() - before, predicted) << "cell " << c;
    g.remove(c);
  }
}

TEST(GroupConnectivity, ClearResetsEverything) {
  const Netlist nl = testing::make_grid3x3();
  GroupConnectivity g(nl);
  g.add(0);
  g.add(1);
  g.clear();
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.cut(), 0);
  EXPECT_EQ(g.pins_in_group(), 0u);
  EXPECT_DOUBLE_EQ(g.absorption(), 0.0);
  EXPECT_FALSE(g.contains(0));
  EXPECT_EQ(g.pins_in(0), 0u);
  // Reusable after clear.
  g.add(4);
  EXPECT_EQ(g.cut(), 4);
}

TEST(GroupConnectivity, AssignMatchesIncrementalAdds) {
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity a(nl), b(nl);
  const std::vector<CellId> members = {1, 2, 3, 4};
  a.assign(members);
  for (const CellId c : members) b.add(c);
  EXPECT_EQ(a.cut(), b.cut());
  EXPECT_EQ(a.pins_in_group(), b.pins_in_group());
  EXPECT_NEAR(a.absorption(), b.absorption(), 1e-12);
}

TEST(GroupConnectivity, DoubleAddThrows) {
  const Netlist nl = testing::make_grid3x3();
  GroupConnectivity g(nl);
  g.add(0);
  EXPECT_THROW(g.add(0), std::logic_error);
}

TEST(GroupConnectivity, RemoveAbsentThrows) {
  const Netlist nl = testing::make_grid3x3();
  GroupConnectivity g(nl);
  EXPECT_THROW(g.remove(0), std::logic_error);
}

TEST(GroupConnectivity, MatchesBruteForceOnRandomGraph) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 400;
  cfg.gtls.push_back({40, 1});
  Rng rng(9);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  GroupConnectivity g(pg.netlist);
  std::vector<CellId> members;
  Rng pick(21);
  for (int i = 0; i < 60; ++i) {
    const auto c = static_cast<CellId>(pick.next_below(400));
    if (g.contains(c)) continue;
    g.add(c);
    members.push_back(c);
  }
  EXPECT_EQ(g.cut(), net_cut(pg.netlist, members));
}

TEST(GroupConnectivity, IncrementalMatchesBruteForceAfterRemovals) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 200;
  Rng rng(5);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  GroupConnectivity g(pg.netlist);
  std::vector<CellId> members;
  Rng pick(33);
  for (int i = 0; i < 80; ++i) {
    const auto c = static_cast<CellId>(pick.next_below(200));
    if (g.contains(c)) {
      g.remove(c);
      members.erase(std::find(members.begin(), members.end(), c));
    } else {
      g.add(c);
      members.push_back(c);
    }
  }
  EXPECT_EQ(g.cut(), net_cut(pg.netlist, members));
  EXPECT_EQ(g.size(), members.size());
}

}  // namespace
}  // namespace gtl
