#include "metrics/scores.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace gtl {
namespace {

TEST(Scores, GtlScoreMatchesDefinition) {
  // GTL-S = T / |C|^p
  EXPECT_DOUBLE_EQ(gtl_score(10.0, 100.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(gtl_score(0.0, 100.0, 0.5), 0.0);
}

TEST(Scores, NgtlScoreNormalizesByAvgPins) {
  ScoreContext ctx{0.5, 4.0};
  EXPECT_DOUBLE_EQ(ngtl_score(40.0, 100.0, ctx), 1.0);
}

TEST(Scores, NgtlScoreOfAverageGroupIsOne) {
  // Rent's rule says an average group has T = A_G * |C|^p, so nGTL-S == 1.
  ScoreContext ctx{0.63, 3.5};
  const double size = 5000.0;
  const double cut = ctx.avg_pins_per_cell * std::pow(size, ctx.rent_exponent);
  EXPECT_NEAR(ngtl_score(cut, size, ctx), 1.0, 1e-12);
}

TEST(Scores, GtlSdEqualsNgtlWhenDensityIsAverage) {
  ScoreContext ctx{0.6, 4.0};
  const double cut = 50, size = 300;
  EXPECT_NEAR(gtl_sd_score(cut, size, /*A_C=*/4.0, ctx),
              ngtl_score(cut, size, ctx), 1e-12);
}

TEST(Scores, GtlSdRewardsDenserGroups) {
  // Higher A_C => bigger exponent => smaller (better) score.
  ScoreContext ctx{0.6, 4.0};
  const double sparse = gtl_sd_score(50, 300, 3.0, ctx);
  const double avg = gtl_sd_score(50, 300, 4.0, ctx);
  const double dense = gtl_sd_score(50, 300, 6.0, ctx);
  EXPECT_GT(sparse, avg);
  EXPECT_GT(avg, dense);
}

TEST(Scores, SizeFairnessOfGtlScore) {
  // Two groups following Rent's rule with the same quality must score the
  // same despite a 100x size difference — the paper's core claim.
  ScoreContext ctx{0.63, 3.5};
  const double quality = 0.1;  // both are strong GTLs
  for (double size : {100.0, 10000.0}) {
    const double cut =
        quality * ctx.avg_pins_per_cell * std::pow(size, ctx.rent_exponent);
    EXPECT_NEAR(ngtl_score(cut, size, ctx), quality, 1e-12);
  }
}

TEST(Scores, RatioCutFavorsLargeGroups) {
  // Same Rent-average quality, different sizes: ratio cut drops with size
  // (the bias the paper criticizes), nGTL-S stays flat.
  ScoreContext ctx{0.63, 3.5};
  auto cut_of = [&](double size) {
    return ctx.avg_pins_per_cell * std::pow(size, ctx.rent_exponent);
  };
  EXPECT_GT(ratio_cut(cut_of(100), 100), ratio_cut(cut_of(10000), 10000));
  EXPECT_NEAR(ngtl_score(cut_of(100), 100, ctx),
              ngtl_score(cut_of(10000), 10000, ctx), 1e-12);
}

TEST(Scores, NgRentMetricDecreasesWithSize) {
  // ln T / ln |C| for Rent-average groups decreases toward p as size grows
  // (paper Ch. II item 4: "still monotonically decreases").
  ScoreContext ctx{0.63, 3.5};
  auto metric = [&](double size) {
    const double cut =
        ctx.avg_pins_per_cell * std::pow(size, ctx.rent_exponent);
    return ng_rent_metric(cut, size);
  };
  EXPECT_GT(metric(100), metric(10000));
  EXPECT_GT(metric(10000), ctx.rent_exponent);
}

TEST(Scores, NgRentMetricEdgeCases) {
  EXPECT_DOUBLE_EQ(ng_rent_metric(5.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ng_rent_metric(0.5, 100.0), 0.0);
}

TEST(Scores, GroupRentExponentInverseOfRentsRule) {
  // If T = A_C * k^p exactly, the estimate returns p.
  const double p = 0.58, a_c = 4.2, k = 2000;
  const double cut = a_c * std::pow(k, p);
  EXPECT_NEAR(group_rent_exponent(cut, k, a_c), p, 1e-12);
}

TEST(Scores, GroupRentExponentClamped) {
  EXPECT_DOUBLE_EQ(group_rent_exponent(1e9, 10.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(group_rent_exponent(0.0, 10.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(group_rent_exponent(5.0, 1.0, 4.0), 1.0);
}

TEST(Scores, ScoreGroupComputesAllThree) {
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity g(nl);
  for (CellId c : {0, 1, 2, 3}) g.add(c);
  ScoreContext ctx{0.6, nl.average_pins_per_cell()};
  const GtlScores s = score_group(g, ctx);
  EXPECT_DOUBLE_EQ(s.gtl_s, gtl_score(1.0, 4.0, 0.6));
  EXPECT_DOUBLE_EQ(s.ngtl_s, ngtl_score(1.0, 4.0, ctx));
  EXPECT_DOUBLE_EQ(s.gtl_sd,
                   gtl_sd_score(1.0, 4.0, g.avg_pins_per_cell(), ctx));
  // The clique is clearly tangled: far below average quality.
  EXPECT_LT(s.ngtl_s, 0.5);
}

TEST(Scores, InvalidInputsThrow) {
  ScoreContext ctx{0.6, 4.0};
  EXPECT_THROW((void)gtl_score(1.0, 0.0, 0.6), std::logic_error);
  EXPECT_THROW((void)gtl_score(-1.0, 10.0, 0.6), std::logic_error);
  EXPECT_THROW((void)ngtl_score(1.0, 10.0, ScoreContext{0.6, 0.0}),
               std::logic_error);
  EXPECT_THROW((void)ratio_cut(1.0, 0.0), std::logic_error);
  EXPECT_THROW((void)gtl_sd_score(1.0, 10.0, -1.0, ctx), std::logic_error);
}

}  // namespace
}  // namespace gtl
