#include "metrics/select_aware.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hpp"

namespace gtl {
namespace {

/// A MUX-farm-like fixture: `group_size` cells densely wired internally
/// (chain + skip nets), all driven by `select_count` select lines whose
/// drivers sit outside the group.
struct MuxFarm {
  Netlist netlist;
  std::vector<CellId> group;
  std::vector<CellId> drivers;

  static MuxFarm make(std::uint32_t group_size, std::uint32_t select_count) {
    NetlistBuilder nb;
    MuxFarm farm;
    for (std::uint32_t i = 0; i < group_size; ++i) {
      farm.group.push_back(nb.add_cell());
    }
    for (std::uint32_t s = 0; s < select_count; ++s) {
      farm.drivers.push_back(nb.add_cell());
    }
    // Dense internal wiring: chain and skip-2 nets.
    for (std::uint32_t i = 0; i + 1 < group_size; ++i) {
      nb.add_net({farm.group[i], farm.group[i + 1]});
    }
    for (std::uint32_t i = 0; i + 2 < group_size; ++i) {
      nb.add_net({farm.group[i], farm.group[i + 2]});
    }
    // Select lines: driver + every group cell.
    for (std::uint32_t s = 0; s < select_count; ++s) {
      std::vector<CellId> pins = farm.group;
      pins.push_back(farm.drivers[s]);
      nb.add_net(pins);
    }
    farm.netlist = nb.build();
    return farm;
  }
};

TEST(SelectAware, ClassifiesSelectLines) {
  const MuxFarm farm = MuxFarm::make(64, 3);
  GroupConnectivity group(farm.netlist);
  group.assign(farm.group);
  const ScoreContext ctx{0.7, farm.netlist.average_pins_per_cell()};
  const SelectAwareScore s = select_aware_score(group, ctx);
  EXPECT_EQ(s.select_lines, 3);
  EXPECT_EQ(s.raw_cut, 3);  // only the select lines cross the boundary
  EXPECT_EQ(s.effective_cut, 0);
  EXPECT_DOUBLE_EQ(s.select_aware, 0.0);
  EXPECT_GT(s.ngtl_s, 0.0);
  ASSERT_EQ(s.select_nets.size(), 3u);
}

TEST(SelectAware, SelectAwareNeverWorseThanRaw) {
  const MuxFarm farm = MuxFarm::make(32, 2);
  GroupConnectivity group(farm.netlist);
  group.assign(farm.group);
  const ScoreContext ctx{0.7, farm.netlist.average_pins_per_cell()};
  const SelectAwareScore s = select_aware_score(group, ctx);
  EXPECT_LE(s.select_aware, s.ngtl_s);
}

TEST(SelectAware, OrdinaryCutNetsNotClassified) {
  // Two-clique fixture: the bridge net covers 1/4 of the group — below
  // the coverage threshold and below min_pins_in_group.
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity group(nl);
  group.assign(std::vector<CellId>{0, 1, 2, 3});
  const ScoreContext ctx{0.7, nl.average_pins_per_cell()};
  const SelectAwareScore s = select_aware_score(group, ctx);
  EXPECT_EQ(s.select_lines, 0);
  EXPECT_EQ(s.effective_cut, s.raw_cut);
  EXPECT_DOUBLE_EQ(s.select_aware, s.ngtl_s);
}

TEST(SelectAware, MinPinsGuardProtectsSmallGroups) {
  // A 4-cell group where one cut net covers 75% of it: still not a
  // select line, because 3 pins < min_pins_in_group.
  const Netlist nl = testing::make_netlist(
      6, {{0, 1}, {1, 2}, {2, 3}, {0, 1, 2, 4}, {3, 5}});
  GroupConnectivity group(nl);
  group.assign(std::vector<CellId>{0, 1, 2, 3});
  const ScoreContext ctx{0.7, nl.average_pins_per_cell()};
  const SelectAwareScore s = select_aware_score(group, ctx);
  EXPECT_EQ(s.select_lines, 0);
}

TEST(SelectAware, ThresholdsConfigurable) {
  const MuxFarm farm = MuxFarm::make(16, 1);
  GroupConnectivity group(farm.netlist);
  group.assign(farm.group);
  const ScoreContext ctx{0.7, farm.netlist.average_pins_per_cell()};
  SelectAwareConfig strict;
  strict.min_pins_in_group = 32;  // larger than the group
  EXPECT_EQ(select_aware_score(group, ctx, strict).select_lines, 0);
  SelectAwareConfig loose;
  loose.min_pins_in_group = 4;
  EXPECT_EQ(select_aware_score(group, ctx, loose).select_lines, 1);
}

TEST(SelectAware, FullyInternalNetNeverSelectLine) {
  // A net covering the whole group but with no outside pin is absorbed,
  // not a select line.
  const Netlist nl = testing::make_netlist(
      12, {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {0, 1}, {10, 11}});
  GroupConnectivity group(nl);
  std::vector<CellId> members;
  for (CellId c = 0; c < 10; ++c) members.push_back(c);
  group.assign(members);
  const ScoreContext ctx{0.7, nl.average_pins_per_cell()};
  SelectAwareConfig cfg;
  cfg.min_pins_in_group = 4;
  const SelectAwareScore s = select_aware_score(group, ctx, cfg);
  EXPECT_EQ(s.select_lines, 0);
  EXPECT_EQ(s.raw_cut, 0);
}

TEST(SelectAware, EmptyGroupThrows) {
  const Netlist nl = testing::make_grid3x3();
  GroupConnectivity group(nl);
  const ScoreContext ctx{0.7, 3.0};
  EXPECT_THROW((void)select_aware_score(group, ctx), std::logic_error);
}

}  // namespace
}  // namespace gtl
