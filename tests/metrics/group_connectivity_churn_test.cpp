// Randomized churn suite for GroupConnectivity's O(1)-remove member
// index and epoch-stamped clear: drives long add/remove/clear/assign
// sequences on random planted graphs and cross-checks every maintained
// quantity (cut, absorption, pins, per-net counts, membership) against
// brute-force recomputation from the member list.

#include "metrics/group_connectivity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "graphgen/planted_graph.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

PlantedGraph make_graph(std::uint32_t n, std::uint64_t seed) {
  PlantedGraphConfig cfg;
  cfg.num_cells = n;
  cfg.gtls.push_back({n / 8, 1});
  Rng rng(seed);
  return generate_planted_graph(cfg, rng);
}

double brute_absorption(const Netlist& nl, const std::set<CellId>& members) {
  double a = 0.0;
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const std::uint32_t size = nl.net_size(e);
    if (size < 2) continue;
    std::uint32_t inside = 0;
    for (const CellId c : nl.pins_of(e)) inside += members.count(c);
    if (inside >= 1) {
      a += static_cast<double>(inside - 1) / static_cast<double>(size - 1);
    }
  }
  return a;
}

std::uint32_t brute_pins_in(const Netlist& nl, NetId e,
                            const std::set<CellId>& members) {
  std::uint32_t inside = 0;
  for (const CellId c : nl.pins_of(e)) inside += members.count(c);
  return inside;
}

void check_against_reference(const Netlist& nl, const GroupConnectivity& g,
                             const std::set<CellId>& reference) {
  ASSERT_EQ(g.size(), reference.size());
  std::vector<CellId> members(g.members().begin(), g.members().end());
  std::sort(members.begin(), members.end());
  ASSERT_TRUE(std::equal(members.begin(), members.end(), reference.begin(),
                         reference.end()));

  ASSERT_EQ(g.cut(), net_cut(nl, members));
  std::size_t pins = 0;
  for (const CellId c : reference) pins += nl.cell_degree(c);
  ASSERT_EQ(g.pins_in_group(), pins);
  ASSERT_NEAR(g.absorption(), brute_absorption(nl, reference), 1e-9);
}

TEST(GroupConnectivityChurn, RandomizedAddRemoveMatchesBruteForce) {
  const PlantedGraph pg = make_graph(400, 3);
  const Netlist& nl = pg.netlist;
  GroupConnectivity g(nl);
  std::set<CellId> reference;
  Rng rng(17);

  for (int step = 0; step < 3'000; ++step) {
    const CellId c = static_cast<CellId>(rng.next_below(nl.num_cells()));
    if (reference.count(c)) {
      g.remove(c);
      reference.erase(c);
    } else {
      g.add(c);
      reference.insert(c);
    }
    ASSERT_EQ(g.contains(c), reference.count(c) != 0);
    if (step % 97 == 0) check_against_reference(nl, g, reference);
    // Spot-check per-net counts continuously (cheap).
    const NetId e = static_cast<NetId>(rng.next_below(nl.num_nets()));
    ASSERT_EQ(g.pins_in(e), brute_pins_in(nl, e, reference));
    ASSERT_EQ(g.pins_out(e), nl.net_size(e) - g.pins_in(e));
  }
  check_against_reference(nl, g, reference);
}

TEST(GroupConnectivityChurn, AddThenRemoveAllRoundTripsToEmpty) {
  const PlantedGraph pg = make_graph(300, 5);
  const Netlist& nl = pg.netlist;
  GroupConnectivity g(nl);
  Rng rng(23);

  std::vector<CellId> order;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (rng.next_below(3) == 0) order.push_back(c);
  }
  for (const CellId c : order) g.add(c);
  // Remove in a different (shuffled) order than added.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  for (const CellId c : order) g.remove(c);

  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.cut(), 0);
  EXPECT_EQ(g.pins_in_group(), 0u);
  EXPECT_NEAR(g.absorption(), 0.0, 1e-9);
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    ASSERT_EQ(g.pins_in(e), 0u);
  }
}

TEST(GroupConnectivityChurn, EpochClearIsEquivalentToFreshTracker) {
  // Many clear()/assign() cycles: stale per-net counters from earlier
  // epochs must never leak into later groups, including after heavy
  // overlapping churn.
  const PlantedGraph pg = make_graph(300, 9);
  const Netlist& nl = pg.netlist;
  GroupConnectivity reused(nl);
  Rng rng(31);

  for (int cycle = 0; cycle < 60; ++cycle) {
    std::set<CellId> want;
    const std::size_t target = 1 + rng.next_below(40);
    while (want.size() < target) {
      want.insert(static_cast<CellId>(rng.next_below(nl.num_cells())));
    }
    std::vector<CellId> members(want.begin(), want.end());
    reused.assign(members);

    GroupConnectivity fresh(nl);
    for (const CellId c : members) fresh.add(c);

    ASSERT_EQ(reused.cut(), fresh.cut()) << "cycle " << cycle;
    ASSERT_EQ(reused.pins_in_group(), fresh.pins_in_group());
    ASSERT_DOUBLE_EQ(reused.absorption(), fresh.absorption());
    for (NetId e = 0; e < nl.num_nets(); ++e) {
      ASSERT_EQ(reused.pins_in(e), fresh.pins_in(e))
          << "cycle " << cycle << " net " << e;
    }
    check_against_reference(nl, reused, want);

    // cut_delta_if_added must agree with actually adding.
    const CellId probe = static_cast<CellId>(rng.next_below(nl.num_cells()));
    if (!reused.contains(probe)) {
      const std::int64_t predicted = reused.cut_delta_if_added(probe);
      const std::int64_t before = reused.cut();
      reused.add(probe);
      ASSERT_EQ(reused.cut(), before + predicted);
      reused.remove(probe);
    }
  }
}

}  // namespace
}  // namespace gtl
