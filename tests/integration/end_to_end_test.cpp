// End-to-end flows across modules: generate -> find -> place -> congest ->
// inflate -> re-place, i.e. the full pipeline behind the paper's §5.1.3
// experiment, at test scale.

#include <gtest/gtest.h>

#include <algorithm>

#include "finder/finder.hpp"
#include "graphgen/planted_graph.hpp"
#include "graphgen/presets.hpp"
#include "graphgen/synthetic_circuit.hpp"
#include "netlist/bookshelf.hpp"
#include "place/congestion.hpp"
#include "place/inflation.hpp"
#include "place/quadratic_placer.hpp"
#include "viz/plots.hpp"

namespace gtl {
namespace {

/// Small industrial-style circuit: one dominant ROM-like structure.
SyntheticCircuit make_industrial_mini() {
  SyntheticCircuitConfig cfg;
  cfg.num_cells = 6'000;
  cfg.num_pads = 32;
  StructureSpec rom;
  rom.size = 600;
  rom.ports = 24;
  rom.center_x = 0.5;
  rom.center_y = 0.8;
  cfg.structures.push_back(rom);
  Rng rng(2024);
  return generate_synthetic_circuit(cfg, rng);
}

FinderResult run_finder(const Netlist& nl, const FinderConfig& cfg) {
  Finder finder(nl, cfg);
  return finder.run();
}

FinderConfig mini_finder() {
  FinderConfig f;
  f.num_seeds = 40;
  f.max_ordering_length = 2'000;
  f.num_threads = 2;
  f.rng_seed = 3;
  return f;
}

TEST(EndToEnd, FinderRecoversStructureInRentCircuit) {
  const SyntheticCircuit c = make_industrial_mini();
  const FinderResult res = run_finder(c.netlist, mini_finder());
  ASSERT_GE(res.gtls.size(), 1u);
  // The top GTL must be the planted ROM.
  const auto rec = recovery_stats(c.planted[0], res.gtls[0].cells);
  EXPECT_LT(rec.miss_fraction, 0.05);
  EXPECT_LT(rec.over_fraction, 0.05);
  EXPECT_LT(res.gtls[0].score, 0.3);
}

TEST(EndToEnd, InflationReducesCongestion) {
  // The headline experiment (Figs. 1 and 7): find GTLs, inflate 4x,
  // re-place, and watch the hotspot dissolve.
  const SyntheticCircuit c = make_industrial_mini();

  PlacerConfig pcfg;
  pcfg.die = {c.die_width, c.die_height, 1.0};
  pcfg.spreading_iterations = 8;
  // Default 64x64 spreading bins: the spreader needs enough resolution to
  // dissolve the inflated GTL (coarse bins leave residual hotspots).
  const Placement before =
      place_quadratic(c.netlist, c.hint_x, c.hint_y, pcfg);

  CongestionConfig ccfg;
  ccfg.tiles_x = 32;
  ccfg.tiles_y = 32;
  // Calibrate routing supply so the pre-inflation hotspot peaks at ~1.6x
  // capacity — the mild-overload regime of the paper's Fig. 1 (its worst
  // 20% of nets average 136% congestion).
  const CongestionMap probe =
      estimate_congestion(c.netlist, before.x, before.y, pcfg.die, ccfg);
  double peak_demand = 0.0;
  for (const double d : probe.demand) peak_demand = std::max(peak_demand, d);
  const double tile_area = (pcfg.die.width / ccfg.tiles_x) *
                           (pcfg.die.height / ccfg.tiles_y);
  ccfg.capacity_per_area = peak_demand / tile_area / 1.6;
  const CongestionMap map0 =
      estimate_congestion(c.netlist, before.x, before.y, pcfg.die, ccfg);
  const CongestionReport rep0 =
      analyze_congestion(map0, c.netlist, before.x, before.y, ccfg);
  ASSERT_GT(rep0.nets_through_full, 0u)
      << "fixture must have a congestion hotspot before inflation";

  // Find the GTLs and inflate the strong ones (paper §3.1: scores well
  // below 1, e.g. < 0.1, mark strong GTLs; weakly tangled background
  // communities at 0.5-0.7 are reported but not worth the area).
  const FinderResult found = run_finder(c.netlist, mini_finder());
  ASSERT_GE(found.gtls.size(), 1u);
  std::vector<CellId> inflate_set;
  for (const auto& g : found.gtls) {
    if (g.score > 0.3) continue;
    inflate_set.insert(inflate_set.end(), g.cells.begin(), g.cells.end());
  }
  ASSERT_FALSE(inflate_set.empty());
  const Netlist inflated = inflate_cells(c.netlist, inflate_set, 4.0);
  const Placement after =
      place_quadratic(inflated, c.hint_x, c.hint_y, pcfg);
  const CongestionMap map1 =
      estimate_congestion(inflated, after.x, after.y, pcfg.die, ccfg);
  const CongestionReport rep1 =
      analyze_congestion(map1, inflated, after.x, after.y, ccfg);

  // Paper: 5x reduction of nets through 100% tiles and a lower peak.
  // At test scale we assert the direction and a >= 2x improvement.
  EXPECT_LT(static_cast<double>(rep1.nets_through_full),
            static_cast<double>(rep0.nets_through_full) / 2.0);
  EXPECT_LT(rep1.max_tile_utilization, rep0.max_tile_utilization);
  EXPECT_LT(rep1.full_tiles, rep0.full_tiles);
}

TEST(EndToEnd, BookshelfExportedCircuitGivesSameGtls) {
  // write_bookshelf -> read_bookshelf -> finder must agree with the
  // in-memory netlist (the reader is how real ISPD data would come in).
  const SyntheticCircuit c = make_industrial_mini();
  const auto dir = std::filesystem::temp_directory_path() /
                   "tanglefind_e2e_bookshelf";
  std::filesystem::create_directories(dir);
  BookshelfDesign d;
  d.netlist = c.netlist;
  d.x = c.hint_x;
  d.y = c.hint_y;
  write_bookshelf(d, dir, "mini");
  const BookshelfDesign back = read_bookshelf(dir / "mini.aux");
  std::filesystem::remove_all(dir);

  const FinderResult a = run_finder(c.netlist, mini_finder());
  const FinderResult b = run_finder(back.netlist, mini_finder());
  ASSERT_EQ(a.gtls.size(), b.gtls.size());
  ASSERT_FALSE(a.gtls.empty());
  EXPECT_EQ(a.gtls[0].cells, b.gtls[0].cells);
  EXPECT_EQ(a.gtls[0].cut, b.gtls[0].cut);
}

TEST(EndToEnd, VisualizationPipelineRuns) {
  const SyntheticCircuit c = make_industrial_mini();
  PlacerConfig pcfg;
  pcfg.die = {c.die_width, c.die_height, 1.0};
  pcfg.spreading_iterations = 2;
  pcfg.cg_max_iterations = 60;
  const Placement p = place_quadratic(c.netlist, c.hint_x, c.hint_y, pcfg);

  const Image img =
      render_placement(c.netlist, p.x, p.y, pcfg.die, c.planted, 200);
  EXPECT_EQ(img.width(), 200u);

  CongestionConfig ccfg;
  ccfg.tiles_x = 16;
  ccfg.tiles_y = 16;
  const CongestionMap m =
      estimate_congestion(c.netlist, p.x, p.y, pcfg.die, ccfg);
  const Image heat = render_congestion(m, 128);
  EXPECT_EQ(heat.width(), 128u);
  const std::string art = ascii_congestion(m, 32, 12);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 12);
}

TEST(EndToEnd, IndustrialPresetPipelineAtSmokeScale) {
  const auto cfg = industrial_config(0.02);  // ~8K cells
  Rng rng(77);
  const SyntheticCircuit c = generate_synthetic_circuit(cfg, rng);
  ASSERT_EQ(c.planted.size(), 5u);

  FinderConfig fcfg = mini_finder();
  fcfg.num_seeds = 150;  // smallest ROM is ~2.7% of the design
  fcfg.max_ordering_length = 3'000;
  const FinderResult res = run_finder(c.netlist, fcfg);
  // All five ROMs recovered (sizes ~640/640/635/640/219 at this scale).
  EXPECT_GE(res.gtls.size(), 5u);
  for (const auto& truth : c.planted) {
    double best_miss = 1.0;
    for (const auto& g : res.gtls) {
      best_miss =
          std::min(best_miss, recovery_stats(truth, g.cells).miss_fraction);
    }
    EXPECT_LT(best_miss, 0.05);
  }
}

}  // namespace
}  // namespace gtl
