// Property-based sweeps (parameterized gtest): invariants that must hold
// across random seeds, graph sizes and configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "finder/finder.hpp"
#include "graphgen/planted_graph.hpp"
#include "metrics/group_connectivity.hpp"
#include "metrics/scores.hpp"
#include "order/linear_ordering.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

FinderResult run_finder(const Netlist& nl, const FinderConfig& cfg) {
  Finder finder(nl, cfg);
  return finder.run();
}


// ---------- Property: ordering invariants across seeds ----------

class OrderingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingProperty, PrefixCutsAlwaysExactAndCellsUnique) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 1'200;
  cfg.gtls.push_back({120, 1});
  Rng rng(GetParam());
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  OrderingEngine engine(pg.netlist,
                        {.max_length = 400, .large_net_threshold = 20});
  Rng seed_rng(GetParam() * 7 + 1);
  const auto seed =
      static_cast<CellId>(seed_rng.next_below(pg.netlist.num_cells()));
  const LinearOrdering ord = engine.grow(seed);

  // Cells unique.
  std::vector<CellId> sorted = ord.cells;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());

  // Prefix stats exact (cross-check with independent tracker).
  GroupConnectivity group(pg.netlist);
  for (std::size_t k = 0; k < ord.cells.size(); ++k) {
    group.add(ord.cells[k]);
    ASSERT_EQ(group.cut(), ord.prefix_cut[k]);
    ASSERT_EQ(group.pins_in_group(), ord.prefix_pins[k]);
  }

  // Prefix pins monotone nondecreasing.
  for (std::size_t k = 1; k < ord.prefix_pins.size(); ++k) {
    EXPECT_GE(ord.prefix_pins[k], ord.prefix_pins[k - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- Property: score identities over random groups ----------

class ScoreProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScoreProperty, ScoreIdentitiesOnRandomGroups) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 900;
  cfg.gtls.push_back({90, 1});
  Rng rng(GetParam() + 100);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  GroupConnectivity g(pg.netlist);
  Rng pick(GetParam() + 200);
  for (int i = 0; i < 50; ++i) {
    const auto c = static_cast<CellId>(pick.next_below(900));
    if (!g.contains(c)) g.add(c);
  }
  const ScoreContext ctx{0.65, pg.netlist.average_pins_per_cell()};
  const GtlScores s = score_group(g, ctx);
  const auto cut = static_cast<double>(g.cut());
  const auto size = static_cast<double>(g.size());

  // Identity: nGTL-S == GTL-S / A_G.
  EXPECT_NEAR(s.ngtl_s, s.gtl_s / ctx.avg_pins_per_cell, 1e-12);
  // Identity: GTL-SD with A_C == A_G equals nGTL-S.
  EXPECT_NEAR(gtl_sd_score(cut, size, ctx.avg_pins_per_cell, ctx), s.ngtl_s,
              1e-12);
  // Monotonicity: more cut, worse score.
  EXPECT_LT(s.ngtl_s, ngtl_score(cut + 10.0, size, ctx));
  // Scores non-negative.
  EXPECT_GE(s.gtl_s, 0.0);
  EXPECT_GE(s.gtl_sd, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- Property: finder output invariants across configurations ----

struct FinderCase {
  std::uint64_t graph_seed;
  std::uint32_t gtl_size;
  std::uint32_t gtl_count;
};

class FinderProperty : public ::testing::TestWithParam<FinderCase> {};

TEST_P(FinderProperty, OutputInvariants) {
  const FinderCase& param = GetParam();
  PlantedGraphConfig cfg;
  cfg.num_cells = 6'000;
  cfg.gtls.push_back({param.gtl_size, param.gtl_count});
  Rng rng(param.graph_seed);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  FinderConfig fcfg;
  fcfg.num_seeds = 25;
  fcfg.max_ordering_length = 4 * param.gtl_size;
  fcfg.num_threads = 2;
  fcfg.rng_seed = param.graph_seed + 1;
  const FinderResult res = run_finder(pg.netlist, fcfg);

  std::vector<bool> claimed(pg.netlist.num_cells(), false);
  GroupConnectivity check(pg.netlist);
  for (const auto& g : res.gtls) {
    // Members sorted, unique, disjoint from other GTLs.
    EXPECT_TRUE(std::is_sorted(g.cells.begin(), g.cells.end()));
    for (const CellId c : g.cells) {
      EXPECT_FALSE(claimed[c]);
      claimed[c] = true;
    }
    // Reported cut matches a recomputation.
    check.assign(g.cells);
    EXPECT_EQ(check.cut(), g.cut);
    // Reported scores consistent with reported cut/size/A_C.
    const ScoreContext ctx{g.rent_exponent_used,
                           pg.netlist.average_pins_per_cell()};
    EXPECT_NEAR(g.ngtl_s,
                ngtl_score(static_cast<double>(g.cut),
                           static_cast<double>(g.size()), ctx),
                1e-9);
    // No fixed cells inside.
    for (const CellId c : g.cells) EXPECT_FALSE(pg.netlist.is_fixed(c));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FinderProperty,
    ::testing::Values(FinderCase{11, 200, 1}, FinderCase{12, 350, 2},
                      FinderCase{13, 500, 1}, FinderCase{14, 250, 3},
                      FinderCase{15, 800, 1}));

// ---------- Property: recovery quality across GTL sizes ----------

class RecoveryProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RecoveryProperty, PlantedGtlRecoveredAcrossSizes) {
  const std::uint32_t gtl_size = GetParam();
  PlantedGraphConfig cfg;
  cfg.num_cells = std::max<std::uint32_t>(gtl_size * 10, 3'000);
  cfg.gtls.push_back({gtl_size, 1});
  Rng rng(gtl_size);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  FinderConfig fcfg;
  fcfg.num_seeds = 80;  // paper-like seeds-per-GTL ratio
  fcfg.max_ordering_length = gtl_size * 4;
  fcfg.num_threads = 2;
  fcfg.rng_seed = 5;
  const FinderResult res = run_finder(pg.netlist, fcfg);
  ASSERT_EQ(res.gtls.size(), 1u) << "GTL size " << gtl_size;
  const auto rec = recovery_stats(pg.gtl_members[0], res.gtls[0].cells);
  // Paper Table 1: miss <= 0.14%, over <= 0.5%; we allow a loose 5%.
  EXPECT_LT(rec.miss_fraction, 0.05);
  EXPECT_LT(rec.over_fraction, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RecoveryProperty,
                         ::testing::Values(150, 300, 600, 1000));

// ---------- Property: set algebra laws ----------

class SetAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetAlgebraProperty, AlgebraLaws) {
  Rng rng(GetParam());
  auto random_sorted_set = [&rng]() {
    std::vector<CellId> v;
    for (int i = 0; i < 40; ++i) {
      v.push_back(static_cast<CellId>(rng.next_below(100)));
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  const auto a = random_sorted_set();
  const auto b = random_sorted_set();

  const auto u = set_union(a, b);
  const auto i = set_intersection(a, b);
  const auto d_ab = set_difference(a, b);
  const auto d_ba = set_difference(b, a);

  // |A∪B| + |A∩B| == |A| + |B|.
  EXPECT_EQ(u.size() + i.size(), a.size() + b.size());
  // A∪B == (A−B) ∪ (A∩B) ∪ (B−A).
  auto rebuilt = set_union(set_union(d_ab, i), d_ba);
  EXPECT_EQ(rebuilt, u);
  // Overlap consistent with intersection.
  EXPECT_EQ(sets_overlap(a, b), !i.empty());
  // Difference disjoint from the subtrahend.
  EXPECT_FALSE(sets_overlap(d_ab, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetAlgebraProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gtl
