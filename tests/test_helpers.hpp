#pragma once
// Shared fixtures for the test suite: tiny hand-checkable netlists and a
// brute-force cut reference.

#include <initializer_list>
#include <vector>

#include "netlist/netlist.hpp"

namespace gtl::testing {

/// Build a netlist from net pin lists; cells are 0..num_cells-1, width 1.
inline Netlist make_netlist(std::size_t num_cells,
                            std::initializer_list<std::vector<CellId>> nets) {
  NetlistBuilder nb;
  for (std::size_t c = 0; c < num_cells; ++c) nb.add_cell();
  for (const auto& pins : nets) nb.add_net(pins);
  return nb.build();
}

/// A 3x3 grid of cells connected by 2-pin nets (rook adjacency):
///   6 7 8
///   3 4 5
///   0 1 2
inline Netlist make_grid3x3() {
  NetlistBuilder nb;
  for (int c = 0; c < 9; ++c) nb.add_cell();
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) {
      nb.add_net({static_cast<CellId>(r * 3 + c),
                  static_cast<CellId>(r * 3 + c + 1)});
    }
  }
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      nb.add_net({static_cast<CellId>(r * 3 + c),
                  static_cast<CellId>((r + 1) * 3 + c)});
    }
  }
  return nb.build();
}

/// Two 4-cliques (2-pin nets) joined by a single bridge net:
/// cells 0-3 form clique A, 4-7 clique B, net {3,4} bridges.
inline Netlist make_two_cliques() {
  NetlistBuilder nb;
  for (int c = 0; c < 8; ++c) nb.add_cell();
  for (CellId base : {CellId{0}, CellId{4}}) {
    for (CellId i = 0; i < 4; ++i) {
      for (CellId j = i + 1; j < 4; ++j) {
        nb.add_net({base + i, base + j});
      }
    }
  }
  nb.add_net({CellId{3}, CellId{4}});
  return nb.build();
}

}  // namespace gtl::testing
