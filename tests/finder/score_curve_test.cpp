#include "finder/score_curve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graphgen/planted_graph.hpp"
#include "order/linear_ordering.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

/// Ordering grown inside a planted GTL: the standard fixture for curve
/// shape tests.
struct GtlFixture {
  PlantedGraph pg;
  LinearOrdering inside;
  LinearOrdering outside;

  static GtlFixture make() {
    PlantedGraphConfig cfg;
    cfg.num_cells = 8'000;
    cfg.gtls.push_back({500, 1});
    Rng rng(101);
    GtlFixture f{generate_planted_graph(cfg, rng), {}, {}};
    OrderingEngine engine(f.pg.netlist,
                          {.max_length = 1500, .large_net_threshold = 20});
    f.inside = engine.grow(f.pg.gtl_members[0][7]);
    // A seed outside the GTL (first background cell).
    CellId bg = 0;
    while (std::binary_search(f.pg.gtl_members[0].begin(),
                              f.pg.gtl_members[0].end(), bg)) {
      ++bg;
    }
    f.outside = engine.grow(bg);
    return f;
  }
};

TEST(ScoreCurve, SizesMatchOrdering) {
  const auto f = GtlFixture::make();
  const ScoreCurve c = compute_score_curve(f.pg.netlist, f.inside);
  EXPECT_EQ(c.ngtl_s.size(), f.inside.cells.size());
  EXPECT_EQ(c.gtl_sd.size(), f.inside.cells.size());
  EXPECT_EQ(c.ratio_cut.size(), f.inside.cells.size());
}

TEST(ScoreCurve, RentExponentInPlausibleRange) {
  const auto f = GtlFixture::make();
  const ScoreCurve c = compute_score_curve(f.pg.netlist, f.inside);
  EXPECT_GE(c.rent_exponent, 0.1);
  EXPECT_LE(c.rent_exponent, 1.0);
  EXPECT_DOUBLE_EQ(c.context.rent_exponent, c.rent_exponent);
  EXPECT_DOUBLE_EQ(c.context.avg_pins_per_cell,
                   f.pg.netlist.average_pins_per_cell());
}

TEST(ScoreCurve, InsideGtlCurveDipsAtStructureBoundary) {
  // Paper Fig. 2: the curve reaches a deep minimum right when the whole
  // GTL has been absorbed.
  const auto f = GtlFixture::make();
  const ScoreCurve c = compute_score_curve(f.pg.netlist, f.inside);
  const auto min_it =
      std::min_element(c.ngtl_s.begin() + 29, c.ngtl_s.end());
  const auto min_k = static_cast<std::size_t>(
      std::distance(c.ngtl_s.begin(), min_it) + 1);
  EXPECT_NEAR(static_cast<double>(min_k), 500.0, 25.0);
  EXPECT_LT(*min_it, 0.3);  // strong GTL
}

TEST(ScoreCurve, OutsideCurveStaysHigh) {
  // Paper Fig. 2: a background agglomeration never dips much below its
  // plateau — no clear minimum anywhere.
  const auto f = GtlFixture::make();
  const ScoreCurve c = compute_score_curve(f.pg.netlist, f.outside);
  const double lo =
      *std::min_element(c.ngtl_s.begin() + 29, c.ngtl_s.end());
  EXPECT_GT(lo, 0.3);
}

TEST(ScoreCurve, GtlSdMinimumIsDeeperThanNgtl) {
  // Paper Fig. 3: the density-aware score has more dramatic contrast.
  const auto f = GtlFixture::make();
  const ScoreCurve c = compute_score_curve(f.pg.netlist, f.inside);
  const double min_ngtl =
      *std::min_element(c.ngtl_s.begin() + 29, c.ngtl_s.end());
  const double min_sd =
      *std::min_element(c.gtl_sd.begin() + 29, c.gtl_sd.end());
  EXPECT_LT(min_sd, min_ngtl);
}

TEST(ScoreCurve, RatioCutBiasTowardLargeGroups) {
  // Paper Fig. 5 / Ch. II: ratio cut T/|C| overly favors large groups.
  // On a background ordering (no structure anywhere) its minimum sits at
  // the right end of the curve, while nGTL-S correctly stays flat and
  // offers no minimum at all.
  const auto f = GtlFixture::make();
  const ScoreCurve c = compute_score_curve(f.pg.netlist, f.outside);
  const auto min_it =
      std::min_element(c.ratio_cut.begin() + 29, c.ratio_cut.end());
  const auto min_k = static_cast<std::size_t>(
      std::distance(c.ratio_cut.begin(), min_it) + 1);
  EXPECT_GT(min_k, c.ratio_cut.size() * 8 / 10);
  // nGTL-S on the same background curve is flat near 1 at the right end
  // instead of decaying — the size-fairness ratio cut lacks.
  EXPECT_GT(c.ngtl_s.back() / c.ngtl_s[99], 0.8);
}

TEST(ScoreCurve, EmptyOrderingThrows) {
  const Netlist nl = testing::make_grid3x3();
  LinearOrdering empty;
  EXPECT_THROW((void)compute_score_curve(nl, empty), std::logic_error);
}

TEST(ScoreCurve, ValuesSelectorPicksRightVector) {
  const auto f = GtlFixture::make();
  const ScoreCurve c = compute_score_curve(f.pg.netlist, f.inside);
  EXPECT_EQ(&c.values(ScoreKind::kNgtlS), &c.ngtl_s);
  EXPECT_EQ(&c.values(ScoreKind::kGtlSd), &c.gtl_sd);
}

// ---- find_clear_minimum on synthetic curves ----

std::vector<double> v_shape(std::size_t n, std::size_t dip_at, double depth) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i + 1);
    const double d = static_cast<double>(dip_at);
    v[i] = depth + 1.2 * std::abs(x - d) / d;
  }
  return v;
}

TEST(ClearMinimum, DetectsInteriorDip) {
  const auto curve = v_shape(1000, 400, 0.05);
  const auto m = find_clear_minimum(curve);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix_size, 400u);
  EXPECT_NEAR(m->value, 0.05, 1e-9);
}

TEST(ClearMinimum, RejectsMonotoneRisingCurve) {
  // The outside-GTL shape of Fig. 2: rises 0.3 -> 0.9, no dip.
  std::vector<double> curve(1000);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    curve[i] = 0.9 - 0.6 / (1.0 + static_cast<double>(i) / 50.0);
  }
  EXPECT_FALSE(find_clear_minimum(curve).has_value());
}

TEST(ClearMinimum, RejectsShallowDip) {
  // Dip to 0.8: not below the accept threshold.
  const auto curve = v_shape(1000, 500, 0.8);
  EXPECT_FALSE(find_clear_minimum(curve).has_value());
}

TEST(ClearMinimum, RejectsRightEdgeMinimum) {
  // Still-falling curve: minimum in the final stretch.
  std::vector<double> curve(1000);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    curve[i] = 2.0 - 1.95 * static_cast<double>(i) / 999.0;
  }
  EXPECT_FALSE(find_clear_minimum(curve).has_value());
}

TEST(ClearMinimum, RespectsMinSize) {
  const auto curve = v_shape(1000, 10, 0.05);  // dip below min_size
  MinimumConfig cfg;
  cfg.min_size = 30;
  const auto m = find_clear_minimum(curve, cfg);
  // The detected minimum (if any) must be at >= min_size; with the dip at
  // 10, position 30 is the closest allowed point but the drop test fails
  // because the curve only rises after 30.
  if (m) {
    EXPECT_GE(m->prefix_size, 30u);
  }
}

TEST(ClearMinimum, ShortCurveRejected) {
  const std::vector<double> tiny(10, 0.1);
  EXPECT_FALSE(find_clear_minimum(tiny).has_value());
}

TEST(ClearMinimum, ConfigurableThreshold) {
  const auto curve = v_shape(500, 200, 0.5);
  MinimumConfig strict;
  strict.accept_threshold = 0.3;
  EXPECT_FALSE(find_clear_minimum(curve, strict).has_value());
  MinimumConfig loose;
  loose.accept_threshold = 0.75;
  EXPECT_TRUE(find_clear_minimum(curve, loose).has_value());
}

// ---- edge_fraction / floor-arithmetic boundaries ----

TEST(ClearMinimum, EdgeFractionZeroAdmitsFinalPoint) {
  // With no right-edge guard (and the rise test disabled via factor 1),
  // a minimum at the very last index is acceptable: last_valid ==
  // floor(n * 1.0) == n exactly, with no off-by-one past the array.
  std::vector<double> curve(100);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    curve[i] = 2.0 - 1.98 * static_cast<double>(i) / 99.0;  // falls to 0.02
  }
  MinimumConfig cfg;
  cfg.edge_fraction = 0.0;
  cfg.rise_factor = 1.0;  // max_after == min itself must pass
  const auto m = find_clear_minimum(curve, cfg);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix_size, 100u);
  // The default rise_factor (> 1) must still reject the same curve: a
  // still-falling curve has no boundary.
  MinimumConfig guard;
  guard.edge_fraction = 0.0;
  EXPECT_FALSE(find_clear_minimum(curve, guard).has_value());
}

TEST(ClearMinimum, EdgeFractionHalfSearchesFirstHalfOnly) {
  // edge_fraction = 0.5 (the validation maximum): only k <= n/2 are
  // eligible.  A dip at 60 of 100 is out of reach — the search clamps to
  // the best eligible point on the falling flank, k = 50.
  const auto curve = v_shape(100, 60, 0.05);
  MinimumConfig cfg;
  cfg.edge_fraction = 0.5;
  const auto clamped = find_clear_minimum(curve, cfg);
  ASSERT_TRUE(clamped.has_value());
  EXPECT_EQ(clamped->prefix_size, 50u);
  EXPECT_EQ(clamped->value, curve[49]);
  // A dip inside the eligible half is found exactly.
  const auto early = v_shape(100, 40, 0.05);
  const auto m = find_clear_minimum(early, cfg);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix_size, 40u);
}

TEST(ClearMinimum, LastValidBelowMinSizeRejected) {
  // n = 40 with edge_fraction = 0.5: last_valid = 20 < min_size = 30,
  // so there is no eligible k at all — must return nullopt instead of
  // scanning an empty (or inverted) range.
  const auto curve = v_shape(40, 20, 0.01);
  MinimumConfig cfg;
  cfg.edge_fraction = 0.5;
  ASSERT_EQ(cfg.min_size, 30u);
  EXPECT_FALSE(find_clear_minimum(curve, cfg).has_value());
}

TEST(ClearMinimum, AllEqualCurve) {
  // A flat curve has a "minimum" at min_size but no drop before it and
  // no rise after it: rejected under the default factors, accepted when
  // both factors are relaxed to exactly 1 (max == min passes >=).
  const std::vector<double> flat(200, 0.3);
  EXPECT_FALSE(find_clear_minimum(flat).has_value());

  MinimumConfig relaxed;
  relaxed.drop_factor = 1.0;
  relaxed.rise_factor = 1.0;
  const auto m = find_clear_minimum(flat, relaxed);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix_size, relaxed.min_size);  // first eligible k wins ties
  EXPECT_EQ(m->value, 0.3);

  // A flat curve above the accept threshold stays rejected even relaxed.
  const std::vector<double> high(200, 0.9);
  EXPECT_FALSE(find_clear_minimum(high, relaxed).has_value());
}

TEST(ClearMinimum, FloorBoundaryExactFraction) {
  // edge_fraction = 0.25 (exactly representable, so the floor arithmetic
  // is deterministic): n = 100 gives last_valid = 75.  A dip at 75 is
  // eligible and found exactly; a dip at 76 is one past the boundary and
  // the search clamps to 75 on the falling flank.
  MinimumConfig cfg;
  cfg.edge_fraction = 0.25;
  cfg.rise_factor = 1.0;  // isolate the edge guard from the rise test
  const auto at75 = v_shape(100, 75, 0.05);
  const auto m = find_clear_minimum(at75, cfg);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix_size, 75u);

  const auto at76 = v_shape(100, 76, 0.05);
  const auto m76 = find_clear_minimum(at76, cfg);
  ASSERT_TRUE(m76.has_value());
  EXPECT_EQ(m76->prefix_size, 75u);
  EXPECT_EQ(m76->value, at76[74]);
}

}  // namespace
}  // namespace gtl
