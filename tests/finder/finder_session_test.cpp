// Session-API behavior: progress observation, cooperative cancellation
// (with the determinism guarantee for completed seeds), and artifact
// lifecycle/preconditions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "finder/finder.hpp"
#include "graphgen/planted_graph.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

PlantedGraph make_graph(std::uint64_t seed) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 2'000;
  gcfg.gtls.push_back({150, 2});
  Rng rng(seed);
  return generate_planted_graph(gcfg, rng);
}

FinderConfig small_config() {
  FinderConfig cfg;
  cfg.num_seeds = 20;
  cfg.max_ordering_length = 600;
  cfg.num_threads = 1;
  cfg.rng_seed = 11;
  return cfg;
}

/// Records every event (callbacks are serialized by contract, so plain
/// members suffice).
class RecordingObserver : public ProgressObserver {
 public:
  void on_phase_start(FinderPhase phase, std::size_t items) override {
    phases_started.push_back(phase);
    phase_items.push_back(items);
  }
  void on_phase_end(FinderPhase phase, double seconds) override {
    phases_ended.push_back(phase);
    EXPECT_GE(seconds, 0.0);
  }
  void on_ordering_grown(std::size_t done, std::size_t total) override {
    grown.push_back(done);
    grow_total = total;
  }
  void on_candidates_extracted(std::size_t extracted,
                               std::size_t deduped) override {
    extracted_count = extracted;
    deduped_count = deduped;
  }
  void on_candidate_refined(std::size_t done, std::size_t total) override {
    refined.push_back(done);
    refine_total = total;
  }
  void on_pruned(std::size_t kept_, std::size_t refined_) override {
    kept = kept_;
    refined_survivors = refined_;
  }

  std::vector<FinderPhase> phases_started;
  std::vector<FinderPhase> phases_ended;
  std::vector<std::size_t> phase_items;
  std::vector<std::size_t> grown;
  std::vector<std::size_t> refined;
  std::size_t grow_total = 0;
  std::size_t refine_total = 0;
  std::size_t extracted_count = 0;
  std::size_t deduped_count = 0;
  std::size_t kept = 0;
  std::size_t refined_survivors = 0;
};

/// Trips the token once `k` orderings have completed.
class CancelAfterSeeds : public ProgressObserver {
 public:
  CancelAfterSeeds(CancelToken* token, std::size_t k) : token_(token), k_(k) {}
  void on_ordering_grown(std::size_t done, std::size_t) override {
    if (done >= k_) token_->request_cancel();
  }

 private:
  CancelToken* token_;
  std::size_t k_;
};

/// Trips the token once `k` candidates have been refined.
class CancelAfterRefines : public ProgressObserver {
 public:
  CancelAfterRefines(CancelToken* token, std::size_t k)
      : token_(token), k_(k) {}
  void on_candidate_refined(std::size_t done, std::size_t) override {
    if (done >= k_) token_->request_cancel();
  }

 private:
  CancelToken* token_;
  std::size_t k_;
};

TEST(FinderSession, ObserverSeesEveryEventInOrder) {
  const PlantedGraph pg = make_graph(31);
  Finder finder(pg.netlist, small_config());
  RecordingObserver obs;
  finder.set_observer(&obs);
  const FinderResult& res = finder.run();

  ASSERT_EQ(obs.phases_started.size(), 3u);
  EXPECT_EQ(obs.phases_started[0], FinderPhase::kGrowOrderings);
  EXPECT_EQ(obs.phases_started[1], FinderPhase::kExtractCandidates);
  EXPECT_EQ(obs.phases_started[2], FinderPhase::kRefineAndPrune);
  EXPECT_EQ(obs.phases_ended, obs.phases_started);

  // One grow callback per seed; counts reach exactly m.
  EXPECT_EQ(obs.grown.size(), 20u);
  EXPECT_EQ(obs.grow_total, 20u);
  std::vector<std::size_t> sorted = obs.grown;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i + 1);

  EXPECT_EQ(obs.extracted_count, res.candidates_before_refine);
  EXPECT_EQ(obs.deduped_count, res.candidates_after_dedup);
  EXPECT_EQ(obs.refined.size(), res.candidates_after_dedup);
  EXPECT_EQ(obs.kept, res.gtls.size());
  EXPECT_EQ(obs.refined_survivors, res.candidates_after_dedup);
}

TEST(FinderSession, CancelAfterKSeedsIsPrefixOfFullRun) {
  const PlantedGraph pg = make_graph(32);
  const FinderConfig cfg = small_config();  // num_threads = 1: sequential
  constexpr std::size_t kCancelAt = 7;

  // Step the phases (run() releases the orderings after Phase II).
  Finder full(pg.netlist, cfg);
  full.grow_orderings();
  full.extract_candidates();
  full.refine_and_prune();
  const OrderingSet& full_orderings = full.orderings();
  const CandidateSet& full_candidates = full.candidates();

  Finder cancelled(pg.netlist, cfg);
  CancelToken token;
  CancelAfterSeeds trip(&token, kCancelAt);
  cancelled.set_observer(&trip);
  cancelled.set_cancel_token(&token);
  cancelled.grow_orderings();
  cancelled.extract_candidates();
  const FinderResult& res = cancelled.refine_and_prune();

  EXPECT_TRUE(cancelled.cancelled());
  EXPECT_TRUE(res.cancelled);

  // With one worker, seeds run in order: exactly the first k completed.
  const OrderingSet& part = cancelled.orderings();
  ASSERT_EQ(part.seeds, full_orderings.seeds);
  ASSERT_EQ(part.completed.size(), full_orderings.completed.size());
  EXPECT_EQ(part.num_completed(), kCancelAt);
  for (std::size_t i = 0; i < part.completed.size(); ++i) {
    EXPECT_EQ(part.completed[i] != 0, i < kCancelAt) << "seed " << i;
  }

  // Determinism for completed seeds: byte-identical orderings.
  for (std::size_t i = 0; i < kCancelAt; ++i) {
    EXPECT_EQ(part.orderings[i].cells, full_orderings.orderings[i].cells)
        << "seed " << i;
    EXPECT_EQ(part.orderings[i].prefix_cut,
              full_orderings.orderings[i].prefix_cut)
        << "seed " << i;
  }

  // Candidates are extracted and deduplicated in seed order, so the
  // partial candidate list is a prefix of the full one.
  const CandidateSet& part_candidates = cancelled.candidates();
  ASSERT_LE(part_candidates.candidates.size(),
            full_candidates.candidates.size());
  for (std::size_t i = 0; i < part_candidates.candidates.size(); ++i) {
    EXPECT_EQ(part_candidates.candidates[i].cells,
              full_candidates.candidates[i].cells)
        << "candidate " << i;
  }
  EXPECT_EQ(res.orderings_grown, kCancelAt);
}

TEST(FinderSession, CancelledRunsAreDeterministic) {
  const PlantedGraph pg = make_graph(33);
  const FinderConfig cfg = small_config();
  constexpr std::size_t kCancelAt = 5;

  auto run_cancelled = [&](Finder& finder) -> FinderResult {
    CancelToken token;
    CancelAfterSeeds trip(&token, kCancelAt);
    finder.set_observer(&trip);
    finder.set_cancel_token(&token);
    return finder.run();
  };
  Finder a(pg.netlist, cfg);
  Finder b(pg.netlist, cfg);
  const FinderResult ra = run_cancelled(a);
  const FinderResult rb = run_cancelled(b);
  ASSERT_EQ(ra.gtls.size(), rb.gtls.size());
  for (std::size_t i = 0; i < ra.gtls.size(); ++i) {
    EXPECT_EQ(ra.gtls[i].cells, rb.gtls[i].cells);
    EXPECT_EQ(ra.gtls[i].score, rb.gtls[i].score);
  }
}

TEST(FinderSession, PreCancelledTokenYieldsEmptyPartialResult) {
  const PlantedGraph pg = make_graph(34);
  Finder finder(pg.netlist, small_config());
  CancelToken token;
  token.request_cancel();
  finder.set_cancel_token(&token);
  const FinderResult& res = finder.run();
  EXPECT_TRUE(res.cancelled);
  EXPECT_TRUE(res.gtls.empty());
  EXPECT_EQ(res.orderings_grown, 0u);
  EXPECT_EQ(finder.orderings().num_completed(), 0u);
}

TEST(FinderSession, TokenResetAllowsFullRerun) {
  const PlantedGraph pg = make_graph(35);
  const FinderConfig cfg = small_config();
  Finder finder(pg.netlist, cfg);
  CancelToken token;
  token.request_cancel();
  finder.set_cancel_token(&token);
  EXPECT_TRUE(finder.run().cancelled);

  token.reset();
  const FinderResult rerun = finder.run();
  EXPECT_FALSE(rerun.cancelled);

  Finder reference(pg.netlist, cfg);
  const FinderResult& expected = reference.run();
  ASSERT_EQ(rerun.gtls.size(), expected.gtls.size());
  for (std::size_t i = 0; i < rerun.gtls.size(); ++i) {
    EXPECT_EQ(rerun.gtls[i].cells, expected.gtls[i].cells);
  }
}

TEST(FinderSession, CancelDuringRefinePrunesOnlyCompletedCandidates) {
  const PlantedGraph pg = make_graph(36);
  FinderConfig cfg = small_config();
  cfg.num_seeds = 30;  // enough candidates that refine has >= 2 items

  Finder full(pg.netlist, cfg);
  full.run();
  ASSERT_GE(full.result().candidates_after_dedup, 2u);

  Finder cancelled(pg.netlist, cfg);
  CancelToken token;
  CancelAfterRefines trip(&token, 1);
  cancelled.set_observer(&trip);
  cancelled.set_cancel_token(&token);
  const FinderResult& res = cancelled.run();
  EXPECT_TRUE(res.cancelled);
  EXPECT_LT(res.gtls.size() + 1, full.result().candidates_after_dedup + 1);
  // The one refined candidate is byte-identical to the full run's first.
  ASSERT_EQ(res.gtls.size(), 1u);
}

TEST(FinderSession, MultiThreadCancellationKeepsCompletedSeedsIdentical) {
  const PlantedGraph pg = make_graph(37);
  FinderConfig cfg = small_config();
  cfg.num_threads = 4;

  Finder full(pg.netlist, cfg);
  full.grow_orderings();

  Finder cancelled(pg.netlist, cfg);
  CancelToken token;
  CancelAfterSeeds trip(&token, 3);
  cancelled.set_observer(&trip);
  cancelled.set_cancel_token(&token);
  cancelled.grow_orderings();

  const OrderingSet& part = cancelled.orderings();
  const OrderingSet& whole = full.orderings();
  ASSERT_EQ(part.seeds, whole.seeds);
  for (std::size_t i = 0; i < part.completed.size(); ++i) {
    if (!part.completed[i]) continue;
    EXPECT_EQ(part.orderings[i].cells, whole.orderings[i].cells)
        << "seed " << i;
  }
}

TEST(FinderSession, ArtifactAccessorsGuardPhaseOrder) {
  const PlantedGraph pg = make_graph(38);
  Finder finder(pg.netlist, small_config());
  EXPECT_FALSE(finder.has_orderings());
  EXPECT_THROW((void)finder.orderings(), std::logic_error);
  EXPECT_THROW((void)finder.candidates(), std::logic_error);
  EXPECT_THROW((void)finder.result(), std::logic_error);
  EXPECT_THROW((void)finder.extract_candidates(), std::logic_error);
  EXPECT_THROW((void)finder.refine_and_prune(), std::logic_error);

  finder.grow_orderings();
  EXPECT_TRUE(finder.has_orderings());
  EXPECT_FALSE(finder.has_candidates());
  EXPECT_THROW((void)finder.refine_and_prune(), std::logic_error);

  finder.extract_candidates();
  finder.refine_and_prune();
  EXPECT_TRUE(finder.has_result());

  // Starting a new run invalidates downstream artifacts.
  finder.grow_orderings();
  EXPECT_FALSE(finder.has_candidates());
  EXPECT_FALSE(finder.has_result());
}

TEST(FinderSession, RunReleasesOrderingsButSteppingKeepsThem) {
  const PlantedGraph pg = make_graph(40);
  Finder composed(pg.netlist, small_config());
  composed.run();
  // Composed path: heavy Phase I storage is released after Phase II...
  EXPECT_TRUE(composed.orderings().orderings.empty());
  // ...but the cheap bookkeeping survives.
  EXPECT_EQ(composed.orderings().num_completed(), 20u);
  EXPECT_EQ(composed.orderings().seeds.size(), 20u);

  Finder stepped(pg.netlist, small_config());
  stepped.grow_orderings();
  stepped.extract_candidates();
  stepped.refine_and_prune();
  for (std::size_t i = 0; i < stepped.orderings().orderings.size(); ++i) {
    EXPECT_FALSE(stepped.orderings().orderings[i].cells.empty()) << i;
  }
}

TEST(FinderSession, InvalidConfigRejectedAtConstruction) {
  const PlantedGraph pg = make_graph(39);
  FinderConfig bad = small_config();
  bad.max_ordering_length = 0;
  ASSERT_FALSE(bad.validate().is_ok());
  EXPECT_THROW(Finder(pg.netlist, bad), std::logic_error);
}

}  // namespace
}  // namespace gtl
