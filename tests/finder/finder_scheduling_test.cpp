// Scheduler equivalence: Finder results must be byte-identical (exact
// doubles, exact member lists) no matter how work is scheduled — across
// worker counts, across dynamic (ticket-counter) vs static (pre-carved
// chunk) dispatch, and under cancellation.  This is the determinism
// contract that makes the dynamic scheduler safe to ship: every work
// item writes only its own slot and derives its RNG stream from its
// index, never from the worker that happened to pull it.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "finder/finder.hpp"
#include "graphgen/planted_graph.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

PlantedGraph make_graph(std::uint64_t seed) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 2'500;
  gcfg.gtls.push_back({160, 2});
  gcfg.gtls.push_back({90, 1});
  Rng rng(seed);
  return generate_planted_graph(gcfg, rng);
}

FinderConfig base_config() {
  FinderConfig cfg;
  cfg.num_seeds = 24;
  cfg.max_ordering_length = 700;
  cfg.rng_seed = 17;
  return cfg;
}

void expect_results_identical(const FinderResult& a, const FinderResult& b,
                              const char* what) {
  ASSERT_EQ(a.gtls.size(), b.gtls.size()) << what;
  for (std::size_t i = 0; i < a.gtls.size(); ++i) {
    EXPECT_EQ(a.gtls[i].cells, b.gtls[i].cells) << what << " gtl " << i;
    EXPECT_EQ(a.gtls[i].cut, b.gtls[i].cut) << what << " gtl " << i;
    EXPECT_EQ(a.gtls[i].avg_pins, b.gtls[i].avg_pins) << what << " gtl " << i;
    EXPECT_EQ(a.gtls[i].ngtl_s, b.gtls[i].ngtl_s) << what << " gtl " << i;
    EXPECT_EQ(a.gtls[i].gtl_sd, b.gtls[i].gtl_sd) << what << " gtl " << i;
    EXPECT_EQ(a.gtls[i].score, b.gtls[i].score) << what << " gtl " << i;
    EXPECT_EQ(a.gtls[i].seed, b.gtls[i].seed) << what << " gtl " << i;
    EXPECT_EQ(a.gtls[i].rent_exponent_used, b.gtls[i].rent_exponent_used)
        << what << " gtl " << i;
  }
  EXPECT_EQ(a.context.rent_exponent, b.context.rent_exponent) << what;
  EXPECT_EQ(a.context.avg_pins_per_cell, b.context.avg_pins_per_cell) << what;
  EXPECT_EQ(a.orderings_grown, b.orderings_grown) << what;
  EXPECT_EQ(a.candidates_before_refine, b.candidates_before_refine) << what;
  EXPECT_EQ(a.candidates_after_dedup, b.candidates_after_dedup) << what;
  EXPECT_EQ(a.cancelled, b.cancelled) << what;
}

TEST(FinderScheduling, ThreadCountInvarianceUnderDynamicScheduling) {
  const PlantedGraph pg = make_graph(71);
  FinderConfig cfg = base_config();
  cfg.num_threads = 1;
  Finder one(pg.netlist, cfg);
  const FinderResult r1 = one.run();
  ASSERT_FALSE(r1.gtls.empty());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    FinderConfig tcfg = base_config();
    tcfg.num_threads = threads;
    Finder finder(pg.netlist, tcfg);
    const FinderResult& rt = finder.run();
    expect_results_identical(rt, r1,
                             threads == 2 ? "2 threads" : "8 threads");
  }
}

TEST(FinderScheduling, StaticAndDynamicSchedulesAgree) {
  const PlantedGraph pg = make_graph(72);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    FinderConfig dyn = base_config();
    dyn.num_threads = threads;
    dyn.dynamic_scheduling = true;
    FinderConfig sta = dyn;
    sta.dynamic_scheduling = false;
    Finder a(pg.netlist, dyn);
    Finder b(pg.netlist, sta);
    const FinderResult ra = a.run();
    const FinderResult& rb = b.run();
    expect_results_identical(ra, rb, "static vs dynamic");
  }
}

TEST(FinderScheduling, MoreWorkersThanItems) {
  // Ticket dispatch with 8 workers over 5 seeds: slots beyond the item
  // count must idle harmlessly and results must match the 1-thread run.
  const PlantedGraph pg = make_graph(73);
  FinderConfig small = base_config();
  small.num_seeds = 5;
  small.num_threads = 1;
  Finder one(pg.netlist, small);
  const FinderResult r1 = one.run();

  FinderConfig wide = small;
  wide.num_threads = 8;
  Finder many(pg.netlist, wide);
  expect_results_identical(many.run(), r1, "8 workers / 5 seeds");
}

/// Trips the token once `k` orderings have completed.
class CancelAfterSeeds : public ProgressObserver {
 public:
  CancelAfterSeeds(CancelToken* token, std::size_t k) : token_(token), k_(k) {}
  void on_ordering_grown(std::size_t done, std::size_t) override {
    if (done >= k_) token_->request_cancel();
  }

 private:
  CancelToken* token_;
  std::size_t k_;
};

TEST(FinderScheduling, CancelPrefixGuaranteeSurvivesDynamicScheduling) {
  // With one worker the ticket counter hands out 0, 1, 2, ... in order,
  // so cancel-after-k must still yield exactly the first k seeds, each
  // byte-identical to the full run — the same guarantee the static
  // scheduler gave (finder_session_test pins the rest of the contract).
  const PlantedGraph pg = make_graph(74);
  FinderConfig cfg = base_config();
  cfg.num_threads = 1;
  constexpr std::size_t kCancelAt = 9;

  Finder full(pg.netlist, cfg);
  full.grow_orderings();
  const OrderingSet& whole = full.orderings();

  for (const bool dynamic : {true, false}) {
    FinderConfig ccfg = cfg;
    ccfg.dynamic_scheduling = dynamic;
    Finder cancelled(pg.netlist, ccfg);
    CancelToken token;
    CancelAfterSeeds trip(&token, kCancelAt);
    cancelled.set_observer(&trip);
    cancelled.set_cancel_token(&token);
    cancelled.grow_orderings();

    const OrderingSet& part = cancelled.orderings();
    ASSERT_EQ(part.seeds, whole.seeds);
    EXPECT_EQ(part.num_completed(), kCancelAt);
    for (std::size_t i = 0; i < part.completed.size(); ++i) {
      EXPECT_EQ(part.completed[i] != 0, i < kCancelAt)
          << "seed " << i << " dynamic " << dynamic;
      if (part.completed[i]) {
        EXPECT_EQ(part.orderings[i].cells, whole.orderings[i].cells)
            << "seed " << i << " dynamic " << dynamic;
        EXPECT_EQ(part.orderings[i].prefix_cut, whole.orderings[i].prefix_cut)
            << "seed " << i << " dynamic " << dynamic;
      }
    }
  }
}

TEST(FinderScheduling, MultiThreadCancelKeepsCompletedSeedsIdentical) {
  // Under contention the *set* of completed seeds is timing-dependent,
  // but every completed seed must be byte-identical to the full run's.
  const PlantedGraph pg = make_graph(75);
  FinderConfig cfg = base_config();
  cfg.num_threads = 4;

  Finder full(pg.netlist, cfg);
  full.grow_orderings();
  const OrderingSet& whole = full.orderings();

  Finder cancelled(pg.netlist, cfg);
  CancelToken token;
  CancelAfterSeeds trip(&token, 3);
  cancelled.set_observer(&trip);
  cancelled.set_cancel_token(&token);
  cancelled.grow_orderings();

  const OrderingSet& part = cancelled.orderings();
  ASSERT_EQ(part.seeds, whole.seeds);
  for (std::size_t i = 0; i < part.completed.size(); ++i) {
    if (!part.completed[i]) continue;
    EXPECT_EQ(part.orderings[i].cells, whole.orderings[i].cells)
        << "seed " << i;
  }
}

}  // namespace
}  // namespace gtl
