#include "finder/refine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graphgen/planted_graph.hpp"
#include "test_helpers.hpp"

namespace gtl {
namespace {

struct RefineFixture {
  PlantedGraph pg;
  ScoreContext ctx;

  static RefineFixture make() {
    PlantedGraphConfig cfg;
    cfg.num_cells = 6'000;
    cfg.gtls.push_back({400, 1});
    Rng rng(55);
    RefineFixture f{generate_planted_graph(cfg, rng), {}};
    f.ctx.rent_exponent = 0.7;
    f.ctx.avg_pins_per_cell = f.pg.netlist.average_pins_per_cell();
    return f;
  }
};

TEST(Refine, ImprovesSloppyCandidate) {
  // Start from a candidate that misses 10% of the GTL and drags in 40
  // background cells; refinement must strictly improve the score.
  const auto f = RefineFixture::make();
  GroupConnectivity group(f.pg.netlist);

  std::vector<CellId> sloppy(f.pg.gtl_members[0].begin(),
                             f.pg.gtl_members[0].end() - 40);
  for (CellId c = 0, added = 0; added < 40 && c < 6000; ++c) {
    if (!std::binary_search(f.pg.gtl_members[0].begin(),
                            f.pg.gtl_members[0].end(), c)) {
      sloppy.push_back(c);
      ++added;
    }
  }
  std::sort(sloppy.begin(), sloppy.end());
  Candidate initial =
      score_members(sloppy, group, f.ctx, ScoreKind::kGtlSd);
  initial.seed = sloppy[0];

  OrderingEngine engine(f.pg.netlist,
                        {.max_length = 1200, .large_net_threshold = 20});
  Rng rng(9);
  RefineArena arena;
  const Candidate refined =
      refine_candidate(f.pg.netlist, initial, engine, group, arena, f.ctx,
                       ScoreKind::kGtlSd, {}, {}, {}, rng);
  EXPECT_LE(refined.score, initial.score);
  const auto rec = recovery_stats(f.pg.gtl_members[0], refined.cells);
  EXPECT_LT(rec.miss_fraction, 0.05);
  EXPECT_LT(rec.over_fraction, 0.05);
}

TEST(Refine, NeverWorsensScore) {
  // Even from a perfect candidate, the refined result is at least as good
  // (the initial candidate is a member of the family).
  const auto f = RefineFixture::make();
  GroupConnectivity group(f.pg.netlist);
  Candidate initial = score_members(f.pg.gtl_members[0], group, f.ctx,
                                    ScoreKind::kGtlSd);
  initial.seed = f.pg.gtl_members[0][0];
  OrderingEngine engine(f.pg.netlist,
                        {.max_length = 1200, .large_net_threshold = 20});
  Rng rng(10);
  RefineArena arena;
  const Candidate refined =
      refine_candidate(f.pg.netlist, initial, engine, group, arena, f.ctx,
                       ScoreKind::kGtlSd, {}, {}, {}, rng);
  EXPECT_LE(refined.score, initial.score + 1e-12);
}

TEST(Refine, KeepsSeedAttribution) {
  const auto f = RefineFixture::make();
  GroupConnectivity group(f.pg.netlist);
  Candidate initial = score_members(f.pg.gtl_members[0], group, f.ctx,
                                    ScoreKind::kGtlSd);
  initial.seed = 1234;
  OrderingEngine engine(f.pg.netlist,
                        {.max_length = 800, .large_net_threshold = 20});
  Rng rng(11);
  RefineArena arena;
  const Candidate refined =
      refine_candidate(f.pg.netlist, initial, engine, group, arena, f.ctx,
                       ScoreKind::kGtlSd, {}, {}, {}, rng);
  EXPECT_EQ(refined.seed, 1234u);
}

TEST(Prune, KeepsBestOfOverlappingPair) {
  std::vector<Candidate> cands(2);
  cands[0].cells = {1, 2, 3};
  cands[0].score = 0.5;
  cands[1].cells = {3, 4, 5};
  cands[1].score = 0.1;  // better
  const auto kept = prune_overlapping(std::move(cands), 10);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].score, 0.1);
}

TEST(Prune, KeepsDisjointCandidates) {
  std::vector<Candidate> cands(3);
  cands[0].cells = {1, 2};
  cands[0].score = 0.3;
  cands[1].cells = {4, 5};
  cands[1].score = 0.2;
  cands[2].cells = {7, 8};
  cands[2].score = 0.9;
  const auto kept = prune_overlapping(std::move(cands), 10);
  EXPECT_EQ(kept.size(), 3u);
  // Sorted best-first.
  EXPECT_DOUBLE_EQ(kept[0].score, 0.2);
  EXPECT_DOUBLE_EQ(kept[2].score, 0.9);
}

TEST(Prune, ChainOfOverlapsResolvedBestFirst) {
  // a overlaps b, b overlaps c, a and c disjoint: keep best (b drops if
  // it overlaps a better one, c survives if disjoint from kept).
  std::vector<Candidate> cands(3);
  cands[0].cells = {1, 2};     // a
  cands[0].score = 0.1;
  cands[1].cells = {2, 3, 4};  // b overlaps a and c
  cands[1].score = 0.2;
  cands[2].cells = {4, 5};     // c
  cands[2].score = 0.3;
  const auto kept = prune_overlapping(std::move(cands), 10);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].score, 0.1);
  EXPECT_DOUBLE_EQ(kept[1].score, 0.3);
}

TEST(Prune, EmptyInput) {
  EXPECT_TRUE(prune_overlapping({}, 10).empty());
}

TEST(Prune, IdenticalScoresDeterministic) {
  std::vector<Candidate> cands(2);
  cands[0].cells = {1, 2};
  cands[0].score = 0.5;
  cands[1].cells = {2, 3};
  cands[1].score = 0.5;
  const auto kept = prune_overlapping(std::move(cands), 10);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].cells, (std::vector<CellId>{1, 2}));  // lexicographic
}

}  // namespace
}  // namespace gtl
