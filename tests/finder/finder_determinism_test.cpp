// The finder-level half of the determinism invariant promised in
// tangled_logic_finder.hpp: results depend only on `rng_seed`, never on
// `num_threads`, because every seed index gets its own derived RNG
// stream (the stream-level half lives in
// tests/util/thread_pool_determinism_test.cpp).

#include "finder/finder.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "graphgen/planted_graph.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

FinderResult run_finder(const Netlist& nl, std::size_t num_threads) {
  FinderConfig cfg;
  cfg.num_seeds = 8;
  cfg.refine_seeds = 1;
  cfg.num_threads = num_threads;
  cfg.rng_seed = 7;
  Finder finder(nl, cfg);
  return finder.run();
}

TEST(FinderDeterminism, ResultsIndependentOfThreadCount) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 400;
  gcfg.gtls = {{60, 1}};
  Rng rng(123);
  const PlantedGraph graph = generate_planted_graph(gcfg, rng);

  const FinderResult serial = run_finder(graph.netlist, 1);
  const FinderResult parallel = run_finder(graph.netlist, 4);

  ASSERT_EQ(serial.gtls.size(), parallel.gtls.size());
  for (std::size_t i = 0; i < serial.gtls.size(); ++i) {
    EXPECT_EQ(serial.gtls[i].cells, parallel.gtls[i].cells) << "gtl " << i;
    EXPECT_DOUBLE_EQ(serial.gtls[i].score, parallel.gtls[i].score)
        << "gtl " << i;
    EXPECT_EQ(serial.gtls[i].cut, parallel.gtls[i].cut) << "gtl " << i;
  }
}

}  // namespace
}  // namespace gtl
