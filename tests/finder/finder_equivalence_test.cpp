// Pins the compatibility contract of the API redesign: the one-shot
// find_tangled_logic() wrapper and the Finder session API produce
// byte-identical results — across configs, seeds, thread counts, and
// (critically) across *reuses* of one session, whose per-worker scratch
// persists between run() calls.

#include <gtest/gtest.h>

#include <vector>

#include "finder/finder.hpp"
#include "finder/tangled_logic_finder.hpp"
#include "graphgen/planted_graph.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

PlantedGraph make_graph(std::uint64_t seed) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 3'000;
  gcfg.gtls.push_back({250, 1});
  Rng rng(seed);
  return generate_planted_graph(gcfg, rng);
}

/// Bit-exact equality of everything the pipeline computes (seconds are
/// wall-clock and excluded).
void expect_identical(const FinderResult& a, const FinderResult& b) {
  ASSERT_EQ(a.gtls.size(), b.gtls.size());
  for (std::size_t i = 0; i < a.gtls.size(); ++i) {
    EXPECT_EQ(a.gtls[i].cells, b.gtls[i].cells) << "gtl " << i;
    EXPECT_EQ(a.gtls[i].cut, b.gtls[i].cut) << "gtl " << i;
    EXPECT_EQ(a.gtls[i].seed, b.gtls[i].seed) << "gtl " << i;
    // Exact double equality: "byte-identical", not "close".
    EXPECT_EQ(a.gtls[i].avg_pins, b.gtls[i].avg_pins) << "gtl " << i;
    EXPECT_EQ(a.gtls[i].ngtl_s, b.gtls[i].ngtl_s) << "gtl " << i;
    EXPECT_EQ(a.gtls[i].gtl_sd, b.gtls[i].gtl_sd) << "gtl " << i;
    EXPECT_EQ(a.gtls[i].score, b.gtls[i].score) << "gtl " << i;
    EXPECT_EQ(a.gtls[i].rent_exponent_used, b.gtls[i].rent_exponent_used)
        << "gtl " << i;
  }
  EXPECT_EQ(a.context.rent_exponent, b.context.rent_exponent);
  EXPECT_EQ(a.context.avg_pins_per_cell, b.context.avg_pins_per_cell);
  EXPECT_EQ(a.orderings_grown, b.orderings_grown);
  EXPECT_EQ(a.candidates_before_refine, b.candidates_before_refine);
  EXPECT_EQ(a.candidates_after_dedup, b.candidates_after_dedup);
  EXPECT_EQ(a.cancelled, b.cancelled);
}

TEST(FinderEquivalence, WrapperMatchesSessionAcrossConfigs) {
  const PlantedGraph pg = make_graph(21);
  std::vector<FinderConfig> configs;
  for (const std::uint64_t rng_seed : {1ull, 13ull}) {
    for (const ScoreKind score : {ScoreKind::kGtlSd, ScoreKind::kNgtlS}) {
      FinderConfig cfg;
      cfg.num_seeds = 30;
      cfg.max_ordering_length = 900;
      cfg.num_threads = 2;
      cfg.rng_seed = rng_seed;
      cfg.score = score;
      configs.push_back(cfg);
    }
  }
  {
    FinderConfig no_refine = configs[0];
    no_refine.refine_seeds = 0;
    configs.push_back(no_refine);
    FinderConfig no_dedup = configs[0];
    no_dedup.dedup_candidates = false;
    configs.push_back(no_dedup);
  }

  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    const FinderResult via_wrapper = find_tangled_logic(pg.netlist, configs[i]);
    Finder session(pg.netlist, configs[i]);
    expect_identical(via_wrapper, session.run());
  }
}

TEST(FinderEquivalence, ReusedSessionReplaysIdenticalRuns) {
  const PlantedGraph pg = make_graph(22);
  FinderConfig cfg;
  cfg.num_seeds = 40;
  cfg.max_ordering_length = 900;
  cfg.num_threads = 2;
  cfg.rng_seed = 3;

  Finder session(pg.netlist, cfg);
  const FinderResult first = session.run();   // copy: run() reuses storage
  const FinderResult second = session.run();
  const FinderResult third = session.run();
  expect_identical(first, second);
  expect_identical(first, third);
  expect_identical(first, find_tangled_logic(pg.netlist, cfg));
}

TEST(FinderEquivalence, PhaseDecompositionMatchesRun) {
  const PlantedGraph pg = make_graph(23);
  FinderConfig cfg;
  cfg.num_seeds = 25;
  cfg.max_ordering_length = 900;
  cfg.num_threads = 1;
  cfg.rng_seed = 9;

  Finder composed(pg.netlist, cfg);
  const FinderResult via_run = composed.run();

  Finder stepped(pg.netlist, cfg);
  stepped.grow_orderings();
  stepped.extract_candidates();
  expect_identical(via_run, stepped.refine_and_prune());
}

TEST(FinderEquivalence, SessionDeterministicAcrossThreadCounts) {
  const PlantedGraph pg = make_graph(24);
  FinderConfig one;
  one.num_seeds = 24;
  one.max_ordering_length = 800;
  one.rng_seed = 5;
  one.num_threads = 1;
  FinderConfig four = one;
  four.num_threads = 4;

  Finder a(pg.netlist, one);
  Finder b(pg.netlist, four);
  expect_identical(a.run(), b.run());
}

}  // namespace
}  // namespace gtl
