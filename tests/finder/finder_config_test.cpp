// FinderConfig::validate() rejection table (one case per out-of-range
// field, each error naming its field) and JSON round-tripping of configs
// and results for the service/CLI boundary.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "finder/finder.hpp"
#include "finder/finder_json.hpp"
#include "graphgen/planted_graph.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

// ---------- validate() ----------

TEST(FinderConfigValidate, DefaultsAreValid) {
  EXPECT_TRUE(FinderConfig{}.validate().is_ok());
}

TEST(FinderConfigValidate, ZeroSeedsIsValid) {
  // Historical behavior: num_seeds == 0 runs to an empty result.
  FinderConfig cfg;
  cfg.num_seeds = 0;
  EXPECT_TRUE(cfg.validate().is_ok());
}

// ---------- Finder::create() ----------

TEST(FinderCreate, RejectsInvalidConfigWithoutThrowing) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 200;
  Rng rng(3);
  const PlantedGraph graph = generate_planted_graph(gcfg, rng);

  FinderConfig bad;
  bad.max_ordering_length = 0;
  std::unique_ptr<Finder> session;
  const Status st = Finder::create(graph.netlist, bad, &session);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session, nullptr);
}

TEST(FinderCreate, MatchesThrowingConstructor) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 500;
  gcfg.gtls.push_back({60, 1});
  Rng rng(5);
  const PlantedGraph graph = generate_planted_graph(gcfg, rng);

  FinderConfig cfg;
  cfg.num_seeds = 6;
  cfg.max_ordering_length = 200;
  cfg.num_threads = 1;

  std::unique_ptr<Finder> session;
  ASSERT_TRUE(Finder::create(graph.netlist, cfg, &session).is_ok());
  ASSERT_NE(session, nullptr);
  Finder direct(graph.netlist, cfg);

  const FinderResult via_factory = session->run();
  const FinderResult via_ctor = direct.run();
  // Identical except for the wall-clock fields.
  JsonValue a = to_json(via_factory);
  JsonValue b = to_json(via_ctor);
  for (const char* key :
       {"phase1_2_seconds", "phase3_seconds", "total_seconds"}) {
    a.set(key, JsonValue(0.0));
    b.set(key, JsonValue(0.0));
  }
  EXPECT_EQ(a.dump(), b.dump());
}

struct RejectionCase {
  const char* name;            // must appear in the error message
  void (*mutate)(FinderConfig&);
};

class FinderConfigRejection
    : public ::testing::TestWithParam<RejectionCase> {};

TEST_P(FinderConfigRejection, RejectsWithFieldName) {
  FinderConfig cfg;
  GetParam().mutate(cfg);
  const Status st = cfg.validate();
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find(GetParam().name), std::string::npos)
      << "message: " << st.message();
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, FinderConfigRejection,
    ::testing::Values(
        RejectionCase{"num_seeds",
                      [](FinderConfig& c) { c.num_seeds = (1u << 24) + 1; }},
        RejectionCase{"max_ordering_length",
                      [](FinderConfig& c) { c.max_ordering_length = 0; }},
        RejectionCase{"max_ordering_length",
                      [](FinderConfig& c) { c.max_ordering_length = 1; }},
        RejectionCase{"score",
                      [](FinderConfig& c) {
                        c.score = static_cast<ScoreKind>(7);
                      }},
        RejectionCase{"minimum.min_size",
                      [](FinderConfig& c) { c.minimum.min_size = 1; }},
        RejectionCase{"minimum.accept_threshold",
                      [](FinderConfig& c) {
                        c.minimum.accept_threshold = 0.0;
                      }},
        RejectionCase{"minimum.accept_threshold",
                      [](FinderConfig& c) {
                        c.minimum.accept_threshold =
                            std::numeric_limits<double>::quiet_NaN();
                      }},
        RejectionCase{"minimum.drop_factor",
                      [](FinderConfig& c) { c.minimum.drop_factor = 0.5; }},
        RejectionCase{"minimum.drop_factor",
                      [](FinderConfig& c) {
                        c.minimum.drop_factor =
                            std::numeric_limits<double>::infinity();
                      }},
        RejectionCase{"minimum.rise_factor",
                      [](FinderConfig& c) { c.minimum.rise_factor = 0.99; }},
        RejectionCase{"minimum.edge_fraction",
                      [](FinderConfig& c) {
                        c.minimum.edge_fraction = -0.01;
                      }},
        RejectionCase{"minimum.edge_fraction",
                      [](FinderConfig& c) { c.minimum.edge_fraction = 0.6; }},
        RejectionCase{"curve.rent_min_k",
                      [](FinderConfig& c) { c.curve.rent_min_k = 1; }},
        RejectionCase{"refine_seeds",
                      [](FinderConfig& c) { c.refine_seeds = 65; }},
        RejectionCase{"num_threads",
                      [](FinderConfig& c) { c.num_threads = 4097; }}));

// ---------- config JSON round trip ----------

FinderConfig non_default_config() {
  FinderConfig cfg;
  cfg.num_seeds = 321;
  cfg.max_ordering_length = 12'345;
  cfg.large_net_threshold = 0;
  cfg.min_cut_first = true;
  cfg.score = ScoreKind::kNgtlS;
  cfg.minimum.min_size = 17;
  cfg.minimum.accept_threshold = 0.5;
  cfg.minimum.drop_factor = 2.25;
  cfg.minimum.rise_factor = 1.125;
  cfg.minimum.edge_fraction = 0.07;
  cfg.curve.rent_min_k = 12;
  cfg.refine_seeds = 5;
  cfg.num_threads = 3;
  cfg.rng_seed = 0xDEADBEEFDEADBEEFULL;  // > int64 max: uint64 must survive
  cfg.dedup_candidates = false;
  cfg.dynamic_scheduling = false;
  return cfg;
}

void expect_config_eq(const FinderConfig& a, const FinderConfig& b) {
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.max_ordering_length, b.max_ordering_length);
  EXPECT_EQ(a.large_net_threshold, b.large_net_threshold);
  EXPECT_EQ(a.min_cut_first, b.min_cut_first);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.minimum.min_size, b.minimum.min_size);
  EXPECT_EQ(a.minimum.accept_threshold, b.minimum.accept_threshold);
  EXPECT_EQ(a.minimum.drop_factor, b.minimum.drop_factor);
  EXPECT_EQ(a.minimum.rise_factor, b.minimum.rise_factor);
  EXPECT_EQ(a.minimum.edge_fraction, b.minimum.edge_fraction);
  EXPECT_EQ(a.curve.rent_min_k, b.curve.rent_min_k);
  EXPECT_EQ(a.refine_seeds, b.refine_seeds);
  EXPECT_EQ(a.num_threads, b.num_threads);
  EXPECT_EQ(a.rng_seed, b.rng_seed);
  EXPECT_EQ(a.dedup_candidates, b.dedup_candidates);
  EXPECT_EQ(a.dynamic_scheduling, b.dynamic_scheduling);
}

TEST(FinderConfigJson, RoundTripsDefaults) {
  FinderConfig back;
  ASSERT_TRUE(
      parse_finder_config(to_json(FinderConfig{}).dump(), &back).is_ok());
  expect_config_eq(FinderConfig{}, back);
}

TEST(FinderConfigJson, RoundTripsEveryField) {
  const FinderConfig cfg = non_default_config();
  const std::string text = to_json(cfg).dump(2);
  FinderConfig back;
  ASSERT_TRUE(parse_finder_config(text, &back).is_ok()) << text;
  expect_config_eq(cfg, back);
  // Fixed point: serialize(parse(serialize(x))) == serialize(x).
  EXPECT_EQ(to_json(back).dump(2), text);
}

TEST(FinderConfigJson, PartialConfigKeepsDefaults) {
  FinderConfig cfg;
  ASSERT_TRUE(
      parse_finder_config(R"({"num_seeds": 7, "rng_seed": 99})", &cfg)
          .is_ok());
  EXPECT_EQ(cfg.num_seeds, 7u);
  EXPECT_EQ(cfg.rng_seed, 99u);
  expect_config_eq([] {
    FinderConfig expected;
    expected.num_seeds = 7;
    expected.rng_seed = 99;
    return expected;
  }(), cfg);
}

TEST(FinderConfigJson, RejectsUnknownKey) {
  FinderConfig cfg;
  const Status st = parse_finder_config(R"({"num_seedz": 7})", &cfg);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("num_seedz"), std::string::npos);
}

TEST(FinderConfigJson, RejectsUnknownNestedKey) {
  FinderConfig cfg;
  const Status st =
      parse_finder_config(R"({"minimum": {"min_sz": 10}})", &cfg);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("min_sz"), std::string::npos);
}

TEST(FinderConfigJson, RejectsBadScoreName) {
  FinderConfig cfg;
  const Status st = parse_finder_config(R"({"score": "ratio_cut"})", &cfg);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("ratio_cut"), std::string::npos);
}

TEST(FinderConfigJson, RejectsWrongType) {
  FinderConfig cfg;
  EXPECT_FALSE(parse_finder_config(R"({"num_seeds": "many"})", &cfg).is_ok());
  EXPECT_FALSE(parse_finder_config(R"({"num_seeds": -3})", &cfg).is_ok());
  EXPECT_FALSE(parse_finder_config(R"([1, 2])", &cfg).is_ok());
}

TEST(FinderConfigJson, RejectsMalformedText) {
  FinderConfig cfg;
  const Status st = parse_finder_config("{\"num_seeds\": ", &cfg);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(FinderConfigJson, FailedParseLeavesOutputUntouched) {
  FinderConfig cfg = non_default_config();
  const FinderConfig before = cfg;
  ASSERT_FALSE(parse_finder_config(R"({"bogus": 1})", &cfg).is_ok());
  expect_config_eq(before, cfg);
}

// ---------- result JSON round trip ----------

TEST(FinderResultJson, RoundTripsRealResult) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 2'000;
  gcfg.gtls.push_back({150, 1});
  Rng rng(5);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);
  FinderConfig fcfg;
  fcfg.num_seeds = 20;
  fcfg.max_ordering_length = 600;
  fcfg.num_threads = 1;
  Finder finder(pg.netlist, fcfg);
  const FinderResult& result = finder.run();
  ASSERT_FALSE(result.gtls.empty());

  const std::string text = to_json(result).dump();
  FinderResult back;
  ASSERT_TRUE(parse_finder_result(text, &back).is_ok());

  ASSERT_EQ(back.gtls.size(), result.gtls.size());
  for (std::size_t i = 0; i < result.gtls.size(); ++i) {
    EXPECT_EQ(back.gtls[i].cells, result.gtls[i].cells);
    EXPECT_EQ(back.gtls[i].cut, result.gtls[i].cut);
    EXPECT_EQ(back.gtls[i].seed, result.gtls[i].seed);
    // Doubles must survive bit-exactly (shortest round-trip formatting).
    EXPECT_EQ(back.gtls[i].avg_pins, result.gtls[i].avg_pins);
    EXPECT_EQ(back.gtls[i].ngtl_s, result.gtls[i].ngtl_s);
    EXPECT_EQ(back.gtls[i].gtl_sd, result.gtls[i].gtl_sd);
    EXPECT_EQ(back.gtls[i].score, result.gtls[i].score);
    EXPECT_EQ(back.gtls[i].rent_exponent_used,
              result.gtls[i].rent_exponent_used);
  }
  EXPECT_EQ(back.context.rent_exponent, result.context.rent_exponent);
  EXPECT_EQ(back.context.avg_pins_per_cell, result.context.avg_pins_per_cell);
  EXPECT_EQ(back.orderings_grown, result.orderings_grown);
  EXPECT_EQ(back.candidates_before_refine, result.candidates_before_refine);
  EXPECT_EQ(back.candidates_after_dedup, result.candidates_after_dedup);
  EXPECT_EQ(back.phase1_2_seconds, result.phase1_2_seconds);
  EXPECT_EQ(back.phase3_seconds, result.phase3_seconds);
  EXPECT_EQ(back.total_seconds, result.total_seconds);
  EXPECT_EQ(back.cancelled, result.cancelled);

  // Fixed point at the text level too.
  EXPECT_EQ(to_json(back).dump(), text);
}

TEST(FinderResultJson, RejectsUnknownKey) {
  FinderResult result;
  const Status st = parse_finder_result(R"({"gtlz": []})", &result);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("gtlz"), std::string::npos);
}

}  // namespace
}  // namespace gtl
