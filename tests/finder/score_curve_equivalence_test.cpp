// Pins the Phase II/III fast paths bit-for-bit to the pre-optimization
// implementations, which are embedded here verbatim as references (the
// same discipline as tests/order/ordering_frontier_equivalence_test.cpp):
//
//   * compute_selected_curve (scratch-backed, single-Φ, memoized ln
//     tables) vs the allocating three-curve reference;
//   * extract_candidate's scratch overload vs a reference extraction
//     reading every field off the reference curve;
//   * refine_candidate (worker-scratch tracker + family arena, losers
//     scored without materialization) vs the allocating reference that
//     builds a fresh GroupConnectivity and a fresh vector per set-op.
//
// "Equal" below always means exact double equality — these are meant to
// be the same arithmetic, not approximately the same answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "finder/candidate.hpp"
#include "finder/refine.hpp"
#include "finder/score_curve.hpp"
#include "graphgen/planted_graph.hpp"
#include "metrics/group_connectivity.hpp"
#include "metrics/scores.hpp"
#include "order/linear_ordering.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

// ---------------------------------------------------------------------
// Reference implementations (pre-PR4 src/finder/{score_curve,candidate,
// refine}.cpp, verbatim modulo names).
// ---------------------------------------------------------------------

ScoreCurve reference_score_curve(const Netlist& nl,
                                 const LinearOrdering& ordering,
                                 const CurveConfig& cfg) {
  const std::size_t n = ordering.cells.size();

  ScoreCurve out;
  out.context.avg_pins_per_cell = nl.average_pins_per_cell();

  double p_sum = 0.0;
  std::size_t p_count = 0;
  for (std::size_t k = std::max<std::size_t>(cfg.rent_min_k, 2); k <= n; ++k) {
    const auto cut = static_cast<double>(ordering.prefix_cut[k - 1]);
    const double a_c = static_cast<double>(ordering.prefix_pins[k - 1]) /
                       static_cast<double>(k);
    p_sum += group_rent_exponent(cut, static_cast<double>(k), a_c);
    ++p_count;
  }
  out.rent_exponent = p_count > 0 ? p_sum / static_cast<double>(p_count) : 0.6;
  out.rent_exponent = std::clamp(out.rent_exponent, 0.1, 1.0);
  out.context.rent_exponent = out.rent_exponent;

  out.ngtl_s.resize(n);
  out.gtl_sd.resize(n);
  out.ratio_cut.resize(n);
  for (std::size_t k = 1; k <= n; ++k) {
    const auto cut = static_cast<double>(ordering.prefix_cut[k - 1]);
    const auto size = static_cast<double>(k);
    const double a_c =
        static_cast<double>(ordering.prefix_pins[k - 1]) / size;
    out.ngtl_s[k - 1] = ngtl_score(cut, size, out.context);
    out.gtl_sd[k - 1] = gtl_sd_score(cut, size, a_c, out.context);
    out.ratio_cut[k - 1] = ratio_cut(cut, size);
  }
  return out;
}

std::optional<Candidate> reference_extract_candidate(
    const Netlist& nl, const LinearOrdering& ordering, ScoreKind kind,
    const CurveConfig& curve_cfg, const MinimumConfig& min_cfg) {
  if (ordering.cells.size() < min_cfg.min_size) return std::nullopt;
  const ScoreCurve curve = reference_score_curve(nl, ordering, curve_cfg);
  const auto minimum = find_clear_minimum(curve.values(kind), min_cfg);
  if (!minimum) return std::nullopt;

  const std::size_t k = minimum->prefix_size;
  Candidate c;
  c.cells.assign(ordering.cells.begin(),
                 ordering.cells.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(c.cells.begin(), c.cells.end());
  c.cut = ordering.prefix_cut[k - 1];
  c.avg_pins = static_cast<double>(ordering.prefix_pins[k - 1]) /
               static_cast<double>(k);
  c.ngtl_s = curve.ngtl_s[k - 1];
  c.gtl_sd = curve.gtl_sd[k - 1];
  c.score = curve.values(kind)[k - 1];
  c.seed = ordering.seed;
  c.rent_exponent_used = curve.rent_exponent;
  return c;
}

Candidate reference_refine_candidate(const Netlist& nl,
                                     const Candidate& initial,
                                     OrderingEngine& engine,
                                     const ScoreContext& ctx, ScoreKind kind,
                                     const RefineConfig& cfg,
                                     const MinimumConfig& min_cfg,
                                     const CurveConfig& curve_cfg, Rng& rng) {
  GroupConnectivity group(nl);

  std::vector<std::vector<CellId>> base;
  base.push_back(initial.cells);
  for (std::size_t i = 0; i < cfg.extra_seeds; ++i) {
    const CellId inner_seed =
        initial.cells[rng.next_below(initial.cells.size())];
    const LinearOrdering ordering = engine.grow(inner_seed);
    auto cand =
        reference_extract_candidate(nl, ordering, kind, curve_cfg, min_cfg);
    if (cand) base.push_back(std::move(cand->cells));
  }

  std::vector<std::vector<CellId>> family = base;
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t j = i + 1; j < base.size(); ++j) {
      auto inter = set_intersection(base[i], base[j]);
      family.push_back(set_union(base[i], base[j]));
      family.push_back(set_difference(base[i], base[j]));
      family.push_back(set_difference(base[j], base[i]));
      family.push_back(std::move(inter));
    }
  }

  Candidate best = score_members(initial.cells, group, ctx, kind);
  best.seed = initial.seed;
  for (const auto& members : family) {
    if (members.size() < cfg.min_size) continue;
    Candidate cand = score_members(members, group, ctx, kind);
    if (cand.score < best.score) {
      cand.seed = initial.seed;
      best = std::move(cand);
    }
  }
  return best;
}

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

struct Workload {
  PlantedGraph pg;
  std::vector<LinearOrdering> orderings;
};

Workload make_workload(std::uint64_t seed, std::uint32_t num_cells,
                       std::uint32_t gtl_size, std::size_t max_length) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = num_cells;
  gcfg.gtls.push_back({gtl_size, 2});
  Rng rng(seed);
  Workload w{generate_planted_graph(gcfg, rng), {}};

  OrderingEngine engine(
      w.pg.netlist,
      {.max_length = max_length, .large_net_threshold = 20});
  // Mix of seeds inside the planted structures (clear minima) and
  // background seeds (monotone curves, usually no candidate).
  std::vector<CellId> seeds = {w.pg.gtl_members[0][0],
                               w.pg.gtl_members[1][gtl_size / 2]};
  for (int i = 0; i < 3; ++i) {
    CellId c = static_cast<CellId>(rng.next_below(num_cells));
    while (std::binary_search(w.pg.gtl_members[0].begin(),
                              w.pg.gtl_members[0].end(), c)) {
      c = static_cast<CellId>(rng.next_below(num_cells));
    }
    seeds.push_back(c);
  }
  for (const CellId s : seeds) w.orderings.push_back(engine.grow(s));
  return w;
}

void expect_candidate_identical(const std::optional<Candidate>& got,
                                const std::optional<Candidate>& want,
                                const char* what) {
  ASSERT_EQ(got.has_value(), want.has_value()) << what;
  if (!got) return;
  EXPECT_EQ(got->cells, want->cells) << what;
  EXPECT_EQ(got->cut, want->cut) << what;
  EXPECT_EQ(got->avg_pins, want->avg_pins) << what;
  EXPECT_EQ(got->ngtl_s, want->ngtl_s) << what;
  EXPECT_EQ(got->gtl_sd, want->gtl_sd) << what;
  EXPECT_EQ(got->score, want->score) << what;
  EXPECT_EQ(got->seed, want->seed) << what;
  EXPECT_EQ(got->rent_exponent_used, want->rent_exponent_used) << what;
}

// ---------------------------------------------------------------------
// Curve equivalence
// ---------------------------------------------------------------------

TEST(ScoreCurveEquivalence, SelectedCurveMatchesReferenceBitwise) {
  const Workload w = make_workload(101, 4'000, 300, 1'200);
  CurveScratch scratch;  // deliberately shared across every call below
  for (const CurveConfig ccfg : {CurveConfig{.rent_min_k = 10},
                                 CurveConfig{.rent_min_k = 2},
                                 CurveConfig{.rent_min_k = 100'000}}) {
    for (const ScoreKind kind : {ScoreKind::kGtlSd, ScoreKind::kNgtlS}) {
      for (std::size_t oi = 0; oi < w.orderings.size(); ++oi) {
        const LinearOrdering& ord = w.orderings[oi];
        const ScoreCurve ref = reference_score_curve(w.pg.netlist, ord, ccfg);
        const SelectedScoreCurve sel = compute_selected_curve(
            w.pg.netlist, ord, ccfg, kind, scratch);

        ASSERT_EQ(sel.values.size(), ord.cells.size());
        EXPECT_EQ(sel.rent_exponent, ref.rent_exponent)
            << "ordering " << oi << " rent_min_k " << ccfg.rent_min_k;
        EXPECT_EQ(sel.context.rent_exponent, ref.context.rent_exponent);
        EXPECT_EQ(sel.context.avg_pins_per_cell, ref.context.avg_pins_per_cell);
        const std::vector<double>& want = ref.values(kind);
        for (std::size_t k = 0; k < sel.values.size(); ++k) {
          ASSERT_EQ(sel.values[k], want[k])
              << "ordering " << oi << " k " << (k + 1) << " rent_min_k "
              << ccfg.rent_min_k;
        }
      }
    }
  }
}

TEST(ScoreCurveEquivalence, ProductionFullCurveStillMatchesReference) {
  // compute_score_curve (the three-curve API figs/tools use) must keep
  // matching the embedded reference too — it is the contract the fast
  // path is pinned against.
  const Workload w = make_workload(102, 3'000, 250, 900);
  for (const LinearOrdering& ord : w.orderings) {
    const ScoreCurve ref = reference_score_curve(w.pg.netlist, ord, {});
    const ScoreCurve got = compute_score_curve(w.pg.netlist, ord, {});
    EXPECT_EQ(got.rent_exponent, ref.rent_exponent);
    EXPECT_EQ(got.ngtl_s, ref.ngtl_s);
    EXPECT_EQ(got.gtl_sd, ref.gtl_sd);
    EXPECT_EQ(got.ratio_cut, ref.ratio_cut);
  }
}

TEST(ScoreCurveEquivalence, ScratchReuseAcrossShrinkingOrderings) {
  // Reuse the same scratch on a long ordering, then a short one, then
  // long again: stale buffer contents must never leak into results.
  const Workload w = make_workload(103, 4'000, 300, 1'500);
  OrderingEngine engine(w.pg.netlist,
                        {.max_length = 60, .large_net_threshold = 20});
  const LinearOrdering short_ord = engine.grow(w.pg.gtl_members[0][3]);

  CurveScratch scratch;
  const LinearOrdering& long_ord = w.orderings[0];
  for (const LinearOrdering* ord : {&long_ord, &short_ord, &long_ord}) {
    const ScoreCurve ref = reference_score_curve(w.pg.netlist, *ord, {});
    const SelectedScoreCurve sel = compute_selected_curve(
        w.pg.netlist, *ord, {}, ScoreKind::kGtlSd, scratch);
    ASSERT_EQ(sel.values.size(), ord->cells.size());
    for (std::size_t k = 0; k < sel.values.size(); ++k) {
      ASSERT_EQ(sel.values[k], ref.gtl_sd[k]);
    }
  }
}

TEST(ScoreCurveEquivalence, SingleCellOrderingUsesFallbackRent) {
  // n = 1: the rent loop is empty (fallback 0.6) and the curve has one
  // point; both paths must agree exactly.
  const Workload w = make_workload(104, 2'000, 200, 600);
  OrderingEngine engine(w.pg.netlist,
                        {.max_length = 1, .large_net_threshold = 20});
  const LinearOrdering ord = engine.grow(w.pg.gtl_members[0][0]);
  ASSERT_EQ(ord.cells.size(), 1u);
  CurveScratch scratch;
  const ScoreCurve ref = reference_score_curve(w.pg.netlist, ord, {});
  const SelectedScoreCurve sel =
      compute_selected_curve(w.pg.netlist, ord, {}, ScoreKind::kNgtlS, scratch);
  EXPECT_EQ(sel.rent_exponent, ref.rent_exponent);
  ASSERT_EQ(sel.values.size(), 1u);
  EXPECT_EQ(sel.values[0], ref.ngtl_s[0]);
}

// ---------------------------------------------------------------------
// Extraction equivalence
// ---------------------------------------------------------------------

TEST(ExtractEquivalence, ScratchOverloadMatchesReference) {
  const Workload w = make_workload(105, 4'000, 300, 1'200);
  CurveScratch scratch;
  for (const ScoreKind kind : {ScoreKind::kGtlSd, ScoreKind::kNgtlS}) {
    for (std::size_t oi = 0; oi < w.orderings.size(); ++oi) {
      const LinearOrdering& ord = w.orderings[oi];
      const auto want =
          reference_extract_candidate(w.pg.netlist, ord, kind, {}, {});
      const auto got =
          extract_candidate(w.pg.netlist, ord, kind, {}, {}, scratch);
      expect_candidate_identical(got, want, "scratch overload");
      // The scratch-free convenience overload must agree as well.
      const auto got_plain = extract_candidate(w.pg.netlist, ord, kind);
      expect_candidate_identical(got_plain, want, "plain overload");
    }
  }
}

TEST(ExtractEquivalence, FusedMinimumMatchesSlowPathBitwise) {
  // extract_curve_minimum is the finder's fused fast path: its rent
  // estimate, context, and (k*, Φ(k*)) must be bit-identical to the
  // compute_selected_curve + find_clear_minimum composition on every
  // ordering and under configs tuned to sit close to the decision
  // boundaries (forcing the interval bounds into their exact-fallback
  // branches).
  const Workload w = make_workload(107, 4'000, 300, 1'200);
  CurveScratch fast_scratch;
  CurveScratch slow_scratch;
  std::vector<MinimumConfig> configs = {
      MinimumConfig{},
      MinimumConfig{.min_size = 2, .edge_fraction = 0.0},
      MinimumConfig{.min_size = 30,
                    .accept_threshold = 1e9,
                    .drop_factor = 1.0,
                    .rise_factor = 1.0},
      MinimumConfig{.drop_factor = 50.0},
      MinimumConfig{.rise_factor = 50.0},
      MinimumConfig{.min_size = 100'000},
      MinimumConfig{.edge_fraction = 1.0},
  };
  for (const CurveConfig ccfg :
       {CurveConfig{.rent_min_k = 10}, CurveConfig{.rent_min_k = 2}}) {
    for (const ScoreKind kind : {ScoreKind::kGtlSd, ScoreKind::kNgtlS}) {
      for (std::size_t oi = 0; oi < w.orderings.size(); ++oi) {
        const LinearOrdering& ord = w.orderings[oi];
        const SelectedScoreCurve sel = compute_selected_curve(
            w.pg.netlist, ord, ccfg, kind, slow_scratch);
        // Thresholds derived from the true minimum stress the ambiguous
        // paths: the drop/rise existence tests then hinge on values the
        // enclosures cannot separate.
        std::vector<MinimumConfig> local = configs;
        if (const auto base = find_clear_minimum(sel.values)) {
          const double mb =
              *std::max_element(sel.values.begin(),
                                sel.values.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        base->prefix_size));
          MinimumConfig tight;
          tight.drop_factor = mb / std::max(base->value, 1e-12);
          local.push_back(tight);
        }
        for (const MinimumConfig& mcfg : local) {
          const auto want = find_clear_minimum(sel.values, mcfg);
          const CurveExtremum got = extract_curve_minimum(
              w.pg.netlist, ord, ccfg, kind, mcfg, fast_scratch);
          EXPECT_EQ(got.rent_exponent, sel.rent_exponent) << "ordering " << oi;
          EXPECT_EQ(got.context.rent_exponent, sel.context.rent_exponent);
          EXPECT_EQ(got.context.avg_pins_per_cell,
                    sel.context.avg_pins_per_cell);
          ASSERT_EQ(got.minimum.has_value(), want.has_value())
              << "ordering " << oi << " kind " << static_cast<int>(kind)
              << " min_size " << mcfg.min_size;
          if (want) {
            EXPECT_EQ(got.minimum->prefix_size, want->prefix_size)
                << "ordering " << oi;
            EXPECT_EQ(got.minimum->value, want->value) << "ordering " << oi;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Refine equivalence
// ---------------------------------------------------------------------

TEST(RefineEquivalence, ArenaRefineMatchesAllocatingReference) {
  const Workload w = make_workload(106, 4'000, 300, 1'200);
  const ScoreContext ctx{0.68, w.pg.netlist.average_pins_per_cell()};
  OrderingEngine ref_engine(w.pg.netlist,
                            {.max_length = 1'200, .large_net_threshold = 20});
  OrderingEngine fast_engine(w.pg.netlist,
                             {.max_length = 1'200, .large_net_threshold = 20});
  GroupConnectivity group(w.pg.netlist);
  RefineArena arena;  // shared across candidates: reuse must not leak

  for (const ScoreKind kind : {ScoreKind::kGtlSd, ScoreKind::kNgtlS}) {
    for (const std::size_t extra_seeds : {std::size_t{0}, std::size_t{3}}) {
      for (std::size_t oi = 0; oi < w.orderings.size(); ++oi) {
        const auto initial = reference_extract_candidate(
            w.pg.netlist, w.orderings[oi], kind, {}, {});
        if (!initial) continue;
        RefineConfig rcfg;
        rcfg.extra_seeds = extra_seeds;
        const std::uint64_t rng_seed = 500 + oi;
        Rng ref_rng(rng_seed);
        Rng fast_rng(rng_seed);
        const Candidate want = reference_refine_candidate(
            w.pg.netlist, *initial, ref_engine, ctx, kind, rcfg, {}, {},
            ref_rng);
        const Candidate got = refine_candidate(
            w.pg.netlist, *initial, fast_engine, group, arena, ctx, kind,
            rcfg, {}, {}, fast_rng);
        expect_candidate_identical(got, want, "refine");
      }
    }
  }
}

}  // namespace
}  // namespace gtl
