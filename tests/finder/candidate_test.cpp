#include "finder/candidate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graphgen/planted_graph.hpp"
#include "order/linear_ordering.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

TEST(SetAlgebra, UnionIntersectionDifference) {
  const std::vector<CellId> a = {1, 3, 5, 7};
  const std::vector<CellId> b = {3, 4, 5, 6};
  EXPECT_EQ(set_union(a, b), (std::vector<CellId>{1, 3, 4, 5, 6, 7}));
  EXPECT_EQ(set_intersection(a, b), (std::vector<CellId>{3, 5}));
  EXPECT_EQ(set_difference(a, b), (std::vector<CellId>{1, 7}));
  EXPECT_EQ(set_difference(b, a), (std::vector<CellId>{4, 6}));
}

TEST(SetAlgebra, EmptyOperands) {
  const std::vector<CellId> a = {1, 2};
  const std::vector<CellId> empty;
  EXPECT_EQ(set_union(a, empty), a);
  EXPECT_TRUE(set_intersection(a, empty).empty());
  EXPECT_EQ(set_difference(a, empty), a);
  EXPECT_TRUE(set_difference(empty, a).empty());
}

TEST(SetAlgebra, OverlapDetection) {
  const std::vector<CellId> a = {1, 4, 9};
  const std::vector<CellId> b = {2, 4, 8};
  const std::vector<CellId> c = {3, 5, 7};
  EXPECT_TRUE(sets_overlap(a, b));
  EXPECT_FALSE(sets_overlap(a, c));
  EXPECT_FALSE(sets_overlap({}, a));
}

TEST(ScoreMembers, FillsAllFields) {
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity group(nl);
  const ScoreContext ctx{0.6, nl.average_pins_per_cell()};
  const std::vector<CellId> members = {0, 1, 2, 3};
  const Candidate c = score_members(members, group, ctx, ScoreKind::kGtlSd);
  EXPECT_EQ(c.cells, members);
  EXPECT_EQ(c.cut, 1);
  EXPECT_GT(c.avg_pins, 0.0);
  EXPECT_GT(c.ngtl_s, 0.0);
  EXPECT_GT(c.gtl_sd, 0.0);
  EXPECT_DOUBLE_EQ(c.score, c.gtl_sd);
  EXPECT_DOUBLE_EQ(c.rent_exponent_used, 0.6);
}

TEST(ScoreMembers, ScoreKindSelectsPhi) {
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity group(nl);
  const ScoreContext ctx{0.6, nl.average_pins_per_cell()};
  const std::vector<CellId> members = {0, 1, 2};
  const Candidate n = score_members(members, group, ctx, ScoreKind::kNgtlS);
  EXPECT_DOUBLE_EQ(n.score, n.ngtl_s);
}

TEST(ScoreMembers, SortsUnsortedInput) {
  const Netlist nl = testing::make_two_cliques();
  GroupConnectivity group(nl);
  const ScoreContext ctx{0.6, 3.0};
  const std::vector<CellId> shuffled = {3, 0, 2, 1};
  const Candidate c = score_members(shuffled, group, ctx, ScoreKind::kGtlSd);
  EXPECT_TRUE(std::is_sorted(c.cells.begin(), c.cells.end()));
}

TEST(ScoreMembers, EmptyThrows) {
  const Netlist nl = testing::make_grid3x3();
  GroupConnectivity group(nl);
  const ScoreContext ctx{0.6, 3.0};
  EXPECT_THROW((void)score_members({}, group, ctx, ScoreKind::kGtlSd),
               std::logic_error);
}

TEST(ExtractCandidate, RecoversPlantedGtl) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 8'000;
  cfg.gtls.push_back({500, 1});
  Rng rng(7);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  OrderingEngine engine(pg.netlist,
                        {.max_length = 1500, .large_net_threshold = 20});
  const LinearOrdering ord = engine.grow(pg.gtl_members[0][3]);
  const auto cand = extract_candidate(pg.netlist, ord, ScoreKind::kGtlSd);
  ASSERT_TRUE(cand.has_value());
  EXPECT_NEAR(static_cast<double>(cand->size()), 500.0, 25.0);
  const auto rec = recovery_stats(pg.gtl_members[0], cand->cells);
  EXPECT_LT(rec.miss_fraction, 0.05);
  EXPECT_LT(rec.over_fraction, 0.05);
  EXPECT_EQ(cand->seed, pg.gtl_members[0][3]);
}

TEST(ExtractCandidate, BackgroundSeedYieldsNothing) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 8'000;
  cfg.gtls.push_back({500, 1});
  Rng rng(7);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);
  CellId bg = 0;
  while (std::binary_search(pg.gtl_members[0].begin(),
                            pg.gtl_members[0].end(), bg)) {
    ++bg;
  }
  OrderingEngine engine(pg.netlist,
                        {.max_length = 1500, .large_net_threshold = 20});
  const LinearOrdering ord = engine.grow(bg);
  EXPECT_FALSE(
      extract_candidate(pg.netlist, ord, ScoreKind::kGtlSd).has_value());
}

TEST(ExtractCandidate, TooShortOrderingRejected) {
  const Netlist nl = testing::make_grid3x3();
  OrderingEngine engine(nl, {.max_length = 9, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(0);
  EXPECT_FALSE(
      extract_candidate(nl, ord, ScoreKind::kGtlSd).has_value());
}

}  // namespace
}  // namespace gtl
