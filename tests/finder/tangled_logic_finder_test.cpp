#include "finder/finder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graphgen/planted_graph.hpp"
#include "test_helpers.hpp"

namespace gtl {
namespace {

/// All pipeline-behavior tests run through the session API (the
/// canonical entry point); the one-shot wrapper is pinned against it in
/// finder_equivalence_test.cpp.
FinderResult run_finder(const Netlist& nl, const FinderConfig& cfg) {
  Finder finder(nl, cfg);
  return finder.run();
}

FinderConfig small_finder_config() {
  FinderConfig cfg;
  cfg.num_seeds = 60;
  cfg.max_ordering_length = 1500;
  cfg.num_threads = 2;
  cfg.rng_seed = 13;
  return cfg;
}

TEST(TangledLogicFinder, FindsSinglePlantedGtl) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 8'000;
  gcfg.gtls.push_back({500, 1});
  Rng rng(1);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);

  const FinderResult res = run_finder(pg.netlist, small_finder_config());
  ASSERT_EQ(res.gtls.size(), 1u);
  const auto rec = recovery_stats(pg.gtl_members[0], res.gtls[0].cells);
  EXPECT_LT(rec.miss_fraction, 0.02);
  EXPECT_LT(rec.over_fraction, 0.02);
  EXPECT_LT(res.gtls[0].score, 0.3);
  EXPECT_EQ(res.orderings_grown, 60u);
}

TEST(TangledLogicFinder, FindsTwoGtlsOfDifferentSizes) {
  // The paper's Table 1 case 2 shape: two GTLs, sizes 1:7.5.
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 12'000;
  gcfg.gtls.push_back({300, 1});
  gcfg.gtls.push_back({1200, 1});
  Rng rng(2);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);

  FinderConfig fcfg = small_finder_config();
  fcfg.num_seeds = 120;
  fcfg.max_ordering_length = 3000;
  const FinderResult res = run_finder(pg.netlist, fcfg);
  ASSERT_EQ(res.gtls.size(), 2u);

  // Match found GTLs to ground truth by best overlap.
  for (const auto& truth : pg.gtl_members) {
    double best_miss = 1.0;
    for (const auto& found : res.gtls) {
      best_miss =
          std::min(best_miss, recovery_stats(truth, found.cells).miss_fraction);
    }
    EXPECT_LT(best_miss, 0.05);
  }
}

TEST(TangledLogicFinder, NoGtlsInPureRandomGraph) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 4'000;  // no planted structures at all
  Rng rng(3);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);

  FinderConfig fcfg = small_finder_config();
  fcfg.num_seeds = 15;
  const FinderResult res = run_finder(pg.netlist, fcfg);
  EXPECT_TRUE(res.gtls.empty());
}

TEST(TangledLogicFinder, ResultsDisjoint) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 10'000;
  gcfg.gtls.push_back({400, 3});
  Rng rng(4);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);

  FinderConfig fcfg = small_finder_config();
  fcfg.num_seeds = 60;
  const FinderResult res = run_finder(pg.netlist, fcfg);
  std::vector<bool> seen(pg.netlist.num_cells(), false);
  for (const auto& g : res.gtls) {
    for (const CellId c : g.cells) {
      EXPECT_FALSE(seen[c]) << "overlapping GTLs in final result";
      seen[c] = true;
    }
  }
}

TEST(TangledLogicFinder, ResultsSortedBestFirst) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 10'000;
  gcfg.gtls.push_back({400, 3});
  Rng rng(5);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);
  const FinderResult res =
      run_finder(pg.netlist, small_finder_config());
  for (std::size_t i = 1; i < res.gtls.size(); ++i) {
    EXPECT_LE(res.gtls[i - 1].score, res.gtls[i].score);
  }
}

TEST(TangledLogicFinder, DeterministicAcrossThreadCounts) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 6'000;
  gcfg.gtls.push_back({300, 1});
  Rng rng(6);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);

  FinderConfig one = small_finder_config();
  one.num_threads = 1;
  FinderConfig four = small_finder_config();
  four.num_threads = 4;
  const FinderResult a = run_finder(pg.netlist, one);
  const FinderResult b = run_finder(pg.netlist, four);
  ASSERT_EQ(a.gtls.size(), b.gtls.size());
  for (std::size_t i = 0; i < a.gtls.size(); ++i) {
    EXPECT_EQ(a.gtls[i].cells, b.gtls[i].cells);
    EXPECT_DOUBLE_EQ(a.gtls[i].score, b.gtls[i].score);
  }
  EXPECT_DOUBLE_EQ(a.context.rent_exponent, b.context.rent_exponent);
}

TEST(TangledLogicFinder, ZeroSeedsYieldsEmptyResult) {
  const Netlist nl = testing::make_grid3x3();
  FinderConfig cfg;
  cfg.num_seeds = 0;
  const FinderResult res = run_finder(nl, cfg);
  EXPECT_TRUE(res.gtls.empty());
  EXPECT_EQ(res.orderings_grown, 0u);
}

TEST(TangledLogicFinder, AllFixedNetlistIsSafe) {
  NetlistBuilder nb;
  nb.add_cell("p0", 1, 1, true);
  nb.add_cell("p1", 1, 1, true);
  nb.add_net({CellId{0}, CellId{1}});
  const Netlist nl = nb.build();
  const FinderResult res = run_finder(nl, FinderConfig{});
  EXPECT_TRUE(res.gtls.empty());
}

TEST(TangledLogicFinder, RefinementAblationStillFinds) {
  // refine_seeds = 0 skips Phase III growth; candidates are scored under
  // the global context and pruned directly.
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 8'000;
  gcfg.gtls.push_back({500, 1});
  Rng rng(7);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);

  FinderConfig fcfg = small_finder_config();
  fcfg.refine_seeds = 0;
  const FinderResult res = run_finder(pg.netlist, fcfg);
  ASSERT_EQ(res.gtls.size(), 1u);
  const auto rec = recovery_stats(pg.gtl_members[0], res.gtls[0].cells);
  EXPECT_LT(rec.miss_fraction, 0.1);
}

TEST(TangledLogicFinder, NgtlScoreKindWorksToo) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 8'000;
  gcfg.gtls.push_back({500, 1});
  Rng rng(8);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);

  FinderConfig fcfg = small_finder_config();
  fcfg.score = ScoreKind::kNgtlS;
  const FinderResult res = run_finder(pg.netlist, fcfg);
  ASSERT_EQ(res.gtls.size(), 1u);
  EXPECT_DOUBLE_EQ(res.gtls[0].score, res.gtls[0].ngtl_s);
}

TEST(TangledLogicFinder, StatsArePopulated) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 4'000;
  gcfg.gtls.push_back({300, 1});
  Rng rng(9);
  const PlantedGraph pg = generate_planted_graph(gcfg, rng);
  const FinderResult res =
      run_finder(pg.netlist, small_finder_config());
  EXPECT_GT(res.candidates_before_refine, 0u);
  EXPECT_GT(res.candidates_after_dedup, 0u);
  EXPECT_LE(res.candidates_after_dedup, res.candidates_before_refine);
  EXPECT_GE(res.total_seconds, 0.0);
  EXPECT_GT(res.context.avg_pins_per_cell, 0.0);
}

}  // namespace
}  // namespace gtl
