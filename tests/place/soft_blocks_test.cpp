#include "place/soft_blocks.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graphgen/synthetic_circuit.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

/// Circuit with a *loosely* connected planted group: sparse internal nets
/// so plain placement spreads it, leaving room for soft-block attraction
/// to visibly tighten it.
struct LooseFixture {
  SyntheticCircuit circuit;
  PlacerConfig pcfg;

  static LooseFixture make() {
    SyntheticCircuitConfig cfg;
    cfg.num_cells = 1'500;
    cfg.num_pads = 16;
    StructureSpec s;
    s.size = 150;
    s.internal_nets_per_cell = 0.4;  // barely holds together
    s.internal_avg_net_size = 2.2;
    s.ports = 40;
    cfg.structures.push_back(s);
    Rng rng(12);
    LooseFixture f{generate_synthetic_circuit(cfg, rng), {}};
    f.pcfg.die = {f.circuit.die_width, f.circuit.die_height, 1.0};
    f.pcfg.spreading_iterations = 6;
    f.pcfg.cg_max_iterations = 120;
    return f;
  }
};

TEST(SoftBlocks, AttractionTightensGroup) {
  const auto f = LooseFixture::make();
  const auto& group = f.circuit.planted[0];

  const Placement plain = place_quadratic(f.circuit.netlist, f.circuit.hint_x,
                                          f.circuit.hint_y, f.pcfg);
  const std::vector<std::vector<CellId>> blocks = {group};
  const Placement soft = place_with_soft_blocks(
      f.circuit.netlist, f.circuit.hint_x, f.circuit.hint_y, f.pcfg, blocks,
      {.attraction = 4});

  const double spread_plain = group_rms_spread(group, plain.x, plain.y);
  const double spread_soft = group_rms_spread(group, soft.x, soft.y);
  EXPECT_LT(spread_soft, spread_plain * 0.9)
      << "soft block must tighten the group by >10%";
}

TEST(SoftBlocks, ReturnsRealCellsOnly) {
  const auto f = LooseFixture::make();
  const std::vector<std::vector<CellId>> blocks = {f.circuit.planted[0]};
  const Placement p = place_with_soft_blocks(
      f.circuit.netlist, f.circuit.hint_x, f.circuit.hint_y, f.pcfg, blocks);
  EXPECT_EQ(p.x.size(), f.circuit.netlist.num_cells());
  EXPECT_EQ(p.y.size(), f.circuit.netlist.num_cells());
}

TEST(SoftBlocks, EmptyGroupListMatchesPlainPlacement) {
  const auto f = LooseFixture::make();
  const Placement plain = place_quadratic(f.circuit.netlist, f.circuit.hint_x,
                                          f.circuit.hint_y, f.pcfg);
  const Placement soft = place_with_soft_blocks(
      f.circuit.netlist, f.circuit.hint_x, f.circuit.hint_y, f.pcfg, {});
  ASSERT_EQ(plain.x.size(), soft.x.size());
  for (std::size_t i = 0; i < plain.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.x[i], soft.x[i]);
    EXPECT_DOUBLE_EQ(plain.y[i], soft.y[i]);
  }
}

TEST(SoftBlocks, FixedCellsUnmoved) {
  const auto f = LooseFixture::make();
  const std::vector<std::vector<CellId>> blocks = {f.circuit.planted[0]};
  const Placement p = place_with_soft_blocks(
      f.circuit.netlist, f.circuit.hint_x, f.circuit.hint_y, f.pcfg, blocks);
  for (CellId c = 0; c < f.circuit.netlist.num_cells(); ++c) {
    if (!f.circuit.netlist.is_fixed(c)) continue;
    EXPECT_DOUBLE_EQ(p.x[c], f.circuit.hint_x[c]);
    EXPECT_DOUBLE_EQ(p.y[c], f.circuit.hint_y[c]);
  }
}

TEST(SoftBlocks, OutOfRangeMemberThrows) {
  const Netlist nl = testing::make_grid3x3();
  const std::vector<double> xy(9, 1.0);
  PlacerConfig pcfg;
  pcfg.die = {4, 4, 1};
  const std::vector<std::vector<CellId>> blocks = {{99}};
  EXPECT_THROW(
      (void)place_with_soft_blocks(nl, xy, xy, pcfg, blocks),
      std::logic_error);
}

TEST(GroupRmsSpread, HandComputedValues) {
  const std::vector<double> x = {0, 2, 0, 2};
  const std::vector<double> y = {0, 0, 2, 2};
  const std::vector<CellId> all = {0, 1, 2, 3};
  // Centroid (1,1); every point at distance sqrt(2).
  EXPECT_NEAR(group_rms_spread(all, x, y), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(group_rms_spread({}, x, y), 0.0);
  const std::vector<CellId> one = {2};
  EXPECT_DOUBLE_EQ(group_rms_spread(one, x, y), 0.0);
}

}  // namespace
}  // namespace gtl
